// Micro-benchmarks (google-benchmark) for the primitives whose operation
// counts parameterise the performance model: the pair-force kernel, the
// speculation functions, payload serialisation, the DES kernel's event
// throughput, and the shared-medium channel.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "des/kernel.hpp"
#include "des/process.hpp"
#include "net/channel.hpp"
#include "net/serialization.hpp"
#include "nbody/app.hpp"
#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "obs/artifacts.hpp"
#include "runtime/cluster.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/speculator.hpp"
#include "support/cli.hpp"

namespace {

using namespace specomp;

void BM_PairForceKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto particles = nbody::init_plummer(n, 1);
  std::vector<nbody::Vec3> pos(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }
  std::vector<nbody::Vec3> acc(n);
  for (auto _ : state) {
    acc.assign(n, {});
    nbody::accumulate_accelerations(pos, pos, mass, 1e-3, 0, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_PairForceKernel)->Arg(64)->Arg(256)->Arg(1000);

// Same workload pinned to each kernel variant, bypassing the auto heuristic,
// so regressions in any one implementation are visible in isolation.
void BM_ForceKernel(benchmark::State& state, nbody::kernels::ForceKernel kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto particles = nbody::init_plummer(n, 1);
  std::vector<nbody::Vec3> pos(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }
  std::vector<nbody::Vec3> acc(n);
  for (auto _ : state) {
    acc.assign(n, {});
    nbody::kernels::accumulate(kind, pos, pos, mass, 1e-3, 0, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK_CAPTURE(BM_ForceKernel, scalar, nbody::kernels::ForceKernel::Scalar)
    ->Arg(256)->Arg(1000)->Arg(4000);
BENCHMARK_CAPTURE(BM_ForceKernel, tiled, nbody::kernels::ForceKernel::Tiled)
    ->Arg(256)->Arg(1000)->Arg(4000);
BENCHMARK_CAPTURE(BM_ForceKernel, tiled_mt,
                  nbody::kernels::ForceKernel::TiledMT)
    ->Arg(256)->Arg(1000)->Arg(4000);

template <typename SpeculatorT>
void BM_Speculator(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  spec::History history(3);
  for (long t = 0; t < 3; ++t) {
    std::vector<double> block(vars);
    for (std::size_t i = 0; i < vars; ++i)
      block[i] = static_cast<double>(i) + 0.1 * static_cast<double>(t);
    history.record(t, block);
  }
  const SpeculatorT speculator;
  for (auto _ : state) {
    auto out = speculator.predict(history, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vars));
}
BENCHMARK_TEMPLATE(BM_Speculator, spec::HoldLastSpeculator)->Arg(600);
BENCHMARK_TEMPLATE(BM_Speculator, spec::LinearSpeculator)->Arg(600);
BENCHMARK_TEMPLATE(BM_Speculator, spec::QuadraticSpeculator)->Arg(600);

void BM_KinematicSpeculator(benchmark::State& state) {
  const auto particles = static_cast<std::size_t>(state.range(0));
  spec::History history(1);
  std::vector<double> block(particles * nbody::kDoublesPerParticle, 1.0);
  history.record(0, block);
  const nbody::KinematicSpeculator speculator(0.03);
  for (auto _ : state) {
    auto out = speculator.predict(history, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(particles));
}
BENCHMARK(BM_KinematicSpeculator)->Arg(100);

void BM_SerializeDoubles(benchmark::State& state) {
  const std::vector<double> values(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    net::ByteWriter writer;
    writer.write_vector(values);
    auto bytes = std::move(writer).take();
    net::ByteReader reader(bytes);
    auto back = reader.read_vector<double>();
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)) * 8);
}
BENCHMARK(BM_SerializeDoubles)->Arg(400);

void BM_DesEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    des::Kernel kernel;
    const int events = static_cast<int>(state.range(0));
    for (int i = 0; i < events; ++i)
      kernel.schedule_at(des::SimTime::micros(i), [] {});
    const auto stats = kernel.run();
    benchmark::DoNotOptimize(stats.events_executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesEventThroughput)->Arg(10000);

// Steady-state event churn: each event schedules its successor, so the
// arena never grows past one slot and every iteration exercises the
// recycle path (the pattern message delivery produces).
void BM_KernelEvents(benchmark::State& state) {
  const auto chain = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    des::Kernel kernel;
    std::int64_t remaining = chain;
    std::function<void()> step;
    step = [&kernel, &remaining, &step] {
      if (--remaining > 0)
        kernel.schedule_at(kernel.now() + des::SimTime::micros(1), [&] { step(); });
    };
    kernel.schedule_at(des::SimTime::micros(1), [&] { step(); });
    const auto stats = kernel.run();
    benchmark::DoNotOptimize(stats.events_executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * chain);
}
BENCHMARK(BM_KernelEvents)->Arg(100000);

// End-to-end simulated message rate: two ranks ping-pong `round` messages
// through the full stack (serialise → channel → DES delivery → mailbox →
// deserialise).  This is the hot loop of every figure bench, so its
// items/sec is the headline "events per second" number for the PR.
void BM_SimSendRecv(benchmark::State& state) {
  const long rounds = state.range(0);
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(2, 1e9);
  config.channel.bandwidth_bytes_per_sec = 1.25e9;
  config.channel.per_message_overhead_bytes = 0;
  config.channel.propagation = des::SimTime::zero();
  config.send_sw_time = des::SimTime::zero();
  const std::vector<double> block(64, 1.0);
  for (auto _ : state) {
    const auto result =
        runtime::run_simulated(config, [&](runtime::Communicator& comm) {
          if (comm.rank() == 0) {
            for (long i = 0; i < rounds; ++i) {
              comm.send_doubles(1, 1, block);
              benchmark::DoNotOptimize(comm.recv_doubles(1, 2).data());
            }
          } else {
            for (long i = 0; i < rounds; ++i) {
              benchmark::DoNotOptimize(comm.recv_doubles(0, 1).data());
              comm.send_doubles(0, 2, block);
            }
          }
        });
    benchmark::DoNotOptimize(result.kernel_stats.events_executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2);
}
BENCHMARK(BM_SimSendRecv)->Arg(2000);

void BM_ProcessContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    des::Kernel kernel;
    kernel.spawn("hopper", [](des::Process& proc) {
      for (int i = 0; i < 1000; ++i) proc.advance(des::SimTime::micros(1));
    });
    kernel.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ProcessContextSwitch);

void BM_SharedMediumPost(benchmark::State& state) {
  net::ChannelConfig config;
  config.bandwidth_bytes_per_sec = 1.25e6;
  net::SharedMediumChannel channel(config);
  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.payload.resize(3000);
  double now = 0.0;
  for (auto _ : state) {
    now += 1e-6;
    benchmark::DoNotOptimize(channel.post(msg, des::SimTime::seconds(now)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SharedMediumPost);

/// True for the telemetry options ArtifactWriter owns; google-benchmark
/// aborts on options it does not recognise, so these are split out of argv
/// before Initialize().
bool is_obs_flag(std::string_view arg) {
  for (const std::string_view name :
       {"--metrics-out", "--trace-out", "--report-out", "--csv-out"}) {
    if (arg == name || (arg.size() > name.size() && arg.starts_with(name) &&
                        arg[name.size()] == '=')) {
      return true;
    }
  }
  return false;
}

}  // namespace

// Custom main (instead of benchmark_main) so the shared telemetry flags
// work here too: bench_micro --report-out=x.json emits the bench envelope
// while every other flag still reaches google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> obs_args{argv[0]};
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (is_obs_flag(argv[i])) {
      obs_args.push_back(argv[i]);
      // `--flag value` form: the value travels with the flag.
      const std::string_view arg(argv[i]);
      if (arg.find('=') == std::string_view::npos && i + 1 < argc)
        obs_args.push_back(argv[++i]);
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  const support::Cli cli(static_cast<int>(obs_args.size()), obs_args.data());
  obs::ArtifactWriter artifacts("bench_micro", cli);

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data()))
    return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  artifacts.add_entry("benchmarks_run", obs::Json(ran));
  return artifacts.flush() ? 0 : 1;
}

// Regenerates the paper's Table 3: effect of the error threshold θ on the
// fraction of incorrect speculations and on the true force error.
//
// Expected shape (paper): tightening θ monotonically raises the fraction of
// speculations rejected (recomputed) and lowers the maximum force error;
// the paper picks θ = 0.01 (2% recomputations, 2% max force error) as the
// sweet spot.  Absolute values depend on the timestep (error scales with
// a dt^2), so the θ ladder is reported at the testbed's dt together with
// the observed speculation-error distribution.
//
// The grid crosses the θ ladder with the integrator family
// (--integrator=leapfrog,rk4,rk45 — default all): higher-order integrators
// damp the per-step truncation error, so the same θ rejects fewer
// speculations, shifting the paper's sweet spot.
//
//   $ ./bench/bench_table3_threshold --report-out BENCH_table3_threshold.json
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "nbody/integrators/integrator.hpp"
#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream in(csv);
  std::string name;
  while (std::getline(in, name, ','))
    if (!name.empty()) names.push_back(name);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_table3_threshold", cli);
  const long iterations = cli.get_int("iterations", 10);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 16));
  const int jobs = runtime::jobs_from_cli(cli);
  const std::vector<std::string> integrators =
      split_names(cli.get("integrator", "leapfrog,rk4,rk45"));
  for (const auto& name : integrators) {
    std::string error;
    if (!nbody::integrators::make_integrator_cli(name, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  std::printf(
      "Table 3 — effect of error bound theta on recomputations and force "
      "error (%zu procs, FW = 2)\n\n", p);
  support::Table table({"integrator", "theta", "incorrect spec %",
                        "mean force err %", "max force err %",
                        "mean spec error", "max spec error"});
  const std::vector<double> thetas = {1e-1, 5e-2, 1e-2, 5e-3,
                                      1e-3, 5e-4, 1e-4};
  struct Cell {
    std::string integrator;
    double theta;
  };
  std::vector<Cell> cells;
  for (const auto& integrator : integrators)
    for (const double theta : thetas) cells.push_back({integrator, theta});

  const std::vector<NBodyRunResult> runs =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        NBodyScenario s = paper_testbed_scenario(p, iterations);
        s.body.integrator = cell.integrator;
        s.theta = cell.theta;
        s.measure_force_error = true;
        // FW = 2 mixes one- and two-step speculation depths, spreading the
        // error distribution the way the paper's loaded testbed did.
        s.forward_window = 2;
        return run_scenario(s);
      });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const NBodyRunResult& run = runs[i];
    table.row()
        .add(cells[i].integrator)
        .add(cells[i].theta, 4)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(run.force_error.mean() * 100.0, 3)
        .add(run.force_error.max() * 100.0, 3)
        .add(run.spec.error.mean(), 6)
        .add(run.spec.error.max(), 6);
  }
  std::cout << table;
  std::printf(
      "\npaper ladder: theta 0.1 -> <1%% incorrect / 20%% force err ... "
      "theta 0.001 -> 20%% incorrect / 0.2%% force err\n");
  artifacts.add_table("table3", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  artifacts.add_entry("forward_window", obs::Json(2));
  artifacts.add_entry("integrators", [&] {
    obs::Json names = obs::Json::array();
    for (const auto& name : integrators) names.push_back(name);
    return names;
  }());
  return artifacts.flush() ? 0 : 1;
}

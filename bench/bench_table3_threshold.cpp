// Regenerates the paper's Table 3: effect of the error threshold θ on the
// fraction of incorrect speculations and on the true force error.
//
// Expected shape (paper): tightening θ monotonically raises the fraction of
// speculations rejected (recomputed) and lowers the maximum force error;
// the paper picks θ = 0.01 (2% recomputations, 2% max force error) as the
// sweet spot.  Absolute values depend on the timestep (error scales with
// a dt^2), so the θ ladder is reported at the testbed's dt together with
// the observed speculation-error distribution.
#include <cstdio>
#include <iostream>
#include <vector>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_table3_threshold", cli);
  const long iterations = cli.get_int("iterations", 10);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 16));
  const int jobs = runtime::jobs_from_cli(cli);

  std::printf(
      "Table 3 — effect of error bound theta on recomputations and force "
      "error (%zu procs, FW = 2)\n\n", p);
  support::Table table({"theta", "incorrect spec %", "mean force err %",
                        "max force err %", "mean spec error", "max spec error"});
  const std::vector<double> thetas = {1e-1, 5e-2, 1e-2, 5e-3,
                                      1e-3, 5e-4, 1e-4};
  const std::vector<NBodyRunResult> runs =
      runtime::sweep_map(thetas, jobs, [&](const double theta) {
        NBodyScenario s = paper_testbed_scenario(p, iterations);
        s.theta = theta;
        s.measure_force_error = true;
        // FW = 2 mixes one- and two-step speculation depths, spreading the
        // error distribution the way the paper's loaded testbed did.
        s.forward_window = 2;
        return run_scenario(s);
      });
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const NBodyRunResult& run = runs[i];
    table.row()
        .add(thetas[i], 4)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(run.force_error.mean() * 100.0, 3)
        .add(run.force_error.max() * 100.0, 3)
        .add(run.spec.error.mean(), 6)
        .add(run.spec.error.max(), 6);
  }
  std::cout << table;
  std::printf(
      "\npaper ladder: theta 0.1 -> <1%% incorrect / 20%% force err ... "
      "theta 0.001 -> 20%% incorrect / 0.2%% force err\n");
  artifacts.add_table("table3", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  artifacts.add_entry("forward_window", obs::Json(2));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Regenerates the paper's Figure 9: the Section-4 performance model,
// parameterised from the N-body implementation, compared against the
// measured speedups.
//
// Calibration follows the paper: per-variable operation counts from the
// implementation (70 ops/pair force, 12 ops speculation, 24 ops check), the
// measured recomputation fraction k, and a linear fit of the measured
// per-iteration communication times.  Expected shape (paper): model within
// ~10% of measurement below 8 processors, within ~25% up to 16.
#include <cstdio>
#include <iostream>
#include <vector>

#include "model/calibrate.hpp"
#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig9_model_vs_measured", cli);
  const long iterations = cli.get_int("iterations", 10);
  const int jobs = runtime::jobs_from_cli(cli);

  const std::size_t p_values[] = {2, 4, 6, 8, 10, 12, 14, 16};

  // ---- Measure ----
  // Sweep grid: serial reference, then a speculative and a Fig. 7 baseline
  // run per p — all independent, run with up to --jobs in flight.
  struct Cell {
    std::size_t p;
    bool baseline;
  };
  std::vector<Cell> cells;
  cells.push_back({1, false});
  for (const std::size_t p : p_values) {
    cells.push_back({p, false});
    cells.push_back({p, true});
  }
  const std::vector<NBodyRunResult> runs =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        NBodyScenario s = paper_testbed_scenario(cell.p, iterations);
        if (cell.baseline) {
          s.algorithm = Algorithm::Fig7Baseline;
          s.forward_window = 0;
        }
        return run_scenario(s);
      });

  const double t_serial = runs[0].sim.makespan_seconds;
  struct Measured {
    std::size_t p;
    double speedup_spec;
    double speedup_nospec;
    double t_comm;
    double k;
  };
  std::vector<Measured> measured;
  std::size_t next_run = 1;
  for (const std::size_t p : p_values) {
    const NBodyRunResult& spec_run = runs[next_run++];
    const NBodyRunResult& base_run = runs[next_run++];
    measured.push_back({p, t_serial / spec_run.sim.makespan_seconds,
                        t_serial / base_run.sim.makespan_seconds,
                        base_run.mean_comm_per_iteration,
                        spec_run.spec.failure_fraction()});
  }

  // ---- Calibrate the model from those measurements ----
  model::CalibrationInputs inputs;
  inputs.total_variables = 1000;
  inputs.f_comp = 70.0 * 999.0 + 12.0;  // per-variable force sum + update
  inputs.f_spec = 12.0;
  inputs.f_check = 24.0;
  double k_mean = 0.0;
  for (const auto& m : measured) k_mean += m.k;
  inputs.k = k_mean / static_cast<double>(measured.size());
  inputs.cluster = runtime::Cluster::paper_fleet();
  std::vector<model::MeasuredCommPoint> comm_points;
  for (const auto& m : measured) comm_points.push_back({m.p, m.t_comm});
  const model::PerfModel perf(model::calibrate(inputs, comm_points));

  // ---- Compare ----
  std::printf("Figure 9 — model predictions vs measured speedups\n\n");
  support::Table table({"p", "measured (no spec)", "model (no spec)",
                        "measured (spec)", "model (spec)", "model err % (spec)"});
  double worst_small = 0.0;
  double worst_large = 0.0;
  for (const auto& m : measured) {
    const double model_nospec = perf.speedup_no_spec(m.p);
    const double model_spec = perf.speedup_spec(m.p);
    const double err = std::fabs(model_spec - m.speedup_spec) / m.speedup_spec;
    (m.p <= 8 ? worst_small : worst_large) =
        std::max(m.p <= 8 ? worst_small : worst_large, err);
    table.row()
        .add(m.p)
        .add(m.speedup_nospec, 2)
        .add(model_nospec, 2)
        .add(m.speedup_spec, 2)
        .add(model_spec, 2)
        .add(err * 100.0, 1);
  }
  std::cout << table;
  std::printf(
      "\nmodel error (speculative curve): worst %.0f%% for p <= 8, worst "
      "%.0f%% for p > 8  (paper: within 10%% / 25%%)\n",
      worst_small * 100.0, worst_large * 100.0);
  std::printf("calibrated: k = %.2f%%, t_comm(p) = %.3f + %.3f p seconds\n",
              inputs.k * 100.0, perf.params().t_comm_base,
              perf.params().t_comm_slope);
  artifacts.add_table("fig9", table);
  artifacts.add_entry("calibrated_k", obs::Json(inputs.k));
  artifacts.add_entry("t_comm_base", obs::Json(perf.params().t_comm_base));
  artifacts.add_entry("t_comm_slope", obs::Json(perf.params().t_comm_slope));
  artifacts.add_entry("worst_model_error_small_p", obs::Json(worst_small));
  artifacts.add_entry("worst_model_error_large_p", obs::Json(worst_large));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Force-kernel throughput snapshot: scalar vs tiled vs tiled-mt.
//
//   $ ./bench/bench_kernel --reps 5 --report-out BENCH_kernel.json
//
// For each N the full N x N accumulation (skip_offset = 0, the
// all_accelerations shape) runs `reps` times per kernel; the best wall time
// per kernel yields Mpairs/s and speedup over the scalar reference.  Every
// tiled result is also checked against the scalar oracle; a max-abs
// deviation above 1e-10 fails the run (exit 1), which is what the CI perf
// smoke step relies on.  Wall-clock only — virtual-time accounting in the
// simulated runs is analytic and does not move with kernel speed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "nbody/init.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/types.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using nbody::kernels::ForceKernel;

struct KernelSample {
  double best_seconds = 0.0;
  double max_abs_dev = 0.0;  // vs the scalar result for the same input
};

double max_abs_deviation(const std::vector<Vec3>& a,
                         const std::vector<Vec3>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i].x - b[i].x));
    worst = std::max(worst, std::fabs(a[i].y - b[i].y));
    worst = std::max(worst, std::fabs(a[i].z - b[i].z));
  }
  return worst;
}

KernelSample run_kernel(ForceKernel kind, std::span<const Vec3> pos,
                        std::span<const double> mass, double softening2,
                        long reps, const std::vector<Vec3>& oracle) {
  KernelSample sample;
  sample.best_seconds = 1e300;
  std::vector<Vec3> acc(pos.size());
  for (long r = 0; r < reps; ++r) {
    acc.assign(pos.size(), Vec3{});
    const auto start = std::chrono::steady_clock::now();
    nbody::kernels::accumulate(kind, pos, pos, mass, softening2, 0, acc);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    sample.best_seconds = std::min(sample.best_seconds, seconds);
  }
  if (!oracle.empty()) sample.max_abs_dev = max_abs_deviation(acc, oracle);
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_kernel", cli);
  const long reps = cli.get_int("reps", 5);
  const double softening2 = cli.get_double("softening2", 1e-3);
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const std::size_t sizes[] = {256, 1000, 4000};
  const ForceKernel kernels[] = {ForceKernel::Scalar, ForceKernel::Tiled,
                                 ForceKernel::TiledMT};

  support::Table table({"kernel", "n", "best_ms", "mpairs_per_s", "speedup",
                        "max_abs_dev"});
  bool deviation_ok = true;

  std::printf("force-kernel throughput (reps=%ld, pool workers=%u)\n", reps,
              support::ThreadPool::shared().worker_count());
  for (const std::size_t n : sizes) {
    const auto particles = nbody::init_plummer(n, 1);
    std::vector<Vec3> pos(n);
    std::vector<double> mass(n);
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = particles[i].pos;
      mass[i] = particles[i].mass;
    }

    // Scalar first: its output is the oracle for this input.
    std::vector<Vec3> oracle(n);
    nbody::kernels::accumulate(ForceKernel::Scalar, pos, pos, mass, softening2,
                               0, oracle);

    double scalar_seconds = 0.0;
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
    for (const ForceKernel kind : kernels) {
      const KernelSample sample =
          run_kernel(kind, pos, mass, softening2, reps, oracle);
      if (kind == ForceKernel::Scalar) scalar_seconds = sample.best_seconds;
      const double speedup = scalar_seconds / sample.best_seconds;
      const double mpairs = pairs / sample.best_seconds / 1e6;
      const std::string name(nbody::kernels::force_kernel_name(kind));
      table.row()
          .add(name)
          .add(n)
          .add(sample.best_seconds * 1e3)
          .add(mpairs, 1)
          .add(speedup, 2)
          .add(sample.max_abs_dev, 12);
      std::printf("  %-9s n=%-5zu %9.3f ms  %9.1f Mpairs/s  %5.2fx  dev %.2e\n",
                  name.c_str(), n, sample.best_seconds * 1e3, mpairs, speedup,
                  sample.max_abs_dev);
      artifacts.add_entry("speedup_" + name + "_n" + std::to_string(n),
                          obs::Json(speedup));
      artifacts.add_entry("max_abs_dev_" + name + "_n" + std::to_string(n),
                          obs::Json(sample.max_abs_dev));
      if (sample.max_abs_dev > 1e-10) {
        deviation_ok = false;
        std::fprintf(stderr,
                     "error: %s kernel deviates %.3e from scalar at n=%zu "
                     "(budget 1e-10)\n",
                     name.c_str(), sample.max_abs_dev, n);
      }
    }
  }

  artifacts.add_table("kernel_throughput", table);
  artifacts.add_entry("reps", obs::Json(static_cast<std::size_t>(reps)));
  artifacts.add_entry("pool_workers",
                      obs::Json(static_cast<std::size_t>(
                          support::ThreadPool::shared().worker_count())));
  if (!artifacts.flush()) return 1;
  return deviation_ok ? 0 : 1;
}

// Force-kernel throughput snapshot: scalar vs tiled vs tiled-mt vs the
// explicit simd tiers, plus a kernel x integrator sweep.
//
//   $ ./bench/bench_kernel --reps 5 --report-out BENCH_kernel.json
//   $ ./bench/bench_kernel --quick --report-out BENCH_kernel.ci.json
//
// For each N the full N x N accumulation (skip_offset = 0, the
// all_accelerations shape) runs `reps` times per kernel; the best wall time
// per kernel yields Mpairs/s and speedup over the scalar reference.  Every
// non-scalar result is also checked against the scalar oracle; a max-abs
// deviation above the kernel's budget (1e-10 for the autovectorised tiers,
// 1e-12 for the explicit simd tiers — their pinned contract, DESIGN.md §11)
// fails the run (exit 1), which is what the CI perf smoke step relies on.
// simd tiers the host cannot execute are skipped, never silently remapped.
//
// The integrator sweep runs a one-rank NBodyApp (the real engine step path)
// for each kernel x integrator pair and reports wall time per step plus the
// force evaluations each integrator bills — the cost model behind
// compute_ops.  --quick trims sizes and reps for CI smoke use.
// Wall-clock only — virtual-time accounting in the simulated runs is
// analytic and does not move with kernel speed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "nbody/app.hpp"
#include "nbody/init.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/kernels/simd.hpp"
#include "nbody/types.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using nbody::kernels::ForceKernel;

struct KernelSample {
  double best_seconds = 0.0;
  double max_abs_dev = 0.0;  // vs the scalar result for the same input
};

double max_abs_deviation(const std::vector<Vec3>& a,
                         const std::vector<Vec3>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i].x - b[i].x));
    worst = std::max(worst, std::fabs(a[i].y - b[i].y));
    worst = std::max(worst, std::fabs(a[i].z - b[i].z));
  }
  return worst;
}

KernelSample run_kernel(ForceKernel kind, std::span<const Vec3> pos,
                        std::span<const double> mass, double softening2,
                        long reps, const std::vector<Vec3>& oracle) {
  KernelSample sample;
  sample.best_seconds = 1e300;
  std::vector<Vec3> acc(pos.size());
  for (long r = 0; r < reps; ++r) {
    acc.assign(pos.size(), Vec3{});
    const auto start = std::chrono::steady_clock::now();
    nbody::kernels::accumulate(kind, pos, pos, mass, softening2, 0, acc);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    sample.best_seconds = std::min(sample.best_seconds, seconds);
  }
  if (!oracle.empty()) sample.max_abs_dev = max_abs_deviation(acc, oracle);
  return sample;
}

/// The explicit simd tiers have a tighter pinned budget than the
/// autovectorised ones (DESIGN.md §11).
double deviation_budget(ForceKernel kind) {
  return (kind == ForceKernel::SimdAvx2 || kind == ForceKernel::SimdAvx512)
             ? 1e-12
             : 1e-10;
}

/// A forced kernel is measurable only when resolution keeps it (simd tiers
/// on unsupported hosts resolve to a fallback — skip those rows).
bool kernel_runs_as_itself(ForceKernel kind, std::size_t n) {
  return nbody::kernels::resolve_force_kernel(kind, n, n) == kind;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_kernel", cli);
  const bool quick = cli.get_bool("quick");
  const long reps = quick ? 2 : cli.get_int("reps", 5);
  const double softening2 = cli.get_double("softening2", 1e-3);
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  std::vector<std::size_t> sizes = {256, 1000, 4096};
  if (quick) sizes = {256, 1000};
  const ForceKernel kernels[] = {ForceKernel::Scalar, ForceKernel::Tiled,
                                 ForceKernel::TiledMT, ForceKernel::SimdAvx2,
                                 ForceKernel::SimdAvx512};

  support::Table table({"kernel", "n", "best_ms", "mpairs_per_s", "speedup",
                        "max_abs_dev"});
  bool deviation_ok = true;

  std::printf(
      "force-kernel throughput (reps=%ld, pool workers=%u, cpu simd: %s)\n",
      reps, support::ThreadPool::shared().worker_count(),
      std::string(nbody::kernels::simd_tier_name(
                      nbody::kernels::widest_simd_tier()))
          .c_str());
  for (const std::size_t n : sizes) {
    const auto particles = nbody::init_plummer(n, 1);
    std::vector<Vec3> pos(n);
    std::vector<double> mass(n);
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = particles[i].pos;
      mass[i] = particles[i].mass;
    }

    // Scalar first: its output is the oracle for this input.
    std::vector<Vec3> oracle(n);
    nbody::kernels::accumulate(ForceKernel::Scalar, pos, pos, mass, softening2,
                               0, oracle);

    double scalar_seconds = 0.0;
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
    for (const ForceKernel kind : kernels) {
      if (!kernel_runs_as_itself(kind, n)) {
        std::printf("  %-11s n=%-5zu (skipped: tier not usable on this host)\n",
                    std::string(nbody::kernels::force_kernel_name(kind)).c_str(),
                    n);
        continue;
      }
      const KernelSample sample =
          run_kernel(kind, pos, mass, softening2, reps, oracle);
      if (kind == ForceKernel::Scalar) scalar_seconds = sample.best_seconds;
      const double speedup = scalar_seconds / sample.best_seconds;
      const double mpairs = pairs / sample.best_seconds / 1e6;
      const std::string name(nbody::kernels::force_kernel_name(kind));
      table.row()
          .add(name)
          .add(n)
          .add(sample.best_seconds * 1e3)
          .add(mpairs, 1)
          .add(speedup, 2)
          .add(sample.max_abs_dev, 12);
      std::printf(
          "  %-11s n=%-5zu %9.3f ms  %9.1f Mpairs/s  %5.2fx  dev %.2e\n",
          name.c_str(), n, sample.best_seconds * 1e3, mpairs, speedup,
          sample.max_abs_dev);
      artifacts.add_entry("speedup_" + name + "_n" + std::to_string(n),
                          obs::Json(speedup));
      artifacts.add_entry("max_abs_dev_" + name + "_n" + std::to_string(n),
                          obs::Json(sample.max_abs_dev));
      if (sample.max_abs_dev > deviation_budget(kind)) {
        deviation_ok = false;
        std::fprintf(stderr,
                     "error: %s kernel deviates %.3e from scalar at n=%zu "
                     "(budget %.0e)\n",
                     name.c_str(), sample.max_abs_dev, n,
                     deviation_budget(kind));
      }
    }
  }

  // Kernel x integrator sweep over the real engine step path (one-rank
  // NBodyApp): wall time per step and the force evaluations each integrator
  // bills into compute_ops.
  const std::size_t sweep_n = quick ? 512 : 1000;
  const long sweep_steps = quick ? 3 : 8;
  const char* integrators[] = {"leapfrog", "rk4", "rk45"};
  support::Table sweep({"kernel", "integrator", "ms_per_step",
                        "force_evals_per_step"});
  std::printf("\nkernel x integrator (n=%zu, %ld steps each)\n", sweep_n,
              sweep_steps);
  const auto sweep_particles = nbody::init_plummer(sweep_n, 1);
  const nbody::Partition whole =
      nbody::Partition::from_counts({sweep_n});
  for (const ForceKernel kind :
       {ForceKernel::Tiled, ForceKernel::TiledMT, ForceKernel::SimdAvx2,
        ForceKernel::SimdAvx512}) {
    if (!kernel_runs_as_itself(kind, sweep_n)) continue;
    const std::string kname(nbody::kernels::force_kernel_name(kind));
    nbody::kernels::set_default_force_kernel(kind);
    for (const char* integ : integrators) {
      nbody::NBodyConfig config;
      config.n = sweep_n;
      config.integrator = integ;
      nbody::NBodyApp app(config, whole, sweep_particles, 0);
      double evals = 0.0;
      const auto start = std::chrono::steady_clock::now();
      for (long step = 0; step < sweep_steps; ++step) {
        app.compute_step();
        evals += static_cast<double>(app.force_evals_last_step());
      }
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const double ms_per_step =
          seconds * 1e3 / static_cast<double>(sweep_steps);
      const double evals_per_step = evals / static_cast<double>(sweep_steps);
      sweep.row().add(kname).add(integ).add(ms_per_step).add(evals_per_step,
                                                             1);
      std::printf("  %-11s %-9s %9.3f ms/step  %5.1f force evals/step\n",
                  kname.c_str(), integ, ms_per_step, evals_per_step);
      artifacts.add_entry("ms_per_step_" + kname + "_" + integ,
                          obs::Json(ms_per_step));
      artifacts.add_entry("force_evals_per_step_" + std::string(integ),
                          obs::Json(evals_per_step));
    }
  }
  nbody::kernels::set_default_force_kernel(ForceKernel::Auto);

  artifacts.add_table("kernel_throughput", table);
  artifacts.add_table("kernel_integrator_sweep", sweep);
  artifacts.add_entry("reps", obs::Json(static_cast<std::size_t>(reps)));
  artifacts.add_entry("quick", obs::Json(quick));
  artifacts.add_entry("cpu_simd_tier",
                      obs::Json(std::string(nbody::kernels::simd_tier_name(
                          nbody::kernels::widest_simd_tier()))));
  artifacts.add_entry("pool_workers",
                      obs::Json(static_cast<std::size_t>(
                          support::ThreadPool::shared().worker_count())));
  if (!artifacts.flush()) return 1;
  return deviation_ok ? 0 : 1;
}

// Regenerates the paper's Figure 5: performance-model speedup versus number
// of processors, with and without speculation (k = 2%), against the maximum
// attainable speedup of the heterogeneous fleet.
//
// Expected shape (paper): speculation has little impact below ~5 processors,
// the no-speculation curve peaks around 10 processors and then declines,
// and speculation is ~25% ahead at p = 16.
#include <cstdio>
#include <iostream>
#include <vector>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig5_model", cli);
  const double k = cli.get_double("k", 0.02);
  const int jobs = runtime::jobs_from_cli(cli);

  const model::PerfModel perf(model::paper_figure5_params(k));

  std::printf("Figure 5 — model speedup vs processors (k = %.0f%%)\n\n",
              k * 100.0);
  support::Table table(
      {"p", "speedup (no spec)", "speedup (spec)", "max speedup", "gain %"});
  // Model evaluations are microseconds each; the sweep runner is used for
  // interface uniformity (--jobs behaves identically across all benches).
  struct Row {
    double no_spec, spec, max, gain;
  };
  const std::vector<Row> rows =
      runtime::sweep_indexed(16, jobs, [&](std::size_t i) {
        const std::size_t p = i + 1;
        return Row{perf.speedup_no_spec(p), perf.speedup_spec(p),
                   perf.max_speedup(p), perf.improvement(p) * 100.0};
      });
  for (std::size_t p = 1; p <= 16; ++p) {
    const Row& r = rows[p - 1];
    table.row().add(p).add(r.no_spec, 2).add(r.spec, 2).add(r.max, 2).add(
        r.gain, 1);
  }
  std::cout << table;

  std::size_t peak = 1;
  for (std::size_t p = 1; p <= 16; ++p)
    if (perf.speedup_no_spec(p) > perf.speedup_no_spec(peak)) peak = p;
  std::printf(
      "\nno-speculation speedup peaks at p = %zu and declines beyond "
      "(paper: ~10); speculation gain at p = 16: %.1f%% (paper: ~25%%)\n",
      peak, perf.improvement(16) * 100.0);
  artifacts.add_table("fig5", table);
  artifacts.add_entry("k", obs::Json(k));
  artifacts.add_entry("no_spec_peak_p", obs::Json(peak));
  artifacts.add_entry("gain_at_16_percent", obs::Json(perf.improvement(16) * 100.0));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

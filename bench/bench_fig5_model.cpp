// Regenerates the paper's Figure 5: performance-model speedup versus number
// of processors, with and without speculation (k = 2%), against the maximum
// attainable speedup of the heterogeneous fleet.
//
// Expected shape (paper): speculation has little impact below ~5 processors,
// the no-speculation curve peaks around 10 processors and then declines,
// and speculation is ~25% ahead at p = 16.
#include <cstdio>
#include <iostream>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig5_model", cli);
  const double k = cli.get_double("k", 0.02);

  const model::PerfModel perf(model::paper_figure5_params(k));

  std::printf("Figure 5 — model speedup vs processors (k = %.0f%%)\n\n",
              k * 100.0);
  support::Table table(
      {"p", "speedup (no spec)", "speedup (spec)", "max speedup", "gain %"});
  for (std::size_t p = 1; p <= 16; ++p) {
    table.row()
        .add(p)
        .add(perf.speedup_no_spec(p), 2)
        .add(perf.speedup_spec(p), 2)
        .add(perf.max_speedup(p), 2)
        .add(perf.improvement(p) * 100.0, 1);
  }
  std::cout << table;

  std::size_t peak = 1;
  for (std::size_t p = 1; p <= 16; ++p)
    if (perf.speedup_no_spec(p) > perf.speedup_no_spec(peak)) peak = p;
  std::printf(
      "\nno-speculation speedup peaks at p = %zu and declines beyond "
      "(paper: ~10); speculation gain at p = 16: %.1f%% (paper: ~25%%)\n",
      peak, perf.improvement(16) * 100.0);
  artifacts.add_table("fig5", table);
  artifacts.add_entry("k", obs::Json(k));
  artifacts.add_entry("no_spec_peak_p", obs::Json(peak));
  artifacts.add_entry("gain_at_16_percent", obs::Json(perf.improvement(16) * 100.0));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Regenerates the paper's Figure 8: measured N-body speedup versus number of
// processors for forward windows 0, 1 and 2 (θ = 0.01, N = 1000 particles)
// on the calibrated simulated testbed, plus the paper's headline claims:
// up to 34% gain over no speculation at 16 processors and a speculative
// speedup within 20% of the maximum attainable.
//
// FW = 0 is the paper's own baseline (its Figure 7 algorithm).
//
// The 28 simulations (serial reference + 9 p-values × 3 forward windows)
// are independent, so they run through runtime::sweep_map with up to
// --jobs=N in flight; results are collected in index order and the output
// is byte-identical at any job count.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig8_nbody_speedup", cli);
  const long iterations = cli.get_int("iterations", 10);
  const int jobs = runtime::jobs_from_cli(cli);

  const std::size_t p_values[] = {1, 2, 4, 6, 8, 10, 12, 14, 16};

  // Sweep grid: the serial reference on P1 (the fastest machine, as the
  // paper defines speedup) followed by every (p, FW) cell.
  struct Cell {
    std::size_t p;
    int fw;  // -1 = serial reference
  };
  std::vector<Cell> cells;
  cells.push_back({1, -1});
  for (const std::size_t p : p_values)
    for (const int fw : {0, 1, 2}) cells.push_back({p, fw});

  const std::vector<NBodyRunResult> runs =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        NBodyScenario s = paper_testbed_scenario(cell.p, iterations);
        if (cell.fw >= 0) {
          s.algorithm =
              cell.fw == 0 ? Algorithm::Fig7Baseline : Algorithm::Speculative;
          s.forward_window = cell.fw;
        }
        return run_scenario(s);
      });
  const double t_serial = runs[0].sim.makespan_seconds;

  std::printf(
      "Figure 8 — measured N-body speedup vs processors (N = 1000, "
      "theta = 0.01, %ld iterations)\n\n", iterations);
  support::Table table({"p", "FW=0 (no spec)", "FW=1", "FW=2", "max speedup",
                        "k% (FW=1)"});
  std::map<std::size_t, std::map<int, double>> speedups;
  std::size_t next_run = 1;
  for (const std::size_t p : p_values) {
    table.row().add(p);
    double k_fw1 = 0.0;
    for (const int fw : {0, 1, 2}) {
      const NBodyRunResult& run = runs[next_run++];
      const double speedup = t_serial / run.sim.makespan_seconds;
      speedups[p][fw] = speedup;
      table.add(speedup, 2);
      if (fw == 1) k_fw1 = run.spec.failure_fraction() * 100.0;
    }
    table.add(runtime::Cluster::paper_fleet().prefix(p).max_speedup(), 2);
    table.add(k_fw1, 2);
  }
  std::cout << table;

  const double gain1 = speedups[16][1] / speedups[16][0] - 1.0;
  const double gain2 = speedups[16][2] / speedups[16][0] - 1.0;
  const double max16 = runtime::Cluster::paper_fleet().max_speedup();
  std::printf(
      "\nheadline: gain over no speculation at p = 16: FW=1 %.0f%%, FW=2 "
      "%.0f%%  (paper: up to 34%%)\n",
      gain1 * 100.0, gain2 * 100.0);
  std::printf(
      "best speculative speedup at p = 16 is within %.0f%% of the maximum "
      "%.2f  (paper: within 20%%)\n",
      (1.0 - std::max(speedups[16][1], speedups[16][2]) / max16) * 100.0,
      max16);
  artifacts.add_table("fig8", table);
  artifacts.add_entry("iterations", obs::Json(iterations));
  artifacts.add_entry("gain_fw1_percent", obs::Json(gain1 * 100.0));
  artifacts.add_entry("gain_fw2_percent", obs::Json(gain2 * 100.0));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Delay-propagation sweep: how far and how fast a single injected delay
// travels through the speculative pipeline, at varying (FW, θ, p).
//
// Each cell runs the Section-5 N-body workload with a one-off stall
// (FaultPlan `stall:1@5+4`: rank 1 freezes for 4 virtual seconds at t=5 s)
// and a trace recording on.  The trace is exported through the JSONL sink
// and fed to the spectrace analyzer in-process, so the benchmark measures
// exactly what the offline tool would report:
//
//   * propagation depth — message hops the delay front reaches,
//   * lanes reached and front speed (lanes per virtual second),
//   * decay per hop — ratio of excess wait deposited at hop h+1 vs hop h
//     (< 1: speculation absorbs the delay; ≥ 1: it compounds),
//   * makespan slowdown vs the stall-free run of the same cell — the
//     end-to-end cost after speculation has absorbed what it can.
//
// The paper's premise (overlapping communication delays with speculated
// work) predicts that larger FW soaks up more of the front: depth and
// slowdown should fall as FW rises.
//
// Flags:
//   --jobs=N         parallel sweep lanes (default 8; results identical)
//   --iterations=N   N-body iterations per cell (default 10)
//   --integrator=CSV integrator axis (default leapfrog,rk4,rk45): damping of
//                    the front depends on speculation accuracy, which the
//                    integrator's truncation error feeds
//   --out=FILE       report path (default BENCH_delay_prop.json)
//
// Exit codes: 0 ok, 1 a cell's trace failed spectrace's self-check,
// 2 could not write the report.
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "nbody/integrators/integrator.hpp"
#include "nbody/scenario.hpp"
#include "obs/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "runtime/fault.hpp"
#include "runtime/sweep.hpp"
#include "spectrace_core.hpp"
#include "support/cli.hpp"

namespace {

using namespace specomp;
using namespace specomp::nbody;

constexpr int kStallRank = 1;
constexpr double kStallAtSeconds = 5.0;
constexpr double kStallSeconds = 4.0;

struct Cell {
  std::size_t p;
  int fw;
  double theta;
  std::string integrator;
};

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream in(csv);
  std::string name;
  while (std::getline(in, name, ','))
    if (!name.empty()) names.push_back(name);
  return names;
}

struct CellResult {
  double makespan = 0.0;
  double baseline_makespan = 0.0;  // same cell, no stall
  bool self_check_ok = false;
  spectrace::PropagationReport prop;
};

NBodyScenario make_scenario(const Cell& cell, long iterations, bool stall) {
  NBodyScenario s = paper_testbed_scenario(cell.p, iterations);
  s.forward_window = cell.fw;
  s.theta = cell.theta;
  s.body.integrator = cell.integrator;
  if (stall) {
    runtime::FaultPlanConfig config;
    std::string error;
    const std::string spec = "stall:" + std::to_string(kStallRank) + "@" +
                             std::to_string(kStallAtSeconds) + "+" +
                             std::to_string(kStallSeconds);
    if (!runtime::parse_fault_plan(spec, config, error)) {
      std::fprintf(stderr, "internal: %s\n", error.c_str());
      std::abort();
    }
    s.sim.fault =
        std::make_shared<const runtime::FaultPlan>(std::move(config));
    s.graceful_degradation = true;
    s.sim.record_trace = true;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const int jobs = runtime::jobs_from_cli(cli);
  const long iterations = cli.get_int("iterations", 10);
  const std::string out = cli.get("out", "BENCH_delay_prop.json");
  const std::vector<std::string> integrators =
      split_names(cli.get("integrator", "leapfrog,rk4,rk45"));
  for (const auto& name : integrators) {
    std::string error;
    if (!nbody::integrators::make_integrator_cli(name, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  // The (FW, θ) plane is swept at every p for the default integrator; the
  // integrator axis rides at the largest p, where the front has the most
  // lanes to reach, to keep the grid compact.
  std::vector<Cell> cells;
  for (const std::size_t p : {4, 8, 16})
    for (const int fw : {1, 2})
      for (const double theta : {0.01, 0.1})
        cells.push_back({p, fw, theta, integrators.front()});
  for (std::size_t i = 1; i < integrators.size(); ++i)
    for (const int fw : {1, 2})
      for (const double theta : {0.01, 0.1})
        cells.push_back({16, fw, theta, integrators[i]});

  std::printf("delay-propagation sweep: %zu cells, %ld iterations, jobs=%d\n"
              "  injected fault: rank %d stalls %.0f s at t=%.0f s\n",
              cells.size(), iterations, jobs, kStallRank, kStallSeconds,
              kStallAtSeconds);

  const std::vector<CellResult> results =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        CellResult r;
        r.baseline_makespan =
            run_scenario(make_scenario(cell, iterations, false))
                .sim.makespan_seconds;
        const NBodyRunResult run =
            run_scenario(make_scenario(cell, iterations, true));
        r.makespan = run.sim.makespan_seconds;
        // Round-trip through the JSONL schema: measure what the offline
        // analyzer would see, not a private in-memory shortcut.
        std::stringstream jsonl;
        obs::write_trace_jsonl(run.sim.trace, jsonl, cell.p);
        const spectrace::ParsedTrace trace = spectrace::parse_jsonl(jsonl);
        r.self_check_ok = spectrace::self_check(trace).ok;
        r.prop = spectrace::delay_propagation(trace);
        return r;
      });

  obs::Json cells_json = obs::Json::array();
  bool all_ok = true;
  std::printf("\n   p  fw  theta  integrator  reached  depth  front_l/s  "
              "decay/hop  slowdown\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    all_ok = all_ok && r.self_check_ok && r.prop.has_anchor;
    const double slowdown = r.makespan / r.baseline_makespan;
    std::printf("  %2zu  %2d  %5.2f  %10s  %7zu  %5zu  %9.3f  %9.3f  "
                "%8.3f%s\n",
                cell.p, cell.fw, cell.theta, cell.integrator.c_str(),
                r.prop.infections.size(), r.prop.depth,
                r.prop.front_speed_lanes_per_s, r.prop.decay_per_hop,
                slowdown, r.self_check_ok ? "" : "  SELF-CHECK FAILED");

    obs::Json c = obs::Json::object();
    c.set("p", cell.p);
    c.set("forward_window", cell.fw);
    c.set("theta", cell.theta);
    c.set("integrator", cell.integrator);
    c.set("makespan_seconds", r.makespan);
    c.set("baseline_makespan_seconds", r.baseline_makespan);
    c.set("slowdown", slowdown);
    c.set("self_check_ok", r.self_check_ok);
    c.set("propagation", spectrace::propagation_report_json(r.prop));
    cells_json.push_back(std::move(c));
  }

  obs::Json report = obs::Json::object();
  report.set("schema", "specomp.bench_delay_prop.v1");
  report.set("schema_version", 1);
  report.set("grid", [&] {
    obs::Json g = obs::Json::object();
    g.set("iterations", iterations);
    g.set("stall_rank", kStallRank);
    g.set("stall_at_seconds", kStallAtSeconds);
    g.set("stall_seconds", kStallSeconds);
    obs::Json names = obs::Json::array();
    for (const auto& name : integrators) names.push_back(name);
    g.set("integrators", std::move(names));
    return g;
  }());
  report.set("cells", std::move(cells_json));
  report.set(
      "notes",
      "One-off FaultPlan stall injected into the Section-5 N-body workload; "
      "each cell's trace is round-tripped through the JSONL schema and "
      "analyzed by the spectrace library (delay_propagation): depth = max "
      "message hops the delay front reached, decay_per_hop = mean ratio of "
      "excess wait between successive hops (< 1 means speculation damps the "
      "front), slowdown = makespan vs the stall-free run of the same cell. "
      "Deterministic: same flags reproduce every number at any --jobs.");

  if (!obs::atomic_write_file(out, report.dump(2) + "\n")) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!all_ok) {
    std::fprintf(stderr,
                 "error: a cell failed spectrace self-check or lost its "
                 "stall anchor\n");
    return 1;
  }
  return 0;
}

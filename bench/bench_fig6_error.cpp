// Regenerates the paper's Figure 6: model speedup on an 8-processor system
// versus the percentage of recomputations k.
//
// Expected shape (paper): speculation beats the no-speculation baseline for
// small k and loses beyond a crossover (paper reports ~10%; with this
// calibration the crossover sits near 30% — see EXPERIMENTS.md).
#include <cstdio>
#include <iostream>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig6_error", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));

  const model::PerfModel baseline(model::paper_figure5_params(0.0));
  const double no_spec = baseline.speedup_no_spec(p);

  std::printf("Figure 6 — model speedup on %zu processors vs recomputation %%\n\n",
              p);
  support::Table table({"k %", "speedup (spec)", "speedup (no spec)", "spec wins"});
  double crossover = -1.0;
  for (double k = 0.0; k <= 0.50001; k += 0.025) {
    const model::PerfModel perf(model::paper_figure5_params(k));
    const double spec = perf.speedup_spec(p);
    table.row()
        .add(k * 100.0, 1)
        .add(spec, 2)
        .add(no_spec, 2)
        .add(spec > no_spec ? "yes" : "no");
    if (crossover < 0.0 && spec < no_spec) crossover = k;
  }
  std::cout << table;
  std::printf(
      "\ncrossover: speculation stops paying at k = %.1f%% "
      "(paper reports ~10%%; see EXPERIMENTS.md for the discussion)\n",
      crossover * 100.0);
  artifacts.add_table("fig6", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("crossover_k_percent", obs::Json(crossover * 100.0));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Regenerates the paper's Figure 6: model speedup on an 8-processor system
// versus the percentage of recomputations k.
//
// Expected shape (paper): speculation beats the no-speculation baseline for
// small k and loses beyond a crossover (paper reports ~10%; with this
// calibration the crossover sits near 30% — see EXPERIMENTS.md).
#include <cstdio>
#include <iostream>
#include <vector>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig6_error", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const int jobs = runtime::jobs_from_cli(cli);

  const model::PerfModel baseline(model::paper_figure5_params(0.0));
  const double no_spec = baseline.speedup_no_spec(p);

  std::printf("Figure 6 — model speedup on %zu processors vs recomputation %%\n\n",
              p);
  support::Table table({"k %", "speedup (spec)", "speedup (no spec)", "spec wins"});
  std::vector<double> ks;
  for (double k = 0.0; k <= 0.50001; k += 0.025) ks.push_back(k);
  // Model evaluations are microseconds each; the sweep runner is used for
  // interface uniformity (--jobs behaves identically across all benches).
  const std::vector<double> specs =
      runtime::sweep_map(ks, jobs, [&](const double k) {
        return model::PerfModel(model::paper_figure5_params(k)).speedup_spec(p);
      });
  double crossover = -1.0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const double spec = specs[i];
    table.row()
        .add(ks[i] * 100.0, 1)
        .add(spec, 2)
        .add(no_spec, 2)
        .add(spec > no_spec ? "yes" : "no");
    if (crossover < 0.0 && spec < no_spec) crossover = ks[i];
  }
  std::cout << table;
  std::printf(
      "\ncrossover: speculation stops paying at k = %.1f%% "
      "(paper reports ~10%%; see EXPERIMENTS.md for the discussion)\n",
      crossover * 100.0);
  artifacts.add_table("fig6", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("crossover_k_percent", obs::Json(crossover * 100.0));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Regenerates the paper's Figure 4 scenario: a transient, excessive delay on
// one communication path, and how forward windows of 0, 1 and 2 cope.
//
// Setup mirrors the paper's two-processor example: a message from P0 to P1
// is held up in transit by a scripted spike.  Expected shape: FW = 1 only
// partially masks the transient; FW = 2 speculates through it and finishes
// earlier; FW = 0 pays it in full.
#include <cstdio>
#include <iostream>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_fig4_transient", cli);
  const long iterations = cli.get_int("iterations", 12);
  // Two-processor iterations take ~30 s of compute; Fig. 7's arrival-order
  // folding already overlaps ~15 s of delay with the local block's force
  // work, so the spike must exceed that to be felt at FW = 0, and must
  // exceed a full iteration to defeat FW = 1 (the paper's point).
  const double spike_seconds = cli.get_double("spike", 45.0);

  auto run_with_fw = [&](int fw, bool with_spike) {
    NBodyScenario s = paper_testbed_scenario(2, iterations);
    s.algorithm = fw == 0 ? Algorithm::Fig7Baseline : Algorithm::Speculative;
    s.forward_window = fw;
    // Quiet channel except for the scripted spike: isolates the Fig. 4
    // mechanism from random jitter.
    s.sim.channel.propagation = des::SimTime::millis(500);
    s.sim.channel.extra_delay = nullptr;
    if (with_spike) {
      // One long disturbance on the P0 -> P1 path early in the run.
      s.sim.channel.extra_delay =
          std::make_shared<net::TransientSpike>(std::vector<net::SpikeRule>{
              {0, 1, des::SimTime::seconds(25), des::SimTime::seconds(55),
               des::SimTime::seconds(spike_seconds)}});
    }
    return run_scenario(s);
  };

  std::printf(
      "Figure 4 — transient delay on one path (2 procs, %.0f s spike, %ld "
      "iterations)\n\n",
      spike_seconds, iterations);
  support::Table table({"FW", "makespan quiet (s)", "makespan spiked (s)",
                        "spike penalty (s)", "comm/iter spiked (s)"});
  double penalty[3] = {0, 0, 0};
  for (const int fw : {0, 1, 2}) {
    const NBodyRunResult quiet = run_with_fw(fw, false);
    const NBodyRunResult spiked = run_with_fw(fw, true);
    penalty[fw] = spiked.sim.makespan_seconds - quiet.sim.makespan_seconds;
    table.row()
        .add(fw)
        .add(quiet.sim.makespan_seconds, 2)
        .add(spiked.sim.makespan_seconds, 2)
        .add(penalty[fw], 2)
        .add(spiked.mean_comm_per_iteration, 3);
  }
  std::cout << table;
  std::printf(
      "\nshape check: FW=2 absorbs more of the transient than FW=1, which "
      "absorbs more than FW=0: %.2f < %.2f < %.2f  -> %s\n",
      penalty[2], penalty[1], penalty[0],
      (penalty[2] < penalty[1] && penalty[1] < penalty[0]) ? "REPRODUCED"
                                                           : "NOT reproduced");
  artifacts.add_table("fig4", table);
  artifacts.add_entry("spike_seconds", obs::Json(spike_seconds));
  artifacts.add_entry(
      "reproduced",
      obs::Json(penalty[2] < penalty[1] && penalty[1] < penalty[0]));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Extension bench (the paper's stated future work): a performance model
// that accounts for *variations* in communication time.  Per-iteration
// communication is drawn as t_comm(p) + Exp(jitter); speculation absorbs
// the variance inside its max(compute, comm) overlap term while the
// no-speculation baseline pays every draw in full.
#include <cstdio>
#include <iostream>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_model_stochastic", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 20000));

  const model::PerfModel perf(model::paper_figure5_params(0.02));
  const double t1 = perf.iteration_time_no_spec(1);

  std::printf(
      "Stochastic model extension — speedup on %zu processors vs "
      "communication jitter (mean of Exp jitter as fraction of t_comm)\n\n",
      p);
  support::Table table({"jitter / t_comm", "speedup (no spec)",
                        "speedup (spec)", "gain %"});
  for (const double frac : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    model::StochasticCommModel stochastic;
    stochastic.jitter_mean_seconds = frac * perf.t_comm(p);
    stochastic.samples = samples;
    const double t_spec = model::stochastic_iteration_time_spec(perf, p, stochastic);
    const double t_nospec =
        model::stochastic_iteration_time_no_spec(perf, p, stochastic);
    table.row()
        .add(frac, 2)
        .add(t1 / t_nospec, 2)
        .add(t1 / t_spec, 2)
        .add((t_nospec / t_spec - 1.0) * 100.0, 1);
  }
  std::cout << table;
  std::printf(
      "\nexpectation: the speculative gain grows with communication "
      "variance — the regime the paper argues workstation networks live "
      "in.\n");
  artifacts.add_table("stochastic", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("samples", obs::Json(samples));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Fault-tolerance sweep: speedup and final-answer error vs drop rate.
//
// Runs the paper's Section-5 N-body workload at p = 8 under increasingly
// lossy links (deterministic FaultPlan, ARQ recovery + graceful
// degradation, DESIGN.md §9) and reports, per (FW, drop-rate) cell:
//
//   * makespan and speedup vs the fault-free fastest single machine,
//   * injected-fault and degraded-mode counters,
//   * final-answer error: RMS particle-position deviation from the
//     fault-free run of the same FW, and the absolute energy drift.
//
// The claim under test is the paper's premise stretched to misbehaving
// networks: speculation plus degradation keeps the pipeline moving when
// messages drop, at a bounded cost in answer quality (θ still gates every
// accepted speculation).
//
// Flags:
//   --jobs=N         parallel sweep lanes (default 8; results identical)
//   --iterations=N   N-body iterations per cell (default 10)
//   --p=N            cluster size (default 8)
//   --fault-seed=S   FaultPlan seed (default 0xfa017)
//   --out=FILE       report path (default BENCH_fault.json)
//
// Exit codes: 0 ok, 1 a cell violated the documented energy-drift bound,
// 2 could not write the report.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "nbody/energy.hpp"
#include "nbody/init.hpp"
#include "nbody/scenario.hpp"
#include "obs/json.hpp"
#include "runtime/fault.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"

namespace {

using namespace specomp;
using namespace specomp::nbody;

/// Documented bound (DESIGN.md §9): the relative energy drift of a degraded
/// run must stay within this factor of one percent — far looser than the
/// observed drift, which sits near the fault-free value.
constexpr double kEnergyDriftBound = 0.01;

struct Cell {
  int fw = 1;
  double drop = 0.0;
};

struct CellResult {
  NBodyRunResult run;
  double makespan = 0.0;
};

double rms_position_error(const std::vector<Particle>& a,
                          const std::vector<Particle>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 d = a[i].pos - b[i].pos;
    sum += d.dot(d);
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const int jobs = runtime::jobs_from_cli(cli);
  const long iterations = cli.get_int("iterations", 10);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 0xfa017));
  const std::string out = cli.get("out", "BENCH_fault.json");
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const std::vector<double> drop_rates = {0.0, 0.01, 0.02, 0.05, 0.10};
  std::vector<Cell> cells;
  for (const int fw : {1, 2})
    for (const double drop : drop_rates) cells.push_back({fw, drop});

  std::printf("fault-tolerance sweep: p=%zu, %ld iterations, %zu cells, "
              "jobs=%d\n",
              p, iterations, cells.size(), jobs);

  // Speedup yardstick: the fault-free workload on the fastest machine.
  NBodyScenario serial = paper_testbed_scenario(1, iterations);
  serial.forward_window = 0;
  const double t1 = run_scenario(serial).sim.makespan_seconds;

  const std::vector<CellResult> results =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        NBodyScenario s = paper_testbed_scenario(p, iterations);
        s.forward_window = cell.fw;
        if (cell.drop > 0.0) {
          runtime::FaultPlanConfig config;
          config.retransmit_timeout_seconds = 4.0;
          config.seed = fault_seed;
          std::string error;
          const std::string spec = "drop:" + std::to_string(cell.drop);
          if (!runtime::parse_fault_plan(spec, config, error)) {
            std::fprintf(stderr, "internal: %s\n", error.c_str());
            std::abort();
          }
          s.sim.fault = std::make_shared<const runtime::FaultPlan>(
              std::move(config));
          s.graceful_degradation = true;
        }
        CellResult result;
        result.run = run_scenario(s);
        result.makespan = result.run.sim.makespan_seconds;
        return result;
      });

  const auto initial = make_initial_conditions(
      paper_testbed_scenario(p, iterations).body);
  const Diagnostics before = compute_diagnostics(initial, 1e-3);

  obs::Json cells_json = obs::Json::array();
  bool drift_ok = true;
  std::printf("\n  fw  drop    makespan  speedup  degraded  rms_error   "
              "energy_drift\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    // Fault-free reference of the same FW: first cell of each FW group.
    const std::size_t base = (i / drop_rates.size()) * drop_rates.size();
    const double rms = rms_position_error(r.run.final_particles,
                                          results[base].run.final_particles);
    const Diagnostics after =
        compute_diagnostics(r.run.final_particles, 1e-3);
    const double drift =
        std::fabs(after.total_energy() - before.total_energy()) /
        std::fabs(before.total_energy());
    drift_ok = drift_ok && drift < kEnergyDriftBound;
    const double speedup = t1 / r.makespan;
    std::printf("  %2d  %4.2f  %8.2f  %7.2f  %8llu  %.3e  %.3e\n", cell.fw,
                cell.drop, r.makespan, speedup,
                static_cast<unsigned long long>(
                    r.run.spec.degraded_iterations),
                rms, drift);

    obs::Json c = obs::Json::object();
    c.set("forward_window", cell.fw);
    c.set("drop_rate", cell.drop);
    c.set("makespan_seconds", r.makespan);
    c.set("speedup_vs_single", speedup);
    c.set("rms_position_error_vs_faultfree", rms);
    c.set("energy_drift_fraction", drift);
    const runtime::FaultStats& fs = r.run.sim.fault_stats;
    obs::Json f = obs::Json::object();
    f.set("injected_drops", fs.injected_drops);
    f.set("retransmits", fs.retransmits);
    f.set("messages_lost", fs.messages_lost);
    c.set("fault", std::move(f));
    obs::Json d = obs::Json::object();
    d.set("entries", r.run.spec.degraded_entries);
    d.set("iterations", r.run.spec.degraded_iterations);
    c.set("degraded", std::move(d));
    obs::Json s = obs::Json::object();
    s.set("speculated", r.run.spec.blocks_speculated);
    s.set("failures", r.run.spec.failures);
    s.set("replayed_iterations", r.run.spec.replayed_iterations);
    c.set("spec", std::move(s));
    cells_json.push_back(std::move(c));
  }

  obs::Json report = obs::Json::object();
  report.set("schema", "specomp.bench_fault.v1");
  report.set("schema_version", 1);
  report.set("grid", [&] {
    obs::Json g = obs::Json::object();
    g.set("p", p);
    g.set("iterations", iterations);
    g.set("fault_seed", fault_seed);
    g.set("retransmit_timeout_seconds", 4.0);
    obs::Json rates = obs::Json::array();
    for (const double rate : drop_rates) rates.push_back(obs::Json(rate));
    g.set("drop_rates", std::move(rates));
    return g;
  }());
  report.set("serial_reference_seconds", t1);
  report.set("energy_drift_bound", kEnergyDriftBound);
  report.set("cells", std::move(cells_json));
  report.set(
      "notes",
      "Deterministic FaultPlan (hash-decided drops, ARQ recovery with "
      "rto=4 s) + engine graceful degradation; same seed reproduces every "
      "number bit-for-bit at any --jobs. rms_position_error is measured "
      "against the fault-free run of the same FW; energy drift is vs the "
      "initial conditions and must stay below energy_drift_bound.");

  std::ofstream stream(out);
  stream << report.dump(2) << '\n';
  if (!stream) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!drift_ok) {
    std::fprintf(stderr,
                 "error: a cell exceeded the %.0f%% energy-drift bound\n",
                 kEnergyDriftBound * 100.0);
    return 1;
  }
  return 0;
}

// Regenerates the paper's Table 2: average time per iteration spent in each
// execution phase for forward windows 0, 1 and 2 on the 16-processor,
// 1000-particle simulation (the paper's prose says 8 processors while the
// caption says 16 — both are printed).
//
// Expected shape (paper, 16 procs): FW = 0 pays ~4.7 s of blocked
// communication on ~5.8 s of compute; FW = 1 masks ~70% of it; FW = 2 masks
// ~95% of it, with small speculation/checking overhead.
#include <cstdio>
#include <iostream>
#include <string>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

void print_breakdown(std::size_t p, long iterations,
                     specomp::obs::ArtifactWriter& artifacts) {
  using namespace specomp;
  using namespace specomp::nbody;
  std::printf("Table 2 — per-iteration phase times, %zu processors, 1000 particles\n\n",
              p);
  support::Table table({"FW", "computation (s)", "communication (s)",
                        "speculation (s)", "check (s)", "correct (s)",
                        "total/iter (s)"});
  for (const int fw : {0, 1, 2}) {
    NBodyScenario s = paper_testbed_scenario(p, iterations);
    s.algorithm = fw == 0 ? Algorithm::Fig7Baseline : Algorithm::Speculative;
    s.forward_window = fw;
    const NBodyRunResult run = run_scenario(s);
    table.row()
        .add(fw)
        .add(run.mean_compute_per_iteration, 2)
        .add(run.mean_comm_per_iteration, 2)
        .add(run.mean_speculate_per_iteration, 3)
        .add(run.mean_check_per_iteration, 3)
        .add(run.mean_correct_per_iteration, 3)
        .add(run.time_per_iteration, 2);
  }
  std::cout << table << "\n";
  artifacts.add_table("table2_p" + std::to_string(p), table);
}

}  // namespace

int main(int argc, char** argv) {
  const specomp::support::Cli cli(argc, argv);
  specomp::obs::ArtifactWriter artifacts("bench_table2_breakdown", cli);
  const long iterations = cli.get_int("iterations", 10);
  print_breakdown(16, iterations, artifacts);
  print_breakdown(8, iterations, artifacts);
  std::printf(
      "paper (16 procs): comp 5.83 / comm 4.73 at FW=0; comm 1.43 at FW=1; "
      "comm 0.22 at FW=2\n");
  artifacts.add_entry("iterations", specomp::obs::Json(iterations));
  artifacts.add_entry("particles", specomp::obs::Json(1000));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

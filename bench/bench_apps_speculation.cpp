// Generality bench: the same speculation engine applied to two further
// synchronous iterative algorithms — a dense Jacobi linear solver and a 1-D
// explicit heat stencil (the PDE class the paper's Section 2 motivates).
// Reported: makespan with and without speculation, accuracy of the result,
// and speculation statistics.
#include <cstdio>
#include <iostream>

#include "apps/heat.hpp"
#include "apps/jacobi.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

specomp::runtime::SimConfig slow_network(std::size_t p) {
  using namespace specomp;
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::linear(p, 1e6, 4.0);
  config.channel.bandwidth_bytes_per_sec = 1.25e6;
  // Latency-dominated channel, scaled to these lighter iteration loads.
  config.channel.propagation = des::SimTime::millis(80);
  config.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(15));
  config.send_sw_time = des::SimTime::millis(1);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::apps;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_apps_speculation", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const long iterations = cli.get_int("iterations", 40);

  std::printf(
      "Generality — speculation on other synchronous iterative algorithms "
      "(%zu procs, %ld iterations)\n\n",
      p, iterations);
  support::Table table({"application", "FW", "time (s)", "gain %", "k %",
                        "result quality"});

  // ---- Jacobi ----
  double jacobi_base = 0.0;
  for (const int fw : {0, 1, 2}) {
    JacobiScenario s;
    s.n = 512;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-3;
    s.sim = slow_network(p);
    const JacobiRunResult run = run_jacobi_scenario(s);
    if (fw == 0) jacobi_base = run.sim.makespan_seconds;
    char quality[64];
    std::snprintf(quality, sizeof quality, "residual %.2e", run.residual);
    table.row()
        .add("jacobi-512")
        .add(fw)
        .add(run.sim.makespan_seconds, 2)
        .add((jacobi_base / run.sim.makespan_seconds - 1.0) * 100.0, 1)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(quality);
  }

  // ---- Asynchronous Jacobi (related-work baseline) ----
  {
    JacobiScenario s;
    s.n = 512;
    s.iterations = iterations;
    s.sim = slow_network(p);
    const JacobiRunResult run = run_jacobi_async(s);
    char quality[64];
    std::snprintf(quality, sizeof quality, "residual %.2e", run.residual);
    table.row()
        .add("jacobi-512 async")
        .add("-")
        .add(run.sim.makespan_seconds, 2)
        .add((jacobi_base / run.sim.makespan_seconds - 1.0) * 100.0, 1)
        .add("-")
        .add(quality);
  }

  // ---- Heat ----
  double heat_base = 0.0;
  for (const int fw : {0, 1, 2}) {
    HeatScenario s;
    s.problem.n = 1024;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-4;
    s.sim = slow_network(p);
    const HeatRunResult run = run_heat_scenario(s);
    if (fw == 0) heat_base = run.sim.makespan_seconds;
    const auto serial = serial_heat(s.problem, s.iterations);
    double worst = 0.0;
    for (std::size_t i = 0; i < serial.size(); ++i)
      worst = std::max(worst, std::fabs(run.field[i] - serial[i]));
    char quality[64];
    std::snprintf(quality, sizeof quality, "max dev %.2e", worst);
    table.row()
        .add("heat-1024")
        .add(fw)
        .add(run.sim.makespan_seconds, 2)
        .add((heat_base / run.sim.makespan_seconds - 1.0) * 100.0, 1)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(quality);
  }

  std::cout << table;
  std::printf(
      "\nexpectation: both applications gain from speculation on a "
      "latency-bound network while staying accurate — the paper's claim "
      "that the technique applies to a host of algorithms.  The fully "
      "asynchronous baseline (related work) never waits and is fastest per "
      "sweep; on this strongly contracting system it still converges, but "
      "it offers no bound on the staleness it consumes — on slowly "
      "contracting systems or congested networks its residual plateaus "
      "(see JacobiAsync tests), the failure mode the paper's thresholded "
      "speculation rules out by checking every guess.\n");
  artifacts.add_table("apps_speculation", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

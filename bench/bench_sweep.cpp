// Performance smoke for the parallel sweep runner (PR: fast measurement
// pipeline).  Runs the Figure-8 measurement grid — the heaviest sweep in the
// suite — once serially and once with --jobs lanes, verifies that the
// simulated results are bit-identical across job counts (virtual time must
// not depend on scheduling), and writes wall-clock + events/sec numbers to
// a JSON report (default BENCH_sweep.json).
//
// The committed BENCH_sweep.json also carries the pre-optimisation baseline
// numbers, measured from the commit immediately before this PR with the
// same grid on the same machine; they are embedded below as constants so
// the before/after comparison survives in one self-describing artifact.
//
// Flags:
//   --jobs=N             parallel lane count for the parallel pass (default 8)
//   --iterations=N       N-body iterations per cell (default 10, the fig8 grid)
//   --budget-seconds=S   fail (exit 2) if the whole smoke exceeds S seconds
//   --out=FILE           report path (default BENCH_sweep.json)
//   --sim-sendrecv-per-sec=X, --kernel-events-per-sec=X
//                        measured items/sec from bench_micro's BM_SimSendRecv
//                        / BM_KernelEvents; when given they are recorded in a
//                        "microbench" section with the ratio vs baseline
//
// Exit codes: 0 ok, 1 determinism violation, 2 over budget.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "nbody/scenario.hpp"
#include "obs/json.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"

namespace {

using namespace specomp;
using namespace specomp::nbody;

// Pre-PR reference, median of 3 runs of this same grid (10 iterations) and
// of the identical BM_SimSendRecv/BM_KernelEvents sources compiled against
// the pre-PR libraries.  Machine: the 1-CPU container this repo is grown
// in; see the "notes" entry in the report.
constexpr double kBaselineFig8WallSeconds = 0.727;
constexpr double kBaselineSimSendRecvPerSec = 216.8e3;
constexpr double kBaselineKernelEventsPerSec = 32.8e6;

struct Cell {
  std::size_t p;
  int fw;  // -1 = serial reference
};

struct SweepPass {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::vector<NBodyRunResult> runs;
};

SweepPass run_grid(const std::vector<Cell>& cells, long iterations, int jobs) {
  SweepPass pass;
  const auto t0 = std::chrono::steady_clock::now();
  pass.runs = runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
    NBodyScenario s = paper_testbed_scenario(cell.p, iterations);
    if (cell.fw >= 0) {
      s.algorithm =
          cell.fw == 0 ? Algorithm::Fig7Baseline : Algorithm::Speculative;
      s.forward_window = cell.fw;
    }
    return run_scenario(s);
  });
  pass.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& run : pass.runs)
    pass.events += run.sim.kernel_stats.events_executed;
  return pass;
}

/// Bit-level equality of the simulated outputs two passes produced: the
/// virtual-time results must not depend on how many OS threads carried the
/// sweep.  memcmp on the doubles (not ==) so even sign-of-zero or NaN
/// payload differences would be caught.
bool identical_results(const SweepPass& a, const SweepPass& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i];
    const auto& rb = b.runs[i];
    if (std::memcmp(&ra.sim.makespan_seconds, &rb.sim.makespan_seconds,
                    sizeof(double)) != 0)
      return false;
    if (ra.sim.kernel_stats.events_executed !=
        rb.sim.kernel_stats.events_executed)
      return false;
    const double ea = ra.spec.error.mean();
    const double eb = rb.spec.error.mean();
    if (std::memcmp(&ea, &eb, sizeof(double)) != 0) return false;
    if (ra.spec.failures != rb.spec.failures) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const int jobs = cli.get_int("jobs", 8);
  const long iterations = cli.get_int("iterations", 10);
  const double budget = cli.get_double("budget-seconds", 0.0);
  const std::string out = cli.get("out", "BENCH_sweep.json");
  const double sendrecv_per_sec = cli.get_double("sim-sendrecv-per-sec", 0.0);
  const double kernel_per_sec = cli.get_double("kernel-events-per-sec", 0.0);
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const std::size_t p_values[] = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  std::vector<Cell> cells;
  cells.push_back({1, -1});
  for (const std::size_t p : p_values)
    for (const int fw : {0, 1, 2}) cells.push_back({p, fw});

  std::printf("sweep smoke: %zu cells, %ld iterations, jobs=%d\n",
              cells.size(), iterations, jobs);
  const SweepPass serial = run_grid(cells, iterations, 1);
  std::printf("  jobs=1: %.3f s wall, %.3g events, %.3g events/s\n",
              serial.wall_seconds, static_cast<double>(serial.events),
              static_cast<double>(serial.events) / serial.wall_seconds);
  const SweepPass parallel = run_grid(cells, iterations, jobs);
  std::printf("  jobs=%d: %.3f s wall, %.3g events, %.3g events/s\n", jobs,
              parallel.wall_seconds, static_cast<double>(parallel.events),
              static_cast<double>(parallel.events) / parallel.wall_seconds);

  const bool deterministic = identical_results(serial, parallel);
  std::printf("  deterministic across job counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  obs::Json report = obs::Json::object();
  report.set("schema", "specomp.bench_sweep.v1");
  report.set("schema_version", 1);
  report.set("grid", [&] {
    obs::Json g = obs::Json::object();
    g.set("bench", "fig8_nbody_speedup");
    g.set("cells", cells.size());
    g.set("iterations", iterations);
    return g;
  }());
  report.set("machine", [&] {
    obs::Json m = obs::Json::object();
    m.set("hardware_concurrency",
          static_cast<unsigned>(std::thread::hardware_concurrency()));
    return m;
  }());
  const auto pass_json = [](const SweepPass& pass, int pass_jobs) {
    obs::Json p = obs::Json::object();
    p.set("jobs", pass_jobs);
    p.set("wall_seconds", pass.wall_seconds);
    p.set("events_executed", pass.events);
    p.set("events_per_second",
          static_cast<double>(pass.events) / pass.wall_seconds);
    return p;
  };
  report.set("serial", pass_json(serial, 1));
  report.set("parallel", pass_json(parallel, jobs));
  report.set("parallel_speedup", serial.wall_seconds / parallel.wall_seconds);
  report.set("deterministic_across_jobs", deterministic);
  report.set("baseline", [&] {
    obs::Json b = obs::Json::object();
    b.set("description",
          "pre-PR measurement: same grid + identical microbenchmark sources "
          "built against the commit before the fast-measurement-pipeline PR");
    b.set("fig8_wall_seconds", kBaselineFig8WallSeconds);
    b.set("sim_sendrecv_msgs_per_second", kBaselineSimSendRecvPerSec);
    b.set("kernel_events_per_second", kBaselineKernelEventsPerSec);
    b.set("single_thread_speedup_vs_baseline",
          kBaselineFig8WallSeconds / serial.wall_seconds);
    return b;
  }());
  if (sendrecv_per_sec > 0.0 || kernel_per_sec > 0.0) {
    obs::Json m = obs::Json::object();
    if (sendrecv_per_sec > 0.0) {
      m.set("sim_sendrecv_msgs_per_second", sendrecv_per_sec);
      m.set("sim_sendrecv_speedup_vs_baseline",
            sendrecv_per_sec / kBaselineSimSendRecvPerSec);
    }
    if (kernel_per_sec > 0.0) {
      m.set("kernel_events_per_second", kernel_per_sec);
      m.set("kernel_events_speedup_vs_baseline",
            kernel_per_sec / kBaselineKernelEventsPerSec);
    }
    report.set("microbench", std::move(m));
  }
  report.set("notes",
             "Simulated results (virtual time) are bit-identical at every "
             "--jobs value; --jobs only changes wall-clock. On a single-CPU "
             "host parallel lanes cannot beat jobs=1 for this CPU-bound "
             "sweep — the parallel_speedup field reflects the machine the "
             "report was generated on (see machine.hardware_concurrency).");

  std::ofstream stream(out);
  stream << report.dump(2) << '\n';
  if (!stream) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out.c_str());

  if (!deterministic) return 1;
  const double total = serial.wall_seconds + parallel.wall_seconds;
  if (budget > 0.0 && total > budget) {
    std::fprintf(stderr, "error: smoke took %.3f s, budget %.3f s\n", total,
                 budget);
    return 2;
  }
  return 0;
}

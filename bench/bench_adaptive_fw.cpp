// Extension bench (paper future work): run-time selection of the forward
// window.  The paper tunes FW by hand per platform; the adaptive controller
// grows the window while a rank is blocking and shrinks it while guesses
// fail.  Compared here against every fixed window on the calibrated testbed,
// in a calm and in a spiky network regime.
#include <cstdio>
#include <iostream>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_adaptive_fw", cli);
  const long iterations = cli.get_int("iterations", 18);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 16));

  auto run_one = [&](int fw, const char* policy, bool spiky) {
    NBodyScenario s = paper_testbed_scenario(p, iterations);
    const bool fixed = std::string(policy) == "fixed";
    s.algorithm =
        (fixed && fw == 0) ? Algorithm::Fig7Baseline : Algorithm::Speculative;
    s.forward_window = fw;
    s.adaptive_window = std::string(policy) == "adaptive";
    s.hill_climb_window = std::string(policy) == "hill-climb";
    if (spiky) {
      // Heavier, burstier delays: occasional multi-second stalls on top of
      // the base latency.
      auto composite = std::make_shared<net::CompositeLatency>();
      composite->add(std::make_unique<net::ExponentialJitter>(
          des::SimTime::millis(600)));
      composite->add(std::make_unique<net::RandomSpike>(
          0.02, des::SimTime::seconds(8)));
      s.sim.channel.extra_delay = composite;
    }
    return run_scenario(s);
  };

  for (const bool spiky : {false, true}) {
    std::printf("Adaptive forward window — %s network (%zu procs)\n\n",
                spiky ? "spiky" : "calm", p);
    support::Table table({"policy", "time/iter (s)", "comm/iter (s)",
                          "correct/iter (s)", "k %", "max FW used"});
    auto add_row = [&table](const std::string& name, const NBodyRunResult& run) {
      table.row()
          .add(name)
          .add(run.time_per_iteration, 2)
          .add(run.mean_comm_per_iteration, 2)
          .add(run.mean_correct_per_iteration, 3)
          .add(run.spec.failure_fraction() * 100.0, 2)
          .add(run.spec.max_window_used);
    };
    for (const int fw : {0, 1, 2, 3})
      add_row("fixed FW=" + std::to_string(fw), run_one(fw, "fixed", spiky));
    add_row("adaptive", run_one(1, "adaptive", spiky));
    add_row("hill-climb", run_one(1, "hill-climb", spiky));
    std::cout << table << "\n";
    artifacts.add_table(spiky ? "adaptive_spiky" : "adaptive_calm", table);
  }
  std::printf(
      "expectation: both controllers beat the no-speculation baseline in "
      "every regime and approach the best fixed window without per-platform "
      "hand tuning; the hill-climber (optimising iteration time directly) "
      "handles the wait-vs-correction trade-off better than the "
      "signal-threshold policy.\n");
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

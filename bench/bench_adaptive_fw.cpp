// Adaptive-vs-static forward-window study (DESIGN.md §13, EXPERIMENTS.md).
//
// The paper tunes FW by hand per platform; this bench races every run-time
// controller against every fixed window on the calibrated Section-5 testbed
// over the Fig. 8 axes (processor count) in three network regimes:
//
//   * calm  — the calibrated testbed as measured (5.5 s + Exp(0.6 s));
//   * spiky — bursty overload: occasional multi-second delay spikes;
//   * stall — the PR-5/6 fault plan (`stall:1@5+4`): rank 1 freezes for
//     4 virtual seconds at t = 5 s, with graceful degradation armed.
//
// Controllers: `heuristic` (wait/failure signal thresholds), `hill-climb`
// (direct iteration-time descent) and `model` — the ModelWindowPolicy that
// computes FW from the live delay/service distribution sketches with a
// rollback-cascade guard.  A θ section additionally races the fixed check
// threshold against the rejection-band AdaptiveThetaPolicy.
//
// Acceptance (checked in-binary, exit 1 on violation):
//   * on every calm grid point the model policy lands within 5% of the best
//     fixed window's time per iteration — no hand tuning;
//   * under the stall plan the model policy's max rollback-cascade depth
//     never exceeds the fixed FW = 1 baseline's.
//
// Flags:
//   --quick              small grid for CI smoke (p = 8 only, fewer iters)
//   --jobs=N             parallel sweep lanes (results identical at any N)
//   --iterations=N       N-body iterations per cell
//   --out=FILE           report path (default BENCH_adaptive.json)
//   --controller-trace=F write the model policy's per-iteration controller
//                        trace (window, θ, cascade depth, decision) to F
//
// Exit codes: 0 ok, 1 acceptance check failed, 2 could not write a file.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "nbody/scenario.hpp"
#include "obs/atomic_file.hpp"
#include "obs/json.hpp"
#include "runtime/fault.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace specomp;
using namespace specomp::nbody;

constexpr double kAcceptSlack = 1.05;  // model within 5% of best fixed

struct Cell {
  std::string regime;  // "calm" | "spiky" | "stall"
  std::size_t p;
  std::string policy;  // "fixed" | "heuristic" | "hill-climb" | "model"
  int fw;              // fixed window, or the controllers' starting window
};

struct CellResult {
  double time_per_iteration = 0.0;
  double comm_per_iteration = 0.0;
  double correct_per_iteration = 0.0;
  double failure_fraction = 0.0;
  int max_window_used = 0;
  int max_cascade_depth = 0;
  std::uint64_t rollbacks = 0;
  std::vector<spec::ControlSample> control_log;
};

NBodyScenario make_scenario(const Cell& cell, long iterations) {
  NBodyScenario s = paper_testbed_scenario(cell.p, iterations);
  s.forward_window = cell.fw;
  if (cell.policy == "fixed") {
    if (cell.fw == 0) s.algorithm = Algorithm::Fig7Baseline;
  } else {
    s.window_policy = cell.policy;
    s.record_control_log = cell.policy == "model";
  }
  if (cell.regime == "spiky") {
    // Bursty overload on top of the calibrated base latency.
    auto composite = std::make_shared<net::CompositeLatency>();
    composite->add(
        std::make_unique<net::ExponentialJitter>(des::SimTime::millis(600)));
    composite->add(
        std::make_unique<net::RandomSpike>(0.02, des::SimTime::seconds(8)));
    s.sim.channel.extra_delay = composite;
  } else if (cell.regime == "stall") {
    runtime::FaultPlanConfig config;
    std::string error;
    if (!runtime::parse_fault_plan("stall:1@5+4", config, error)) {
      std::fprintf(stderr, "internal: %s\n", error.c_str());
      std::abort();
    }
    s.sim.fault =
        std::make_shared<const runtime::FaultPlan>(std::move(config));
    s.graceful_degradation = true;
  }
  return s;
}

obs::Json control_log_json(const std::vector<spec::ControlSample>& log) {
  obs::Json rows = obs::Json::array();
  for (const auto& sample : log) {
    obs::Json row = obs::Json::object();
    row.set("iteration", sample.iteration);
    row.set("window", sample.window);
    row.set("theta", sample.theta);
    row.set("cascade_depth", sample.cascade_depth);
    row.set("decision", std::string(sample.decision));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const int jobs = runtime::jobs_from_cli(cli);
  const long iterations = cli.get_int("iterations", quick ? 12 : 24);
  const std::string out = cli.get("out", "BENCH_adaptive.json");
  const std::string trace_out = cli.get("controller-trace", "");
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const std::vector<std::size_t> procs =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{4, 8, 16};
  const std::vector<std::string> regimes = {"calm", "spiky", "stall"};
  const std::vector<std::string> policies = {"heuristic", "hill-climb",
                                             "model"};

  // Every fixed window plus every controller, at every regime × p.  The
  // controllers all start from FW = 1 — the point of the study is reaching
  // the right depth without being told it.
  std::vector<Cell> cells;
  for (const auto& regime : regimes)
    for (const std::size_t p : procs) {
      for (const int fw : {0, 1, 2, 3}) cells.push_back({regime, p, "fixed", fw});
      for (const auto& policy : policies) cells.push_back({regime, p, policy, 1});
    }

  std::printf(
      "adaptive forward-window study: %zu cells, %ld iterations, jobs=%d%s\n",
      cells.size(), iterations, jobs, quick ? " (quick)" : "");

  const std::vector<CellResult> results =
      runtime::sweep_map(cells, jobs, [&](const Cell& cell) {
        const NBodyRunResult run =
            run_scenario(make_scenario(cell, iterations));
        CellResult r;
        r.time_per_iteration = run.time_per_iteration;
        r.comm_per_iteration = run.mean_comm_per_iteration;
        r.correct_per_iteration = run.mean_correct_per_iteration;
        r.failure_fraction = run.spec.failure_fraction();
        r.max_window_used = run.spec.max_window_used;
        r.max_cascade_depth = run.spec.max_cascade_depth;
        r.rollbacks = run.spec.rollbacks;
        r.control_log = run.control_log;
        return r;
      });

  auto find = [&](const std::string& regime, std::size_t p,
                  const std::string& policy, int fw) -> const CellResult& {
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].regime == regime && cells[i].p == p &&
          cells[i].policy == policy && (policy != "fixed" || cells[i].fw == fw))
        return results[i];
    std::fprintf(stderr, "internal: cell not found\n");
    std::abort();
  };

  obs::Json cells_json = obs::Json::array();
  for (const auto& regime : regimes) {
    for (const std::size_t p : procs) {
      std::printf("\n%s network, p = %zu\n\n", regime.c_str(), p);
      support::Table table({"policy", "time/iter (s)", "comm/iter (s)",
                            "correct/iter (s)", "k %", "max FW",
                            "max cascade"});
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& cell = cells[i];
        if (cell.regime != regime || cell.p != p) continue;
        const CellResult& r = results[i];
        const std::string name = cell.policy == "fixed"
                                     ? "fixed FW=" + std::to_string(cell.fw)
                                     : cell.policy;
        table.row()
            .add(name)
            .add(r.time_per_iteration, 2)
            .add(r.comm_per_iteration, 2)
            .add(r.correct_per_iteration, 3)
            .add(r.failure_fraction * 100.0, 2)
            .add(r.max_window_used)
            .add(r.max_cascade_depth);

        obs::Json c = obs::Json::object();
        c.set("regime", cell.regime);
        c.set("p", cell.p);
        c.set("policy", name);
        c.set("time_per_iteration_seconds", r.time_per_iteration);
        c.set("comm_per_iteration_seconds", r.comm_per_iteration);
        c.set("correct_per_iteration_seconds", r.correct_per_iteration);
        c.set("failure_fraction", r.failure_fraction);
        c.set("max_window_used", r.max_window_used);
        c.set("max_cascade_depth", r.max_cascade_depth);
        c.set("rollbacks", r.rollbacks);
        cells_json.push_back(std::move(c));
      }
      std::cout << table;
    }
  }

  // ---- Acceptance: model within 5% of the best fixed window (calm) ----
  bool accept_calm = true;
  obs::Json calm_json = obs::Json::array();
  std::printf("\nacceptance — calm grid, model vs best fixed window:\n");
  for (const std::size_t p : procs) {
    double best_fixed = std::numeric_limits<double>::infinity();
    int best_fw = 0;
    for (const int fw : {0, 1, 2, 3}) {
      const double t = find("calm", p, "fixed", fw).time_per_iteration;
      if (t < best_fixed) {
        best_fixed = t;
        best_fw = fw;
      }
    }
    const double model = find("calm", p, "model", 0).time_per_iteration;
    const double ratio = model / best_fixed;
    const bool ok = ratio <= kAcceptSlack;
    accept_calm = accept_calm && ok;
    std::printf("  p=%2zu: model %.2f s/iter vs best fixed FW=%d %.2f s/iter "
                "(ratio %.3f) %s\n",
                p, model, best_fw, best_fixed, ratio, ok ? "OK" : "FAIL");
    obs::Json row = obs::Json::object();
    row.set("p", p);
    row.set("best_fixed_fw", best_fw);
    row.set("best_fixed_time_per_iteration", best_fixed);
    row.set("model_time_per_iteration", model);
    row.set("ratio", ratio);
    row.set("ok", ok);
    calm_json.push_back(std::move(row));
  }

  // ---- Acceptance: cascade containment under the stall plan ----
  bool accept_cascade = true;
  obs::Json cascade_json = obs::Json::array();
  std::printf("\nacceptance — stall plan, model cascade depth vs fixed "
              "FW=1:\n");
  for (const std::size_t p : procs) {
    const int fixed1 = find("stall", p, "fixed", 1).max_cascade_depth;
    const int model = find("stall", p, "model", 0).max_cascade_depth;
    const bool ok = model <= std::max(fixed1, 1);
    accept_cascade = accept_cascade && ok;
    std::printf("  p=%2zu: model max cascade %d vs fixed FW=1 %d %s\n", p,
                model, fixed1, ok ? "OK" : "FAIL");
    obs::Json row = obs::Json::object();
    row.set("p", p);
    row.set("fixed_fw1_max_cascade_depth", fixed1);
    row.set("model_max_cascade_depth", model);
    row.set("ok", ok);
    cascade_json.push_back(std::move(row));
  }

  // ---- θ adaptation: fixed vs rejection-band controller ----
  // FW = 2 at the largest p with a deliberately mis-tuned θ, eight times
  // tighter than the calibrated default: the static run pays rollback for
  // accuracy nobody asked for, while the band controller widens θ back
  // until the rejection fraction re-enters the target band.
  const std::size_t theta_p = procs.back();
  const double theta_mistuned = 1.25e-3;
  obs::Json theta_json = obs::Json::array();
  std::printf("\nθ adaptation (p = %zu, FW = 2, mis-tuned θ = %g):\n\n",
              theta_p, theta_mistuned);
  support::Table theta_table({"theta policy", "time/iter (s)", "k %",
                              "theta range", "adjustments"});
  for (const std::string policy : {"static", "adaptive"}) {
    NBodyScenario s = paper_testbed_scenario(theta_p, iterations);
    s.forward_window = 2;
    s.theta = theta_mistuned;
    if (policy != "static") s.theta_policy = policy;
    const NBodyRunResult run = run_scenario(s);
    char range[64];
    std::snprintf(range, sizeof range, "[%g, %g]", run.spec.theta_min_used,
                  run.spec.theta_max_used);
    theta_table.row()
        .add(policy)
        .add(run.time_per_iteration, 2)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(range)
        .add(run.spec.theta_adjustments);
    obs::Json row = obs::Json::object();
    row.set("theta_policy", policy);
    row.set("time_per_iteration_seconds", run.time_per_iteration);
    row.set("failure_fraction", run.spec.failure_fraction());
    row.set("theta_min_used", run.spec.theta_min_used);
    row.set("theta_max_used", run.spec.theta_max_used);
    row.set("theta_adjustments", run.spec.theta_adjustments);
    theta_json.push_back(std::move(row));
  }
  std::cout << theta_table;

  // ---- Controller trace (the model policy's decision sequence) ----
  if (!trace_out.empty()) {
    obs::Json trace = obs::Json::object();
    trace.set("schema", "specomp.controller_trace.v1");
    trace.set("schema_version", 1);
    obs::Json runs = obs::Json::array();
    for (const auto& regime : regimes) {
      const CellResult& r = find(regime, procs.back(), "model", 0);
      obs::Json entry = obs::Json::object();
      entry.set("regime", regime);
      entry.set("p", procs.back());
      entry.set("samples", control_log_json(r.control_log));
      runs.push_back(std::move(entry));
    }
    trace.set("runs", std::move(runs));
    if (!obs::atomic_write_file(trace_out, trace.dump(2) + "\n")) {
      std::fprintf(stderr, "error: could not write %s\n", trace_out.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", trace_out.c_str());
  }

  obs::Json report = obs::Json::object();
  report.set("schema", "specomp.bench_adaptive.v1");
  report.set("schema_version", 1);
  report.set("grid", [&] {
    obs::Json g = obs::Json::object();
    g.set("iterations", iterations);
    g.set("quick", quick);
    obs::Json ps = obs::Json::array();
    for (const std::size_t p : procs) ps.push_back(p);
    g.set("processors", std::move(ps));
    obs::Json rs = obs::Json::array();
    for (const auto& regime : regimes) rs.push_back(regime);
    g.set("regimes", std::move(rs));
    g.set("stall_plan", "stall:1@5+4");
    return g;
  }());
  report.set("cells", std::move(cells_json));
  report.set("acceptance", [&] {
    obs::Json a = obs::Json::object();
    a.set("calm_model_within_slack", accept_calm);
    a.set("slack", kAcceptSlack);
    a.set("calm", std::move(calm_json));
    a.set("stall_cascade_contained", accept_cascade);
    a.set("stall", std::move(cascade_json));
    return a;
  }());
  report.set("theta", std::move(theta_json));
  report.set(
      "notes",
      "Run-time window controllers vs every fixed FW on the calibrated "
      "Section-5 N-body testbed, in a calm regime (as measured), a spiky "
      "regime (bursty multi-second delay spikes) and under the stall fault "
      "plan of the delay-propagation study (rank 1 frozen 4 s at t=5 s, "
      "graceful degradation armed).  The model policy derives FW from the "
      "live delay/service quantile sketches (DESIGN.md §13): it must match "
      "the best fixed window within 5% on every calm grid point and keep "
      "rollback cascades no deeper than the FW=1 baseline under the stall "
      "plan.  Deterministic: same flags reproduce every number at any "
      "--jobs.");

  if (!obs::atomic_write_file(out, report.dump(2) + "\n")) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());

  if (!accept_calm || !accept_cascade) {
    std::fprintf(stderr, "error: acceptance check failed (%s)\n",
                 !accept_calm ? "calm: model vs best fixed window"
                              : "stall: cascade containment");
    return 1;
  }
  return 0;
}

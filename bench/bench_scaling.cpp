// Large-p scaling snapshot: tree vs flat collectives, speculative vs
// baseline engine, and Barnes-Hut vs O(N^2) force kernels.
//
//   $ ./bench/bench_scaling --out BENCH_scaling.json
//
// Three sections, one report:
//
//   * collectives — pure-communication rounds (allreduce + allgather +
//     barrier) on a switched fabric at p up to 1024, flat vs tree.  The
//     headline is the t_comm(p) shape change: flat traffic and root-side
//     serialisation grow like p (allgather like p^2 messages) while the
//     tree algorithms grow like log p per rank.
//   * engine — the Section-5 N-body workload at p up to 512 simulated
//     ranks, Fig. 7 baseline vs the speculative engine at FW = 1 and
//     FW = 4, tree collectives armed.  Shows where speculation's latency
//     hiding pays as the comm/compute ratio climbs with p: FW = 1 only
//     helps while one iteration's compute covers the round trip, FW = 4
//     keeps paying deep into the communication-dominated regime.
//   * kernel — wall-clock of the exact tiled O(N^2) kernel vs the
//     Barnes-Hut tree kernel (θ = 0.5) with N into the 10^5..10^6 regime.
//     The tiled kernel is timed on a capped target slice and extrapolated
//     to the full N x N cost (the full quadratic run is exactly what the
//     tree kernel exists to avoid); Barnes-Hut runs the full N targets for
//     real.  Accuracy vs the exact kernel is checked against the
//     documented θ = 0.5 bound of bh_tree.hpp on the measured slice.
//
// Flags:
//   --jobs=N   parallel sweep lanes for the simulated sections (default 8;
//              results are identical at any value)
//   --reps=N   wall-clock repetitions per kernel cell, best-of (default 2)
//   --quick    reduced grid for the CI perf-smoke job (p <= 64, N <= 49152)
//   --out=FILE report path (default BENCH_scaling.json)
//
// Exit codes: 0 ok, 1 the tree kernel missed its documented error bound,
// 2 could not write the report.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "nbody/init.hpp"
#include "nbody/kernels/bh_tree.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/scenario.hpp"
#include "obs/atomic_file.hpp"
#include "obs/json.hpp"
#include "runtime/collectives.hpp"
#include "runtime/sim_comm.hpp"
#include "runtime/sweep.hpp"
#include "support/cli.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using runtime::CollectiveAlgo;

double now_seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- section 1: collectives ------------------------------------------------

constexpr int kCollectiveRounds = 2;

struct CollCell {
  std::size_t p;
  CollectiveAlgo algo;
};

struct CollResult {
  double makespan = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

CollResult run_collective_cell(const CollCell& cell) {
  runtime::SimConfig config;
  // Homogeneous fast machines on a switched fabric: the makespan is pure
  // communication (send overhead + propagation + per-link bandwidth).
  config.cluster = runtime::Cluster::homogeneous(cell.p, 1e9);
  config.shared_medium = false;
  config.collective = cell.algo;
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](runtime::Communicator& comm) {
        double value = 1.0 + 0.5 * static_cast<double>(comm.rank());
        for (int r = 0; r < kCollectiveRounds; ++r) {
          const int tag = 1000 + 16 * r;
          value = runtime::allreduce_sum(comm, value, tag);
          const std::vector<double> mine = {value,
                                            static_cast<double>(comm.rank())};
          (void)runtime::allgather(comm, mine, tag + 4);
          comm.barrier();
        }
      });
  CollResult r;
  r.makespan = result.makespan_seconds;
  r.messages = result.channel_stats.messages;
  r.bytes = result.channel_stats.bytes;
  return r;
}

// ---- section 2: engine crossover -------------------------------------------

struct EngineCell {
  std::size_t p;
  int fw;  // -1 = Fig. 7 baseline (no speculation)
};

nbody::NBodyScenario make_engine_scenario(const EngineCell& cell,
                                          long iterations) {
  nbody::NBodyScenario s;
  s.body.n = 2048;
  s.body.dt = 0.03;
  s.body.softening2 = 1e-3;
  // The paper's operating point (latency comparable to per-iteration
  // compute at small p) stretched to large p on a switched fabric: per-rank
  // compute shrinks like 1/p while the per-message round trip stays put, so
  // the comm/compute ratio — and the room for latency hiding — grows with p.
  s.sim.cluster = runtime::Cluster::homogeneous(cell.p, 2e6);
  s.sim.channel = nbody::paper_channel_config();
  s.sim.channel.propagation = des::SimTime::millis(5500);
  s.sim.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(600));
  s.sim.send_sw_time = des::SimTime::millis(3);
  s.sim.shared_medium = false;
  s.sim.collective = CollectiveAlgo::Tree;
  s.iterations = iterations;
  s.algorithm = cell.fw < 0 ? nbody::Algorithm::Fig7Baseline
                            : nbody::Algorithm::Speculative;
  s.forward_window = std::max(cell.fw, 0);
  return s;
}

// ---- section 3: kernel wall-clock ------------------------------------------

constexpr double kKernelSoftening2 = 1e-4;
constexpr double kBhTheta = 0.5;
/// Documented θ = 0.5 bound from bh_tree.hpp.
constexpr double kBhErrorBound = 2.5e-2;
/// Targets in the measured exact-kernel slice (sources are always all N).
constexpr std::size_t kExactSliceTargets = 4096;

struct KernelCell {
  std::size_t n;
};

struct KernelResult {
  std::size_t slice = 0;
  double tiled_slice_seconds = 0.0;
  double tiled_full_seconds = 0.0;  // extrapolated: slice time * N / slice
  double bh_seconds = 0.0;          // measured, full N targets
  std::size_t bh_interactions = 0;
  double max_rel_error = 0.0;  // BH vs tiled on the measured slice
};

KernelResult run_kernel_cell(const KernelCell& cell, long reps) {
  const auto particles = nbody::init_plummer(cell.n, 20240101);
  std::vector<Vec3> pos(cell.n);
  std::vector<double> mass(cell.n);
  for (std::size_t i = 0; i < cell.n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }

  KernelResult r;
  r.slice = std::min(cell.n, kExactSliceTargets);
  const std::span<const Vec3> slice_pos(pos.data(), r.slice);

  std::vector<Vec3> exact(r.slice);
  r.tiled_slice_seconds = 1e300;
  for (long rep = 0; rep < reps; ++rep) {
    exact.assign(r.slice, Vec3{});
    const auto start = std::chrono::steady_clock::now();
    nbody::kernels::accumulate(nbody::kernels::ForceKernel::Tiled, slice_pos,
                               pos, mass, kKernelSoftening2, 0, exact);
    r.tiled_slice_seconds = std::min(r.tiled_slice_seconds, now_seconds(start));
  }
  r.tiled_full_seconds = r.tiled_slice_seconds *
                         (static_cast<double>(cell.n) /
                          static_cast<double>(r.slice));

  std::vector<Vec3> tree(cell.n);
  r.bh_seconds = 1e300;
  for (long rep = 0; rep < reps; ++rep) {
    tree.assign(cell.n, Vec3{});
    const auto start = std::chrono::steady_clock::now();
    r.bh_interactions = nbody::kernels::bh_accumulate(
        pos, pos, mass, kKernelSoftening2, 0, tree, kBhTheta);
    r.bh_seconds = std::min(r.bh_seconds, now_seconds(start));
  }

  // Error metric of bh_tree.hpp: max |Δa| over the slice, relative to the
  // slice's rms |a|.
  double max_err = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < r.slice; ++i) {
    const Vec3 d = tree[i] - exact[i];
    max_err = std::max(max_err, std::sqrt(d.norm2()));
    sum2 += exact[i].norm2();
  }
  r.max_rel_error = max_err / std::sqrt(sum2 / static_cast<double>(r.slice));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const int jobs = runtime::jobs_from_cli(cli);
  const long reps = cli.get_int("reps", 2);
  const bool quick = cli.get_bool("quick");
  const std::string out = cli.get("out", "BENCH_scaling.json");
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  // ---- collectives ----
  std::vector<CollCell> coll_cells;
  const std::vector<std::size_t> coll_p =
      quick ? std::vector<std::size_t>{4, 16, 64}
            : std::vector<std::size_t>{4, 16, 64, 256, 1024};
  for (const std::size_t p : coll_p)
    for (const CollectiveAlgo algo :
         {CollectiveAlgo::Flat, CollectiveAlgo::Tree})
      coll_cells.push_back({p, algo});

  std::printf("collectives: %zu cells (%d rounds each), jobs=%d\n",
              coll_cells.size(), kCollectiveRounds, jobs);
  const std::vector<CollResult> coll_results =
      runtime::sweep_map(coll_cells, jobs, run_collective_cell);

  obs::Json coll_json = obs::Json::array();
  std::printf("\n     p  algo  t_comm_s   messages       bytes\n");
  for (std::size_t i = 0; i < coll_cells.size(); ++i) {
    const CollCell& cell = coll_cells[i];
    const CollResult& r = coll_results[i];
    const std::string algo_name(runtime::collective_algo_name(cell.algo));
    std::printf("  %4zu  %-4s  %8.3f  %9llu  %10llu\n", cell.p,
                algo_name.c_str(), r.makespan,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes));
    obs::Json c = obs::Json::object();
    c.set("p", cell.p);
    c.set("algo", algo_name);
    c.set("t_comm_seconds", r.makespan);
    c.set("messages", r.messages);
    c.set("bytes", r.bytes);
    coll_json.push_back(std::move(c));
  }

  // ---- engine ----
  const long iterations = quick ? 4 : 8;
  std::vector<EngineCell> engine_cells;
  const std::vector<std::size_t> engine_p =
      quick ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{16, 64, 256, 512};
  for (const std::size_t p : engine_p)
    for (const int fw : {-1, 1, 4}) engine_cells.push_back({p, fw});

  std::printf("\nengine: %zu cells (N=2048, %ld iterations)\n",
              engine_cells.size(), iterations);
  const std::vector<nbody::NBodyRunResult> engine_results = runtime::sweep_map(
      engine_cells, jobs, [&](const EngineCell& cell) {
        return nbody::run_scenario(make_engine_scenario(cell, iterations));
      });

  obs::Json engine_json = obs::Json::array();
  std::printf("\n     p  mode      makespan_s  t_comm/iter  speedup\n");
  std::size_t baseline_index = 0;  // cells run baseline-first per p
  for (std::size_t i = 0; i < engine_cells.size(); ++i) {
    const EngineCell& cell = engine_cells[i];
    const nbody::NBodyRunResult& r = engine_results[i];
    if (cell.fw < 0) baseline_index = i;
    const double baseline = engine_results[baseline_index].sim.makespan_seconds;
    const double speedup = baseline / r.sim.makespan_seconds;
    const std::string mode =
        cell.fw < 0 ? "baseline" : "fw" + std::to_string(cell.fw);
    std::printf("  %4zu  %-8s  %10.2f  %11.3f  %7.3f\n", cell.p, mode.c_str(),
                r.sim.makespan_seconds, r.mean_comm_per_iteration, speedup);
    obs::Json c = obs::Json::object();
    c.set("p", cell.p);
    c.set("mode", mode);
    c.set("forward_window", cell.fw < 0 ? 0 : cell.fw);
    c.set("makespan_seconds", r.sim.makespan_seconds);
    c.set("mean_comm_per_iteration_seconds", r.mean_comm_per_iteration);
    c.set("speedup_vs_baseline", speedup);
    c.set("messages", r.sim.channel_stats.messages);
    engine_json.push_back(std::move(c));
  }

  // ---- kernel ----
  std::vector<KernelCell> kernel_cells;
  for (const std::size_t n :
       quick ? std::vector<std::size_t>{16384, 49152}
             : std::vector<std::size_t>{32768, 131072, 524288})
    kernel_cells.push_back({n});

  std::printf("\nkernel: %zu cells (theta=%.1f, reps=%ld, slice=%zu)\n",
              kernel_cells.size(), kBhTheta, reps, kExactSliceTargets);
  obs::Json kernel_json = obs::Json::array();
  bool bound_ok = true;
  std::printf(
      "\n        N  tiled_full_s(x)   bh_s  speedup  interactions  "
      "max_rel_err\n");
  for (const KernelCell& cell : kernel_cells) {
    const KernelResult r = run_kernel_cell(cell, reps);
    bound_ok = bound_ok && r.max_rel_error < kBhErrorBound;
    const double speedup = r.tiled_full_seconds / r.bh_seconds;
    std::printf("  %7zu  %15.2f  %5.2f  %7.1f  %12zu  %11.2e%s\n", cell.n,
                r.tiled_full_seconds, r.bh_seconds, speedup, r.bh_interactions,
                r.max_rel_error,
                r.max_rel_error < kBhErrorBound ? "" : "  BOUND MISSED");
    obs::Json c = obs::Json::object();
    c.set("n", cell.n);
    c.set("slice_targets", r.slice);
    c.set("tiled_slice_seconds", r.tiled_slice_seconds);
    c.set("tiled_full_seconds_extrapolated", r.tiled_full_seconds);
    c.set("bh_seconds", r.bh_seconds);
    c.set("bh_interactions", r.bh_interactions);
    c.set("speedup_extrapolated", speedup);
    c.set("max_rel_error_slice", r.max_rel_error);
    kernel_json.push_back(std::move(c));
  }

  obs::Json report = obs::Json::object();
  report.set("schema", "specomp.bench_scaling.v1");
  report.set("schema_version", 1);
  report.set("grid", [&] {
    obs::Json g = obs::Json::object();
    g.set("quick", quick);
    g.set("collective_rounds", kCollectiveRounds);
    g.set("engine_bodies", 2048);
    g.set("engine_iterations", iterations);
    g.set("bh_theta", kBhTheta);
    g.set("bh_error_bound", kBhErrorBound);
    g.set("exact_slice_targets", kExactSliceTargets);
    g.set("reps", reps);
    return g;
  }());
  report.set("collectives", std::move(coll_json));
  report.set("engine", std::move(engine_json));
  report.set("kernel", std::move(kernel_json));
  report.set(
      "notes",
      "collectives: t_comm is the simulated makespan of pure collective "
      "rounds on a switched fabric — flat grows linearly in p (allgather "
      "p(p-1) messages), tree logarithmically per rank.  engine: Fig. 7 "
      "baseline vs speculative FW=1 on the same fabric; speedup > 1 means "
      "speculation hides the exchange latency at that p.  kernel: "
      "wall-clock; tiled O(N^2) is measured on a fixed target slice and "
      "extrapolated linearly to full N (marked x), Barnes-Hut runs all N "
      "targets; max_rel_error is checked against the documented theta=0.5 "
      "bound.  Simulated sections are deterministic at any --jobs; kernel "
      "wall-clock varies with the host.");

  if (!obs::atomic_write_file(out, report.dump(2) + "\n")) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!bound_ok) {
    std::fprintf(stderr, "error: tree kernel missed its error bound\n");
    return 1;
  }
  return 0;
}

// Ablation the paper leaves as future work (Section 5: "using higher order
// derivatives may increase the accuracy of speculation but make the
// speculation function more complex. This tradeoff has not yet been
// studied"): sweep the speculation function / backward window.
//
//   kinematic  BW=1  paper eq. 10 (position + velocity * dt)
//   hold-last  BW=1  x*(t+s) = x(t)
//   linear     BW=2  two-point extrapolation on the raw block
//   quadratic  BW=3  three-point extrapolation on the raw block
//
// Reported: speculation-error distribution, rejection fraction k, correction
// cost and iteration time on the calibrated testbed.
#include <cstdio>
#include <iostream>

#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "spec/speculator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("bench_ablation_bw", cli);
  const long iterations = cli.get_int("iterations", 10);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));

  std::printf(
      "Ablation — speculation function / backward window (N-body, %zu procs, "
      "FW = 2, theta = 0.01)\n\n",
      p);
  support::Table table({"speculator", "BW", "k %", "mean error", "max error",
                        "correct s/iter", "time/iter (s)"});
  for (const char* name : {"kinematic", "hold-last", "linear", "quadratic"}) {
    NBodyScenario s = paper_testbed_scenario(p, iterations);
    s.forward_window = 2;
    s.speculator = name;
    const NBodyRunResult run = run_scenario(s);
    const std::size_t bw = std::string(name) == "kinematic" ? 1
                           : spec::make_speculator(name)->backward_window();
    table.row()
        .add(name)
        .add(bw)
        .add(run.spec.failure_fraction() * 100.0, 2)
        .add(run.spec.error.mean(), 6)
        .add(run.spec.error.max(), 6)
        .add(run.mean_correct_per_iteration, 3)
        .add(run.time_per_iteration, 2);
  }
  std::cout << table;
  std::printf(
      "\nexpectation: structure-aware kinematic speculation (the paper's "
      "eq. 10) beats generic extrapolation of the packed blocks; hold-last "
      "is worst.\n");
  artifacts.add_table("ablation_bw", table);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

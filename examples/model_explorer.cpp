// Interactive exploration of the Section-4 performance model.
//
//   $ ./examples/model_explorer                      # paper defaults
//   $ ./examples/model_explorer --k 0.05 --ratio 4   # heavier errors, milder fleet
//   $ ./examples/model_explorer --fspec-ratio 100    # the paper's literal ratio
//
// Prints the speedup curves with/without speculation, the per-processor
// breakdown of eq. 8 at p = 16, and a k-sweep — useful for reasoning about
// when speculative computation pays off on a given platform.
#include <cstdio>
#include <iostream>

#include "model/perf_model.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("model_explorer", cli);

  model::ModelParams params = model::paper_figure5_params(cli.get_double("k", 0.02));
  params.total_variables =
      static_cast<std::size_t>(cli.get_int("n", 1000));
  if (cli.has("fspec-ratio"))
    params.f_spec = params.f_comp / cli.get_double("fspec-ratio", 500.0);
  if (cli.has("fcheck-ratio"))
    params.f_check = params.f_comp / cli.get_double("fcheck-ratio", 250.0);
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 16));
  params.cluster = runtime::Cluster::linear(
      procs, 12.0e6, cli.get_double("ratio", 10.0));
  const model::PerfModel perf(params);

  std::printf("model parameters: N=%zu f_comp=%g f_spec=%g f_check=%g k=%.1f%% "
              "t_comm(p)=%.4g+%.4gp\n\n",
              params.total_variables, params.f_comp, params.f_spec,
              params.f_check, params.k * 100.0, params.t_comm_base,
              params.t_comm_slope);

  support::Table speedups({"p", "no spec", "spec", "max", "gain %"});
  for (std::size_t p = 1; p <= procs; ++p)
    speedups.row()
        .add(p)
        .add(perf.speedup_no_spec(p), 2)
        .add(perf.speedup_spec(p), 2)
        .add(perf.max_speedup(p), 2)
        .add(perf.improvement(p) * 100.0, 1);
  std::cout << speedups << "\n";

  std::printf("per-processor iteration time at p = %zu (eq. 8 terms):\n\n", procs);
  support::Table breakdown({"i", "M_i", "N_i", "t_hat_i (s)"});
  for (std::size_t i = 0; i < procs; ++i)
    breakdown.row()
        .add(i + 1)
        .add(params.cluster.machine(i).ops_per_sec, 0)
        .add(perf.allocation(i, procs), 1)
        .add(perf.iteration_time_spec(i, procs), 4);
  std::cout << breakdown << "\n";

  std::printf("sensitivity to the recomputation fraction k at p = %zu:\n\n",
              procs == 1 ? 1 : procs / 2);
  const std::size_t half = procs == 1 ? 1 : procs / 2;
  support::Table ks({"k %", "spec speedup"});
  for (double k = 0.0; k <= 0.201; k += 0.02) {
    model::ModelParams kp = params;
    kp.k = k;
    ks.row().add(k * 100.0, 0).add(model::PerfModel(kp).speedup_spec(half), 2);
  }
  std::cout << ks;

  artifacts.add_table("speedups", speedups);
  artifacts.add_table("breakdown", breakdown);
  artifacts.add_table("k_sweep", ks);
  artifacts.add_entry("k", obs::Json(params.k));
  artifacts.add_entry("procs", obs::Json(procs));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

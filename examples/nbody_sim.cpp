// Full N-body reproduction driver with command-line control.
//
//   $ ./examples/nbody_sim --p 16 --fw 1 --theta 0.01 --iterations 10
//   $ ./examples/nbody_sim --p 8 --fw 2 --init disk --speculator quadratic
//
// Runs the paper's Section-5 case study on the calibrated simulated testbed
// and reports per-phase times, speculation statistics, speedup against the
// fastest single machine, and physics diagnostics (energy drift, momentum).
#include <cstdio>
#include <stdexcept>
#include <string>

#include "nbody/energy.hpp"
#include "nbody/init.hpp"
#include "nbody/integrators/integrator.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/scenario.hpp"
#include "obs/artifacts.hpp"
#include "runtime/collective_algo.hpp"
#include "runtime/fault.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace specomp;
  using namespace specomp::nbody;
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("nbody_sim", cli);

  NBodyScenario s = paper_testbed_scenario(
      static_cast<std::size_t>(cli.get_int("p", 16)),
      cli.get_int("iterations", 10), static_cast<std::uint64_t>(cli.get_int("seed", 0x5eedc0ffee)));
  s.body.n = static_cast<std::size_t>(cli.get_int("n", 1000));
  s.body.dt = cli.get_double("dt", s.body.dt);
  s.forward_window = static_cast<int>(cli.get_int("fw", 1));
  s.theta = cli.get_double("theta", 0.01);
  s.speculator = cli.get("speculator", "kinematic");
  // Run-time controllers (DESIGN.md §13).  Fail fast on unknown names: a
  // silently ignored policy would taint a whole measurement campaign.
  const std::string window_policy_arg = cli.get("window-policy", "static");
  const std::string theta_policy_arg = cli.get("theta-policy", "static");
  if (!spec::parse_window_policy(window_policy_arg)) {
    std::fprintf(stderr,
                 "error: unknown --window-policy '%s' (want "
                 "static|heuristic|hill-climb|model)\n",
                 window_policy_arg.c_str());
    return 1;
  }
  if (!spec::parse_theta_policy(theta_policy_arg)) {
    std::fprintf(stderr,
                 "error: unknown --theta-policy '%s' (want static|adaptive)\n",
                 theta_policy_arg.c_str());
    return 1;
  }
  if (window_policy_arg != "static") s.window_policy = window_policy_arg;
  if (theta_policy_arg != "static") {
    if (s.theta <= 0.0) {
      std::fprintf(stderr,
                   "error: --theta-policy=%s needs --theta > 0 (the initial "
                   "threshold the controller adapts from)\n",
                   theta_policy_arg.c_str());
      return 1;
    }
    s.theta_policy = theta_policy_arg;
  }
  if (cli.get_bool("baseline")) s.algorithm = Algorithm::Fig7Baseline;
  const std::string init = cli.get("init", "plummer");
  s.body.init = init == "cube"   ? InitKind::UniformCube
                : init == "disk" ? InitKind::RotatingDisk
                                 : InitKind::Plummer;
  s.sim.record_trace = artifacts.wants_trace();
  // Distribution capture is cheap (fixed-size sketches) but only useful to
  // a report reader, so it follows --report-out.
  s.sim.record_dists = artifacts.wants_report();
  // Happens-before detector (needs a -DSPECOMP_HB_CHECK=ON build; see
  // runtime/hb_check.hpp).  Aborts with a causal-path diagnostic on any
  // unsynchronized delivery instead of silently corrupting the measurement.
  s.sim.hb_check = cli.get_bool("hb-check");
  // Fault injection (DESIGN.md §9): --fault-plan=drop:0.05,... arms the
  // deterministic FaultPlan on every link and switches the engine into
  // graceful degradation so overdue peers are masked by speculation rather
  // than blocking the pipeline.
  const std::string fault_spec = cli.get("fault-plan", "");
  if (!fault_spec.empty()) {
    runtime::FaultPlanConfig fault_config;
    // Healthy round trips on the calibrated testbed are ~6 s; size the ARQ
    // backoff so a retransmitted block is late, not geologically late.
    fault_config.retransmit_timeout_seconds = 4.0;
    fault_config.seed =
        static_cast<std::uint64_t>(cli.get_int("fault-seed", 0xfa017));
    std::string fault_error;
    if (!runtime::parse_fault_plan(fault_spec, fault_config, fault_error)) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   fault_error.c_str());
      return 1;
    }
    s.sim.fault =
        std::make_shared<const runtime::FaultPlan>(std::move(fault_config));
    s.graceful_degradation = true;
  }
  // --kernel and --bh-theta fail fast: a silently ignored tier (or an
  // opening angle that cannot influence the forced kernel) would taint a
  // whole measurement campaign.
  const std::string kernel_arg = cli.get("kernel", "auto");
  std::string cli_error;
  const auto kernel = kernels::parse_force_kernel_cli(kernel_arg, cli_error);
  if (!kernel) {
    std::fprintf(stderr, "error: %s\n", cli_error.c_str());
    return 1;
  }
  kernels::set_default_force_kernel(*kernel);
  if (cli.has("bh-theta") && !kernels::kernel_uses_bh_theta(*kernel)) {
    std::fprintf(stderr,
                 "error: --bh-theta only affects the Barnes-Hut tier, but "
                 "--kernel=%s never runs it (use --kernel=tree or auto)\n",
                 kernel_arg.c_str());
    return 1;
  }
  kernels::set_bh_opening_angle(
      cli.get_double("bh-theta", kernels::bh_opening_angle()));
  s.body.integrator = cli.get("integrator", s.body.integrator);
  if (!integrators::make_integrator_cli(s.body.integrator, cli_error)) {
    std::fprintf(stderr, "error: %s\n", cli_error.c_str());
    return 1;
  }
  const std::string collective_arg = cli.get("collective", "auto");
  if (const auto algo = runtime::parse_collective_algo(collective_arg)) {
    runtime::set_default_collective_algo(*algo);
    s.sim.collective = *algo;
  } else {
    std::fprintf(stderr,
                 "warning: unknown --collective '%s' (want flat|tree|auto); "
                 "keeping auto\n",
                 collective_arg.c_str());
  }
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const auto initial = make_initial_conditions(s.body);
  const Diagnostics before = compute_diagnostics(initial, s.body.softening2);

  const NBodyRunResult run = run_scenario(s);

  // Speedup baseline: same workload on the fastest machine alone.  Always
  // fault-free — faults degrade the parallel run, not the yardstick.
  NBodyScenario serial = s;
  serial.sim.cluster = runtime::Cluster::paper_fleet().prefix(1);
  serial.algorithm = Algorithm::Speculative;
  serial.forward_window = 0;
  serial.sim.fault = nullptr;
  serial.graceful_degradation = false;
  const double t1 = run_scenario(serial).sim.makespan_seconds;

  const Diagnostics after =
      compute_diagnostics(run.final_particles, s.body.softening2);

  std::printf("N-body: %zu particles, %zu processors, FW=%d, theta=%g, %s\n",
              s.body.n, s.sim.cluster.size(), s.forward_window, s.theta,
              s.algorithm == Algorithm::Fig7Baseline ? "Fig.7 baseline"
                                                     : "speculative engine");
  std::printf("\nper-iteration phase times (mean over ranks):\n");
  std::printf("  compute      %8.3f s\n", run.mean_compute_per_iteration);
  std::printf("  communicate  %8.3f s\n", run.mean_comm_per_iteration);
  std::printf("  speculate    %8.3f s\n", run.mean_speculate_per_iteration);
  std::printf("  check        %8.3f s\n", run.mean_check_per_iteration);
  std::printf("  correct      %8.3f s\n", run.mean_correct_per_iteration);
  std::printf("  -- makespan  %8.3f s  (%.3f s per iteration)\n",
              run.sim.makespan_seconds, run.time_per_iteration);
  std::printf("\nspeculation: %llu speculated, %llu checked, %llu failed "
              "(k = %.2f%%), %llu corrected in place, %llu iterations replayed\n",
              static_cast<unsigned long long>(run.spec.blocks_speculated),
              static_cast<unsigned long long>(run.spec.checks),
              static_cast<unsigned long long>(run.spec.failures),
              run.spec.failure_fraction() * 100.0,
              static_cast<unsigned long long>(run.spec.incremental_corrections),
              static_cast<unsigned long long>(run.spec.replayed_iterations));
  if (run.spec.checks > 0)
    std::printf("  speculation error: mean %.2e, max %.2e (threshold %g)\n",
                run.spec.error.mean(), run.spec.error.max(), s.theta);
  if (!s.window_policy.empty() || !s.theta_policy.empty()) {
    std::printf(
        "adaptive control: policy %s/%s, max window used %d, theta range "
        "[%g, %g] (%llu adjustments), max cascade depth %d\n",
        s.window_policy.empty() ? "static" : s.window_policy.c_str(),
        s.theta_policy.empty() ? "static" : s.theta_policy.c_str(),
        run.spec.max_window_used, run.spec.theta_min_used,
        run.spec.theta_max_used,
        static_cast<unsigned long long>(run.spec.theta_adjustments),
        run.spec.max_cascade_depth);
  }
  std::printf("\nspeedup vs fastest single machine: %.2f (max attainable %.2f)\n",
              t1 / run.sim.makespan_seconds,
              s.sim.cluster.max_speedup());
  std::printf("\nphysics: energy %+.6f -> %+.6f (drift %.3f%%), |momentum| %.2e\n",
              before.total_energy(), after.total_energy(),
              std::fabs(after.total_energy() - before.total_energy()) /
                  std::fabs(before.total_energy()) * 100.0,
              after.momentum.norm());
  std::printf("network: %llu messages, %.1f MB, mean delay %.3f s\n",
              static_cast<unsigned long long>(run.sim.channel_stats.messages),
              static_cast<double>(run.sim.channel_stats.bytes) / 1e6,
              run.sim.channel_stats.delay_seconds.mean());
  if (s.sim.fault != nullptr) {
    const runtime::FaultStats& fs = run.sim.fault_stats;
    std::printf(
        "faults: %llu drops (%llu retransmits, %llu lost), %llu dups "
        "(%llu suppressed), %llu reorders, %llu slowdowns, %llu stalls, "
        "%llu crashed ranks\n",
        static_cast<unsigned long long>(fs.injected_drops),
        static_cast<unsigned long long>(fs.retransmits),
        static_cast<unsigned long long>(fs.messages_lost),
        static_cast<unsigned long long>(fs.injected_duplicates),
        static_cast<unsigned long long>(fs.duplicates_suppressed),
        static_cast<unsigned long long>(fs.injected_reorders),
        static_cast<unsigned long long>(fs.slowdown_charges),
        static_cast<unsigned long long>(fs.stalls),
        static_cast<unsigned long long>(fs.crashed_ranks));
    std::printf(
        "degraded mode: entered %llu times, %llu iterations computed past "
        "FW\n",
        static_cast<unsigned long long>(run.spec.degraded_entries),
        static_cast<unsigned long long>(run.spec.degraded_iterations));
  }

  obs::RunReport report;
  report.binary = "nbody_sim";
  report.algorithm = s.algorithm == Algorithm::Fig7Baseline ? "fig7-baseline"
                                                            : "speculative";
  report.speculator = s.forward_window > 0 ? s.speculator : "";
  report.forward_window = s.forward_window;
  report.theta = s.theta;
  report.iterations = s.iterations;
  report.makespan_seconds = run.sim.makespan_seconds;
  report.fill_cluster(s.sim.cluster);
  report.fill_phases(run.sim.timers, s.iterations);
  report.fill_spec(run.spec);
  report.fill_channel(run.sim.channel_stats);
  report.fill_dists(run.sim.dists);
  report.extra.set("bodies", obs::Json(s.body.n));
  report.extra.set("force_kernel",
                   obs::Json(std::string(kernels::force_kernel_name(
                       kernels::default_force_kernel()))));
  report.extra.set("integrator", obs::Json(s.body.integrator));
  report.extra.set("collective",
                   obs::Json(std::string(runtime::collective_algo_name(
                       runtime::resolve_collective_algo(
                           s.sim.collective,
                           static_cast<int>(s.sim.cluster.size()))))));
  report.extra.set("window_policy",
                   obs::Json(s.window_policy.empty() ? std::string("static")
                                                     : s.window_policy));
  report.extra.set("theta_policy",
                   obs::Json(s.theta_policy.empty() ? std::string("static")
                                                    : s.theta_policy));
  report.extra.set("speedup_vs_single", obs::Json(t1 / run.sim.makespan_seconds));
  report.extra.set("energy_drift_fraction",
                   obs::Json(std::fabs(after.total_energy() - before.total_energy()) /
                             std::fabs(before.total_energy())));
  if (s.sim.fault != nullptr) {
    const runtime::FaultStats& fs = run.sim.fault_stats;
    report.extra.set("fault_plan", obs::Json(fault_spec));
    report.extra.set("fault_injected_drops", obs::Json(fs.injected_drops));
    report.extra.set("fault_retransmits", obs::Json(fs.retransmits));
    report.extra.set("fault_messages_lost", obs::Json(fs.messages_lost));
    report.extra.set("fault_injected_duplicates",
                     obs::Json(fs.injected_duplicates));
    report.extra.set("fault_duplicates_suppressed",
                     obs::Json(fs.duplicates_suppressed));
    report.extra.set("fault_injected_reorders",
                     obs::Json(fs.injected_reorders));
    report.extra.set("fault_crashed_ranks", obs::Json(fs.crashed_ranks));
    report.extra.set("degraded_entries", obs::Json(run.spec.degraded_entries));
    report.extra.set("degraded_iterations",
                     obs::Json(run.spec.degraded_iterations));
  }
  artifacts.set_run_report(report);
  if (artifacts.wants_trace())
    artifacts.set_trace(run.sim.trace, s.sim.cluster.size());
  return artifacts.flush() ? 0 : 1;
}

// ASCII Gantt reproduction of the paper's Figures 2 and 4.
//
//   $ ./examples/timeline_demo
//
// Three two-processor timelines:
//   (a) no speculation        — processors idle while messages are in flight;
//   (b) FW = 1, good guesses  — waits replaced by speculative compute;
//   (c) FW = 1 under a transient spike, then FW = 2 riding through it
//       (the paper's Figure 4).
// Legend: C compute, * speculative compute, s speculate, k check,
// R correct/recompute, . wait, > send, ! event.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/artifacts.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "support/cli.hpp"

using namespace specomp;

namespace {

/// One variable per rank, smooth drift — speculation-friendly.
class DriftApp final : public spec::SyncIterativeApp {
 public:
  DriftApp(int rank, int size) : rank_(rank), view_(static_cast<std::size_t>(size)) {
    for (int r = 0; r < size; ++r) view_[static_cast<std::size_t>(r)] = r;
    x_ = rank;
  }
  static std::vector<std::vector<double>> initial_blocks(int size) {
    std::vector<std::vector<double>> blocks(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) blocks[static_cast<std::size_t>(r)] = {double(r)};
    return blocks;
  }
  std::vector<double> pack_local() const override { return {x_}; }
  void install_peer(int peer, std::span<const double> block) override {
    view_[static_cast<std::size_t>(peer)] = block[0];
  }
  void compute_step() override { x_ += 0.25; }
  double compute_ops() const override { return 1e6; }  // 1 s at 1e6 ops/s
  double speculation_error(int, std::span<const double> a,
                           std::span<const double> b) override {
    return std::fabs(a[0] - b[0]);
  }
  double check_ops(int) const override { return 5e4; }
  std::vector<double> save_state() const override { return {x_}; }
  void restore_state(std::span<const double> s) override { x_ = s[0]; }

 private:
  int rank_;
  double x_;
  // specomp: rollback-covered(view_): install_peer rewrites entries during
  // replay and compute_step never reads them
  std::vector<double> view_;
};

des::Trace run_timeline(int forward_window, double threshold,
                        double spike_seconds) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(2, 1e6);
  config.channel.propagation = des::SimTime::millis(600);
  config.send_sw_time = des::SimTime::millis(20);
  config.record_trace = true;
  if (spike_seconds > 0.0) {
    config.channel.extra_delay =
        std::make_shared<net::TransientSpike>(std::vector<net::SpikeRule>{
            {0, 1, des::SimTime::seconds(1.0), des::SimTime::seconds(2.2),
             des::SimTime::seconds(spike_seconds)}});
  }
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](runtime::Communicator& comm) {
        DriftApp app(comm.rank(), comm.size());
        spec::EngineConfig engine_config;
        engine_config.forward_window = forward_window;
        engine_config.threshold = threshold;
        if (forward_window > 0)
          engine_config.speculator = spec::make_speculator("linear");
        spec::SpecEngine engine(comm, app, engine_config,
                                DriftApp::initial_blocks(comm.size()));
        engine.run(/*iterations=*/6);
      });
  return result.trace;
}

des::Trace show(const char* title, int fw, double threshold, double spike) {
  std::printf("%s\n", title);
  des::Trace trace = run_timeline(fw, threshold, spike);
  std::fputs(trace.gantt(2, 96).c_str(), stdout);
  std::printf("\n");
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("timeline_demo", cli);
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  std::printf("Figure 2 — two processors, slow channel, 6 iterations\n\n");
  show("(a) no speculation (FW = 0): dots are time lost waiting", 0, 0.01, 0.0);
  show("(b) speculation, all guesses within bounds (FW = 1)", 1, 1e9, 0.0);
  show("(c) speculation with every guess rejected (theta = 0): recomputation "
       "R follows each check k",
       1, 0.0, 0.0);
  std::printf("Figure 4 — a 3 s transient delay hits the P0->P1 path\n\n");
  show("(a) FW = 0 pays the transient in full", 0, 0.01, 3.0);
  show("(b) FW = 1 partially masks it", 1, 1e9, 3.0);
  // The Figure 4(c) timeline — speculating through the transient — is the
  // one exported when --trace-out is given.
  const des::Trace fig4c = show("(c) FW = 2 speculates through it", 2, 1e9, 3.0);
  if (artifacts.wants_trace()) artifacts.set_trace(fig4c, 2);
  artifacts.add_entry("figure", obs::Json("4c"));
  return artifacts.flush() ? 0 : 1;
}

// Quickstart: speculative computation in ~80 lines.
//
// Defines a tiny synchronous iterative application (each rank integrates a
// damped oscillator coupled to every other rank's state), runs it on the
// simulated heterogeneous cluster twice — without speculation (FW = 0) and
// with it (FW = 1) — and prints the speedup the paper's technique buys on a
// latency-bound network.
//
//   $ ./examples/quickstart
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/artifacts.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "support/cli.hpp"

using namespace specomp;

namespace {

/// Each rank owns one oscillator; the coupling term needs every peer's
/// position each iteration — the paper's Section 2 model with n = p.
class CoupledOscillators final : public spec::SyncIterativeApp {
 public:
  CoupledOscillators(int rank, int size)
      : rank_(rank), view_(static_cast<std::size_t>(size), 0.0) {
    for (int r = 0; r < size; ++r)
      view_[static_cast<std::size_t>(r)] = initial(r);
    x_ = initial(rank);
    v_ = 0.0;
  }

  static double initial(int rank) { return std::sin(1.0 + rank); }
  static std::vector<std::vector<double>> initial_blocks(int size) {
    std::vector<std::vector<double>> blocks(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) blocks[static_cast<std::size_t>(r)] = {initial(r)};
    return blocks;
  }

  std::vector<double> pack_local() const override { return {x_}; }
  void install_peer(int peer, std::span<const double> block) override {
    view_[static_cast<std::size_t>(peer)] = block[0];
  }
  void compute_step() override {
    view_[static_cast<std::size_t>(rank_)] = x_;
    double mean = 0.0;
    for (double p : view_) mean += p;
    mean /= static_cast<double>(view_.size());
    const double dt = 0.05;
    v_ += dt * (-x_ - 0.4 * (x_ - mean) - 0.05 * v_);
    x_ += dt * v_;
  }
  double compute_ops() const override { return 2e5; }  // pretend it's heavy
  double speculation_error(int, std::span<const double> speculated,
                           std::span<const double> actual) override {
    return std::fabs(speculated[0] - actual[0]);
  }
  double check_ops(int) const override { return 10.0; }
  std::vector<double> save_state() const override { return {x_, v_}; }
  void restore_state(std::span<const double> s) override {
    x_ = s[0];
    v_ = s[1];
  }

 private:
  // specomp: rollback-covered(rank_): immutable rank index; only ever read
  int rank_;
  double x_ = 0.0;
  double v_ = 0.0;
  // specomp: rollback-covered(view_): peer entries are rewritten by
  // install_peer during replay and the own entry by compute_step before the
  // coupling mean is read
  std::vector<double> view_;
};

runtime::SimResult run(int forward_window, bool record_trace) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(8, 1e6);
  // A latency-bound channel: messages take ~100 ms regardless of size,
  // against ~200 ms of compute per iteration — the paper's sweet spot.
  config.channel.propagation = des::SimTime::millis(100);
  config.send_sw_time = des::SimTime::micros(200);
  config.record_trace = record_trace;

  return runtime::run_simulated(config, [&](runtime::Communicator& comm) {
    CoupledOscillators app(comm.rank(), comm.size());
    spec::EngineConfig engine_config;
    engine_config.forward_window = forward_window;
    engine_config.threshold = 0.01;
    if (forward_window > 0)
      engine_config.speculator = spec::make_speculator("linear");
    spec::SpecEngine engine(comm, app, engine_config,
                            CoupledOscillators::initial_blocks(comm.size()));
    engine.run(/*iterations=*/100);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("quickstart", cli);
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());

  const runtime::SimResult baseline = run(/*forward_window=*/0, false);
  const runtime::SimResult speculative =
      run(/*forward_window=*/1, artifacts.wants_trace());
  const double without = baseline.makespan_seconds;
  const double with_spec = speculative.makespan_seconds;
  std::printf("100 iterations on 8 simulated processors\n");
  std::printf("  without speculation : %.3f s\n", without);
  std::printf("  with speculation    : %.3f s\n", with_spec);
  std::printf("  improvement         : %.1f%%\n",
              (without / with_spec - 1.0) * 100.0);

  obs::RunReport report;
  report.binary = "quickstart";
  report.algorithm = "speculative";
  report.speculator = "linear";
  report.forward_window = 1;
  report.theta = 0.01;
  report.iterations = 100;
  report.makespan_seconds = with_spec;
  report.fill_phases(speculative.timers, 100);
  report.fill_channel(speculative.channel_stats);
  report.extra.set("baseline_makespan_seconds", obs::Json(without));
  artifacts.set_run_report(report);
  if (artifacts.wants_trace()) artifacts.set_trace(speculative.trace, 8);
  return artifacts.flush() ? 0 : 1;
}

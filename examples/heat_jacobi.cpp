// Speculation beyond N-body: the two PDE-flavoured applications.
//
//   $ ./examples/heat_jacobi [--p 8] [--iterations 50]
//
// Solves a dense linear system by Jacobi iteration and integrates a 1-D
// heat equation, each with and without speculation, and reports time,
// accuracy and speculation statistics — the paper's generality claim in
// executable form.
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/heat.hpp"
#include "apps/jacobi.hpp"
#include "obs/artifacts.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace specomp;
using namespace specomp::apps;

namespace {

runtime::SimConfig latency_bound_network(std::size_t p) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::linear(p, 1e6, 4.0);
  config.channel.propagation = des::SimTime::millis(80);
  config.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(15));
  config.send_sw_time = des::SimTime::millis(1);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("heat_jacobi", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const long iterations = cli.get_int("iterations", 50);

  support::Table results({"app", "fw", "makespan_s", "accuracy", "k_percent"});

  std::printf("== Jacobi solver, 512 unknowns, %zu processors ==\n", p);
  for (const int fw : {0, 1}) {
    JacobiScenario s;
    s.n = 512;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-3;
    s.sim = latency_bound_network(p);
    s.sim.hb_check = cli.get_bool("hb-check");
    const JacobiRunResult run = run_jacobi_scenario(s);
    std::printf(
        "  FW=%d: %6.2f s, residual %.2e, k = %.1f%% (%llu corrections)\n",
        fw, run.sim.makespan_seconds, run.residual,
        run.spec.failure_fraction() * 100.0,
        static_cast<unsigned long long>(run.spec.incremental_corrections));
    results.row()
        .add("jacobi")
        .add(fw)
        .add(run.sim.makespan_seconds)
        .add(run.residual, 6)
        .add(run.spec.failure_fraction() * 100.0, 2);
  }

  // The heat stencil computes so little per iteration that one iteration of
  // slack cannot hide an 80 ms latency — FW = 2 pipelines two of them and
  // wins big, a nice illustration of choosing FW from the comm/comp ratio.
  std::printf("\n== 1-D heat diffusion, 1024 cells, %zu processors ==\n", p);
  for (const int fw : {0, 1, 2}) {
    HeatScenario s;
    s.problem.n = 1024;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-4;
    s.sim = latency_bound_network(p);
    s.sim.record_trace = fw == 2 && artifacts.wants_trace();
    s.sim.hb_check = cli.get_bool("hb-check");
    const HeatRunResult run = run_heat_scenario(s);
    const auto serial = serial_heat(s.problem, s.iterations);
    double deviation = 0.0;
    for (std::size_t i = 0; i < serial.size(); ++i)
      deviation = std::max(deviation, std::fabs(run.field[i] - serial[i]));
    std::printf(
        "  FW=%d: %6.2f s, max deviation from serial %.2e, k = %.1f%%\n", fw,
        run.sim.makespan_seconds, deviation,
        run.spec.failure_fraction() * 100.0);
    results.row()
        .add("heat")
        .add(fw)
        .add(run.sim.makespan_seconds)
        .add(deviation, 6)
        .add(run.spec.failure_fraction() * 100.0, 2);
    if (s.sim.record_trace) artifacts.set_trace(run.sim.trace, p);
  }

  std::printf(
      "\nthe same SpecEngine drives N-body, Jacobi and the heat stencil — "
      "only pack/compute/error/correct hooks differ per application.\n");

  artifacts.add_table("heat_jacobi", results);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

// Speculation beyond N-body: the two PDE-flavoured applications.
//
//   $ ./examples/heat_jacobi [--p 8] [--iterations 50]
//
// Solves a dense linear system by Jacobi iteration and integrates a 1-D
// heat equation, each with and without speculation, and reports time,
// accuracy and speculation statistics — the paper's generality claim in
// executable form.
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "apps/heat.hpp"
#include "apps/jacobi.hpp"
#include "obs/artifacts.hpp"
#include "spec/adaptive.hpp"
#include "runtime/collective_algo.hpp"
#include "runtime/fault.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace specomp;
using namespace specomp::apps;

namespace {

runtime::SimConfig latency_bound_network(std::size_t p) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::linear(p, 1e6, 4.0);
  config.channel.propagation = des::SimTime::millis(80);
  config.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(15));
  config.send_sw_time = des::SimTime::millis(1);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  obs::ArtifactWriter artifacts("heat_jacobi", cli);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const long iterations = cli.get_int("iterations", 50);

  // Fault injection (DESIGN.md §9): --fault-plan=drop:0.05,... injects
  // deterministic faults on every run below and arms the engine's graceful
  // degradation so overdue halos are speculated past FW instead of stalling.
  // Collective-algorithm selection (runtime/collective_algo.hpp): routes
  // the backends' barriers and any collectives through flat linear or
  // logarithmic tree algorithms.  Auto defers to the size heuristic.
  runtime::CollectiveAlgo collective = runtime::CollectiveAlgo::Auto;
  const std::string collective_arg = cli.get("collective", "auto");
  if (const auto algo = runtime::parse_collective_algo(collective_arg)) {
    runtime::set_default_collective_algo(*algo);
    collective = *algo;
  } else {
    std::fprintf(stderr,
                 "warning: unknown --collective '%s' (want flat|tree|auto); "
                 "keeping auto\n",
                 collective_arg.c_str());
  }

  // Run-time controllers (DESIGN.md §13): applied to the speculative (FW>0)
  // rows of both apps.  Fail fast on unknown names.
  const std::string window_policy_arg = cli.get("window-policy", "static");
  const std::string theta_policy_arg = cli.get("theta-policy", "static");
  if (!spec::parse_window_policy(window_policy_arg)) {
    std::fprintf(stderr,
                 "error: unknown --window-policy '%s' (want "
                 "static|heuristic|hill-climb|model)\n",
                 window_policy_arg.c_str());
    return 1;
  }
  if (!spec::parse_theta_policy(theta_policy_arg)) {
    std::fprintf(stderr,
                 "error: unknown --theta-policy '%s' (want static|adaptive)\n",
                 theta_policy_arg.c_str());
    return 1;
  }
  const std::string window_policy =
      window_policy_arg == "static" ? "" : window_policy_arg;
  const std::string theta_policy =
      theta_policy_arg == "static" ? "" : theta_policy_arg;

  runtime::FaultPlanPtr fault;
  const std::string fault_spec = cli.get("fault-plan", "");
  if (!fault_spec.empty()) {
    runtime::FaultPlanConfig fault_config;
    // The modelled LAN delivers in ~80-100 ms; a 1 s ARQ timeout makes a
    // retransmitted halo clearly late without freezing the pipeline.
    fault_config.retransmit_timeout_seconds = 1.0;
    fault_config.seed =
        static_cast<std::uint64_t>(cli.get_int("fault-seed", 0xfa017));
    std::string fault_error;
    if (!runtime::parse_fault_plan(fault_spec, fault_config, fault_error)) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   fault_error.c_str());
      return 1;
    }
    fault =
        std::make_shared<const runtime::FaultPlan>(std::move(fault_config));
  }
  runtime::FaultStats fault_total;
  std::uint64_t degraded_entries = 0;
  std::uint64_t degraded_iterations = 0;

  support::Table results({"app", "fw", "makespan_s", "accuracy", "k_percent"});

  std::printf("== Jacobi solver, 512 unknowns, %zu processors ==\n", p);
  for (const int fw : {0, 1}) {
    JacobiScenario s;
    s.n = 512;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-3;
    s.sim = latency_bound_network(p);
    s.sim.collective = collective;
    s.sim.hb_check = cli.get_bool("hb-check");
    s.sim.fault = fault;
    s.graceful_degradation = fault != nullptr;
    if (fw > 0) {
      s.window_policy = window_policy;
      s.theta_policy = theta_policy;
    }
    const JacobiRunResult run = run_jacobi_scenario(s);
    fault_total.merge(run.sim.fault_stats);
    degraded_entries += run.spec.degraded_entries;
    degraded_iterations += run.spec.degraded_iterations;
    std::printf(
        "  FW=%d: %6.2f s, residual %.2e, k = %.1f%% (%llu corrections)\n",
        fw, run.sim.makespan_seconds, run.residual,
        run.spec.failure_fraction() * 100.0,
        static_cast<unsigned long long>(run.spec.incremental_corrections));
    results.row()
        .add("jacobi")
        .add(fw)
        .add(run.sim.makespan_seconds)
        .add(run.residual, 6)
        .add(run.spec.failure_fraction() * 100.0, 2);
  }

  // The heat stencil computes so little per iteration that one iteration of
  // slack cannot hide an 80 ms latency — FW = 2 pipelines two of them and
  // wins big, a nice illustration of choosing FW from the comm/comp ratio.
  std::printf("\n== 1-D heat diffusion, 1024 cells, %zu processors ==\n", p);
  for (const int fw : {0, 1, 2}) {
    HeatScenario s;
    s.problem.n = 1024;
    s.iterations = iterations;
    s.forward_window = fw;
    s.theta = 1e-4;
    s.sim = latency_bound_network(p);
    s.sim.collective = collective;
    s.sim.record_trace = fw == 2 && artifacts.wants_trace();
    s.sim.hb_check = cli.get_bool("hb-check");
    s.sim.fault = fault;
    s.graceful_degradation = fault != nullptr;
    if (fw > 0) {
      s.window_policy = window_policy;
      s.theta_policy = theta_policy;
    }
    const HeatRunResult run = run_heat_scenario(s);
    fault_total.merge(run.sim.fault_stats);
    degraded_entries += run.spec.degraded_entries;
    degraded_iterations += run.spec.degraded_iterations;
    const auto serial = serial_heat(s.problem, s.iterations);
    double deviation = 0.0;
    for (std::size_t i = 0; i < serial.size(); ++i)
      deviation = std::max(deviation, std::fabs(run.field[i] - serial[i]));
    std::printf(
        "  FW=%d: %6.2f s, max deviation from serial %.2e, k = %.1f%%\n", fw,
        run.sim.makespan_seconds, deviation,
        run.spec.failure_fraction() * 100.0);
    results.row()
        .add("heat")
        .add(fw)
        .add(run.sim.makespan_seconds)
        .add(deviation, 6)
        .add(run.spec.failure_fraction() * 100.0, 2);
    if (s.sim.record_trace) artifacts.set_trace(run.sim.trace, p);
  }

  std::printf(
      "\nthe same SpecEngine drives N-body, Jacobi and the heat stencil — "
      "only pack/compute/error/correct hooks differ per application.\n");

  if (fault != nullptr) {
    std::printf(
        "\nfaults (all runs): %llu drops (%llu retransmits, %llu lost), "
        "%llu dups (%llu suppressed), %llu reorders; degraded mode entered "
        "%llu times, %llu iterations computed past FW\n",
        static_cast<unsigned long long>(fault_total.injected_drops),
        static_cast<unsigned long long>(fault_total.retransmits),
        static_cast<unsigned long long>(fault_total.messages_lost),
        static_cast<unsigned long long>(fault_total.injected_duplicates),
        static_cast<unsigned long long>(fault_total.duplicates_suppressed),
        static_cast<unsigned long long>(fault_total.injected_reorders),
        static_cast<unsigned long long>(degraded_entries),
        static_cast<unsigned long long>(degraded_iterations));
  }

  artifacts.add_table("heat_jacobi", results);
  artifacts.add_entry("processors", obs::Json(p));
  artifacts.add_entry("iterations", obs::Json(iterations));
  artifacts.add_entry("window_policy", obs::Json(window_policy_arg));
  artifacts.add_entry("theta_policy", obs::Json(theta_policy_arg));
  if (fault != nullptr) {
    artifacts.add_entry("fault_plan", obs::Json(fault_spec));
    artifacts.add_entry("fault_injected_drops",
                        obs::Json(fault_total.injected_drops));
    artifacts.add_entry("fault_retransmits",
                        obs::Json(fault_total.retransmits));
    artifacts.add_entry("fault_duplicates_suppressed",
                        obs::Json(fault_total.duplicates_suppressed));
    artifacts.add_entry("degraded_entries", obs::Json(degraded_entries));
    artifacts.add_entry("degraded_iterations",
                        obs::Json(degraded_iterations));
  }
  for (const auto& unknown : cli.unused())
    std::fprintf(stderr, "warning: unknown option --%s\n", unknown.c_str());
  return artifacts.flush() ? 0 : 1;
}

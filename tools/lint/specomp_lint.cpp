// specomp-lint CLI — walks the tree and enforces the determinism invariants.
//
//   $ specomp-lint --root . src bench tests          # what CI runs
//   $ specomp-lint --root . --out lint-report.txt src bench tests
//   $ specomp-lint --list-rules
//
// Exit status: 0 clean, 1 findings, 2 usage error.  See lint_core.hpp for
// the rule semantics and the suppression-directive policy.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "obs/atomic_file.hpp"

namespace {

void print_rules() {
  std::printf("specomp-lint rules:\n");
  for (const auto& rule : speclint::rules()) {
    std::printf("  %-18s %s\n", std::string(rule.id).c_str(),
                std::string(rule.summary).c_str());
    if (!rule.include_prefixes.empty()) {
      std::printf("  %-18s   scope:", "");
      for (const auto& p : rule.include_prefixes)
        std::printf(" %s", std::string(p).c_str());
      for (const auto& p : rule.exclude_prefixes)
        std::printf(" -%s", std::string(p).c_str());
      if (rule.headers_only) std::printf(" (headers only)");
      std::printf("\n");
    }
  }
  std::printf(
      "\nsuppress with: // specomp-lint: allow(<rule>): <justification>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out_path;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: specomp-lint [--root DIR] [--out FILE] "
                   "[--list-rules] [subdir...]\n");
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "bench", "tests"};

  std::vector<speclint::Finding> findings;
  const std::size_t files = speclint::lint_tree(root, subdirs, findings);

  std::string report;
  for (const auto& f : findings) {
    report += speclint::format_finding(f);
    report += '\n';
  }
  std::map<std::string, int> by_rule;
  for (const auto& f : findings) ++by_rule[f.rule];
  report += "specomp-lint: " + std::to_string(files) + " files, " +
            std::to_string(findings.size()) + " finding(s)";
  for (const auto& [rule, count] : by_rule)
    report += "  " + rule + "=" + std::to_string(count);
  report += '\n';

  std::fputs(report.c_str(), findings.empty() ? stdout : stderr);
  if (!out_path.empty()) {
    // Atomic (stage + rename) so CI never uploads a truncated report.
    const std::string headed =
        "# specomp-lint report\n# schema_version: 1\n" + report;
    if (!specomp::obs::atomic_write_file(out_path, headed)) {
      std::fprintf(stderr, "specomp-lint: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}

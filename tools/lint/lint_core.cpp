#include "lint_core.hpp"

#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace speclint {

using specscan::ScannedLine;
using specscan::Token;
using specscan::scan;
using specscan::tokenize;

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

// Directories whose code decides virtual time or executes inside the
// deterministic simulation world.  Wall-clock and ambient randomness there
// destroy run-to-run bit identity.
const std::vector<std::string_view> kDeterministicDirs = {
    "src/des/", "src/runtime/", "src/spec/", "src/nbody/"};

// Directories whose iteration order reaches serialized output or
// virtual-time decisions (the simulation world plus the telemetry
// serializers).  std::map is fine; unordered containers are not.
const std::vector<std::string_view> kOrderSensitiveDirs = {
    "src/des/", "src/runtime/", "src/spec/", "src/nbody/", "src/obs/"};

const std::vector<RuleSpec> kRules = {
    {"wall-clock",
     "wall-clock read (system_clock/steady_clock/time()/clock()/...) in "
     "deterministic simulation code",
     kDeterministicDirs,
     {},
     false},
    {"ambient-rand",
     "ambient randomness (rand()/random_device/default-seeded engine) in "
     "deterministic simulation code",
     kDeterministicDirs,
     {},
     false},
    {"hot-path-callable",
     "std::function/std::bind in a DES hot-path header (regresses the "
     "allocation-free event arena; use des::EventFn or a template parameter)",
     // Trace/distribution emission sits on the send/recv/compute hot paths,
     // so its headers get the same no-type-erased-callables discipline, as
     // do the collectives (every hop is a hot-path send/recv), the force
     // kernels (the per-pair inner loops), the integrator family (invoked
     // once per stage per step, with the force model on the stack), and the
     // CPUID feature probe (consulted on every kernel dispatch).
     // (runtime/communicator.hpp stays out: RankBody is std::function by
     // design — it is invoked once per rank, not per event.)
     {"src/des/", "src/obs/dist_sketch", "src/obs/trace_export",
      "src/runtime/collective", "src/nbody/kernels/",
      "src/nbody/integrators/", "src/support/cpu_features"},
     {},
     true},
    {"unordered-iter",
     "iteration over an unordered container in order-sensitive code "
     "(iteration order feeds serialized output or virtual-time decisions)",
     kOrderSensitiveDirs,
     {},
     false},
    {"naked-new",
     "naked new/delete outside src/support (own it with a container, "
     "unique_ptr, or an arena)",
     {"src/", "bench/", "tests/"},
     {"src/support/"},
     false},
    {"bad-allow",
     "malformed specomp-lint directive (unknown rule id or missing "
     "justification)",
     {},
     {},
     false},
};

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".hh");
}

bool has_prefix(std::string_view path,
                const std::vector<std::string_view>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](std::string_view p) { return path.starts_with(p); });
}

bool rule_applies(const RuleSpec& rule, std::string_view path) {
  if (rule.headers_only && !is_header(path)) return false;
  if (!rule.include_prefixes.empty() && !has_prefix(path, rule.include_prefixes))
    return false;
  return !has_prefix(path, rule.exclude_prefixes);
}

const RuleSpec* find_rule(std::string_view id) {
  for (const auto& r : kRules)
    if (r.id == id) return &r;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

struct Allows {
  // line (1-based) -> rule ids allowed on that line and the next
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> errors;  // bad-allow findings

  bool allowed(int line, std::string_view rule) const {
    for (const int l : {line, line - 1}) {
      auto it = by_line.find(l);
      if (it != by_line.end() &&
          it->second.count(std::string(rule)) != 0)
        return true;
    }
    return false;
  }
};

Allows parse_allows(std::string_view path,
                    const std::vector<ScannedLine>& lines) {
  Allows allows;
  constexpr std::string_view kDirective = "specomp-lint:";
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& comment = lines[li].comment;
    const int line_no = static_cast<int>(li) + 1;
    std::size_t pos = comment.find(kDirective);
    while (pos != std::string::npos) {
      std::size_t i = pos + kDirective.size();
      auto fail = [&](const std::string& why) {
        allows.errors.push_back({std::string(path), line_no, "bad-allow", why});
      };
      while (i < comment.size() && comment[i] == ' ') ++i;
      if (comment.compare(i, 6, "allow(") != 0) {
        fail("directive must be 'specomp-lint: allow(<rule>): <justification>'");
        break;
      }
      i += 6;
      const std::size_t close = comment.find(')', i);
      if (close == std::string::npos) {
        fail("unterminated allow( — missing ')'");
        break;
      }
      // Comma-separated rule ids.
      std::vector<std::string> ids;
      std::string id;
      for (std::size_t j = i; j < close; ++j) {
        if (comment[j] == ',') {
          ids.push_back(id);
          id.clear();
        } else if (comment[j] != ' ') {
          id.push_back(comment[j]);
        }
      }
      ids.push_back(id);
      bool ok = true;
      for (const auto& r : ids) {
        if (r.empty() || find_rule(r) == nullptr) {
          fail("unknown rule id '" + r + "' in allow(...)");
          ok = false;
        }
      }
      // Mandatory justification: ": <non-empty text>" after the ')'.
      std::size_t k = close + 1;
      while (k < comment.size() && comment[k] == ' ') ++k;
      bool justified = k < comment.size() && comment[k] == ':';
      if (justified) {
        ++k;
        while (k < comment.size() && comment[k] == ' ') ++k;
        justified = k < comment.size();
      }
      if (!justified) {
        fail("allow(...) needs a justification: '// specomp-lint: "
             "allow(<rule>): <why this is safe>'");
        ok = false;
      }
      if (ok)
        for (const auto& r : ids) allows.by_line[line_no].insert(r);
      pos = comment.find(kDirective, close);
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

const std::set<std::string_view> kClockIdents = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "localtime",
    "gmtime",        "timespec_get",  "mktime"};

const std::set<std::string_view> kRandCalls = {"rand", "srand", "drand48",
                                               "lrand48", "mrand48"};

const std::set<std::string_view> kEngines = {
    "mt19937",  "mt19937_64", "minstd_rand",           "minstd_rand0",
    "ranlux24", "ranlux48",   "default_random_engine", "knuth_b"};

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

struct FileScan {
  std::string_view path;
  std::vector<Token> tokens;
  std::vector<Finding>* out;

  std::string_view tok(std::size_t i) const {
    return i < tokens.size() ? tokens[i].text : std::string_view{};
  }
  void report(std::size_t i, std::string_view rule, std::string message) const {
    out->push_back(
        {std::string(path), tokens[i].line, std::string(rule), std::move(message)});
  }
};

bool is_member_access(const FileScan& f, std::size_t i) {
  if (i == 0) return false;
  const std::string_view prev = f.tok(i - 1);
  return prev == "." || prev == "->";
}

bool is_identifier_token(std::string_view t) {
  return !t.empty() &&
         (std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_');
}

// Keywords that can legitimately precede a function call expression; any
// other preceding identifier means `name(` is a declaration (`VectorClock
// clock(int)`) or a qualified member (`HbChecker::clock(r)`), not a call to
// the libc function.
const std::set<std::string_view> kCallPrecedingKeywords = {
    "return", "co_return", "co_yield", "case", "throw", "else", "do"};

bool is_libc_style_call(const FileScan& f, std::size_t i) {
  if (f.tok(i + 1) != "(") return false;
  if (i == 0) return true;
  const std::string_view prev = f.tok(i - 1);
  if (prev == "." || prev == "->") return false;
  // `std::time(` is the libc call; any other qualifier (`HbChecker::clock(`)
  // names a member.
  if (prev == "::") return i >= 2 && f.tok(i - 2) == "std";
  if (is_identifier_token(prev) && kCallPrecedingKeywords.count(prev) == 0)
    return false;  // declaration: preceding identifier is the return type
  return true;
}

void rule_wall_clock(const FileScan& f) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const std::string_view t = f.tok(i);
    if (kClockIdents.count(t) != 0) {
      f.report(i, "wall-clock",
               "wall-clock source '" + std::string(t) +
                   "' in deterministic simulation code — virtual time must "
                   "come from the DES kernel");
      continue;
    }
    if ((t == "time" || t == "clock") && is_libc_style_call(f, i)) {
      f.report(i, "wall-clock",
               "call to '" + std::string(t) +
                   "()' in deterministic simulation code — virtual time must "
                   "come from the DES kernel");
    }
  }
}

void rule_ambient_rand(const FileScan& f) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const std::string_view t = f.tok(i);
    if (t == "random_device") {
      f.report(i, "ambient-rand",
               "std::random_device in deterministic simulation code — "
               "randomness must flow from an explicit seed (support::Xoshiro256)");
      continue;
    }
    if (kRandCalls.count(t) != 0 && f.tok(i + 1) == "(" &&
        !is_member_access(f, i)) {
      f.report(i, "ambient-rand",
               "ambient PRNG call '" + std::string(t) +
                   "()' — randomness must flow from an explicit seed");
      continue;
    }
    if (kEngines.count(t) != 0) {
      // `std::mt19937 gen;` / `std::mt19937 gen{};` — default seed, so every
      // build/library combination rolls different streams.
      const std::string_view name = f.tok(i + 1);
      if (!name.empty() &&
          (std::isalpha(static_cast<unsigned char>(name[0])) ||
           name[0] == '_')) {
        const std::string_view after = f.tok(i + 2);
        const bool unseeded =
            after == ";" || (after == "{" && f.tok(i + 3) == "}");
        if (unseeded) {
          f.report(i, "ambient-rand",
                   "default-constructed random engine '" + std::string(t) +
                       " " + std::string(name) +
                       "' — seed it explicitly for reproducible streams");
        }
      }
    }
  }
}

void rule_hot_path_callable(const FileScan& f) {
  for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
    if (f.tok(i) == "std" && f.tok(i + 1) == "::" &&
        (f.tok(i + 2) == "function" || f.tok(i + 2) == "bind")) {
      f.report(i + 2, "hot-path-callable",
               "std::" + std::string(f.tok(i + 2)) +
                   " in a DES hot-path header — use des::EventFn or a "
                   "template parameter (keeps the event arena allocation-free)");
    }
  }
}

void rule_unordered_iter(const FileScan& f) {
  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string_view> vars;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (kUnorderedContainers.count(f.tok(i)) == 0) continue;
    std::size_t j = i + 1;
    if (f.tok(j) == "<") {
      int depth = 1;
      ++j;
      while (j < f.tokens.size() && depth > 0) {
        if (f.tok(j) == "<") ++depth;
        if (f.tok(j) == ">") --depth;
        ++j;
      }
    }
    // Skip ref/pointer declarators and trailing cv-qualifiers so parameters
    // like `const std::unordered_map<K, V>& name` are tracked too.
    while (f.tok(j) == "&" || f.tok(j) == "&&" || f.tok(j) == "*" ||
           f.tok(j) == "const")
      ++j;
    const std::string_view name = f.tok(j);
    if (!name.empty() && (std::isalpha(static_cast<unsigned char>(name[0])) ||
                          name[0] == '_'))
      vars.insert(name);
  }
  if (vars.empty()) return;

  auto flag = [&](std::size_t i, std::string_view name) {
    f.report(i, "unordered-iter",
             "iteration over unordered container '" + std::string(name) +
                 "' — iteration order is implementation-defined and must not "
                 "reach serialized output or virtual-time decisions (use "
                 "std::map or sort first)");
  };

  // Pass 2a: range-for whose range expression names one of the containers.
  for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
    if (f.tok(i) != "for" || f.tok(i + 1) != "(") continue;
    int depth = 1;
    std::size_t j = i + 2;
    std::size_t colon = 0;
    while (j < f.tokens.size() && depth > 0) {
      if (f.tok(j) == "(") ++depth;
      if (f.tok(j) == ")") --depth;
      if (depth == 1 && f.tok(j) == ":" && colon == 0) colon = j;
      ++j;
    }
    if (colon == 0) continue;
    for (std::size_t k = colon + 1; k < j; ++k) {
      if (vars.count(f.tok(k)) != 0) {
        flag(i, f.tok(k));
        break;
      }
    }
  }
  // Pass 2b: iterator walks (`m.begin()` / `m.cbegin()`).
  for (std::size_t i = 0; i + 3 < f.tokens.size(); ++i) {
    if (vars.count(f.tok(i)) != 0 &&
        (f.tok(i + 1) == "." || f.tok(i + 1) == "->") &&
        (f.tok(i + 2) == "begin" || f.tok(i + 2) == "cbegin" ||
         f.tok(i + 2) == "rbegin") &&
        f.tok(i + 3) == "(") {
      flag(i, f.tok(i));
    }
  }
}

void rule_naked_new(const FileScan& f) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const std::string_view t = f.tok(i);
    const std::string_view prev = i > 0 ? f.tok(i - 1) : std::string_view{};
    if (prev == "operator") continue;  // operator new/delete definitions
    if (t == "new") {
      if (f.tok(i + 1) == "(") continue;  // placement new: ::new (ptr) T(...)
      f.report(i, "naked-new",
               "naked 'new' outside src/support — own the allocation with a "
               "container, std::unique_ptr, or an arena");
    } else if (t == "delete") {
      if (prev == "=") continue;  // = delete
      f.report(i, "naked-new",
               "naked 'delete' outside src/support — pair allocations with "
               "owning types instead");
    }
  }
}

}  // namespace

const std::vector<RuleSpec>& rules() { return kRules; }

std::vector<Finding> lint_content(std::string_view logical_path,
                                  std::string_view content) {
  // Normalise path separators so the prefix scoping is portable.
  std::string path(logical_path);
  std::replace(path.begin(), path.end(), '\\', '/');

  const std::vector<ScannedLine> lines = scan(content);
  const std::vector<Token> tokens = tokenize(lines);
  const Allows allows = parse_allows(path, lines);

  std::vector<Finding> raw;
  const FileScan f{path, tokens, &raw};
  if (rule_applies(*find_rule("wall-clock"), path)) rule_wall_clock(f);
  if (rule_applies(*find_rule("ambient-rand"), path)) rule_ambient_rand(f);
  if (rule_applies(*find_rule("hot-path-callable"), path))
    rule_hot_path_callable(f);
  if (rule_applies(*find_rule("unordered-iter"), path)) rule_unordered_iter(f);
  if (rule_applies(*find_rule("naked-new"), path)) rule_naked_new(f);

  std::vector<Finding> findings;
  for (auto& fnd : raw) {
    if (!allows.allowed(fnd.line, fnd.rule)) findings.push_back(std::move(fnd));
  }
  findings.insert(findings.end(), allows.errors.begin(), allows.errors.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::size_t lint_tree(const std::filesystem::path& root,
                      const std::vector<std::string>& subdirs,
                      std::vector<Finding>& out) {
  namespace fs = std::filesystem;
  const std::vector<fs::path> paths = specscan::collect_sources(root, subdirs);
  for (const auto& p : paths) {
    const std::string content = specscan::read_file(p);
    const std::string rel = fs::relative(p, root).generic_string();
    auto findings = lint_content(rel, content);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return paths.size();
}

std::string format_finding(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace speclint

// specomp-lint: the repo's determinism-invariant checker.
//
// The measurement claims of this repo (speculation error rates, recomputation
// counts, Figure 8 speedups) rest on two structural properties:
//
//   * the SimCommunicator world is bit-deterministic — virtual time must
//     never be influenced by wall-clock reads, ambient randomness, or
//     unordered-container iteration order;
//   * the DES hot path stays allocation-free — PR 3's event arena regresses
//     silently if someone reintroduces std::function or naked new/delete.
//
// PR 3 asserts these properties empirically (bit-identity reruns, TSan CI);
// this linter enforces them structurally, at token level, so a violation is
// caught when the line is written instead of when a bench goes flaky.
//
// Design: a hand-rolled line scanner (comments, string/char literals and
// preprocessor lines are blanked before matching; block comments and raw
// strings carry state across lines) feeds a small path-scoped rule table.
// No compiler, no AST, no third-party deps — it lints the whole tree in
// milliseconds and builds anywhere a C++20 compiler exists.
//
// Suppression: a finding is silenced by a justified directive on the same
// line or the line above:
//
//   // specomp-lint: allow(wall-clock): real-time backend measures wall time
//
// The justification text is mandatory; a bare allow() is itself reported
// (rule `bad-allow`), so silencing always leaves a reviewable reason behind.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace speclint {

struct Finding {
  std::string path;   // logical path the rule scoping saw
  int line = 0;       // 1-based
  std::string rule;   // rule id, e.g. "wall-clock"
  std::string message;
};

struct RuleSpec {
  std::string_view id;
  std::string_view summary;
  /// Path prefixes (relative, '/'-separated) the rule applies to; empty
  /// means the whole tree.
  std::vector<std::string_view> include_prefixes;
  std::vector<std::string_view> exclude_prefixes;
  /// Restrict to headers (.hpp/.h) — used by the DES hot-path rule.
  bool headers_only = false;
};

/// The rule table, in reporting order.  Exposed for --list-rules and tests.
const std::vector<RuleSpec>& rules();

/// Lints one file's content.  `logical_path` is the repo-relative path used
/// for rule scoping (e.g. "src/des/event.hpp"); tests pass synthetic paths
/// to aim fixtures at specific rules.
std::vector<Finding> lint_content(std::string_view logical_path,
                                  std::string_view content);

/// Walks `root`/`subdir` for each subdir (skipping build*/ and fixtures/),
/// lints every .cpp/.hpp/.h/.cc and appends the findings.  Returns the
/// number of files visited.
std::size_t lint_tree(const std::filesystem::path& root,
                      const std::vector<std::string>& subdirs,
                      std::vector<Finding>& out);

/// "path:line: [rule] message" — the single formatting used by the CLI, the
/// CI log and the report artifact.
std::string format_finding(const Finding& f);

}  // namespace speclint

// Symbol pass of specomp-analyze: a lightweight cross-TU index of the
// functions, methods and classes in the tree, plus the call references that
// connect them.
//
// This is a token-level construction, not an AST: function definitions are
// recognised by the `name ( params ) [qualifiers] {` shape at namespace or
// class scope (constructor initialiser lists and trailing-return types are
// skipped structurally), classes by `class|struct Name [: bases] {`, and a
// call reference is any identifier followed by `(` inside a function body.
// Calls resolve by name — a reference `foo(` links to every indexed symbol
// whose unqualified name is `foo`, across all translation units.  That is a
// deliberate over-approximation: for the taint pass a spurious edge can only
// produce a false positive (silenced with `// specomp: pure` plus a
// justification), never a missed propagation.
//
// The index powers two whole-program analyses (analyze_core.hpp):
//   * the nondeterminism taint pass walks call edges backwards from seed
//     sites to decide which replay-path functions may observe wall clocks,
//     ambient randomness, thread ids, pointer values or unordered iteration;
//   * the rollback-safety pass pairs each SyncIterativeApp subclass (found
//     via the class index and its base list) with the member-field mutation
//     sets of its methods, which live in other files than the class body.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scanner.hpp"

namespace specana {

/// One function or method definition (has a body in the scanned file).
struct Symbol {
  std::string name;       // unqualified, e.g. "run"
  std::string owner;      // enclosing/qualifying class, "" for free functions
  std::string path;       // logical path of the defining file
  int line = 0;           // line of the name token (1-based)
  int body_open_line = 0; // line of the opening '{'
  /// Token range [begin, end) of the body in the file's token stream,
  /// including the braces; later passes re-scan it with their own rules.
  std::size_t tok_begin = 0;
  std::size_t tok_end = 0;
  /// Unqualified names of call references in the body, sorted + deduped.
  std::vector<std::string> calls;

  std::string qualified() const {
    return owner.empty() ? name : owner + "::" + name;
  }
};

/// One member field of a class definition.
struct Field {
  std::string name;
  int line = 0;
  bool is_static = false;
  bool is_mutable = false;
};

/// One class/struct definition with its base classes and fields.
struct ClassInfo {
  std::string name;                 // unqualified
  std::string path;
  int line = 0;
  std::vector<std::string> bases;   // unqualified base names
  std::vector<Field> fields;
};

/// Per-file scan artifacts kept alive for the analysis passes (tokens are
/// string_views into `lines`).
struct FileIndex {
  std::string path;
  std::vector<specscan::ScannedLine> lines;
  std::vector<specscan::Token> tokens;
  std::vector<std::size_t> symbols;  // indices into SymbolTable::symbols
};

/// The cross-TU index.  Files are added one at a time (tests feed synthetic
/// content); lookups are by unqualified name.
class SymbolTable {
 public:
  /// Scans `content` and indexes its symbols and classes under
  /// `logical_path` (repo-relative, '/'-separated).
  void add_file(std::string logical_path, std::string_view content);

  const std::vector<FileIndex>& files() const noexcept { return files_; }
  const std::vector<Symbol>& symbols() const noexcept { return symbols_; }
  const std::vector<ClassInfo>& classes() const noexcept { return classes_; }

  /// Indices of symbols with the given unqualified name (sorted by index).
  const std::vector<std::size_t>& by_name(std::string_view name) const;
  /// Indices of symbols owned by the given class name.
  std::vector<std::size_t> methods_of(std::string_view owner) const;
  /// The class with the given unqualified name, or nullptr.  If several
  /// files define the same class name, the first indexed wins.
  const ClassInfo* find_class(std::string_view name) const;

  /// Classes transitively derived from `base` (including `base` itself if
  /// indexed).  Name-based, like call resolution.
  std::vector<const ClassInfo*> derived_from(std::string_view base) const;

 private:
  std::vector<FileIndex> files_;
  std::vector<Symbol> symbols_;
  std::vector<ClassInfo> classes_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name_;
  std::map<std::string, std::size_t, std::less<>> class_by_name_;
};

}  // namespace specana

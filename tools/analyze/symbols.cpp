#include "symbols.hpp"

#include <algorithm>
#include <set>

namespace specana {

namespace {

using specscan::Token;

// Keywords that look like calls (`if (`, `while (`...) or otherwise must not
// become call references or symbol names.
const std::set<std::string_view> kNotACall = {
    "if",       "for",      "while",    "switch",   "return",  "sizeof",
    "alignof",  "alignas",  "decltype", "catch",    "new",     "delete",
    "throw",    "case",     "default",  "do",       "else",    "goto",
    "co_await", "co_yield", "co_return", "requires", "noexcept", "assert",
    "static_assert", "typeid", "defined"};

// Tokens that may trail a function's parameter list before the body.
const std::set<std::string_view> kFnQualifiers = {
    "const", "noexcept", "override", "final", "volatile", "&", "&&",
    "mutable", "constexpr", "inline", "throw", "requires"};

/// Cursor over one file's token stream.
class Parser {
 public:
  Parser(const FileIndex& file, std::vector<Symbol>& symbols,
         std::vector<ClassInfo>& classes,
         std::vector<std::size_t>& symbol_indices)
      : toks_(file.tokens),
        path_(file.path),
        symbols_(symbols),
        classes_(classes),
        symbol_indices_(symbol_indices) {}

  void run() { parse_scope(/*owner=*/""); }

 private:
  std::string_view tok(std::size_t i) const {
    return i < toks_.size() ? toks_[i].text : std::string_view{};
  }
  int line(std::size_t i) const {
    return i < toks_.size() ? toks_[i].line : 0;
  }
  bool at_end() const { return pos_ >= toks_.size(); }

  /// Skips a balanced pair starting at pos_ (which must hold `open`).
  void skip_balanced(std::string_view open, std::string_view close) {
    int depth = 0;
    while (!at_end()) {
      if (tok(pos_) == open) ++depth;
      else if (tok(pos_) == close && --depth == 0) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  /// Skips to the `;` terminating the current declaration/statement,
  /// balancing (), {}, [] and <...> heuristically along the way.
  void skip_to_semicolon() {
    int round = 0, curly = 0, square = 0;
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == "(") ++round;
      else if (t == ")") --round;
      else if (t == "{") ++curly;
      else if (t == "}") {
        if (curly == 0) return;  // scope close without `;` — let caller see it
        --curly;
      } else if (t == "[") ++square;
      else if (t == "]") --square;
      else if (t == ";" && round == 0 && curly == 0 && square == 0) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  /// Parses declarations until the matching `}` of the current scope (or
  /// EOF).  `owner` is the enclosing class name ("" at namespace scope).
  void parse_scope(const std::string& owner) {
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == "}") {
        ++pos_;
        return;
      }
      if (t == ";" || t == ":") {  // stray semicolon / access-specifier colon
        ++pos_;
        continue;
      }
      if (t == "public" || t == "private" || t == "protected") {
        ++pos_;
        if (tok(pos_) == ":") ++pos_;
        continue;
      }
      if (t == "namespace") {
        ++pos_;
        while (specscan::is_identifier(tok(pos_)) || tok(pos_) == "::")
          ++pos_;  // name (possibly nested a::b), or nothing when anonymous
        if (tok(pos_) == "=") {  // namespace alias
          skip_to_semicolon();
          continue;
        }
        if (tok(pos_) == "{") {
          ++pos_;
          parse_scope("");  // namespaces do not own methods
        }
        continue;
      }
      if (t == "template") {
        ++pos_;
        if (tok(pos_) == "<") skip_angles();
        continue;  // the templated declaration follows normally
      }
      if (t == "using" || t == "typedef" || t == "friend" ||
          t == "static_assert" || t == "extern") {
        skip_to_semicolon();
        continue;
      }
      if (t == "enum") {
        // enum [class|struct] [Name] [: type] { ... } ;  — enumerators are
        // not fields; skip the whole thing.
        while (!at_end() && tok(pos_) != "{" && tok(pos_) != ";") ++pos_;
        if (tok(pos_) == "{") skip_balanced("{", "}");
        skip_to_semicolon();
        continue;
      }
      if (t == "class" || t == "struct" || t == "union") {
        parse_class();
        continue;
      }
      parse_declaration(owner);
    }
  }

  /// Skips a balanced `<...>` (tokenizer emits single `<`/`>` chars).
  void skip_angles() {
    int depth = 0;
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == "<") ++depth;
      else if (t == ">" && --depth == 0) {
        ++pos_;
        return;
      } else if (t == ";" || t == "{") {
        return;  // not a template argument list after all; bail
      }
      ++pos_;
    }
  }

  /// `class|struct|union Name [final] [: bases] { ... } [decls];`
  void parse_class() {
    ++pos_;  // class/struct/union
    // Attributes / export macros before the name are rare here; take the
    // last identifier before `:`/`{`/`;` as the class name.
    std::string name;
    int name_line = 0;
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == ":" || t == "{" || t == ";" || t == "<") break;
      if (specscan::is_identifier(t) && t != "final" && t != "alignas") {
        name = std::string(t);
        name_line = line(pos_);
      }
      ++pos_;
    }
    if (tok(pos_) == "<") {
      // Specialisation `class X<int> ...`; skip the arguments.
      skip_angles();
    }
    if (tok(pos_) == ";" || name.empty()) {
      // Forward declaration (or anonymous aggregate we don't index —
      // consume its body so braces stay balanced).
      if (tok(pos_) == "{") skip_balanced("{", "}");
      skip_to_semicolon();
      return;
    }
    ClassInfo info;
    info.name = name;
    info.path = path_;
    info.line = name_line;
    if (tok(pos_) == ":") {
      ++pos_;
      // Base list: identifiers up to `{`; keep the last component of each
      // qualified name (`spec::SyncIterativeApp` -> "SyncIterativeApp").
      std::string last;
      while (!at_end() && tok(pos_) != "{" && tok(pos_) != ";") {
        const std::string_view t = tok(pos_);
        if (t == "<") {
          skip_angles();
          continue;
        }
        if (specscan::is_identifier(t) && t != "public" && t != "private" &&
            t != "protected" && t != "virtual")
          last = std::string(t);
        if (t == ",") {
          if (!last.empty()) info.bases.push_back(last);
          last.clear();
        }
        ++pos_;
      }
      if (!last.empty()) info.bases.push_back(last);
    }
    if (tok(pos_) != "{") {  // e.g. `class X final;`
      skip_to_semicolon();
      return;
    }
    ++pos_;  // {
    const std::size_t class_index = classes_.size();
    classes_.push_back(std::move(info));
    class_scope_ = class_index;
    parse_scope(name);
    class_scope_ = static_cast<std::size_t>(-1);
    skip_to_semicolon();  // trailing `;` (and any declarator — unindexed)
  }

  /// A declaration that is not a class/namespace/using: either a function
  /// (indexed, body consumed) or a variable/field (field indexed when at
  /// class scope).  Starts at pos_; consumes through the declaration.
  void parse_declaration(const std::string& owner) {
    const std::size_t head_begin = pos_;
    bool saw_static = false;
    bool saw_mutable = false;
    // Walk the declaration head: stop at `(` after an identifier (function
    // declarator), or at `;` / `=` / `{` (variable or field).
    std::string last_ident;       // most recent top-level identifier
    std::string qualifier;        // identifier before the most recent `::`
    bool ident_qualified = false; // last_ident directly followed the `::`
    int last_ident_line = 0;
    bool after_array = false;     // saw `[` after the declarator name
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == ";") {
        if (pos_ > head_begin)
          record_field(owner, last_ident, last_ident_line, saw_static,
                       saw_mutable);
        ++pos_;
        return;
      }
      if (t == "=") {
        record_field(owner, last_ident, last_ident_line, saw_static,
                     saw_mutable);
        skip_to_semicolon();
        return;
      }
      if (t == "{") {
        // Brace initializer (`int x_{0};`) — a field; skip the braces.
        record_field(owner, last_ident, last_ident_line, saw_static,
                     saw_mutable);
        skip_balanced("{", "}");
        skip_to_semicolon();
        return;
      }
      if (t == "}") return;  // malformed / end of scope; let caller handle
      if (t == "(") {
        if (!last_ident.empty() && !after_array) {
          // `Cls::name(` carries its owner; `std::vector<T> name(` must not
          // inherit the return type's qualifier.
          parse_function_tail(owner, ident_qualified ? qualifier : "",
                              last_ident, last_ident_line);
          return;
        }
        skip_balanced("(", ")");  // e.g. macro call or weird declarator
        continue;
      }
      if (t == "<") {
        skip_angles();
        continue;
      }
      if (t == "[") {
        skip_balanced("[", "]");
        if (!last_ident.empty()) after_array = true;
        continue;
      }
      if (t == "static") saw_static = true;
      if (t == "mutable") saw_mutable = true;
      if (specscan::is_identifier(t)) {
        if (t == "operator") {
          // Operator function: name is `operator` + following punctuation.
          std::string op_name = "operator";
          ++pos_;
          while (!at_end() && tok(pos_) != "(") {
            op_name += std::string(tok(pos_));
            ++pos_;
          }
          if (tok(pos_) == "(") {
            // `operator()` names the call operator, then its parameter
            // list follows in a second paren group.
            if (op_name == "operator" && tok(pos_ + 1) == ")") {
              op_name = "operator()";
              pos_ += 2;
            }
            if (tok(pos_) == "(")
              parse_function_tail(owner, qualifier, op_name, line(pos_));
          }
          return;
        }
        if (tok(pos_ + 1) == "::") {
          qualifier = std::string(t);
          pos_ += 2;
          continue;
        }
        last_ident = std::string(t);
        ident_qualified = pos_ > 0 && tok(pos_ - 1) == "::";
        last_ident_line = line(pos_);
      }
      ++pos_;
    }
  }

  void record_field(const std::string& owner, const std::string& name,
                    int name_line, bool is_static, bool is_mutable) {
    if (owner.empty() || name.empty()) return;
    if (class_scope_ >= classes_.size()) return;
    if (classes_[class_scope_].name != owner) return;
    Field f;
    f.name = name;
    f.line = name_line;
    f.is_static = is_static;
    f.is_mutable = is_mutable;
    classes_[class_scope_].fields.push_back(std::move(f));
  }

  /// At the `(` of a function declarator: consume the parameter list, any
  /// trailing qualifiers / trailing-return / constructor initialiser list,
  /// and the body if present (indexing the symbol).
  void parse_function_tail(const std::string& owner,
                           const std::string& qualifier,
                           const std::string& name, int name_line) {
    skip_balanced("(", ")");
    // Trailing qualifiers and trailing return type.
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (kFnQualifiers.count(t) != 0) {
        ++pos_;
        if (tok(pos_) == "(") skip_balanced("(", ")");  // noexcept(...)
        continue;
      }
      if (t == "->") {  // trailing return type
        ++pos_;
        while (!at_end() && tok(pos_) != "{" && tok(pos_) != ";" &&
               tok(pos_) != "=") {
          if (tok(pos_) == "<") skip_angles();
          else ++pos_;
        }
        continue;
      }
      break;
    }
    const std::string_view t = tok(pos_);
    if (t == ";") {
      ++pos_;
      return;  // declaration only
    }
    if (t == "=") {  // = 0; / = default; / = delete;
      skip_to_semicolon();
      return;
    }
    if (t == ":") {
      // Constructor initialiser list: `: member(init), member{init}, ... {`.
      ++pos_;
      while (!at_end() && tok(pos_) != "{") {
        if (tok(pos_) == "(") skip_balanced("(", ")");
        else if (tok(pos_) == "<") skip_angles();
        else ++pos_;
        // A `{` directly after a member name is a brace initialiser, not
        // the body: detect `ident {` and consume the braces.
        if (tok(pos_) == "{" && pos_ > 0 &&
            (specscan::is_identifier(tok(pos_ - 1)) || tok(pos_ - 1) == ">" ||
             tok(pos_ - 1) == ")")) {
          // Body begins only after `)` or `}` of the last initialiser —
          // when the previous token is the member name or a template-id,
          // these braces initialise it.
          if (specscan::is_identifier(tok(pos_ - 1)))
            skip_balanced("{", "}");
          else
            break;
        }
      }
    }
    if (tok(pos_) == "{") {
      index_function_body(owner, qualifier, name, name_line);
      return;
    }
    // try-blocks and anything else unrecognised: consume conservatively.
    if (tok(pos_) == "try") {
      ++pos_;
      if (tok(pos_) == "{") index_function_body(owner, qualifier, name,
                                                name_line);
      return;
    }
  }

  /// pos_ is at the `{` of a function body: record the symbol and collect
  /// its call references while consuming to the matching `}`.
  void index_function_body(const std::string& owner,
                           const std::string& qualifier,
                           const std::string& name, int name_line) {
    Symbol sym;
    sym.name = name;
    sym.owner = !qualifier.empty() ? qualifier : owner;
    sym.path = path_;
    sym.line = name_line;
    sym.body_open_line = line(pos_);
    sym.tok_begin = pos_;
    std::set<std::string> calls;
    int depth = 0;
    while (!at_end()) {
      const std::string_view t = tok(pos_);
      if (t == "{") ++depth;
      else if (t == "}") {
        if (--depth == 0) {
          ++pos_;
          break;
        }
      } else if (specscan::is_identifier(t) && kNotACall.count(t) == 0) {
        if (tok(pos_ + 1) == "(") {
          calls.insert(std::string(t));
        } else if (tok(pos_ + 1) == "<") {
          // `read_span<double>()` — look across one balanced template
          // argument list for the call parens.  Bounded, and bails on
          // statement boundaries so comparisons rarely masquerade.
          std::size_t j = pos_ + 1;
          int depth = 0;
          const std::size_t limit = std::min(toks_.size(), pos_ + 40);
          while (j < limit) {
            const std::string_view u = tok(j);
            if (u == "<") ++depth;
            else if (u == ">" && --depth == 0) break;
            else if (u == ";" || u == "{" || u == "}" || u == ")") {
              depth = -1;
              break;
            }
            ++j;
          }
          if (depth == 0 && tok(j + 1) == "(") calls.insert(std::string(t));
        }
      }
      ++pos_;
    }
    sym.tok_end = pos_;
    sym.calls.assign(calls.begin(), calls.end());
    symbol_indices_.push_back(symbols_.size());
    symbols_.push_back(std::move(sym));
  }

  const std::vector<Token>& toks_;
  const std::string& path_;
  std::size_t pos_ = 0;
  std::size_t class_scope_ = static_cast<std::size_t>(-1);
  std::vector<Symbol>& symbols_;
  std::vector<ClassInfo>& classes_;
  std::vector<std::size_t>& symbol_indices_;
};

}  // namespace

void SymbolTable::add_file(std::string logical_path,
                           std::string_view content) {
  std::replace(logical_path.begin(), logical_path.end(), '\\', '/');
  FileIndex file;
  file.path = std::move(logical_path);
  file.lines = specscan::scan(content);
  file.tokens = specscan::tokenize(file.lines);
  Parser parser(file, symbols_, classes_, file.symbols);
  parser.run();
  for (const std::size_t s : file.symbols)
    by_name_[symbols_[s].name].push_back(s);
  for (std::size_t c = 0; c < classes_.size(); ++c)
    class_by_name_.emplace(classes_[c].name, c);  // first definition wins
  files_.push_back(std::move(file));
}

const std::vector<std::size_t>& SymbolTable::by_name(
    std::string_view name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

std::vector<std::size_t> SymbolTable::methods_of(
    std::string_view owner) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < symbols_.size(); ++i)
    if (symbols_[i].owner == owner) out.push_back(i);
  return out;
}

const ClassInfo* SymbolTable::find_class(std::string_view name) const {
  const auto it = class_by_name_.find(name);
  return it == class_by_name_.end() ? nullptr : &classes_[it->second];
}

std::vector<const ClassInfo*> SymbolTable::derived_from(
    std::string_view base) const {
  std::vector<const ClassInfo*> out;
  std::set<std::string_view> reached;
  reached.insert(base);
  // Fixed-point over the (small) class list; order of discovery is the
  // deterministic class index order.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& cls : classes_) {
      if (reached.count(cls.name) != 0) continue;
      for (const auto& b : cls.bases) {
        if (reached.count(std::string_view(b)) != 0) {
          reached.insert(cls.name);
          out.push_back(&cls);
          changed = true;
          break;
        }
      }
    }
  }
  if (const ClassInfo* self = find_class(base)) out.insert(out.begin(), self);
  return out;
}

}  // namespace specana

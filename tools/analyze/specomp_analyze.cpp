// specomp-analyze CLI — whole-program nondeterminism-taint and
// rollback-safety analysis (see analyze_core.hpp).
//
//   $ specomp-analyze --root . src tools examples            # what CI runs
//   $ specomp-analyze --root . --baseline tools/analyze/baseline.json
//         --out analyze-report.txt --json analyze-report.json
//         --sarif analyze-report.sarif src tools examples    # (one line)
//   $ specomp-analyze --root . --write-baseline tools/analyze/baseline.json
//   $ specomp-analyze --list-rules
//
// Exit status: 0 clean (every finding baselined), 1 new findings,
// 2 usage/IO error.  All reports are written atomically (stage + rename) so
// a crashed run never leaves a truncated artifact for CI to upload.
#include <cstdio>
#include <string>
#include <vector>

#include "analyze_core.hpp"
#include "obs/atomic_file.hpp"

namespace {

void print_rules() {
  std::printf("specomp-analyze rules:\n");
  for (const auto& [id, desc] : specana::analyze_rules())
    std::printf("  %-24s %s\n", id.c_str(), desc.c_str());
  std::printf(
      "\nsuppress with: // specomp: allow(<rule>): <justification>\n"
      "               // specomp: pure\n"
      "               // specomp: rollback-covered(<field>): <why>\n");
}

bool write_report(const std::string& path, const std::string& content) {
  if (!specomp::obs::atomic_write_file(path, content)) {
    std::fprintf(stderr, "specomp-analyze: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out_path, json_path, sarif_path;
  std::string baseline_path, write_baseline_path;
  std::vector<std::string> subdirs;
  auto flag_value = [&](const std::string& arg, const char* name,
                        std::string& dst, int& i) {
    const std::string eq = std::string(name) + "=";
    if (arg == name && i + 1 < argc) {
      dst = argv[++i];
      return true;
    }
    if (arg.rfind(eq, 0) == 0) {
      dst = arg.substr(eq.size());
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (flag_value(arg, "--root", root, i)) continue;
    if (flag_value(arg, "--out", out_path, i)) continue;
    if (flag_value(arg, "--json", json_path, i)) continue;
    if (flag_value(arg, "--sarif", sarif_path, i)) continue;
    if (flag_value(arg, "--baseline", baseline_path, i)) continue;
    if (flag_value(arg, "--write-baseline", write_baseline_path, i)) continue;
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: specomp-analyze [--root DIR] [--out FILE] "
                   "[--json FILE] [--sarif FILE] [--baseline FILE] "
                   "[--write-baseline FILE] [--list-rules] [subdir...]\n");
      return 2;
    }
    subdirs.push_back(arg);
  }
  if (subdirs.empty()) subdirs = {"src", "tools", "examples"};

  specana::AnalyzeResult result = specana::analyze_tree(root, subdirs);

  if (!write_baseline_path.empty())
    return write_report(write_baseline_path,
                        specana::make_baseline_json(result))
               ? 0
               : 2;

  std::size_t fresh = result.findings.size();
  if (!baseline_path.empty()) {
    const std::string content = specscan::read_file(baseline_path);
    if (content.empty()) {
      std::fprintf(stderr, "specomp-analyze: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    try {
      fresh = specana::apply_baseline(result, content);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "specomp-analyze: bad baseline %s: %s\n",
                   baseline_path.c_str(), e.what());
      return 2;
    }
  }

  const std::string report = specana::to_text_report(result);
  std::fputs(report.c_str(), fresh == 0 ? stdout : stderr);
  bool io_ok = true;
  if (!out_path.empty()) io_ok &= write_report(out_path, report);
  if (!json_path.empty())
    io_ok &= write_report(json_path, specana::to_json_report(result));
  if (!sarif_path.empty())
    io_ok &= write_report(sarif_path, specana::to_sarif_report(result));
  if (!io_ok) return 2;
  return fresh == 0 ? 0 : 1;
}

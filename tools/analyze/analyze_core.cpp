#include "analyze_core.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace specana {

namespace {

using specscan::ScannedLine;
using specscan::Token;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<std::pair<std::string, std::string>> kRules = {
    {"wall-clock",
     "wall-clock source reachable from a speculation replay path"},
    {"ambient-rand",
     "ambient (unseeded) randomness reachable from a replay path"},
    {"thread-id",
     "thread identity observed on a replay path — rank must come from the "
     "communicator"},
    {"ptr-cast",
     "pointer value converted to an integer on a replay path — addresses "
     "differ across runs"},
    {"unordered-iter",
     "iteration over an unordered container on a replay path — visit order "
     "is hash-seed dependent"},
    {"hot-path-new",
     "raw allocation on a replay path — allocation is timing- and "
     "placement-nondeterministic"},
    {"rollback-unsaved-field",
     "member mutated by the step/install/correct path but not covered by "
     "save_state/restore_state/pack_local"},
    {"rollback-static",
     "static or mutable state touched by a rollback-scoped method — shared "
     "across snapshots, escapes restore_state"},
    {"rollback-io",
     "file I/O inside a rollback-scoped method — externally visible effects "
     "cannot be rolled back"},
    {"rollback-rng",
     "RNG advanced inside a rollback-scoped method — stream position escapes "
     "the snapshot"},
    {"bad-annotation",
     "malformed specomp: directive (unknown rule id, unknown form, or "
     "missing justification)"},
};

bool known_rule(std::string_view id) {
  for (const auto& r : kRules)
    if (r.first == id) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Seed vocabularies (mirror tools/lint where the rules overlap)
// ---------------------------------------------------------------------------

const std::set<std::string_view> kClockIdents = {
    "system_clock",  "steady_clock",  "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "localtime",
    "gmtime",        "timespec_get",  "mktime"};

const std::set<std::string_view> kRandCalls = {"rand", "srand", "drand48",
                                               "lrand48", "mrand48"};

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string_view> kMutatingMembers = {
    "push_back", "pop_back", "emplace_back", "emplace", "clear",  "resize",
    "reserve",   "assign",   "insert",       "erase",   "swap",   "push",
    "pop",       "fill",     "shrink_to_fit"};

const std::set<std::string_view> kIoIdents = {
    "ofstream", "fstream", "fopen", "fwrite", "fprintf", "fputs", "FILE"};

// ---------------------------------------------------------------------------
// Annotations: specomp: pure / rollback-covered(field): why / allow(rule): why
// plus the pre-existing specomp-lint: allow(rule): why directives.
// ---------------------------------------------------------------------------

struct FileAnnotations {
  // line -> rule ids allowed on that line and the next.
  std::map<int, std::set<std::string>> allows;
  std::set<int> pure_lines;
  std::vector<std::pair<int, std::string>> covered;  // (line, field)
  std::vector<AnalyzeFinding> bad;

  bool allowed(int line, std::string_view rule) const {
    for (const int l : {line, line - 1}) {
      const auto it = allows.find(l);
      if (it != allows.end() && it->second.count(std::string(rule)) != 0)
        return true;
    }
    return false;
  }
};

// Extracts comma-separated ids from "...(a, b)" starting after the '('.
// Returns npos-terminated ids and sets `close` to the ')' position (npos if
// unterminated).
std::vector<std::string> parse_id_list(const std::string& text,
                                       std::size_t open,
                                       std::size_t& close) {
  close = text.find(')', open);
  std::vector<std::string> ids;
  if (close == std::string::npos) return ids;
  std::string id;
  for (std::size_t j = open; j < close; ++j) {
    const char c = text[j];
    if (c == ',') {
      ids.push_back(id);
      id.clear();
    } else if (c != ' ') {
      id.push_back(c);
    }
  }
  ids.push_back(id);
  return ids;
}

// Is there a non-empty justification ": why" starting at `k`?
bool has_justification(const std::string& text, std::size_t k) {
  while (k < text.size() && text[k] == ' ') ++k;
  if (k >= text.size() || text[k] != ':') return false;
  ++k;
  while (k < text.size() && text[k] == ' ') ++k;
  return k < text.size();
}

FileAnnotations parse_annotations(std::string_view path,
                                  const std::vector<ScannedLine>& lines) {
  FileAnnotations a;
  constexpr std::string_view kLintDirective = "specomp-lint:";
  constexpr std::string_view kDirective = "specomp:";
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& comment = lines[li].comment;
    const int line_no = static_cast<int>(li) + 1;

    // specomp-lint: allow(...) — lint validates these itself; the analyzer
    // just honours the ids it shares with lint.
    std::size_t pos = comment.find(kLintDirective);
    while (pos != std::string::npos) {
      std::size_t i = pos + kLintDirective.size();
      while (i < comment.size() && comment[i] == ' ') ++i;
      if (comment.compare(i, 6, "allow(") == 0) {
        std::size_t close = std::string::npos;
        for (const auto& id : parse_id_list(comment, i + 6, close))
          if (!id.empty()) a.allows[line_no].insert(id);
        if (close == std::string::npos) break;
        pos = comment.find(kLintDirective, close);
      } else {
        pos = comment.find(kLintDirective, i);
      }
    }

    // The analyzer's own directives, strictly validated.
    pos = comment.find(kDirective);
    while (pos != std::string::npos) {
      // Reject prose matches: "specomp::obs" (namespace) and the lint
      // directive's own prefix overlap.
      if (pos + kDirective.size() < comment.size() &&
          comment[pos + kDirective.size()] == ':') {
        pos = comment.find(kDirective, pos + kDirective.size() + 1);
        continue;
      }
      if (pos >= 5 && comment.compare(pos - 5, 5, "-lint") == 0) {
        pos = comment.find(kDirective, pos + kDirective.size());
        continue;
      }
      std::size_t i = pos + kDirective.size();
      auto fail = [&](const std::string& why) {
        a.bad.push_back({"bad-annotation", std::string(path), line_no,
                         std::string{}, why, {}, false});
      };
      while (i < comment.size() && comment[i] == ' ') ++i;
      if (comment.compare(i, 4, "pure") == 0 &&
          (i + 4 == comment.size() ||
           (!std::isalnum(static_cast<unsigned char>(comment[i + 4])) &&
            comment[i + 4] != '_' && comment[i + 4] != '('))) {
        a.pure_lines.insert(line_no);  // justification optional
        pos = comment.find(kDirective, i + 4);
        continue;
      }
      if (comment.compare(i, 6, "allow(") == 0) {
        std::size_t close = std::string::npos;
        const auto ids = parse_id_list(comment, i + 6, close);
        if (close == std::string::npos) {
          fail("unterminated allow( — missing ')'");
          break;
        }
        bool ok = true;
        for (const auto& id : ids) {
          if (id.empty() || !known_rule(id)) {
            fail("unknown rule id '" + id + "' in specomp: allow(...)");
            ok = false;
          }
        }
        if (!has_justification(comment, close + 1)) {
          fail("allow(...) needs a justification: '// specomp: "
               "allow(<rule>): <why this is safe>'");
          ok = false;
        }
        if (ok)
          for (const auto& id : ids) a.allows[line_no].insert(id);
        pos = comment.find(kDirective, close);
        continue;
      }
      if (comment.compare(i, 17, "rollback-covered(") == 0) {
        std::size_t close = std::string::npos;
        const auto ids = parse_id_list(comment, i + 17, close);
        if (close == std::string::npos) {
          fail("unterminated rollback-covered( — missing ')'");
          break;
        }
        bool ok = ids.size() == 1 && !ids[0].empty();
        if (!ok) fail("rollback-covered(...) names exactly one field");
        if (!has_justification(comment, close + 1)) {
          fail("rollback-covered(...) needs a justification: '// specomp: "
               "rollback-covered(<field>): <why replay is safe>'");
          ok = false;
        }
        if (ok) a.covered.emplace_back(line_no, ids[0]);
        pos = comment.find(kDirective, close);
        continue;
      }
      fail("directive must be 'specomp: pure', 'specomp: allow(<rule>): "
           "<why>' or 'specomp: rollback-covered(<field>): <why>'");
      break;
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

struct Seed {
  std::string rule;
  std::string token;  // the seed identifier, for the message
  int line = 0;
  std::size_t symbol = 0;  // enclosing symbol (global index)
};

// Maps a token index to the symbol whose body contains it, via the sorted
// disjoint [tok_begin, tok_end) ranges of the file's symbols.
class BodyMap {
 public:
  BodyMap(const FileIndex& file, const std::vector<Symbol>& symbols) {
    for (const std::size_t s : file.symbols)
      ranges_.push_back({symbols[s].tok_begin, symbols[s].tok_end, s});
  }
  /// Returns true and sets `sym` when token `i` lies inside a body.
  bool enclosing(std::size_t i, std::size_t& sym) const {
    for (const auto& r : ranges_) {
      if (i < r.begin) return false;  // ranges are ascending
      if (i < r.end) {
        sym = r.sym;
        return true;
      }
    }
    return false;
  }

 private:
  struct Range {
    std::size_t begin, end, sym;
  };
  std::vector<Range> ranges_;
};

void collect_seeds(const FileIndex& file, const std::vector<Symbol>& symbols,
                   const FileAnnotations& ann, std::vector<Seed>& out) {
  const BodyMap bodies(file, symbols);
  const auto& toks = file.tokens;
  const auto tok = [&](std::size_t i) {
    return i < toks.size() ? toks[i].text : std::string_view{};
  };
  // Which symbols' bodies mention an unordered container (feeds the
  // range-for heuristic below).
  std::set<std::size_t> has_unordered;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t sym = 0;
    if (!bodies.enclosing(i, sym)) continue;
    const std::string_view t = toks[i].text;
    const int line = toks[i].line;
    auto add = [&](std::string_view rule) {
      if (ann.allowed(line, rule)) return;
      out.push_back({std::string(rule), std::string(t), line, sym});
    };
    if (kClockIdents.count(t) != 0) {
      add("wall-clock");
    } else if (t == "random_device" ||
               (kRandCalls.count(t) != 0 && tok(i + 1) == "(" &&
                (i == 0 || (tok(i - 1) != "." && tok(i - 1) != "->" &&
                            tok(i - 1) != "::")))) {
      add("ambient-rand");
    } else if (t == "get_id" && tok(i + 1) == "(") {
      add("thread-id");
    } else if (t == "uintptr_t" || t == "intptr_t") {
      add("ptr-cast");
    } else if (t == "new" && tok(i + 1) != "(") {  // placement new exempt
      add("hot-path-new");
    } else if (kUnorderedContainers.count(t) != 0) {
      has_unordered.insert(sym);
    }
  }

  // Range-for inside a body that also mentions an unordered container: the
  // visit order is hash-seed (and address) dependent.  A sorted snapshot
  // helper breaks the pattern — and a false pairing is silenced with
  // `// specomp: allow(unordered-iter): <why>` on the loop line.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    std::size_t sym = 0;
    if (!bodies.enclosing(i, sym) || has_unordered.count(sym) == 0) continue;
    int depth = 0;
    bool range_for = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      else if (toks[j].text == ")" && --depth == 0) break;
      else if (toks[j].text == ":" && depth == 1) {
        range_for = true;
        break;
      }
    }
    if (!range_for || ann.allowed(toks[i].line, "unordered-iter")) continue;
    out.push_back({"unordered-iter", "for(:)", toks[i].line, sym});
  }
}

// ---------------------------------------------------------------------------
// Member-field mutation detection (rollback pass)
// ---------------------------------------------------------------------------

struct Mutation {
  std::string field;
  int line = 0;
  std::string how;
};

const std::set<std::string_view> kCompoundOps = {"+", "-", "*", "/",
                                                 "%", "&", "|", "^"};

void collect_mutations(const FileIndex& file, const Symbol& sym,
                       const std::set<std::string>& fields,
                       std::vector<Mutation>& out) {
  const auto& toks = file.tokens;
  const auto tok = [&](std::size_t i) {
    return i < toks.size() ? toks[i].text : std::string_view{};
  };
  for (std::size_t i = sym.tok_begin; i < sym.tok_end && i < toks.size();
       ++i) {
    const std::string_view t = toks[i].text;
    if (fields.count(std::string(t)) == 0) continue;
    const std::string_view prev = i > 0 ? tok(i - 1) : std::string_view{};
    // Member of another object (`peer.pos_`) or qualified name: the
    // snapshot only covers *this*; skip unless explicitly `this->field`.
    if ((prev == "." || prev == "->") && (i < 2 || tok(i - 2) != "this"))
      continue;
    if (prev == "::") continue;
    auto add = [&](std::string how) {
      out.push_back({std::string(t), toks[i].line, std::move(how)});
    };
    // Prefix ++/--.
    if (i >= 2 && ((prev == "+" && tok(i - 2) == "+") ||
                   (prev == "-" && tok(i - 2) == "-"))) {
      add("incremented");
      continue;
    }
    // Skip subscripts: `pos_[i] = ...` mutates pos_.
    std::size_t j = i + 1;
    while (tok(j) == "[") {
      int depth = 0;
      while (j < toks.size()) {
        if (tok(j) == "[") ++depth;
        else if (tok(j) == "]" && --depth == 0) {
          ++j;
          break;
        }
        ++j;
      }
    }
    const std::string_view a = tok(j);
    const std::string_view b = tok(j + 1);
    if (a == "=" && b != "=") {
      add("assigned");
    } else if (kCompoundOps.count(a) != 0 && b == "=" && tok(j + 2) != "=") {
      add("compound-assigned");
    } else if ((a == "+" && b == "+") || (a == "-" && b == "-")) {
      add("incremented");
    } else if ((a == "<" && b == "<" && tok(j + 2) == "=") ||
               (a == ">" && b == ">" && tok(j + 2) == "=")) {
      add("compound-assigned");
    } else if ((a == "." || a == "->") && tok(j + 2) == "(") {
      if (kMutatingMembers.count(b) != 0)
        add("mutating call '." + std::string(b) + "()'");
      else if (b == "data")
        add("mutable buffer handle '.data()'");
    } else if ((prev == "(" || prev == ",") && (a == "," || a == ")")) {
      add("passed by reference to a call");
    }
  }
}

// ---------------------------------------------------------------------------
// The analysis driver
// ---------------------------------------------------------------------------

struct Analyzer {
  SymbolTable table;
  std::map<std::string, FileAnnotations> annotations;  // by path
  std::map<std::string, std::size_t> file_by_path;
  AnalyzeResult result;

  void add_file(const std::string& path, std::string_view content) {
    table.add_file(path, content);
    const FileIndex& file = table.files().back();
    annotations.emplace(file.path,
                        parse_annotations(file.path, file.lines));
    file_by_path.emplace(file.path, table.files().size() - 1);
  }

  bool is_pure(const Symbol& s) const {
    const auto it = annotations.find(s.path);
    if (it == annotations.end()) return false;
    const int hi = std::max(s.line, s.body_open_line);
    for (int l = s.line - 2; l <= hi; ++l)
      if (it->second.pure_lines.count(l) != 0) return true;
    return false;
  }

  const FileAnnotations& ann_for(const std::string& path) const {
    static const FileAnnotations kEmpty;
    const auto it = annotations.find(path);
    return it == annotations.end() ? kEmpty : it->second;
  }

  void run() {
    result.symbols_indexed = table.symbols().size();
    result.classes_indexed = table.classes().size();
    for (const auto& [path, ann] : annotations)
      for (const auto& f : ann.bad) result.findings.push_back(f);
    taint_pass();
    rollback_pass();
    std::sort(result.findings.begin(), result.findings.end(),
              [](const AnalyzeFinding& x, const AnalyzeFinding& y) {
                return std::tie(x.path, x.line, x.rule, x.symbol, x.detail) <
                       std::tie(y.path, y.line, y.rule, y.symbol, y.detail);
              });
    result.findings.erase(
        std::unique(result.findings.begin(), result.findings.end(),
                    [](const AnalyzeFinding& x, const AnalyzeFinding& y) {
                      return x.path == y.path && x.line == y.line &&
                             x.rule == y.rule && x.symbol == y.symbol &&
                             x.detail == y.detail;
                    }),
        result.findings.end());
  }

  // ---- taint ----

  std::vector<std::string> root_owners() const {
    // Engine, DES kernel, communicators and mailboxes drive speculation,
    // checking and replay; every SyncIterativeApp implementation is called
    // from the replay loop.
    std::vector<std::string> owners = {"SpecEngine", "Kernel",
                                       "SimCommunicator",
                                       "ThreadCommunicator", "TimedMailbox"};
    for (const ClassInfo* c : table.derived_from("SyncIterativeApp"))
      owners.push_back(c->name);
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    return owners;
  }

  void taint_pass() {
    const auto& symbols = table.symbols();
    const std::vector<std::string> owners = root_owners();
    const std::set<std::string> owner_set(owners.begin(), owners.end());

    constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(symbols.size(), kNoParent);
    std::vector<bool> reached(symbols.size(), false);
    std::deque<std::size_t> queue;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      if (owner_set.count(symbols[s].owner) == 0) continue;
      if (is_pure(symbols[s])) continue;
      reached[s] = true;
      queue.push_back(s);
      ++result.taint_roots;
    }
    while (!queue.empty()) {
      const std::size_t s = queue.front();
      queue.pop_front();
      for (const auto& callee : symbols[s].calls) {
        for (const std::size_t c : table.by_name(callee)) {
          if (reached[c] || is_pure(symbols[c])) continue;
          reached[c] = true;
          parent[c] = s;
          queue.push_back(c);
        }
      }
    }

    // Seed sites inside reached, non-pure symbols become findings with the
    // root→…→seed call chain.
    std::vector<Seed> seeds;
    for (const auto& file : table.files())
      collect_seeds(file, symbols, ann_for(file.path), seeds);
    for (const auto& seed : seeds) {
      if (!reached[seed.symbol]) continue;
      const Symbol& sym = symbols[seed.symbol];
      std::vector<std::string> chain;
      for (std::size_t s = seed.symbol; s != kNoParent; s = parent[s]) {
        chain.push_back(symbols[s].qualified() + " (" + symbols[s].path +
                        ":" + std::to_string(symbols[s].line) + ")");
        if (parent[s] == kNoParent) break;
      }
      std::reverse(chain.begin(), chain.end());
      const std::string root_name =
          chain.empty() ? sym.qualified()
                        : chain.front().substr(0, chain.front().find(" ("));
      AnalyzeFinding f;
      f.rule = seed.rule;
      f.path = sym.path;
      f.line = seed.line;
      f.symbol = sym.qualified();
      f.detail = "'" + seed.token + "' reachable from replay root " +
                 root_name;
      f.chain = std::move(chain);
      result.findings.push_back(std::move(f));
    }
  }

  // ---- rollback safety ----

  // Closure of symbols owned by `cls` reachable from the named entry
  // methods via same-class calls, in deterministic index order.
  std::vector<std::size_t> method_closure(
      const std::string& cls, const std::set<std::string>& entries) const {
    const auto& symbols = table.symbols();
    std::set<std::size_t> seen;
    std::deque<std::size_t> queue;
    for (const std::size_t s : table.methods_of(cls))
      if (entries.count(symbols[s].name) != 0 && seen.insert(s).second)
        queue.push_back(s);
    while (!queue.empty()) {
      const std::size_t s = queue.front();
      queue.pop_front();
      for (const auto& callee : symbols[s].calls)
        for (const std::size_t c : table.by_name(callee))
          if (symbols[c].owner == cls && seen.insert(c).second)
            queue.push_back(c);
    }
    return {seen.begin(), seen.end()};
  }

  void rollback_pass() {
    const auto& symbols = table.symbols();
    const std::set<std::string> kMutators = {"compute_step", "install_peer",
                                             "correct_last_step"};
    const std::set<std::string> kSavers = {"pack_local", "save_state",
                                           "restore_state"};
    for (const ClassInfo* cls : table.derived_from("SyncIterativeApp")) {
      if (cls->name == "SyncIterativeApp") continue;
      const auto mutators = method_closure(cls->name, kMutators);
      if (mutators.empty()) continue;  // abstract / helper base
      const auto savers = method_closure(cls->name, kSavers);

      std::set<std::string> field_names;
      for (const auto& f : cls->fields) field_names.insert(f.name);

      // Fields referenced anywhere in the save/restore/pack closure are
      // covered (loose on purpose: coverage over-approximates toward *not*
      // flagging).
      std::set<std::string> covered;
      for (const std::size_t s : savers) {
        const auto fit = file_by_path.find(symbols[s].path);
        if (fit == file_by_path.end()) continue;
        const FileIndex& file = table.files()[fit->second];
        for (std::size_t i = symbols[s].tok_begin;
             i < symbols[s].tok_end && i < file.tokens.size(); ++i) {
          const std::string t(file.tokens[i].text);
          if (field_names.count(t) != 0) covered.insert(t);
        }
      }
      // `// specomp: rollback-covered(field): why` on the field declaration
      // or in the comment block up to three lines above it.
      const FileAnnotations& cls_ann = ann_for(cls->path);
      for (const auto& f : cls->fields)
        for (const auto& [line, name] : cls_ann.covered)
          if (name == f.name && line >= f.line - 3 && line <= f.line)
            covered.insert(f.name);

      std::map<std::string, std::vector<std::pair<std::size_t, Mutation>>>
          mutated;  // field -> (symbol, site)
      for (const std::size_t s : mutators) {
        const auto fit = file_by_path.find(symbols[s].path);
        if (fit == file_by_path.end()) continue;
        const FileIndex& file = table.files()[fit->second];
        std::vector<Mutation> muts;
        collect_mutations(file, symbols[s], field_names, muts);
        for (auto& m : muts) mutated[m.field].emplace_back(s, std::move(m));
        scan_body_escapes(file, symbols[s]);
      }

      const std::map<std::string, const Field*> field_info = [&] {
        std::map<std::string, const Field*> m;
        for (const auto& f : cls->fields) m.emplace(f.name, &f);
        return m;
      }();
      for (const auto& [field, sites] : mutated) {
        const Field* info = field_info.at(field);
        std::vector<std::string> chain;
        std::set<std::string> via;
        for (const auto& [s, m] : sites) {
          if (chain.size() < 4)
            chain.push_back(symbols[s].qualified() + " (" + symbols[s].path +
                            ":" + std::to_string(m.line) + ") — " + m.how);
          via.insert(symbols[s].name);
        }
        std::string methods;
        for (const auto& v : via) methods += (methods.empty() ? "" : "/") + v;
        if (info->is_static || info->is_mutable) {
          if (!cls_ann.allowed(info->line, "rollback-static"))
            result.findings.push_back(
                {"rollback-static", cls->path, info->line,
                 cls->name + "::" + field,
                 std::string(info->is_static ? "static" : "mutable") +
                     " member '" + field + "' mutated by " + methods +
                     " — shared across snapshots, restore_state cannot "
                     "rewind it",
                 chain, false});
          continue;
        }
        if (covered.count(field) != 0) continue;
        if (cls_ann.allowed(info->line, "rollback-unsaved-field")) continue;
        result.findings.push_back(
            {"rollback-unsaved-field", cls->path, info->line,
             cls->name + "::" + field,
             "field '" + field + "' mutated by " + methods +
                 " but never referenced by "
                 "save_state/restore_state/pack_local — state escapes "
                 "rollback",
             chain, false});
      }
    }
  }

  // Static locals, file I/O and RNG advancement inside a rollback-scoped
  // method body.
  void scan_body_escapes(const FileIndex& file, const Symbol& sym) {
    const FileAnnotations& ann = ann_for(file.path);
    const auto& toks = file.tokens;
    const auto tok = [&](std::size_t i) {
      return i < toks.size() ? toks[i].text : std::string_view{};
    };
    auto add = [&](std::string_view rule, int line, std::string detail) {
      if (ann.allowed(line, rule)) return;
      result.findings.push_back({std::string(rule), file.path, line,
                                 sym.qualified(), std::move(detail),
                                 {}, false});
    };
    for (std::size_t i = sym.tok_begin; i < sym.tok_end && i < toks.size();
         ++i) {
      const std::string_view t = toks[i].text;
      const int line = toks[i].line;
      if (t == "static" && tok(i + 1) != "const" &&
          tok(i + 1) != "constexpr" && tok(i + 2) != "const" &&
          tok(i + 2) != "constexpr") {
        add("rollback-static", line,
            "static local state in rollback-scoped method " +
                sym.qualified() + " — survives restore_state");
      } else if (kIoIdents.count(t) != 0) {
        add("rollback-io", line,
            "file I/O '" + std::string(t) + "' in rollback-scoped method " +
                sym.qualified() + " — effects are not rolled back");
      } else if (t == "random_device" ||
                 (kRandCalls.count(t) != 0 && tok(i + 1) == "(" &&
                  (i == 0 || (tok(i - 1) != "." && tok(i - 1) != "->" &&
                              tok(i - 1) != "::")))) {
        add("rollback-rng", line,
            "RNG '" + std::string(t) + "' advanced in rollback-scoped "
            "method " + sym.qualified() + " — stream position escapes the "
            "snapshot");
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::pair<std::string, std::string>>& analyze_rules() {
  return kRules;
}

AnalyzeResult analyze_files(
    const std::vector<std::pair<std::string, std::string>>& files) {
  Analyzer a;
  for (const auto& [path, content] : files) a.add_file(path, content);
  a.result.files_scanned = files.size();
  a.run();
  return std::move(a.result);
}

AnalyzeResult analyze_tree(const std::filesystem::path& root,
                           const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  Analyzer a;
  const std::vector<fs::path> paths =
      specscan::collect_sources(root, subdirs);
  for (const auto& p : paths)
    a.add_file(fs::relative(p, root).generic_string(),
               specscan::read_file(p));
  a.result.files_scanned = paths.size();
  a.run();
  return std::move(a.result);
}

std::string baseline_key(const AnalyzeFinding& f) {
  return f.rule + "|" + f.path + "|" + f.symbol + "|" + f.detail;
}

std::string make_baseline_json(const AnalyzeResult& result) {
  using specomp::obs::Json;
  std::vector<const AnalyzeFinding*> sorted;
  for (const auto& f : result.findings) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const AnalyzeFinding* x, const AnalyzeFinding* y) {
              return baseline_key(*x) < baseline_key(*y);
            });
  Json entries = Json::array();
  std::string last;
  for (const AnalyzeFinding* f : sorted) {
    const std::string key = baseline_key(*f);
    if (key == last) continue;
    last = key;
    Json e = Json::object();
    e.set("rule", f->rule);
    e.set("path", f->path);
    e.set("symbol", f->symbol);
    e.set("detail", f->detail);
    entries.push_back(std::move(e));
  }
  Json doc = Json::object();
  doc.set("schema_version", 1);
  doc.set("tool", "specomp-analyze-baseline");
  doc.set("entries", std::move(entries));
  return doc.dump(2) + "\n";
}

std::size_t apply_baseline(AnalyzeResult& result,
                           std::string_view baseline_json) {
  using specomp::obs::Json;
  const Json doc = Json::parse(baseline_json);
  const Json* version = doc.find("schema_version");
  if (version == nullptr || version->as_int() != 1)
    throw std::runtime_error("baseline: unsupported schema_version");
  std::set<std::string> keys;
  if (const Json* entries = doc.find("entries")) {
    for (const auto& e : entries->as_array())
      keys.insert(e.at("rule").as_string() + "|" + e.at("path").as_string() +
                  "|" + e.at("symbol").as_string() + "|" +
                  e.at("detail").as_string());
  }
  std::size_t fresh = 0;
  for (auto& f : result.findings) {
    f.baselined = keys.count(baseline_key(f)) != 0;
    if (!f.baselined) ++fresh;
  }
  return fresh;
}

std::string format_finding(const AnalyzeFinding& f) {
  std::string out = f.path + ":" + std::to_string(f.line) + ": [" + f.rule +
                    "] " + (f.symbol.empty() ? "" : f.symbol + ": ") +
                    f.detail;
  if (f.baselined) out += " [baselined]";
  for (const auto& frame : f.chain) out += "\n    via " + frame;
  return out;
}

std::string to_text_report(const AnalyzeResult& result) {
  std::ostringstream os;
  std::size_t fresh = 0, baselined = 0;
  for (const auto& f : result.findings) (f.baselined ? baselined : fresh)++;
  os << "# specomp-analyze report\n"
     << "# schema_version: 1\n"
     << "# files=" << result.files_scanned
     << " symbols=" << result.symbols_indexed
     << " classes=" << result.classes_indexed
     << " roots=" << result.taint_roots
     << " findings=" << result.findings.size() << " (new=" << fresh
     << " baselined=" << baselined << ")\n";
  if (result.findings.empty()) {
    os << "clean: no findings\n";
    return os.str();
  }
  for (const auto& f : result.findings) os << format_finding(f) << "\n";
  return os.str();
}

std::string to_json_report(const AnalyzeResult& result) {
  using specomp::obs::Json;
  std::size_t fresh = 0, baselined = 0;
  for (const auto& f : result.findings) (f.baselined ? baselined : fresh)++;
  Json doc = Json::object();
  doc.set("schema_version", 1);
  doc.set("tool", "specomp-analyze");
  doc.set("files_scanned", result.files_scanned);
  doc.set("symbols", result.symbols_indexed);
  doc.set("classes", result.classes_indexed);
  doc.set("taint_roots", result.taint_roots);
  doc.set("new_findings", fresh);
  doc.set("baselined_findings", baselined);
  Json arr = Json::array();
  for (const auto& f : result.findings) {
    Json e = Json::object();
    e.set("rule", f.rule);
    e.set("path", f.path);
    e.set("line", f.line);
    e.set("symbol", f.symbol);
    e.set("detail", f.detail);
    e.set("baselined", f.baselined);
    Json chain = Json::array();
    for (const auto& frame : f.chain) chain.push_back(frame);
    e.set("chain", std::move(chain));
    arr.push_back(std::move(e));
  }
  doc.set("findings", std::move(arr));
  return doc.dump(2) + "\n";
}

std::string to_sarif_report(const AnalyzeResult& result) {
  using specomp::obs::Json;
  Json rules = Json::array();
  for (const auto& [id, desc] : analyze_rules()) {
    Json r = Json::object();
    r.set("id", id);
    Json text = Json::object();
    text.set("text", desc);
    r.set("shortDescription", std::move(text));
    rules.push_back(std::move(r));
  }
  Json driver = Json::object();
  driver.set("name", "specomp-analyze");
  driver.set("version", "1.0.0");
  driver.set("informationUri",
             "https://github.com/specomp/specomp/blob/main/DESIGN.md");
  driver.set("rules", std::move(rules));
  Json tool = Json::object();
  tool.set("driver", std::move(driver));

  Json results = Json::array();
  for (const auto& f : result.findings) {
    Json msg = Json::object();
    std::string text = f.detail;
    for (const auto& frame : f.chain) text += "; via " + frame;
    msg.set("text", std::move(text));
    Json artifact = Json::object();
    artifact.set("uri", f.path);
    Json region = Json::object();
    region.set("startLine", f.line > 0 ? f.line : 1);
    Json physical = Json::object();
    physical.set("artifactLocation", std::move(artifact));
    physical.set("region", std::move(region));
    Json location = Json::object();
    location.set("physicalLocation", std::move(physical));
    Json locations = Json::array();
    locations.push_back(std::move(location));
    Json r = Json::object();
    r.set("ruleId", f.rule);
    r.set("level", f.baselined ? "note" : "error");
    r.set("message", std::move(msg));
    r.set("locations", std::move(locations));
    results.push_back(std::move(r));
  }

  Json run = Json::object();
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  Json runs = Json::array();
  runs.push_back(std::move(run));
  Json doc = Json::object();
  doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  doc.set("version", "2.1.0");
  doc.set("runs", std::move(runs));
  return doc.dump(2) + "\n";
}

}  // namespace specana

// specomp-analyze: whole-program determinism and rollback-safety analysis.
//
// Built on the symbol index (symbols.hpp), two passes guard the invariants
// that speculative rollback+replay depends on (DESIGN.md §12):
//
//  * Nondeterminism taint.  Seed sites — wall clocks, ambient PRNGs, thread
//    ids, pointer-to-integer casts, unordered-container iteration, raw `new`
//    in a body — taint their enclosing function; taint propagates along the
//    name-resolved call graph.  Only functions reachable from the engine /
//    DES / communicator / app replay roots are reported, each with the full
//    root→…→seed call chain, because nondeterminism is only fatal where a
//    replayed step could observe it.
//
//  * Rollback safety.  For every class derived from spec::SyncIterativeApp,
//    the member fields mutated by the step/install/correct closure are
//    checked against the fields referenced by save_state / restore_state /
//    pack_local.  State that escapes the snapshot — unsaved members, static
//    or mutable members, static locals, file I/O, ambient RNG advancement —
//    silently diverges after the first rollback.
//
// Both passes over-approximate (name-based calls, token-level mutation
// detection), so every rule is suppressible with a justified annotation:
//
//    // specomp: pure                          — function never taints
//    // specomp: rollback-covered(field): why  — field is rollback-safe
//    // specomp: allow(wall-clock): why        — silence one rule on a line
//
// plus the pre-existing `// specomp-lint: allow(rule): why` directives for
// the rule ids shared with specomp-lint.  Malformed directives are findings
// themselves (rule `bad-annotation`).  A committed baseline
// (tools/analyze/baseline.json) keys findings on (rule, path, symbol,
// detail) — no line numbers — so CI fails only on *new* findings.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "symbols.hpp"

namespace specana {

/// One analyzer finding.  `symbol` is the qualified function for taint
/// findings and `Class::field` for rollback findings; `detail` is stable
/// across unrelated edits (no line numbers) so the baseline key
/// (rule, path, symbol, detail) survives file churn.
struct AnalyzeFinding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string symbol;
  std::string detail;
  /// Supporting frames, root first: "Qualified (path:line)".  Taint findings
  /// carry the root→seed call chain; rollback findings the mutation sites.
  std::vector<std::string> chain;
  /// Set by apply_baseline for findings already present in the baseline.
  bool baselined = false;
};

/// Rule vocabulary: id -> one-line description (drives allow() validation,
/// the SARIF rule table and the docs).
const std::vector<std::pair<std::string, std::string>>& analyze_rules();

struct AnalyzeResult {
  std::vector<AnalyzeFinding> findings;  // sorted (path, line, rule, symbol)
  std::size_t files_scanned = 0;
  std::size_t symbols_indexed = 0;
  std::size_t classes_indexed = 0;
  std::size_t taint_roots = 0;
};

/// Analyses in-memory files [(logical_path, content)] — the test entry
/// point.  Files are indexed in the given order.
AnalyzeResult analyze_files(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Analyses `root`/<subdir> trees on disk (same file discovery as
/// specomp-lint: build*/fixtures dirs skipped, sorted paths).
AnalyzeResult analyze_tree(const std::filesystem::path& root,
                           const std::vector<std::string>& subdirs);

/// The baseline identity of a finding: "rule|path|symbol|detail".
std::string baseline_key(const AnalyzeFinding& f);

/// Serialises the current findings as a baseline document (schema_version 1,
/// sorted unique keys).
std::string make_baseline_json(const AnalyzeResult& result);

/// Marks findings whose key appears in `baseline_json` as baselined.
/// Returns the number of findings NOT in the baseline (the CI gate).
/// Throws std::runtime_error on malformed baseline documents.
std::size_t apply_baseline(AnalyzeResult& result,
                           std::string_view baseline_json);

/// "path:line: [rule] symbol: detail" plus indented chain frames.
std::string format_finding(const AnalyzeFinding& f);

/// Human-readable report with a `schema_version` header; byte-deterministic
/// for a given tree.
std::string to_text_report(const AnalyzeResult& result);

/// Machine-readable report (schema_version 1).
std::string to_json_report(const AnalyzeResult& result);

/// SARIF 2.1.0 (one run, full rule table; baselined findings demoted to
/// "note" so code-scanning UIs surface only new ones as errors).
std::string to_sarif_report(const AnalyzeResult& result);

}  // namespace specana

// Shared C++ source scanner for the repo's dependency-free static tools.
//
// specomp-lint (PR 4) grew a hand-rolled line scanner that blanks comments,
// string/char literals and preprocessor lines before token matching — block
// comments and raw strings carry state across lines — plus a small
// identifier/punctuation tokenizer.  specomp-analyze (the whole-program
// determinism & rollback-safety analyzer) needs exactly the same front end,
// so it lives here as a library both tools link.  No compiler, no AST, no
// third-party deps: it scans the whole tree in milliseconds and builds
// anywhere a C++20 compiler exists.
//
// Contract notes:
//   * ScannedLine::code is the line with literals/comments/preprocessor
//     text blanked to spaces (so columns still line up with the source);
//     ScannedLine::comment is the concatenated comment text of the line —
//     directive parsers (lint allows, analyze annotations) read it.
//   * Token::text is a string_view into the ScannedLine::code strings; the
//     lines vector must outlive the tokens.
//   * tokenize() emits identifiers and single-char punctuation, with "::"
//     and "->" as single tokens; numbers are dropped (no rule needs them).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace specscan {

struct ScannedLine {
  std::string code;     // literals and comments blanked to spaces
  std::string comment;  // concatenated comment text of this line
};

/// Splits `content` into scanned lines (1-based line i is lines[i-1]).
std::vector<ScannedLine> scan(std::string_view content);

struct Token {
  std::string_view text;
  int line = 0;  // 1-based
};

/// Tokenizes the blanked code of every line.  Views point into `lines`.
std::vector<Token> tokenize(const std::vector<ScannedLine>& lines);

/// True for a token that could start an identifier ([A-Za-z_]...).
bool is_identifier(std::string_view token);

/// Collects the C++ sources (.cpp/.hpp/.h/.cc/.hh) under `root`/`subdir`
/// for each subdir, skipping build*/ directories and fixtures/ corpora
/// (fixtures violate rules on purpose).  Sorted for deterministic output.
std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root, const std::vector<std::string>& subdirs);

/// Reads a whole file (binary); returns empty string on failure.
std::string read_file(const std::filesystem::path& path);

}  // namespace specscan

#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace specscan {

std::vector<ScannedLine> scan(std::string_view content) {
  std::vector<ScannedLine> lines;
  ScannedLine cur;
  enum class State { Code, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delim;   // for raw strings: the ")delim" terminator
  bool preproc = false;    // current logical line is a preprocessor directive
  bool line_has_code = false;

  auto flush_line = [&] {
    // Preprocessor text must not feed the token rules (e.g. `#include <new>`).
    if (preproc) cur.code.assign(cur.code.size(), ' ');
    lines.push_back(std::move(cur));
    cur = ScannedLine{};
    line_has_code = false;
  };

  std::size_t i = 0;
  const std::size_t n = content.size();
  bool continues_preproc = false;
  while (i <= n) {
    if (i == n || content[i] == '\n') {
      // End of physical line: a preprocessor line continues with backslash.
      bool backslash = false;
      if (i > 0) {
        std::size_t j = i;
        while (j > 0 && (content[j - 1] == '\r')) --j;
        backslash = j > 0 && content[j - 1] == '\\';
      }
      continues_preproc = preproc && backslash && state == State::Code;
      flush_line();
      preproc = continues_preproc;
      if (i == n) break;
      ++i;
      continue;
    }
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::Code: {
        if (!line_has_code && !preproc) {
          if (std::isspace(static_cast<unsigned char>(c))) {
            cur.code.push_back(' ');
            ++i;
            continue;
          }
          line_has_code = true;
          if (c == '#') preproc = true;
        }
        if (c == '/' && next == '/') {
          // Line comment: capture the text, blank the code.
          std::size_t end = content.find('\n', i);
          if (end == std::string_view::npos) end = n;
          cur.comment.append(content.substr(i + 2, end - i - 2));
          cur.code.append(end - i, ' ');
          i = end;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::BlockComment;
          cur.code.append(2, ' ');
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string?  Look back over the prefix (R, uR, u8R, LR, UR).
          std::size_t p = i;
          bool raw = p > 0 && content[p - 1] == 'R';
          if (raw) {
            // The R must itself start an identifier-ish prefix, not end one
            // (e.g. `macroR"` is not a raw string in practice — good enough).
            std::size_t q = p - 1;
            while (q > 0 && (std::isalnum(static_cast<unsigned char>(
                                 content[q - 1])) ||
                             content[q - 1] == '_'))
              --q;
            const std::string_view prefix = content.substr(q, p - q);
            raw = prefix == "R" || prefix == "uR" || prefix == "u8R" ||
                  prefix == "LR" || prefix == "UR";
          }
          if (raw) {
            std::size_t delim_end = i + 1;
            while (delim_end < n && content[delim_end] != '(') ++delim_end;
            raw_delim = ")";
            raw_delim.append(content.substr(i + 1, delim_end - i - 1));
            raw_delim.push_back('"');
            state = State::RawString;
            cur.code.append(delim_end - i + 1 <= n ? delim_end - i + 1 : 1, ' ');
            i = delim_end + 1;
            continue;
          }
          state = State::String;
          cur.code.push_back(' ');
          ++i;
          continue;
        }
        if (c == '\'') {
          // Digit separator / literal suffix (1'000) — not a char literal.
          if (i > 0 && (std::isalnum(static_cast<unsigned char>(
                            content[i - 1])) ||
                        content[i - 1] == '_')) {
            cur.code.push_back(' ');
            ++i;
            continue;
          }
          state = State::Char;
          cur.code.push_back(' ');
          ++i;
          continue;
        }
        cur.code.push_back(c);
        ++i;
        break;
      }
      case State::BlockComment: {
        if (c == '*' && next == '/') {
          state = State::Code;
          cur.code.append(2, ' ');
          i += 2;
        } else {
          cur.comment.push_back(c == '\t' ? ' ' : c);
          cur.code.push_back(' ');
          ++i;
        }
        break;
      }
      case State::String:
      case State::Char: {
        const char quote = state == State::String ? '"' : '\'';
        if (c == '\\') {
          cur.code.append(2, ' ');
          i += 2;
        } else if (c == quote) {
          state = State::Code;
          cur.code.push_back(' ');
          ++i;
        } else {
          cur.code.push_back(' ');
          ++i;
        }
        break;
      }
      case State::RawString: {
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          cur.code.append(raw_delim.size(), ' ');
          i += raw_delim.size();
          state = State::Code;
        } else {
          cur.code.push_back(' ');
          ++i;
        }
        break;
      }
    }
  }
  return lines;
}

std::vector<Token> tokenize(const std::vector<ScannedLine>& lines) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const int line_no = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i + 1;
        while (j < code.size() && (std::isalnum(static_cast<unsigned char>(
                                       code[j])) ||
                                   code[j] == '_'))
          ++j;
        tokens.push_back({std::string_view(code).substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i + 1;
        while (j < code.size() && (std::isalnum(static_cast<unsigned char>(
                                       code[j])) ||
                                   code[j] == '.' || code[j] == '_'))
          ++j;
        i = j;  // numbers never matter to the rules
        continue;
      }
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        tokens.push_back({std::string_view(code).substr(i, 2), line_no});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        tokens.push_back({std::string_view(code).substr(i, 2), line_no});
        i += 2;
        continue;
      }
      tokens.push_back({std::string_view(code).substr(i, 1), line_no});
      ++i;
    }
  }
  return tokens;
}

bool is_identifier(std::string_view token) {
  return !token.empty() &&
         (std::isalpha(static_cast<unsigned char>(token[0])) ||
          token[0] == '_');
}

std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root,
    const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (it->is_directory()) {
        // Skip build trees and test corpora (fixtures are violations on
        // purpose).
        if (name.starts_with("build") || name == "fixtures")
          it.disable_recursion_pending();
        continue;
      }
      const std::string ext = p.extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
          ext == ".hh")
        paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace specscan

// spectrace: analyze a specomp JSONL trace (see obs/trace_export.hpp).
//
//   $ ./tools/spectrace/spectrace trace.jsonl              # all analyses, text
//   $ ./tools/spectrace/spectrace --self-check trace.jsonl # validate only
//   $ ./tools/spectrace/spectrace --cascades --json trace.jsonl
//
// Flags (combinable; no analysis flag = run everything):
//   --self-check     structural validation (exit 1 when it fails)
//   --cascades       rollback-cascade graph: depth, width, wasted time
//   --critical-path  per-rank time breakdown + blocked-on chain
//   --propagation    delay-propagation report from the first injected stall
//   --json           machine-readable output (deterministic bytes)
//   --out=FILE       write the report there instead of stdout
//
// Exit codes: 0 ok, 1 self-check failed, 2 usage or I/O error,
// 3 malformed trace.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "spectrace_core.hpp"

namespace {

using spectrace::Json;

void print_self_check(std::ostream& os, const spectrace::SelfCheckResult& r) {
  os << "self-check: " << (r.ok ? "ok" : "FAILED") << "\n";
  for (const auto& e : r.errors) os << "  error: " << e << "\n";
  os << "  duplicate recvs:  " << r.duplicate_recvs << "\n"
     << "  unmatched sends:  " << r.unmatched_sends
     << "  (lost or in flight at shutdown)\n"
     << "  open degraded:    " << r.open_degraded
     << "  (ranks still degraded at shutdown)\n";
}

void print_cascades(std::ostream& os, const spectrace::CascadeReport& r) {
  os << "rollback cascades: " << r.cascades.size() << " cascade(s), "
     << r.total_rollbacks << " rollback(s), " << r.total_wasted_seconds
     << " s wasted in replay\n";
  for (std::size_t i = 0; i < r.cascades.size(); ++i) {
    const spectrace::Cascade& c = r.cascades[i];
    os << "  #" << i << ": " << c.nodes.size() << " rollbacks, depth "
       << c.depth << ", width " << c.width << " lanes, t=[" << c.first_at_s
       << ", " << c.last_at_s << "] s, wasted " << c.wasted_seconds << " s\n";
    for (const auto& node : c.nodes)
      os << "      lane " << node.lane << " iter " << node.iter << " (peer "
         << node.peer << ") at " << node.at_s << " s\n";
  }
}

void print_critical_path(std::ostream& os,
                         const spectrace::CriticalPathReport& r) {
  os << "critical path: makespan " << r.makespan_s << " s on lane "
     << r.makespan_lane << "\n  blocked-on chain:";
  for (const auto lane : r.chain) os << " " << lane;
  os << "\n";
  for (const auto& rank : r.ranks) {
    os << "  lane " << rank.lane << ": " << rank.total_s << " s total\n";
    for (const auto& [kind, seconds] : rank.by_kind)
      os << "      " << kind << ": " << seconds << " s\n";
    for (const auto& [peer, seconds] : rank.waited_on)
      os << "      waited on lane " << peer << ": " << seconds << " s\n";
  }
}

void print_propagation(std::ostream& os,
                       const spectrace::PropagationReport& r) {
  if (!r.has_anchor) {
    os << "delay propagation: no stall event in trace (nothing to anchor "
          "on)\n";
    return;
  }
  os << "delay propagation: " << r.anchor_len_s << " s stall on lane "
     << r.anchor_lane << " at " << r.anchor_at_s << " s\n"
     << "  reached " << r.infections.size() << " lane(s), depth " << r.depth
     << " hop(s), front speed " << r.front_speed_lanes_per_s
     << " lanes/s, decay " << r.decay_per_hop << " per hop\n";
  for (const auto& inf : r.infections)
    os << "    lane " << inf.lane << ": hop " << inf.hops << " at "
       << inf.infected_at_s << " s, excess wait " << inf.excess_wait_s
       << " s\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool want_self_check = false;
  bool want_cascades = false;
  bool want_critical = false;
  bool want_propagation = false;
  bool want_json = false;
  std::string out_path;
  std::string in_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-check") {
      want_self_check = true;
    } else if (arg == "--cascades") {
      want_cascades = true;
    } else if (arg == "--critical-path") {
      want_critical = true;
    } else if (arg == "--propagation") {
      want_propagation = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spectrace [--self-check] [--cascades] [--critical-path]\n"
          "                 [--propagation] [--json] [--out=FILE] TRACE.jsonl\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "error: no trace file (see --help)\n");
    return 2;
  }
  const bool all = !want_self_check && !want_cascades && !want_critical &&
                   !want_propagation;

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", in_path.c_str());
    return 2;
  }
  spectrace::ParsedTrace trace;
  try {
    trace = spectrace::parse_jsonl(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", in_path.c_str(), e.what());
    return 3;
  }

  std::ostringstream body;
  int exit_code = 0;

  if (want_json) {
    Json doc = Json::object();
    doc.set("schema", "specomp.spectrace.v1");
    doc.set("schema_version", 1);
    if (all || want_self_check) {
      const auto r = spectrace::self_check(trace);
      if (!r.ok) exit_code = 1;
      doc.set("self_check", spectrace::self_check_json(r));
    }
    if (all || want_cascades)
      doc.set("cascades",
              spectrace::cascade_report_json(spectrace::cascades(trace)));
    if (all || want_critical)
      doc.set("critical_path", spectrace::critical_path_json(
                                   spectrace::critical_path(trace)));
    if (all || want_propagation)
      doc.set("propagation", spectrace::propagation_report_json(
                                 spectrace::delay_propagation(trace)));
    body << doc.dump(2) << "\n";
  } else {
    body << in_path << ": " << trace.lines << " lines, " << trace.lanes
         << " lanes, " << trace.spans.size() << " spans, "
         << trace.causal.size() << " causal events\n";
    if (all || want_self_check) {
      const auto r = spectrace::self_check(trace);
      if (!r.ok) exit_code = 1;
      print_self_check(body, r);
    }
    if (all || want_cascades) print_cascades(body, spectrace::cascades(trace));
    if (all || want_critical)
      print_critical_path(body, spectrace::critical_path(trace));
    if (all || want_propagation)
      print_propagation(body, spectrace::delay_propagation(trace));
  }

  if (out_path.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << body.str();
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
      return 2;
    }
  }
  return exit_code;
}

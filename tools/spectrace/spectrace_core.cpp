#include "spectrace_core.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/trace_export.hpp"

namespace spectrace {

namespace {

using specomp::des::CausalKind;

/// Rollbacks further apart than this many engine iterations are never
/// chained into one cascade, even on the same link — damage from a single
/// mispeculation cannot outlive the forward window by much.
constexpr long kCascadeHorizonIters = 8;

constexpr double kTimeEps = 1e-9;

/// des::span_name() strings the analyses key on.
constexpr const char* kWaitSpan = "wait (idle)";
constexpr const char* kCorrectSpan = "correct/recompute";

[[noreturn]] void fail_line(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                           what);
}

double opt_double(const Json& doc, std::string_view key) {
  const Json* v = doc.find(key);
  return v == nullptr ? 0.0 : v->as_double();
}

std::int64_t opt_int(const Json& doc, std::string_view key,
                     std::int64_t fallback) {
  const Json* v = doc.find(key);
  return v == nullptr ? fallback : v->as_int();
}

}  // namespace

ParsedTrace parse_jsonl(std::istream& is) {
  ParsedTrace out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception& e) {
      fail_line(lineno, std::string("malformed JSON: ") + e.what());
    }
    if (!doc.is_object()) fail_line(lineno, "record is not an object");
    const Json* type = doc.find("type");
    if (type == nullptr || !type->is_string())
      fail_line(lineno, "record has no \"type\"");
    const std::string& t = type->as_string();

    if (t == "meta") {
      out.schema = doc.at("schema").as_string();
      out.schema_version = static_cast<int>(doc.at("schema_version").as_int());
      out.lanes = doc.at("lanes").as_uint();
      if (out.schema_version > specomp::obs::kTraceSchemaVersion) {
        fail_line(lineno,
                  "schema_version " + std::to_string(out.schema_version) +
                      " is newer than this spectrace supports (" +
                      std::to_string(specomp::obs::kTraceSchemaVersion) +
                      ") — rebuild spectrace or regenerate the trace");
      }
    } else if (t == "span") {
      SpanRec s;
      s.lane = doc.at("lane").as_uint();
      s.kind = doc.at("kind").as_string();
      s.begin_s = doc.at("begin_s").as_double();
      s.end_s = doc.at("end_s").as_double();
      out.spans.push_back(std::move(s));
    } else if (t == "event") {
      ++out.point_events;
    } else if (t == "causal") {
      CausalRec c;
      c.lane = doc.at("lane").as_uint();
      const std::string& kind = doc.at("kind").as_string();
      if (!specomp::des::causal_from_name(kind, c.kind))
        fail_line(lineno, "unknown causal kind \"" + kind + "\"");
      c.at_s = doc.at("at_s").as_double();
      c.peer = static_cast<int>(opt_int(doc, "peer", -1));
      c.tag = static_cast<int>(opt_int(doc, "tag", 0));
      c.seq = static_cast<std::uint64_t>(opt_int(doc, "seq", 0));
      c.iter = static_cast<long>(opt_int(doc, "iter", -1));
      c.t2_s = opt_double(doc, "t2_s");
      out.causal.push_back(c);
    } else {
      fail_line(lineno, "unknown record type \"" + t + "\"");
    }
  }
  out.lines = lineno;
  return out;
}

// ---- Self-check ------------------------------------------------------------

SelfCheckResult self_check(const ParsedTrace& trace) {
  SelfCheckResult r;
  auto err = [&](std::string msg) { r.errors.push_back(std::move(msg)); };

  if (trace.schema_version == 0) {
    err("no meta line — not a " + std::string(specomp::obs::kTraceSchema) +
        " JSONL trace (legacy or truncated file?)");
  } else if (trace.schema != specomp::obs::kTraceSchema) {
    err("meta schema \"" + trace.schema + "\" is not " +
        specomp::obs::kTraceSchema);
  }

  for (const auto& s : trace.spans) {
    if (s.end_s < s.begin_s - kTimeEps) {
      err("negative span on lane " + std::to_string(s.lane) + " (" + s.kind +
          "): [" + std::to_string(s.begin_s) + ", " + std::to_string(s.end_s) +
          "]");
    }
  }

  // Send→recv matching: a recv must name a send that already happened.
  using MsgKey = std::tuple<std::uint64_t, int, std::uint64_t>;
  struct SendState {
    double at_s;
    bool consumed = false;
  };
  std::map<MsgKey, SendState> sends;
  std::map<std::uint64_t, long> degraded_depth;

  for (const auto& c : trace.causal) {
    if (trace.lanes > 0 && c.lane >= trace.lanes) {
      err("causal event on lane " + std::to_string(c.lane) +
          " but meta declares only " + std::to_string(trace.lanes) + " lanes");
      continue;
    }
    switch (c.kind) {
      case CausalKind::Send:
        sends[MsgKey{c.lane, c.tag, c.seq}] = SendState{c.at_s};
        break;
      case CausalKind::Recv: {
        const MsgKey key{static_cast<std::uint64_t>(c.peer), c.tag, c.seq};
        const auto it = sends.find(key);
        if (it == sends.end()) {
          err("recv on lane " + std::to_string(c.lane) + " of (src=" +
              std::to_string(c.peer) + ", tag=" + std::to_string(c.tag) +
              ", seq=" + std::to_string(c.seq) + ") has no matching send");
          break;
        }
        if (it->second.consumed) {
          ++r.duplicate_recvs;  // dup fault with recovery off — not fatal
        }
        it->second.consumed = true;
        if (c.at_s < it->second.at_s - kTimeEps) {
          err("recv at " + std::to_string(c.at_s) + "s precedes its send at " +
              std::to_string(it->second.at_s) + "s (src=" +
              std::to_string(c.peer) + ", seq=" + std::to_string(c.seq) + ")");
        }
        if (c.t2_s > 0.0 && c.t2_s < it->second.at_s - kTimeEps) {
          err("delivery at " + std::to_string(c.t2_s) +
              "s precedes its send at " + std::to_string(it->second.at_s) +
              "s (src=" + std::to_string(c.peer) +
              ", seq=" + std::to_string(c.seq) + ")");
        }
        break;
      }
      case CausalKind::DegradedEnter:
        ++degraded_depth[c.lane];
        break;
      case CausalKind::DegradedExit:
        if (--degraded_depth[c.lane] < 0) {
          err("degraded-exit on lane " + std::to_string(c.lane) +
              " without a matching degraded-enter");
          degraded_depth[c.lane] = 0;
        }
        break;
      case CausalKind::Stall:
        if (c.t2_s < 0.0)
          err("stall on lane " + std::to_string(c.lane) +
              " with negative length");
        break;
      default:
        break;
    }
  }

  for (const auto& [key, state] : sends)
    if (!state.consumed) ++r.unmatched_sends;
  for (const auto& [lane, depth] : degraded_depth)
    if (depth > 0) ++r.open_degraded;  // run ended mid-span: allowed

  r.ok = r.errors.empty();
  return r;
}

Json self_check_json(const SelfCheckResult& result) {
  Json doc = Json::object();
  doc.set("ok", Json(result.ok));
  Json errs = Json::array();
  for (const auto& e : result.errors) errs.push_back(e);
  doc.set("errors", std::move(errs));
  doc.set("duplicate_recvs", result.duplicate_recvs);
  doc.set("unmatched_sends", result.unmatched_sends);
  doc.set("open_degraded", result.open_degraded);
  return doc;
}

// ---- Rollback cascades -----------------------------------------------------

CascadeReport cascades(const ParsedTrace& trace) {
  CascadeReport report;
  std::vector<CascadeNode> nodes;
  for (const auto& c : trace.causal) {
    if (c.kind != CausalKind::Rollback) continue;
    nodes.push_back(CascadeNode{c.lane, c.peer, c.iter, c.at_s});
  }
  report.total_rollbacks = nodes.size();
  if (nodes.empty()) return report;

  const std::size_t n = nodes.size();
  // could_cause(u, v): u's rollback could have propagated to v's.
  auto could_cause = [&](std::size_t u, std::size_t v) {
    if (u == v) return false;
    const CascadeNode& a = nodes[u];
    const CascadeNode& b = nodes[v];
    if (b.at_s < a.at_s - kTimeEps) return false;
    if (b.iter < a.iter || b.iter - a.iter > kCascadeHorizonIters) return false;
    // Message-mediated: b failed checking a block from a's lane.  Same-lane:
    // a replay storm produces back-to-back rollbacks on one rank.
    return b.peer == static_cast<int>(a.lane) || b.lane == a.lane;
  };

  // Union-find over nodes.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::vector<std::size_t>* pp = &parent;
  auto find = [pp](std::size_t x) {
    while ((*pp)[x] != x) x = (*pp)[x] = (*pp)[(*pp)[x]];
    return x;
  };
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (could_cause(u, v) || could_cause(v, u))
        parent[find(u)] = find(v);
    }
  }

  // Longest causal chain ending at each node (nodes are in trace order,
  // which is non-decreasing in virtual time per lane; could_cause enforces
  // the time ordering, so a forward DP is well-founded).
  std::vector<std::size_t> depth(n, 1);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = 0; u < n; ++u) {
      if (could_cause(u, v)) depth[v] = std::max(depth[v], depth[u] + 1);
    }
  }

  // Attribute replay (correct/recompute) spans to the latest rollback on
  // the same lane at or before the span's start.
  std::vector<double> wasted(n, 0.0);
  for (const auto& s : trace.spans) {
    if (s.kind != kCorrectSpan) continue;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (nodes[i].lane != s.lane) continue;
      if (nodes[i].at_s > s.begin_s + kTimeEps) continue;
      if (best == n || nodes[i].at_s >= nodes[best].at_s) best = i;
    }
    if (best < n) wasted[best] += s.end_s - s.begin_s;
  }

  // Materialise components in first-appearance order.
  std::map<std::size_t, std::size_t> root_to_idx;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    const auto [it, inserted] =
        root_to_idx.emplace(root, report.cascades.size());
    if (inserted) report.cascades.push_back(Cascade{});
    Cascade& c = report.cascades[it->second];
    if (c.nodes.empty()) {
      c.first_at_s = nodes[i].at_s;
      c.last_at_s = nodes[i].at_s;
    } else {
      c.first_at_s = std::min(c.first_at_s, nodes[i].at_s);
      c.last_at_s = std::max(c.last_at_s, nodes[i].at_s);
    }
    c.nodes.push_back(nodes[i]);
    c.depth = std::max(c.depth, depth[i]);
    c.wasted_seconds += wasted[i];
  }
  for (auto& c : report.cascades) {
    std::vector<std::uint64_t> lanes;
    for (const auto& node : c.nodes) lanes.push_back(node.lane);
    std::sort(lanes.begin(), lanes.end());
    c.width = static_cast<std::size_t>(
        std::unique(lanes.begin(), lanes.end()) - lanes.begin());
    report.total_wasted_seconds += c.wasted_seconds;
  }
  std::sort(report.cascades.begin(), report.cascades.end(),
            [](const Cascade& a, const Cascade& b) {
              return a.first_at_s < b.first_at_s;
            });
  return report;
}

Json cascade_report_json(const CascadeReport& report) {
  Json doc = Json::object();
  doc.set("schema", "specomp.spectrace.cascades.v1");
  doc.set("schema_version", 1);
  doc.set("total_rollbacks", report.total_rollbacks);
  doc.set("total_wasted_seconds", report.total_wasted_seconds);
  Json arr = Json::array();
  for (const auto& c : report.cascades) {
    Json jc = Json::object();
    jc.set("depth", c.depth);
    jc.set("width", c.width);
    jc.set("first_at_s", c.first_at_s);
    jc.set("last_at_s", c.last_at_s);
    jc.set("wasted_seconds", c.wasted_seconds);
    Json jnodes = Json::array();
    for (const auto& node : c.nodes) {
      Json jn = Json::object();
      jn.set("lane", node.lane);
      jn.set("peer", node.peer);
      jn.set("iter", node.iter);
      jn.set("at_s", node.at_s);
      jnodes.push_back(std::move(jn));
    }
    jc.set("nodes", std::move(jnodes));
    arr.push_back(std::move(jc));
  }
  doc.set("cascades", std::move(arr));
  return doc;
}

// ---- Per-rank critical path ------------------------------------------------

CriticalPathReport critical_path(const ParsedTrace& trace) {
  CriticalPathReport report;

  std::uint64_t max_lane = 0;
  for (const auto& s : trace.spans) max_lane = std::max(max_lane, s.lane);
  for (const auto& c : trace.causal) max_lane = std::max(max_lane, c.lane);
  const std::size_t lanes = std::max(
      trace.lanes,
      trace.spans.empty() && trace.causal.empty()
          ? std::size_t{0}
          : static_cast<std::size_t>(max_lane) + 1);
  if (lanes == 0) return report;

  report.ranks.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    report.ranks[l].lane = static_cast<std::uint64_t>(l);

  // Recvs per lane, in trace order (non-decreasing time per lane): used to
  // attribute each wait span to the message whose arrival ended it.
  std::vector<std::vector<const CausalRec*>> recvs(lanes);
  for (const auto& c : trace.causal)
    if (c.kind == CausalKind::Recv) recvs[c.lane].push_back(&c);

  auto bump = [](std::vector<std::pair<std::string, double>>& rows,
                 const std::string& key, double v) {
    for (auto& [k, total] : rows) {
      if (k == key) {
        total += v;
        return;
      }
    }
    rows.emplace_back(key, v);
  };

  for (const auto& s : trace.spans) {
    RankBreakdown& rank = report.ranks[s.lane];
    const double dur = std::max(s.end_s - s.begin_s, 0.0);
    rank.total_s += dur;
    bump(rank.by_kind, s.kind, dur);
    if (s.end_s > report.makespan_s) {
      report.makespan_s = s.end_s;
      report.makespan_lane = s.lane;
    }
    if (s.kind == kWaitSpan) {
      // The recv that ended this wait carries the peer we were blocked on.
      for (const CausalRec* rec : recvs[s.lane]) {
        if (std::abs(rec->at_s - s.end_s) <= 1e-7) {
          for (auto& [peer, total] : rank.waited_on) {
            if (peer == rec->peer) {
              total += dur;
              peer = rec->peer;
              goto attributed;
            }
          }
          rank.waited_on.emplace_back(rec->peer, dur);
          goto attributed;
        }
      }
    attributed:;
    }
  }

  // Blocked-on chain from the makespan rank.
  std::vector<bool> visited(lanes, false);
  std::uint64_t at = report.makespan_lane;
  for (;;) {
    report.chain.push_back(at);
    visited[at] = true;
    const RankBreakdown& rank = report.ranks[at];
    int next = -1;
    double most = 0.0;
    for (const auto& [peer, total] : rank.waited_on) {
      if (peer >= 0 && total > most) {
        most = total;
        next = peer;
      }
    }
    if (next < 0 || static_cast<std::size_t>(next) >= lanes ||
        visited[static_cast<std::size_t>(next)]) {
      break;
    }
    at = static_cast<std::uint64_t>(next);
  }
  return report;
}

Json critical_path_json(const CriticalPathReport& report) {
  Json doc = Json::object();
  doc.set("schema", "specomp.spectrace.critical_path.v1");
  doc.set("schema_version", 1);
  doc.set("makespan_s", report.makespan_s);
  doc.set("makespan_lane", report.makespan_lane);
  Json chain = Json::array();
  for (const std::uint64_t lane : report.chain) chain.push_back(lane);
  doc.set("blocked_on_chain", std::move(chain));
  Json ranks = Json::array();
  for (const auto& rank : report.ranks) {
    Json jr = Json::object();
    jr.set("lane", rank.lane);
    jr.set("total_s", rank.total_s);
    Json kinds = Json::object();
    for (const auto& [kind, total] : rank.by_kind) kinds.set(kind, total);
    jr.set("by_kind", std::move(kinds));
    Json waited = Json::object();
    for (const auto& [peer, total] : rank.waited_on)
      waited.set(std::to_string(peer), total);
    jr.set("waited_on", std::move(waited));
    ranks.push_back(std::move(jr));
  }
  doc.set("ranks", std::move(ranks));
  return doc;
}

// ---- Delay propagation -----------------------------------------------------

PropagationReport delay_propagation(const ParsedTrace& trace) {
  PropagationReport report;

  const CausalRec* anchor = nullptr;
  for (const auto& c : trace.causal) {
    if (c.kind == CausalKind::Stall &&
        (anchor == nullptr || c.at_s < anchor->at_s)) {
      anchor = &c;
    }
  }
  if (anchor == nullptr) return report;
  report.has_anchor = true;
  report.anchor_lane = anchor->lane;
  report.anchor_at_s = anchor->at_s;
  report.anchor_len_s = anchor->t2_s;

  // Match each recv to its send time.
  using MsgKey = std::tuple<std::uint64_t, int, std::uint64_t>;
  std::map<MsgKey, double> send_time;
  for (const auto& c : trace.causal)
    if (c.kind == CausalKind::Send)
      send_time[MsgKey{c.lane, c.tag, c.seq}] = c.at_s;

  struct TaintedRecv {
    double at_s;
    double sent_at_s;
    std::uint64_t from;
    std::uint64_t to;
  };
  std::vector<TaintedRecv> edges;
  for (const auto& c : trace.causal) {
    if (c.kind != CausalKind::Recv) continue;
    const auto it =
        send_time.find(MsgKey{static_cast<std::uint64_t>(c.peer), c.tag, c.seq});
    if (it == send_time.end()) continue;
    edges.push_back(TaintedRecv{c.at_s, it->second,
                                static_cast<std::uint64_t>(c.peer), c.lane});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const TaintedRecv& a, const TaintedRecv& b) {
                     return a.at_s < b.at_s;
                   });

  // BFS flood over message edges in arrival order.  A recv can only be
  // tainted by a send issued at-or-after the sender's own infection, and
  // recv time >= send time, so one ascending pass reaches the fixpoint.
  std::map<std::uint64_t, LaneInfection> infected;
  infected[anchor->lane] =
      LaneInfection{anchor->lane, anchor->at_s, 0, 0.0};
  for (const auto& e : edges) {
    const auto src = infected.find(e.from);
    if (src == infected.end()) continue;
    if (e.sent_at_s < src->second.infected_at_s - kTimeEps) continue;
    if (infected.count(e.to) != 0) continue;
    infected[e.to] =
        LaneInfection{e.to, e.at_s, src->second.hops + 1, 0.0};
  }

  // Excess wait per infected lane vs its own pre-anchor wait rate.
  for (auto& [lane, inf] : infected) {
    double pre_wait = 0.0;
    double post_wait = 0.0;
    double lane_end = inf.infected_at_s;
    for (const auto& s : trace.spans) {
      if (s.lane != lane) continue;
      lane_end = std::max(lane_end, s.end_s);
      if (s.kind != kWaitSpan) continue;
      // Overlap with [0, anchor) and [infected_at, inf).
      pre_wait += std::max(
          0.0, std::min(s.end_s, report.anchor_at_s) - s.begin_s);
      post_wait += std::max(0.0, s.end_s - std::max(s.begin_s,
                                                    inf.infected_at_s));
    }
    const double pre_rate =
        report.anchor_at_s > 0.0 ? pre_wait / report.anchor_at_s : 0.0;
    const double window = std::max(lane_end - inf.infected_at_s, 0.0);
    inf.excess_wait_s = std::max(post_wait - pre_rate * window, 0.0);
  }

  for (const auto& [lane, inf] : infected)
    report.infections.push_back(inf);
  std::stable_sort(report.infections.begin(), report.infections.end(),
                   [](const LaneInfection& a, const LaneInfection& b) {
                     if (a.infected_at_s != b.infected_at_s)
                       return a.infected_at_s < b.infected_at_s;
                     return a.lane < b.lane;
                   });

  double last_at = report.anchor_at_s;
  std::map<long, double> hop_excess;
  for (const auto& inf : report.infections) {
    report.depth = std::max(report.depth, static_cast<std::size_t>(inf.hops));
    last_at = std::max(last_at, inf.infected_at_s);
    hop_excess[inf.hops] += inf.excess_wait_s;
  }
  // The anchor lane's "excess" is the stall itself — it does not wait more,
  // it computes later.  Using the injected length makes hop-0 comparable.
  if (hop_excess.count(0) != 0)
    hop_excess[0] = std::max(hop_excess[0], report.anchor_len_s);

  if (report.infections.size() > 1 && last_at > report.anchor_at_s) {
    report.front_speed_lanes_per_s =
        static_cast<double>(report.infections.size() - 1) /
        (last_at - report.anchor_at_s);
  }

  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (const auto& [hop, excess] : hop_excess) {
    const auto next = hop_excess.find(hop + 1);
    if (next == hop_excess.end() || excess <= 0.0) continue;
    ratio_sum += next->second / excess;
    ++ratio_count;
  }
  if (ratio_count > 0) report.decay_per_hop = ratio_sum / ratio_count;

  return report;
}

Json propagation_report_json(const PropagationReport& report) {
  Json doc = Json::object();
  doc.set("schema", "specomp.spectrace.propagation.v1");
  doc.set("schema_version", 1);
  doc.set("has_anchor", Json(report.has_anchor));
  if (!report.has_anchor) return doc;
  doc.set("anchor_lane", report.anchor_lane);
  doc.set("anchor_at_s", report.anchor_at_s);
  doc.set("anchor_len_s", report.anchor_len_s);
  doc.set("depth", report.depth);
  doc.set("front_speed_lanes_per_s", report.front_speed_lanes_per_s);
  doc.set("decay_per_hop", report.decay_per_hop);
  Json arr = Json::array();
  for (const auto& inf : report.infections) {
    Json ji = Json::object();
    ji.set("lane", inf.lane);
    ji.set("hops", inf.hops);
    ji.set("infected_at_s", inf.infected_at_s);
    ji.set("excess_wait_s", inf.excess_wait_s);
    arr.push_back(std::move(ji));
  }
  doc.set("infections", std::move(arr));
  return doc;
}

}  // namespace spectrace

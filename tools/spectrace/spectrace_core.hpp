// spectrace: offline analyzer for specomp JSONL traces (schema v2).
//
// The runtime records *what happened* — spans (occupancy), causal events
// (send→recv edges, speculation lifecycles, injected stalls).  This library
// turns that record into the three quantities the paper's trade-off analysis
// needs and the raw trace does not show:
//
//   * rollback cascades — connected groups of rollbacks linked by the
//     messages that carried a mispeculation from rank to rank (Manita &
//     Simonot's cascade rollback model): depth, width, wasted virtual time;
//   * per-rank critical path — where each rank's virtual time went, which
//     peer it was blocked on, and the blocked-on chain from the makespan
//     rank;
//   * delay propagation — starting from an injected one-off stall, a BFS
//     over the message edges gives each rank's infection time and hop
//     count, hence front speed and per-hop decay (Afzal et al.).
//
// Everything here is a pure function of the parsed trace: same input file,
// same report bytes.  No dependencies beyond the repo's own Json and the
// des::CausalKind names.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/trace.hpp"
#include "obs/json.hpp"

namespace spectrace {

using specomp::obs::Json;

struct CausalRec {
  std::uint64_t lane = 0;
  specomp::des::CausalKind kind = specomp::des::CausalKind::Send;
  double at_s = 0.0;
  int peer = -1;
  int tag = 0;
  std::uint64_t seq = 0;
  long iter = -1;
  double t2_s = 0.0;
};

struct SpanRec {
  std::uint64_t lane = 0;
  std::string kind;  // des::span_name() string, e.g. "correct/recompute"
  double begin_s = 0.0;
  double end_s = 0.0;
};

struct ParsedTrace {
  /// 0 when the file had no meta line (legacy trace) — self_check flags it.
  int schema_version = 0;
  std::string schema;
  std::size_t lanes = 0;
  std::vector<CausalRec> causal;
  std::vector<SpanRec> spans;
  std::size_t point_events = 0;
  std::size_t lines = 0;
};

/// Parses a JSONL trace.  Throws std::runtime_error (with the 1-based line
/// number) on malformed JSON, an unknown record shape, or a meta line whose
/// schema_version is newer than this build understands.
ParsedTrace parse_jsonl(std::istream& is);

// ---- Self-check ------------------------------------------------------------

struct SelfCheckResult {
  bool ok = true;
  std::vector<std::string> errors;
  /// Extra recvs for a (src, tag, seq) already consumed once — expected
  /// under dup faults with recovery off, so counted rather than fatal.
  std::size_t duplicate_recvs = 0;
  /// Sends that were never received — expected for lost (norecovery-drop)
  /// messages and for messages still in flight at shutdown.
  std::size_t unmatched_sends = 0;
  /// DegradedEnter without a matching exit — a run that ended mid-span.
  std::size_t open_degraded = 0;
};

/// Structural validation: meta line present and versioned, every recv has a
/// matching earlier send, spans are non-negative, degraded enter/exit nest.
SelfCheckResult self_check(const ParsedTrace& trace);
Json self_check_json(const SelfCheckResult& result);

// ---- Rollback cascades -----------------------------------------------------

struct CascadeNode {
  std::uint64_t lane = 0;
  int peer = -1;  // the peer whose block failed the check
  long iter = -1;
  double at_s = 0.0;
};

struct Cascade {
  std::vector<CascadeNode> nodes;  // in trace order
  /// Longest causal chain through the cascade's rollbacks, in nodes.
  std::size_t depth = 0;
  /// Distinct lanes that rolled back.
  std::size_t width = 0;
  double first_at_s = 0.0;
  double last_at_s = 0.0;
  /// Virtual seconds of correct/recompute (replay) attributed to this
  /// cascade's rollbacks — the wasted work the cascade caused.
  double wasted_seconds = 0.0;
};

struct CascadeReport {
  std::vector<Cascade> cascades;  // ordered by first_at_s
  std::size_t total_rollbacks = 0;
  double total_wasted_seconds = 0.0;
};

/// Groups rollbacks into cascades.  Two rollbacks are linked when a message
/// could have carried the damage: R2 (lane B) → R1 (lane A) iff R1's failed
/// peer is B, R2 is no later than R1, and R1 re-checks an iteration at or
/// after R2's (within a small horizon so unrelated late rollbacks on the
/// same peer do not chain).  Replay spans are attributed to the most recent
/// rollback on their lane.
CascadeReport cascades(const ParsedTrace& trace);
Json cascade_report_json(const CascadeReport& report);

// ---- Per-rank critical path ------------------------------------------------

struct RankBreakdown {
  std::uint64_t lane = 0;
  double total_s = 0.0;  // sum of all span time on this lane
  /// (span kind, seconds) rows in first-seen order.
  std::vector<std::pair<std::string, double>> by_kind;
  /// (peer, seconds blocked waiting on that peer) — wait spans attributed
  /// to the recv that ended them; first-seen order.
  std::vector<std::pair<int, double>> waited_on;
};

struct CriticalPathReport {
  double makespan_s = 0.0;
  std::uint64_t makespan_lane = 0;
  std::vector<RankBreakdown> ranks;  // by lane
  /// Blocked-on chain starting at the makespan lane: each entry is the peer
  /// the previous rank spent most wait time on; stops at a cycle or a rank
  /// that never waited.
  std::vector<std::uint64_t> chain;
};

CriticalPathReport critical_path(const ParsedTrace& trace);
Json critical_path_json(const CriticalPathReport& report);

// ---- Delay propagation -----------------------------------------------------

struct LaneInfection {
  std::uint64_t lane = 0;
  double infected_at_s = 0.0;  // anchor time (hop 0) or first tainted recv
  long hops = 0;               // message edges from the anchor
  /// Wait seconds on this lane after infection minus the lane's pre-anchor
  /// mean wait rate over the same duration — the delay the front deposited
  /// here.  0 when the trace has no spans (thread backend).
  double excess_wait_s = 0.0;
};

struct PropagationReport {
  bool has_anchor = false;
  std::uint64_t anchor_lane = 0;
  double anchor_at_s = 0.0;
  double anchor_len_s = 0.0;
  std::vector<LaneInfection> infections;  // by infection time; anchor first
  std::size_t depth = 0;  // max hops reached
  /// Lanes infected per second of virtual time, over the span from anchor
  /// to the last infection (0 when fewer than 2 lanes are infected).
  double front_speed_lanes_per_s = 0.0;
  /// Mean ratio of per-hop total excess wait between successive hops —
  /// < 1 means the delay decays as it travels (Afzal et al.'s regime).
  double decay_per_hop = 0.0;
};

/// Anchors at the first Stall causal event and BFS-floods the send→recv
/// edges: a message sent by an infected lane at-or-after its infection time
/// infects the receiving lane at delivery.  Reports has_anchor = false (and
/// nothing else) when the trace contains no stall.
PropagationReport delay_propagation(const ParsedTrace& trace);
Json propagation_report_json(const PropagationReport& report);

}  // namespace spectrace

// Application interface for the speculation engine.
//
// The engine (engine.hpp) owns everything generic about the paper's Figure 3
// algorithm — history, speculation, message exchange, error checking, the
// forward-window pipeline and rollback — while the application supplies the
// problem-specific pieces of eq. 2:
//
//   * packing/unpacking of its variable block X_j,
//   * the iteration function f_i (compute_step),
//   * the acceptance metric for a speculation (the paper's eq. 11 depends on
//     local particle positions, so it must live with the application),
//   * optionally a cheap incremental correction, and
//   * state save/restore for the engine's rollback-and-replay path.
#pragma once

#include <span>
#include <vector>

namespace specomp::spec {

class SyncIterativeApp {
 public:
  virtual ~SyncIterativeApp() = default;

  /// Packs this rank's current variable block X_j(t) for sending.
  virtual std::vector<double> pack_local() const = 0;

  /// Installs peer `peer`'s block (actual or speculated) as the current
  /// iteration's view of X_peer.
  virtual void install_peer(int peer, std::span<const double> block) = 0;

  /// Advances the local variables one iteration using the installed blocks:
  /// X_j(t+1) = f(X(t), ...).
  virtual void compute_step() = 0;

  /// f_comp * N_j: operations one compute_step costs on this rank.
  virtual double compute_ops() const = 0;

  /// Scalar speculation error for having used `speculated` instead of
  /// `actual` for `peer` (the paper's eq. 11 ratio for N-body).  The engine
  /// accepts the speculation when this is <= the configured threshold.
  virtual double speculation_error(int peer, std::span<const double> speculated,
                                   std::span<const double> actual) = 0;

  /// f_check * N_peer: operations one check costs.
  virtual double check_ops(int peer) const = 0;

  /// Incremental correction: repair the *most recent* compute_step given the
  /// actual block for `peer` (e.g. N-body subtracts the speculated pair
  /// forces and adds the actual ones, then redoes the cheap integration).
  /// Return false when unsupported; the engine then rolls back and replays.
  virtual bool correct_last_step(int peer, std::span<const double> actual) {
    (void)peer;
    (void)actual;
    return false;
  }

  /// Operations charged when correct_last_step succeeds.
  virtual double correct_ops(int peer) const {
    (void)peer;
    return 0.0;
  }

  /// Serialises the complete local state (everything compute_step mutates)
  /// for the engine's checkpoint ring.
  virtual std::vector<double> save_state() const = 0;
  virtual void restore_state(std::span<const double> state) = 0;
};

}  // namespace specomp::spec

// The speculation engine — the paper's primary contribution, generalised.
//
// Implements the synchronous-iterative-algorithm-with-speculation loop of
// the paper's Figure 3, extended with the forward window (FW) pipelining of
// Section 3.2 and rollback-based recomputation:
//
//   iteration t:
//     1. drain   — incorporate any already-delivered messages, checking
//                  outstanding speculations as they resolve;
//     2. send    — broadcast X_j(t) to all peers (tag = base + t);
//     3. resolve — for each peer: use the real X_k(t) if delivered;
//                  otherwise, if fewer than FW speculations are outstanding
//                  for that peer, speculate X*_k(t) from its history;
//                  otherwise block until the oldest outstanding speculation
//                  resolves (check, correct/replay on failure) and retry;
//     4. compute — X_j(t+1) = f(...) on the installed view, checkpointing
//                  first when any input was speculated.
//
// FW = 0 degenerates exactly to the no-speculation algorithm of Figure 1:
// every peer block is awaited before computing.  FW = 1 is Figure 3.
//
// Failed speculations (error > threshold θ) are repaired either by the
// application's cheap incremental correction (when the failure concerns the
// most recent step) or by restoring the checkpoint taken before the failed
// iteration and replaying forward with the improved information — the
// "corrected or recomputed" path of the paper.
//
// Consistency guarantee by window depth: with FW = 1 every input is verified
// before the next send, so a fully-rejecting threshold (θ = 0, rollback
// repair) reproduces the no-speculation numerics bit-for-bit.  With FW >= 2
// a rank may send a block computed from still-unverified speculation and —
// like the paper — never re-sends after a correction, so peers can consume
// slightly stale values; the deviation is bounded through their own θ
// checks (the paper's bounded-error acceptance philosophy).
//
// Iteration 0 is compute-only: the paper's setup distributes the full
// initial state to every processor ("Read x_i(0) ∀i"), so the engine primes
// each peer history with the initial blocks and message exchange starts at
// iteration 1.
//
// Graceful degradation (EngineConfig::graceful_degradation, DESIGN.md §9):
// under fault injection a peer's block can be overdue far beyond anything
// FW was sized for.  Instead of blocking, the engine may keep computing on
// speculated values past FW — explicitly flagged as *degraded* in stats and
// traces — up to a hard per-peer cap, and reconciles when the late block
// finally arrives via the same check/correct/rollback machinery.  θ keeps
// bounding the accepted error; only the wait policy changes.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/communicator.hpp"
#include "spec/adaptive.hpp"
#include "spec/app.hpp"
#include "spec/history.hpp"
#include "spec/speculator.hpp"
#include "spec/stats.hpp"

namespace specomp::spec {

struct EngineConfig {
  /// FW: maximum outstanding (unverified) speculations per peer.
  /// 0 disables speculation entirely (the Figure 1 baseline).
  /// Ignored when window_policy is set.
  int forward_window = 1;
  /// Optional run-time window controller (paper future work — see
  /// adaptive.hpp); when set it chooses the window each iteration and
  /// forward_window is ignored.  A speculator is then required.
  std::shared_ptr<WindowPolicy> window_policy;
  /// Upper clamp for policy-chosen windows.
  int max_forward_window = 8;
  /// θ: maximum acceptable speculation error (paper uses 0.01 for N-body).
  /// Ignored when theta_policy is set.
  double threshold = 0.01;
  /// Optional run-time θ controller (spec/adaptive.hpp, DESIGN.md §13.5);
  /// when set it chooses the check threshold each iteration and `threshold`
  /// is ignored.
  std::shared_ptr<ThetaPolicy> theta_policy;
  /// Record one ControlSample per iteration (window, θ, cascade depth,
  /// policy decision) into control_log() — the controller trace the
  /// adaptive benches export.  Off by default: a long fixed-policy run has
  /// no reason to grow a per-iteration vector.
  bool record_control_log = false;
  /// Speculation function; required when forward_window > 0.  Its
  /// backward_window() determines per-peer history depth.
  std::shared_ptr<Speculator> speculator;
  /// Offer the application's incremental correction before rolling back.
  bool allow_incremental_correction = true;
  /// Base message tag; iteration t uses tag base + t.
  int tag_base = 1000;
  /// Graceful degradation under faults (DESIGN.md §9): when the oldest
  /// outstanding speculation for a peer stays unresolved for more than
  /// overdue_after_seconds, the engine keeps computing on speculated values
  /// past FW — explicitly flagged as degraded — instead of blocking, up to
  /// max_degraded_window outstanding speculations per peer (a hard cap;
  /// beyond it the engine blocks, bounding both memory and the worst-case
  /// rollback depth).  Late arrivals reconcile through the normal
  /// check/correct/rollback machinery, so θ still bounds the accepted
  /// error.  Requires a speculator and an effective window >= 1 (the FW = 0
  /// baseline keeps its strict blocking semantics).  Off by default, and
  /// deliberately NOT implied by arming a fault plan: the receive-timeout
  /// timers perturb event schedules even when no fault fires, which would
  /// break the zero-fault byte-identity contract.
  bool graceful_degradation = false;
  /// How long the oldest speculation for a peer may stay unresolved before
  /// the engine degrades rather than blocks.  Local seconds (virtual on the
  /// simulated backend); pick it a little above the healthy round-trip.
  double overdue_after_seconds = 1.0;
  /// Hard cap on outstanding speculations per peer while degraded.
  int max_degraded_window = 8;
};

/// One row of the engine's controller trace (EngineConfig::
/// record_control_log): the control state in effect *after* the policies
/// ran at the end of `iteration`.
struct ControlSample {
  long iteration = 0;
  /// Forward window chosen for the next iteration.
  int window = 0;
  /// Check threshold chosen for the next iteration.
  double theta = 0.0;
  /// Rollback-chain length observed during the iteration.
  int cascade_depth = 0;
  /// WindowPolicy::last_decision() label ("" for fixed windows).
  const char* decision = "";
};

class SpecEngine {
 public:
  /// `initial_blocks[k]` is peer k's X_k(0) (element `rank` unused); these
  /// prime the histories so speculation is defined from iteration 1 on.
  SpecEngine(runtime::Communicator& comm, SyncIterativeApp& app,
             EngineConfig config,
             std::vector<std::vector<double>> initial_blocks);

  /// Runs `iterations` synchronous iterations and returns the outcome
  /// statistics.  After return, all speculation has been resolved: the
  /// engine drains every outstanding message so ranks end consistent.
  SpecStats run(long iterations);

  const SpecStats& stats() const noexcept { return stats_; }

  /// The forward window in effect for the next iteration (fixed, or the
  /// window policy's latest decision).
  int current_window() const noexcept { return fw_now_; }

  /// The check threshold in effect for the next iteration (fixed, or the
  /// θ policy's latest decision).
  double current_theta() const noexcept { return theta_now_; }

  /// Per-iteration controller trace; empty unless
  /// EngineConfig::record_control_log.
  const std::vector<ControlSample>& control_log() const noexcept {
    return control_log_;
  }

 private:
  /// Per-iteration, per-peer record of what was installed.
  struct PeerSlot {
    bool speculated = false;
    bool resolved = false;
    /// The block installed for this iteration: the speculated values while
    /// unresolved, replaced by the actual values on receipt (replays use it).
    std::vector<double> block;
  };
  struct IterationRecord {
    long t = 0;
    std::vector<double> state_before;     // app state before compute_step
    std::vector<PeerSlot> peers;          // indexed by rank
    int unresolved = 0;
  };

  int tag_for(long t) const { return config_.tag_base + static_cast<int>(t); }

  void drain_pending();
  /// Handles receipt of peer `k`'s actual block for iteration `s`: records
  /// history, checks the speculation it answers, corrects/replays on
  /// failure.  `t_next` is the iteration about to be computed.
  void resolve_receipt(int k, long s, std::span<const double> actual);
  /// Waits until the oldest outstanding speculation for peer k resolves.
  /// A negative timeout blocks; otherwise gives up after `timeout_seconds`
  /// and returns false with the speculation still outstanding.
  bool await_oldest(int k, double timeout_seconds = -1.0);
  /// Degradation is armed and usable (speculator present).
  bool can_degrade() const noexcept {
    return config_.graceful_degradation && config_.speculator != nullptr;
  }
  /// Enforces the forward window for peer k before an iteration's send,
  /// entering degraded mode when the peer is overdue.
  void enforce_window(int k);
  /// Restores the checkpoint of iteration `s` and replays through the most
  /// recently computed iteration.
  void rollback_and_replay(long s);

  IterationRecord* find_record(long t);
  std::vector<double> speculate_block(int k, long t);
  void charge_check(int k);
  /// End-of-iteration control step: feeds the window and θ policies their
  /// per-iteration observations (including the live DistSnapshot and the
  /// online cascade depth), applies their decisions, appends to the
  /// controller trace, and resets the per-iteration trackers.
  void consult_policies(long iteration);

  runtime::Communicator& comm_;
  SyncIterativeApp& app_;
  EngineConfig config_;
  int rank_;
  int size_;
  std::vector<History> histories_;          // indexed by rank (self unused)
  std::vector<int> outstanding_;            // unresolved speculations per peer
  std::deque<IterationRecord> window_;      // records with unresolved > 0 kept
  long next_compute_ = 0;                   // iteration about to be computed
  int fw_now_ = 0;                          // window in effect
  bool degraded_ = false;                   // currently past FW on a peer
  // Snapshots for per-iteration window-policy feedback.
  double last_wait_seconds_ = 0.0;
  double last_compute_seconds_ = 0.0;
  std::uint64_t last_failures_ = 0;
  std::uint64_t last_speculated_ = 0;
  // θ in effect (fixed, or the θ policy's latest decision) and the
  // per-iteration check deltas / max error the θ policy consumes.
  double theta_now_ = 0.0;
  std::uint64_t last_checks_ = 0;
  std::uint64_t last_rollbacks_ = 0;
  double iter_max_error_ = 0.0;
  // Online rollback-chain tracking (DESIGN.md §13.4): a rollback whose
  // target falls inside the span the previous rollback replayed extends the
  // chain; an iteration that completes without rolling back resets it.
  int cascade_depth_now_ = 0;
  long cascade_span_end_ = -1;
  std::vector<ControlSample> control_log_;
  SpecStats stats_;
  // Telemetry; no-ops unless obs::set_metrics_enabled(true) preceded
  // engine construction (see obs/metrics.hpp).  Aggregated across ranks.
  struct Metrics {
    Metrics();
    obs::CounterRef iterations;
    obs::CounterRef speculated;
    obs::CounterRef received_in_time;
    obs::CounterRef checks;
    obs::CounterRef failures;
    obs::CounterRef incremental_corrections;
    obs::CounterRef rollbacks;
    obs::CounterRef replayed_iterations;
    obs::CounterRef degraded_entries;
    obs::CounterRef degraded_iterations;
    obs::GaugeRef forward_window;
    obs::HistogramRef check_error;
  };
  Metrics metrics_;
};

}  // namespace specomp::spec

// Speculation outcome statistics.
//
// k in the paper's model is the percentage of computations redone because a
// speculation missed its error bound; these counters measure it directly,
// along with the error distribution that drives the paper's Table 3.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/stats.hpp"

namespace specomp::spec {

struct SpecStats {
  std::uint64_t iterations = 0;
  /// Peer blocks installed from a real message without waiting.
  std::uint64_t blocks_received_in_time = 0;
  /// Peer blocks installed from speculation.
  std::uint64_t blocks_speculated = 0;
  /// Speculations later checked against the real message.
  std::uint64_t checks = 0;
  /// Checks whose error exceeded the threshold.
  std::uint64_t failures = 0;
  /// Failed speculations repaired by the application's cheap correction.
  std::uint64_t incremental_corrections = 0;
  /// Checkpoint restorations (each may replay several iterations).
  std::uint64_t rollbacks = 0;
  /// Iterations recomputed by rollback + replay.
  std::uint64_t replayed_iterations = 0;
  /// Longest rollback chain observed: consecutive rollbacks where each
  /// invalidated work the previous one had replayed (the Manita–Simonot
  /// cascade observable; see DESIGN.md §13.4).  0 when no rollback ever
  /// chained.
  int max_cascade_depth = 0;
  /// Times the engine entered degraded mode (a peer overdue past FW; see
  /// EngineConfig::graceful_degradation).
  std::uint64_t degraded_entries = 0;
  /// Iterations computed while degraded.
  std::uint64_t degraded_iterations = 0;
  /// Distribution of observed speculation errors (eq. 11 values).
  support::OnlineStats error;
  /// Largest forward window in effect during the run (interesting when an
  /// adaptive window policy is driving it).
  int max_window_used = 0;
  /// θ range the run actually used.  Both equal the configured threshold
  /// for fixed-θ runs; they spread when a ThetaPolicy adapts it.  0 until
  /// the engine initialises them.
  double theta_min_used = 0.0;
  double theta_max_used = 0.0;
  /// Times a ThetaPolicy changed θ.
  std::uint64_t theta_adjustments = 0;

  /// The paper's k: fraction of checks that failed, in [0, 1].
  double failure_fraction() const noexcept {
    return checks == 0 ? 0.0
                       : static_cast<double>(failures) / static_cast<double>(checks);
  }

  void merge(const SpecStats& other) noexcept {
    iterations += other.iterations;
    blocks_received_in_time += other.blocks_received_in_time;
    blocks_speculated += other.blocks_speculated;
    checks += other.checks;
    failures += other.failures;
    incremental_corrections += other.incremental_corrections;
    rollbacks += other.rollbacks;
    replayed_iterations += other.replayed_iterations;
    max_cascade_depth = std::max(max_cascade_depth, other.max_cascade_depth);
    degraded_entries += other.degraded_entries;
    degraded_iterations += other.degraded_iterations;
    error.merge(other.error);
    max_window_used = std::max(max_window_used, other.max_window_used);
    // 0 means "never initialised" on either side, so the min skips zeros.
    if (other.theta_min_used > 0.0) {
      theta_min_used = theta_min_used > 0.0
                           ? std::min(theta_min_used, other.theta_min_used)
                           : other.theta_min_used;
    }
    theta_max_used = std::max(theta_max_used, other.theta_max_used);
    theta_adjustments += other.theta_adjustments;
  }
};

}  // namespace specomp::spec

// Speculation outcome statistics.
//
// k in the paper's model is the percentage of computations redone because a
// speculation missed its error bound; these counters measure it directly,
// along with the error distribution that drives the paper's Table 3.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/stats.hpp"

namespace specomp::spec {

struct SpecStats {
  std::uint64_t iterations = 0;
  /// Peer blocks installed from a real message without waiting.
  std::uint64_t blocks_received_in_time = 0;
  /// Peer blocks installed from speculation.
  std::uint64_t blocks_speculated = 0;
  /// Speculations later checked against the real message.
  std::uint64_t checks = 0;
  /// Checks whose error exceeded the threshold.
  std::uint64_t failures = 0;
  /// Failed speculations repaired by the application's cheap correction.
  std::uint64_t incremental_corrections = 0;
  /// Iterations recomputed by rollback + replay.
  std::uint64_t replayed_iterations = 0;
  /// Times the engine entered degraded mode (a peer overdue past FW; see
  /// EngineConfig::graceful_degradation).
  std::uint64_t degraded_entries = 0;
  /// Iterations computed while degraded.
  std::uint64_t degraded_iterations = 0;
  /// Distribution of observed speculation errors (eq. 11 values).
  support::OnlineStats error;
  /// Largest forward window in effect during the run (interesting when an
  /// adaptive window policy is driving it).
  int max_window_used = 0;

  /// The paper's k: fraction of checks that failed, in [0, 1].
  double failure_fraction() const noexcept {
    return checks == 0 ? 0.0
                       : static_cast<double>(failures) / static_cast<double>(checks);
  }

  void merge(const SpecStats& other) noexcept {
    iterations += other.iterations;
    blocks_received_in_time += other.blocks_received_in_time;
    blocks_speculated += other.blocks_speculated;
    checks += other.checks;
    failures += other.failures;
    incremental_corrections += other.incremental_corrections;
    replayed_iterations += other.replayed_iterations;
    degraded_entries += other.degraded_entries;
    degraded_iterations += other.degraded_iterations;
    error.merge(other.error);
    max_window_used = std::max(max_window_used, other.max_window_used);
  }
};

}  // namespace specomp::spec

#include "spec/speculator.hpp"

#include <stdexcept>
#include <string>

#include "support/contracts.hpp"

namespace specomp::spec {

std::vector<double> HoldLastSpeculator::predict(const History& history,
                                                int steps) const {
  SPEC_EXPECTS(!history.empty());
  SPEC_EXPECTS(steps >= 1);
  return history.back(0).block;
}

std::vector<double> LinearSpeculator::predict(const History& history,
                                              int steps) const {
  SPEC_EXPECTS(!history.empty());
  SPEC_EXPECTS(steps >= 1);
  const auto& newest = history.back(0);
  if (history.size() < 2) return newest.block;  // degrade to hold-last
  const auto& prev = history.back(1);
  SPEC_ASSERT(prev.block.size() == newest.block.size());
  // Slope per iteration accounts for a possible gap between history entries
  // (entries may be more than one iteration apart after deep speculation).
  const double gap =
      static_cast<double>(newest.iteration - prev.iteration);
  SPEC_ASSERT(gap >= 1.0);
  std::vector<double> out(newest.block.size());
  const double s = static_cast<double>(steps);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double slope = (newest.block[i] - prev.block[i]) / gap;
    out[i] = newest.block[i] + s * slope;
  }
  return out;
}

std::vector<double> QuadraticSpeculator::predict(const History& history,
                                                 int steps) const {
  SPEC_EXPECTS(!history.empty());
  SPEC_EXPECTS(steps >= 1);
  if (history.size() < 3) return LinearSpeculator{}.predict(history, steps);
  const auto& x0 = history.back(0);  // newest
  const auto& x1 = history.back(1);
  const auto& x2 = history.back(2);
  SPEC_ASSERT(x1.block.size() == x0.block.size());
  SPEC_ASSERT(x2.block.size() == x0.block.size());
  // Newton backward differences assuming unit spacing of the three entries;
  // with gaps this is an approximation, consistent with the paper's
  // "examining the history of the variable".
  const double s = static_cast<double>(steps);
  std::vector<double> out(x0.block.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double d1 = x0.block[i] - x1.block[i];
    const double d2 = x0.block[i] - 2.0 * x1.block[i] + x2.block[i];
    out[i] = x0.block[i] + s * d1 + 0.5 * s * (s + 1.0) * d2;
  }
  return out;
}

WeightedHistorySpeculator::WeightedHistorySpeculator(std::vector<double> weights)
    : weights_(std::move(weights)) {
  SPEC_EXPECTS(!weights_.empty());
}

std::vector<double> WeightedHistorySpeculator::predict(const History& history,
                                                       int steps) const {
  SPEC_EXPECTS(!history.empty());
  SPEC_EXPECTS(steps >= 1);
  const std::size_t terms = std::min(weights_.size(), history.size());
  // Renormalise over the available entries so short histories stay unbiased.
  double wsum = 0.0;
  for (std::size_t i = 0; i < terms; ++i) wsum += weights_[i];
  SPEC_EXPECTS(wsum != 0.0);
  std::vector<double> out(history.back(0).block.size(), 0.0);
  for (std::size_t i = 0; i < terms; ++i) {
    const auto& entry = history.back(i);
    SPEC_ASSERT(entry.block.size() == out.size());
    const double w = weights_[i] / wsum;
    for (std::size_t v = 0; v < out.size(); ++v) out[v] += w * entry.block[v];
  }
  return out;
}

std::shared_ptr<Speculator> make_speculator(std::string_view name) {
  if (name == "hold-last") return std::make_shared<HoldLastSpeculator>();
  if (name == "linear") return std::make_shared<LinearSpeculator>();
  if (name == "quadratic") return std::make_shared<QuadraticSpeculator>();
  throw std::invalid_argument("unknown speculator: " + std::string(name));
}

}  // namespace specomp::spec

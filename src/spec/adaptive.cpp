#include "spec/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/contracts.hpp"

namespace specomp::spec {

namespace {

[[noreturn]] void reject_config(const char* policy, const char* field,
                                const std::string& requirement) {
  throw std::invalid_argument(std::string(policy) + ": " + field + " " +
                              requirement);
}

void require(bool ok, const char* policy, const char* field,
             const std::string& requirement) {
  if (!ok) reject_config(policy, field, requirement);
}

/// Snaps a requested quantile to the nearest one the DistSketch tracks and
/// returns the matching sampled value.
double pick_quantile(double q, double p50, double p90, double p99) {
  if (q <= 0.7) return p50;
  if (q <= 0.95) return p90;
  return p99;
}

}  // namespace

AdaptiveWindowPolicy::AdaptiveWindowPolicy(AdaptiveWindowConfig config)
    : config_(config) {
  require(config_.initial_window >= 0, "AdaptiveWindowPolicy", "initial_window",
          "must be >= 0 (got " + std::to_string(config_.initial_window) + ")");
  require(config_.smoothing > 0.0 && config_.smoothing <= 1.0,
          "AdaptiveWindowPolicy", "smoothing",
          "must be in (0, 1] (got " + std::to_string(config_.smoothing) + ")");
  require(config_.cooldown >= 0, "AdaptiveWindowPolicy", "cooldown",
          "must be >= 0 (got " + std::to_string(config_.cooldown) + ")");
  require(config_.grow_wait_ratio > 0.0, "AdaptiveWindowPolicy",
          "grow_wait_ratio",
          "must be > 0 (got " + std::to_string(config_.grow_wait_ratio) + ")");
  require(config_.shrink_failure_fraction > 0.0, "AdaptiveWindowPolicy",
          "shrink_failure_fraction",
          "must be > 0 (got " +
              std::to_string(config_.shrink_failure_fraction) + ")");
}

int AdaptiveWindowPolicy::next_window(const WindowFeedback& feedback) {
  SPEC_EXPECTS(feedback.current_window >= 0);

  const double failure_fraction =
      feedback.speculated == 0
          ? 0.0
          : static_cast<double>(feedback.failures) /
                static_cast<double>(feedback.speculated);
  const double wait_ratio =
      feedback.wait_seconds / std::max(feedback.compute_seconds, 1e-12);

  const double a = config_.smoothing;
  wait_avg_ = (1.0 - a) * wait_avg_ + a * wait_ratio;
  fail_avg_ = (1.0 - a) * fail_avg_ + a * failure_fraction;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    last_decision_ = "cooldown";
    return feedback.current_window;
  }

  // Failures dominate: speculating deeper while guesses are bad only adds
  // recomputation.
  if (fail_avg_ > config_.shrink_failure_fraction) {
    fail_avg_ = 0.0;
    cooldown_left_ = config_.cooldown;
    ++shrinks_;
    last_decision_ = "shrink";
    return std::max(feedback.current_window - 1, 0);
  }
  if (wait_avg_ > config_.grow_wait_ratio) {
    wait_avg_ = 0.0;
    cooldown_left_ = config_.cooldown;
    ++grows_;
    last_decision_ = "grow";
    return feedback.current_window + 1;
  }
  last_decision_ = "hold";
  return feedback.current_window;
}

HillClimbWindowPolicy::HillClimbWindowPolicy(HillClimbConfig config)
    : config_(config) {
  require(config_.initial_window >= 0, "HillClimbWindowPolicy",
          "initial_window",
          "must be >= 0 (got " + std::to_string(config_.initial_window) + ")");
  require(config_.epoch_iterations >= 1, "HillClimbWindowPolicy",
          "epoch_iterations",
          "must be >= 1 (got " + std::to_string(config_.epoch_iterations) +
              ")");
  require(config_.tolerance >= 0.0, "HillClimbWindowPolicy", "tolerance",
          "must be >= 0 (got " + std::to_string(config_.tolerance) + ")");
}

int HillClimbWindowPolicy::next_window(const WindowFeedback& feedback) {
  SPEC_EXPECTS(feedback.current_window >= 0);
  epoch_time_ += feedback.wait_seconds + feedback.compute_seconds;
  if (++epoch_count_ < config_.epoch_iterations)
    return feedback.current_window;

  const double mean = epoch_time_ / static_cast<double>(epoch_count_);
  epoch_time_ = 0.0;
  epoch_count_ = 0;

  if (previous_epoch_mean_ >= 0.0 &&
      mean > previous_epoch_mean_ * (1.0 - config_.tolerance)) {
    direction_ = -direction_;  // last move didn't pay: walk back
  }
  previous_epoch_mean_ = mean;
  return std::max(feedback.current_window + direction_, 0);
}

ModelWindowPolicy::ModelWindowPolicy(ModelWindowConfig config)
    : config_(config) {
  require(config_.initial_window >= 0, "ModelWindowPolicy", "initial_window",
          "must be >= 0 (got " + std::to_string(config_.initial_window) + ")");
  require(config_.delay_quantile > 0.0 && config_.delay_quantile < 1.0,
          "ModelWindowPolicy", "delay_quantile",
          "must be in (0, 1) (got " + std::to_string(config_.delay_quantile) +
              ")");
  require(config_.service_quantile > 0.0 && config_.service_quantile < 1.0,
          "ModelWindowPolicy", "service_quantile",
          "must be in (0, 1) (got " +
              std::to_string(config_.service_quantile) + ")");
  require(config_.cover_margin >= 0.0 && config_.cover_margin < 1.0,
          "ModelWindowPolicy", "cover_margin",
          "must be in [0, 1) (got " + std::to_string(config_.cover_margin) +
              ")");
  require(
      config_.utilization_budget > 0.0 && config_.utilization_budget <= 1.0,
      "ModelWindowPolicy", "utilization_budget",
      "must be in (0, 1] (got " + std::to_string(config_.utilization_budget) +
          ")");
  require(config_.smoothing > 0.0 && config_.smoothing <= 1.0,
          "ModelWindowPolicy", "smoothing",
          "must be in (0, 1] (got " + std::to_string(config_.smoothing) + ")");
  require(config_.cooldown >= 0, "ModelWindowPolicy", "cooldown",
          "must be >= 0 (got " + std::to_string(config_.cooldown) + ")");
  require(config_.min_samples >= 1, "ModelWindowPolicy", "min_samples",
          "must be >= 1 (got " + std::to_string(config_.min_samples) + ")");
  require(config_.cascade_budget >= 1, "ModelWindowPolicy", "cascade_budget",
          "must be >= 1 (got " + std::to_string(config_.cascade_budget) + ")");
  require(config_.cascade_hold >= 1, "ModelWindowPolicy", "cascade_hold",
          "must be >= 1 (got " + std::to_string(config_.cascade_hold) + ")");
  require(config_.max_step >= 1, "ModelWindowPolicy", "max_step",
          "must be >= 1 (got " + std::to_string(config_.max_step) + ")");
}

int ModelWindowPolicy::next_window(const WindowFeedback& feedback) {
  SPEC_EXPECTS(feedback.current_window >= 0);

  // k̂: EWMA of this iteration's failure fraction, updated every iteration
  // (including held ones) so the stability bound always sees fresh data.
  const double failure_fraction =
      feedback.speculated == 0
          ? 0.0
          : static_cast<double>(feedback.failures) /
                static_cast<double>(feedback.speculated);
  const double a = config_.smoothing;
  fail_avg_ = (1.0 - a) * fail_avg_ + a * failure_fraction;

  // Cascade guard (DESIGN.md §13.4): a rollback chain deeper than the
  // budget means the system has entered the cascade regime — replayed work
  // is being re-invalidated faster than it resolves.  Drop to FW = 1
  // immediately (not FW = 0: the engine still needs one outstanding
  // speculation to pipeline at all, and FW = 1 verifies every input before
  // the next send, which breaks the chain) and hold there.
  if (feedback.cascade_depth > config_.cascade_budget) {
    if (guard_hold_left_ == 0) ++guard_events_;
    guard_hold_left_ = config_.cascade_hold;
    cooldown_left_ = 0;
    last_decision_ = "cascade-guard";
    return 1;
  }
  if (guard_hold_left_ > 0) {
    --guard_hold_left_;
    last_decision_ = "cascade-hold";
    return 1;
  }

  // Warmup: without observed distributions the model has no inputs; hold
  // the current window rather than guess.
  if (!feedback.dists_valid || feedback.delay_samples < config_.min_samples ||
      feedback.service_samples < config_.min_samples) {
    last_decision_ = "warmup";
    return feedback.current_window;
  }

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    last_decision_ = "cooldown";
    return feedback.current_window;
  }

  const double delay = pick_quantile(config_.delay_quantile, feedback.delay_p50,
                                     feedback.delay_p90, feedback.delay_p99);
  const double service =
      pick_quantile(config_.service_quantile, feedback.service_p50,
                    feedback.service_p90, feedback.service_p99);

  // FW_cover = ceil(D_q / S - ε): the pipeline depth at which one delay is
  // hidden behind compute, rounded down when the last slot would cover less
  // than ε service times of delay (§13.3, eq. W1).  A degenerate service
  // observation (all-zero sketch) holds instead of dividing by ~0.
  if (service <= 1e-12) {
    last_decision_ = "warmup";
    return feedback.current_window;
  }
  const int fw_cover = std::max(
      1, static_cast<int>(std::ceil(delay / service - config_.cover_margin)));

  // FW_stab = floor(ρ_max / k̂): expected replay load per iteration is
  // bounded by k̂ · FW service times, and stability demands it stay under
  // the budget (§13.3, eq. W2).  k̂ = 0 leaves the bound inactive.
  int fw_stab = config_.cascade_budget;
  if (fail_avg_ > 1e-12) {
    const double bound = config_.utilization_budget / fail_avg_;
    fw_stab = bound >= static_cast<double>(config_.cascade_budget)
                  ? config_.cascade_budget
                  : static_cast<int>(bound);
  }

  const int target =
      std::clamp(std::min(fw_cover, fw_stab), 1, config_.cascade_budget);

  int next = feedback.current_window;
  if (target > next) {
    next = std::min(next + config_.max_step, target);
    last_decision_ = fw_cover <= fw_stab ? "cover" : "stability";
  } else if (target < next) {
    next = std::max(next - config_.max_step, target);
    last_decision_ = fw_cover <= fw_stab ? "cover" : "stability";
  } else {
    last_decision_ = "hold";
    return next;
  }
  cooldown_left_ = config_.cooldown;
  return next;
}

AdaptiveThetaPolicy::AdaptiveThetaPolicy(AdaptiveThetaConfig config)
    : config_(config) {
  require(config_.min_theta > 0.0, "AdaptiveThetaPolicy", "min_theta",
          "must be > 0 (got " + std::to_string(config_.min_theta) + ")");
  require(config_.max_theta >= config_.min_theta, "AdaptiveThetaPolicy",
          "max_theta",
          "must be >= min_theta (got " + std::to_string(config_.max_theta) +
              " < " + std::to_string(config_.min_theta) + ")");
  require(config_.initial_theta >= config_.min_theta &&
              config_.initial_theta <= config_.max_theta,
          "AdaptiveThetaPolicy", "initial_theta",
          "must be within [min_theta, max_theta] (got " +
              std::to_string(config_.initial_theta) + ")");
  require(config_.reject_low >= 0.0 &&
              config_.reject_low < config_.reject_high &&
              config_.reject_high <= 1.0,
          "AdaptiveThetaPolicy", "reject_low/reject_high",
          "must satisfy 0 <= low < high <= 1 (got " +
              std::to_string(config_.reject_low) + ", " +
              std::to_string(config_.reject_high) + ")");
  require(config_.smoothing > 0.0 && config_.smoothing <= 1.0,
          "AdaptiveThetaPolicy", "smoothing",
          "must be in (0, 1] (got " + std::to_string(config_.smoothing) + ")");
  require(config_.cooldown >= 0, "AdaptiveThetaPolicy", "cooldown",
          "must be >= 0 (got " + std::to_string(config_.cooldown) + ")");
  require(config_.step_factor > 1.0, "AdaptiveThetaPolicy", "step_factor",
          "must be > 1 (got " + std::to_string(config_.step_factor) + ")");
}

double AdaptiveThetaPolicy::next_theta(const ThetaFeedback& feedback) {
  // Only iterations that resolved checks carry rejection information;
  // folding check-free iterations in would dilute the EWMA toward zero and
  // widen θ for no reason.
  if (feedback.checks > 0) {
    const double rejection = static_cast<double>(feedback.failures) /
                             static_cast<double>(feedback.checks);
    const double a = config_.smoothing;
    reject_avg_ = (1.0 - a) * reject_avg_ + a * rejection;
    observed_ = true;
  }

  // An active rollback cascade overrides the cooldown: every additional
  // rejection extends the chain, so slack is bought immediately.
  const bool cascading = feedback.cascade_depth > 1;
  if (cooldown_left_ > 0 && !cascading) {
    --cooldown_left_;
    return feedback.current_theta;
  }

  if (reject_avg_ > config_.reject_high || cascading) {
    const double widened = std::min(
        feedback.current_theta * config_.step_factor, config_.max_theta);
    if (widened > feedback.current_theta) {
      ++widens_;
      cooldown_left_ = config_.cooldown;
      reject_avg_ = 0.0;
      // The reset empties the evidence; require a fresh check-bearing
      // iteration before any further move, or the zeroed average would
      // read as "nothing rejected" and tighten right back.
      observed_ = false;
    }
    return widened;
  }
  if (observed_ && reject_avg_ < config_.reject_low) {
    const double tightened = std::max(
        feedback.current_theta / config_.step_factor, config_.min_theta);
    if (tightened < feedback.current_theta) {
      ++tightens_;
      cooldown_left_ = config_.cooldown;
      // Keep the EWMA: tightening raises rejections, and the next decision
      // should see the drift rather than restart from zero.
    }
    return tightened;
  }
  return feedback.current_theta;
}

std::optional<WindowPolicyKind> parse_window_policy(std::string_view name) {
  if (name == "static") return WindowPolicyKind::Static;
  if (name == "heuristic" || name == "adaptive")
    return WindowPolicyKind::Heuristic;
  if (name == "hill-climb") return WindowPolicyKind::HillClimb;
  if (name == "model") return WindowPolicyKind::Model;
  return std::nullopt;
}

std::string_view window_policy_name(WindowPolicyKind kind) {
  switch (kind) {
    case WindowPolicyKind::Static: return "static";
    case WindowPolicyKind::Heuristic: return "heuristic";
    case WindowPolicyKind::HillClimb: return "hill-climb";
    case WindowPolicyKind::Model: return "model";
  }
  return "static";
}

std::optional<ThetaPolicyKind> parse_theta_policy(std::string_view name) {
  if (name == "static") return ThetaPolicyKind::Static;
  if (name == "adaptive") return ThetaPolicyKind::Adaptive;
  return std::nullopt;
}

std::string_view theta_policy_name(ThetaPolicyKind kind) {
  switch (kind) {
    case ThetaPolicyKind::Static: return "static";
    case ThetaPolicyKind::Adaptive: return "adaptive";
  }
  return "static";
}

std::shared_ptr<WindowPolicy> make_window_policy(WindowPolicyKind kind,
                                                 int initial_window) {
  switch (kind) {
    case WindowPolicyKind::Static:
      return nullptr;
    case WindowPolicyKind::Heuristic: {
      AdaptiveWindowConfig config;
      config.initial_window = initial_window;
      return std::make_shared<AdaptiveWindowPolicy>(config);
    }
    case WindowPolicyKind::HillClimb: {
      HillClimbConfig config;
      config.initial_window = initial_window;
      return std::make_shared<HillClimbWindowPolicy>(config);
    }
    case WindowPolicyKind::Model: {
      ModelWindowConfig config;
      config.initial_window = initial_window;
      return std::make_shared<ModelWindowPolicy>(config);
    }
  }
  return nullptr;
}

std::shared_ptr<ThetaPolicy> make_theta_policy(ThetaPolicyKind kind,
                                               double initial_theta) {
  switch (kind) {
    case ThetaPolicyKind::Static:
      return nullptr;
    case ThetaPolicyKind::Adaptive: {
      AdaptiveThetaConfig config;
      config.initial_theta = initial_theta;
      // The band limits bracket the requested starting point so any CLI θ
      // is a valid seed: tighten/widen room stays symmetric around it.
      config.min_theta = std::min(config.min_theta, initial_theta / 8.0);
      config.max_theta = std::max(config.max_theta, initial_theta * 8.0);
      return std::make_shared<AdaptiveThetaPolicy>(config);
    }
  }
  return nullptr;
}

}  // namespace specomp::spec

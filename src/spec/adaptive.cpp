#include "spec/adaptive.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace specomp::spec {

int AdaptiveWindowPolicy::next_window(const WindowFeedback& feedback) {
  SPEC_EXPECTS(feedback.current_window >= 0);

  const double failure_fraction =
      feedback.speculated == 0
          ? 0.0
          : static_cast<double>(feedback.failures) /
                static_cast<double>(feedback.speculated);
  const double wait_ratio =
      feedback.wait_seconds / std::max(feedback.compute_seconds, 1e-12);

  const double a = config_.smoothing;
  wait_avg_ = (1.0 - a) * wait_avg_ + a * wait_ratio;
  fail_avg_ = (1.0 - a) * fail_avg_ + a * failure_fraction;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return feedback.current_window;
  }

  // Failures dominate: speculating deeper while guesses are bad only adds
  // recomputation.
  if (fail_avg_ > config_.shrink_failure_fraction) {
    fail_avg_ = 0.0;
    cooldown_left_ = config_.cooldown;
    ++shrinks_;
    return std::max(feedback.current_window - 1, 0);
  }
  if (wait_avg_ > config_.grow_wait_ratio) {
    wait_avg_ = 0.0;
    cooldown_left_ = config_.cooldown;
    ++grows_;
    return feedback.current_window + 1;
  }
  return feedback.current_window;
}

int HillClimbWindowPolicy::next_window(const WindowFeedback& feedback) {
  SPEC_EXPECTS(feedback.current_window >= 0);
  epoch_time_ += feedback.wait_seconds + feedback.compute_seconds;
  if (++epoch_count_ < config_.epoch_iterations)
    return feedback.current_window;

  const double mean = epoch_time_ / static_cast<double>(epoch_count_);
  epoch_time_ = 0.0;
  epoch_count_ = 0;

  if (previous_epoch_mean_ >= 0.0 &&
      mean > previous_epoch_mean_ * (1.0 - config_.tolerance)) {
    direction_ = -direction_;  // last move didn't pay: walk back
  }
  previous_epoch_mean_ = mean;
  return std::max(feedback.current_window + direction_, 0);
}

}  // namespace specomp::spec

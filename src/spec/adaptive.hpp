// Adaptive forward-window and threshold control.
//
// The paper tunes FW by hand "based on an estimate of the communication and
// computation times and the accuracy of the speculation function" and lists
// automatic selection among its future work.  This header holds the whole
// controller family (DESIGN.md §13 documents the theory→code contract):
//
//   * AdaptiveWindowPolicy — signal-threshold heuristic on the two signals
//     the engine observes every iteration (blocked time grows the window,
//     speculation failures shrink it), EWMA-smoothed with a cooldown;
//   * HillClimbWindowPolicy — optimises the per-iteration elapsed time
//     directly by walking the window in the improving direction;
//   * ModelWindowPolicy — model-driven: consumes the live per-link delay and
//     per-rank service distributions the backend records (obs::DistSketch,
//     surfaced through runtime::Communicator::dist_snapshot()) and picks a
//     stability-bounded window from the Anselmi–Walton criterion for
//     speculative queueing networks, with an explicit rollback-cascade guard
//     (Manita–Simonot regime avoidance);
//   * FixedThetaPolicy / AdaptiveThetaPolicy — the companion θ controllers:
//     the adaptive one trades check-threshold slack against the observed
//     rejection rate, holding it inside a target band.
//
// All configurations are validated at policy construction: out-of-range
// smoothing/cooldown values throw std::invalid_argument with a message
// naming the field, instead of silently mis-controlling a long run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace specomp::spec {

/// Per-iteration observations handed to a window policy.
///
/// The first block is always populated by the engine; the distribution
/// block (`dists_valid` onward) carries the live obs::DistSketch quantiles
/// when the backend records them (SimConfig::record_dists), and stays
/// zeroed otherwise — model policies must treat `dists_valid == false` as
/// "hold, inputs not observable".
struct WindowFeedback {
  long iteration = 0;
  int current_window = 0;
  /// Time this rank spent blocked in receives during the iteration.
  double wait_seconds = 0.0;
  /// Time spent computing during the iteration (including replays).
  double compute_seconds = 0.0;
  /// Speculations issued / checks that failed during the iteration.
  std::uint64_t speculated = 0;
  std::uint64_t failures = 0;

  /// True when the delay/service quantiles below were actually sampled
  /// (backend dist recording on and at least one observation each).
  bool dists_valid = false;
  /// Inbound one-way message delay to this rank, seconds (all peers
  /// aggregated): the Anselmi–Walton delay variable D.
  double delay_p50 = 0.0;
  double delay_p90 = 0.0;
  double delay_p99 = 0.0;
  /// Per-iteration compute (service) time of this rank, seconds: the
  /// service variable S.
  double service_p50 = 0.0;
  double service_p90 = 0.0;
  double service_p99 = 0.0;
  /// Sample counts behind the quantiles, for warmup gating.
  std::uint64_t delay_samples = 0;
  std::uint64_t service_samples = 0;

  /// Current rollback-chain length: number of consecutive rollbacks where
  /// each invalidated work replayed by the previous one (0 = no chain in
  /// progress).  The engine tracks this online; it is the observable the
  /// cascade guard acts on (DESIGN.md §13.4).
  int cascade_depth = 0;
};

class WindowPolicy {
 public:
  virtual ~WindowPolicy() = default;
  /// Window for the first iteration.
  virtual int initial_window() const = 0;
  /// Window for the next iteration, given this iteration's observations.
  /// The engine clamps the result to [0, EngineConfig::max_forward_window].
  virtual int next_window(const WindowFeedback& feedback) = 0;
  /// Short static label for the most recent decision ("hold", "cover",
  /// "stability", "cascade-guard", ...), for controller traces.  Policies
  /// that do not classify their moves report "".
  virtual const char* last_decision() const { return ""; }
};

struct AdaptiveWindowConfig {
  int initial_window = 1;
  /// Grow when the smoothed blocked-time fraction of compute exceeds this.
  double grow_wait_ratio = 0.05;
  /// Shrink when the smoothed failure fraction exceeds this.
  double shrink_failure_fraction = 0.25;
  /// EWMA weight of the newest observation, in (0, 1].
  double smoothing = 0.5;
  /// Iterations to sit still after an adjustment before acting again;
  /// must be >= 0.
  int cooldown = 2;
};

class AdaptiveWindowPolicy final : public WindowPolicy {
 public:
  /// Throws std::invalid_argument when `config` is out of range
  /// (initial_window < 0, smoothing outside (0, 1], cooldown < 0, or a
  /// non-positive grow/shrink threshold).
  explicit AdaptiveWindowPolicy(AdaptiveWindowConfig config = {});

  int initial_window() const override { return config_.initial_window; }
  int next_window(const WindowFeedback& feedback) override;
  const char* last_decision() const override { return last_decision_; }

  std::uint64_t grow_events() const noexcept { return grows_; }
  std::uint64_t shrink_events() const noexcept { return shrinks_; }

 private:
  AdaptiveWindowConfig config_;
  double wait_avg_ = 0.0;
  double fail_avg_ = 0.0;
  int cooldown_left_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
  const char* last_decision_ = "hold";
};

/// Hill-climbing controller: instead of interpreting wait/failure signals,
/// it optimises the end metric directly — the per-iteration elapsed time
/// (wait + compute, which includes replay cost).  Every `epoch` iterations
/// it compares the epoch's mean against the previous one and keeps walking
/// the window in the improving direction, reversing otherwise.  Converges
/// to (and dithers ±1 around) the best window even when waits and
/// corrections trade off nontrivially.
struct HillClimbConfig {
  int initial_window = 1;
  /// Iterations per comparison epoch; must be >= 1.
  int epoch_iterations = 3;
  /// Relative improvement required to call a move "better"; must be >= 0.
  double tolerance = 0.02;
};

class HillClimbWindowPolicy final : public WindowPolicy {
 public:
  /// Throws std::invalid_argument on an out-of-range config.
  explicit HillClimbWindowPolicy(HillClimbConfig config = {});

  int initial_window() const override { return config_.initial_window; }
  int next_window(const WindowFeedback& feedback) override;

 private:
  HillClimbConfig config_;
  double epoch_time_ = 0.0;
  int epoch_count_ = 0;
  double previous_epoch_mean_ = -1.0;
  int direction_ = +1;
};

/// Convenience: a policy pinning the window to a constant (for comparison
/// harnesses that treat fixed FW as a degenerate policy).
class FixedWindowPolicy final : public WindowPolicy {
 public:
  explicit FixedWindowPolicy(int window) : window_(window) {}
  int initial_window() const override { return window_; }
  int next_window(const WindowFeedback&) override { return window_; }

 private:
  int window_;
};

/// Model-driven window controller configuration.  The defaults implement
/// the contract of DESIGN.md §13: FW is the largest window that both covers
/// the observed delay and keeps the expected replay load within budget,
/// never exceeding the cascade guard.
struct ModelWindowConfig {
  int initial_window = 1;
  /// Which observed delay quantile stands in for D (0.5, 0.9 or 0.99 —
  /// snapped to the nearest sketch marker).  Tail quantiles size the window
  /// for delay spikes, the median for the common case.
  double delay_quantile = 0.9;
  /// Which observed service quantile stands in for S.
  double service_quantile = 0.5;
  /// Hysteresis margin ε in the cover bound FW_cover = ⌈D_q/S − ε⌉ (see
  /// DESIGN.md §13.3, eq. W1).  Window slots are integer: when D_q/S sits
  /// barely above an integer, the extra slot would hide less than ε·S of
  /// delay while exposing a full additional in-flight step to rollback, so
  /// the bound rounds down.  Must be in [0, 1).
  double cover_margin = 0.25;
  /// ρ_max: ceiling on the expected replayed-iteration load per iteration,
  /// k̂ · FW <= ρ_max (the Anselmi–Walton stability inequality as
  /// implemented; see DESIGN.md §13.3).  Must be in (0, 1].
  double utilization_budget = 0.5;
  /// EWMA weight for the observed failure fraction k̂, in (0, 1].
  double smoothing = 0.5;
  /// Iterations to sit still after a window change; must be >= 0.
  int cooldown = 2;
  /// Minimum delay/service samples before the sketches are trusted; the
  /// policy holds its current window during warmup.  Must be >= 1.
  std::uint64_t min_samples = 8;
  /// Largest tolerated rollback-chain length.  Observing a deeper chain
  /// engages the cascade guard: the window drops to 1 and stays there for
  /// `cascade_hold` iterations (Manita–Simonot regime avoidance).  The
  /// steady-state window is additionally capped at this value.  Must be
  /// >= 1.
  int cascade_budget = 3;
  /// Iterations the cascade guard pins FW = 1 after firing; must be >= 1.
  int cascade_hold = 4;
  /// Slew-rate limit: window moves at most this many steps per decision;
  /// must be >= 1.
  int max_step = 1;
};

/// Model-driven controller (the tentpole of DESIGN.md §13): computes the
/// target window from the live delay/service distributions instead of
/// reacting to symptoms.
///
///   FW_cover = ceil(D_q / S - ε) — depth that overlaps the observed delay
///   FW_stab  = floor(ρ_max / k̂)  — stability bound on replay load
///   FW*      = min(FW_cover, FW_stab, cascade_budget)
///
/// moved toward at most `max_step` per decision with a cooldown, and
/// overridden by the cascade guard whenever the engine reports a
/// rollback-chain longer than `cascade_budget`.  Decisions are pure
/// functions of the feedback sequence, so identical runs produce identical
/// window sequences (byte-identical across sweep `--jobs`).
class ModelWindowPolicy final : public WindowPolicy {
 public:
  /// Throws std::invalid_argument on an out-of-range config.
  explicit ModelWindowPolicy(ModelWindowConfig config = {});

  int initial_window() const override { return config_.initial_window; }
  int next_window(const WindowFeedback& feedback) override;
  const char* last_decision() const override { return last_decision_; }

  /// Number of decisions the cascade guard forced (diagnostics).
  std::uint64_t cascade_guard_events() const noexcept { return guard_events_; }

 private:
  ModelWindowConfig config_;
  double fail_avg_ = 0.0;
  int cooldown_left_ = 0;
  int guard_hold_left_ = 0;
  std::uint64_t guard_events_ = 0;
  const char* last_decision_ = "hold";
};

// ---- θ (check threshold) adaptation ----

/// Per-iteration observations handed to a θ policy.
struct ThetaFeedback {
  long iteration = 0;
  double current_theta = 0.0;
  /// Checks resolved / checks rejected during the iteration.
  std::uint64_t checks = 0;
  std::uint64_t failures = 0;
  /// Largest speculation error a check observed this iteration (0 when no
  /// checks resolved).
  double max_error = 0.0;
  /// Current rollback-chain length (same observable as
  /// WindowFeedback::cascade_depth).
  int cascade_depth = 0;
};

class ThetaPolicy {
 public:
  virtual ~ThetaPolicy() = default;
  /// θ for the first iteration.
  virtual double initial_theta() const = 0;
  /// θ for the next iteration, given this iteration's observations.
  virtual double next_theta(const ThetaFeedback& feedback) = 0;
};

/// Pins θ to a constant — the engine's historical behaviour as a policy.
class FixedThetaPolicy final : public ThetaPolicy {
 public:
  explicit FixedThetaPolicy(double theta) : theta_(theta) {}
  double initial_theta() const override { return theta_; }
  double next_theta(const ThetaFeedback&) override { return theta_; }

 private:
  double theta_;
};

/// Rejection-band θ controller configuration (DESIGN.md §13.5).
struct AdaptiveThetaConfig {
  double initial_theta = 0.01;
  /// Hard clamps; 0 < min_theta <= initial_theta <= max_theta.
  double min_theta = 1e-4;
  double max_theta = 0.1;
  /// Target band for the smoothed rejection fraction: below `reject_low`
  /// θ tightens (buy accuracy), above `reject_high` θ widens (buy
  /// throughput).  0 <= reject_low < reject_high <= 1.
  double reject_low = 0.02;
  double reject_high = 0.15;
  /// EWMA weight of the newest rejection observation, in (0, 1].
  double smoothing = 0.5;
  /// Iterations to sit still after a θ change; must be >= 0.
  int cooldown = 2;
  /// Multiplicative step per adjustment; must be > 1.
  double step_factor = 2.0;
};

/// Trades check-threshold slack against the observed rejection rate: when
/// rejections exceed the band, speculation is paying rollback for accuracy
/// the application did not ask for, so θ widens; when (nearly) nothing is
/// rejected, θ tightens to reclaim accuracy.  While a rollback cascade is
/// in progress the policy widens immediately (rejections are the cascade's
/// fuel) regardless of cooldown.
class AdaptiveThetaPolicy final : public ThetaPolicy {
 public:
  /// Throws std::invalid_argument on an out-of-range config.
  explicit AdaptiveThetaPolicy(AdaptiveThetaConfig config = {});

  double initial_theta() const override { return config_.initial_theta; }
  double next_theta(const ThetaFeedback& feedback) override;

  std::uint64_t widen_events() const noexcept { return widens_; }
  std::uint64_t tighten_events() const noexcept { return tightens_; }

 private:
  AdaptiveThetaConfig config_;
  double reject_avg_ = 0.0;
  /// A check-bearing iteration has fed the EWMA since the last reset;
  /// tightening is suspended until then (a zeroed average is absence of
  /// evidence, not evidence of zero rejections).
  bool observed_ = false;
  int cooldown_left_ = 0;
  std::uint64_t widens_ = 0;
  std::uint64_t tightens_ = 0;
};

// ---- CLI-facing factories ----

/// Window-policy family selector, mirroring `--window-policy=`.
enum class WindowPolicyKind {
  Static,     ///< fixed FW (EngineConfig::forward_window)
  Heuristic,  ///< AdaptiveWindowPolicy (wait/failure signal thresholds)
  HillClimb,  ///< HillClimbWindowPolicy (direct iteration-time descent)
  Model,      ///< ModelWindowPolicy (delay/service distribution model)
};

/// θ-policy family selector, mirroring `--theta-policy=`.
enum class ThetaPolicyKind {
  Static,    ///< fixed θ (EngineConfig::threshold)
  Adaptive,  ///< AdaptiveThetaPolicy (rejection-band controller)
};

/// Parses a `--window-policy=` value ("static", "heuristic", "hill-climb",
/// "model"); std::nullopt on anything else.
std::optional<WindowPolicyKind> parse_window_policy(std::string_view name);
/// Canonical CLI name of `kind`.
std::string_view window_policy_name(WindowPolicyKind kind);

/// Parses a `--theta-policy=` value ("static", "adaptive"); std::nullopt on
/// anything else.
std::optional<ThetaPolicyKind> parse_theta_policy(std::string_view name);
/// Canonical CLI name of `kind`.
std::string_view theta_policy_name(ThetaPolicyKind kind);

/// Builds the window policy for `kind` starting from `initial_window`.
/// Returns nullptr for Static: the engine then uses its fixed
/// forward_window, which is what "no policy" means internally.
std::shared_ptr<WindowPolicy> make_window_policy(WindowPolicyKind kind,
                                                 int initial_window);

/// Builds the θ policy for `kind` starting from `initial_theta`.  Returns
/// nullptr for Static (the engine then uses its fixed threshold).  For the
/// adaptive kind, `initial_theta` is clamped into the default band limits.
std::shared_ptr<ThetaPolicy> make_theta_policy(ThetaPolicyKind kind,
                                               double initial_theta);

}  // namespace specomp::spec

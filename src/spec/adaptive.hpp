// Adaptive forward-window control.
//
// The paper tunes FW by hand "based on an estimate of the communication and
// computation times and the accuracy of the speculation function" and lists
// automatic selection among its future work.  This policy closes the loop
// at run time from the two signals the engine observes every iteration:
//
//   * blocked communication time — waits mean the current window is too
//     shallow to cover the prevailing message delay, so the window grows;
//   * speculation failures — rejected guesses mean speculating deeper is
//     buying recomputation, so the window shrinks.
//
// Both signals are smoothed with an exponentially-weighted moving average —
// blocking naturally *alternates* iterations once the window partially
// covers the latency (one await drains several outstanding verifications),
// so a consecutive-iteration heuristic would stall — and each adjustment is
// followed by a cooldown so the controller observes the new window's
// behaviour before moving again.
#pragma once

#include <cstdint>
#include <memory>

namespace specomp::spec {

/// Per-iteration observations handed to a window policy.
struct WindowFeedback {
  long iteration = 0;
  int current_window = 0;
  /// Time this rank spent blocked in receives during the iteration.
  double wait_seconds = 0.0;
  /// Time spent computing during the iteration (including replays).
  double compute_seconds = 0.0;
  /// Speculations issued / checks that failed during the iteration.
  std::uint64_t speculated = 0;
  std::uint64_t failures = 0;
};

class WindowPolicy {
 public:
  virtual ~WindowPolicy() = default;
  /// Window for the first iteration.
  virtual int initial_window() const = 0;
  /// Window for the next iteration, given this iteration's observations.
  /// The engine clamps the result to [0, EngineConfig::max_forward_window].
  virtual int next_window(const WindowFeedback& feedback) = 0;
};

struct AdaptiveWindowConfig {
  int initial_window = 1;
  /// Grow when the smoothed blocked-time fraction of compute exceeds this.
  double grow_wait_ratio = 0.05;
  /// Shrink when the smoothed failure fraction exceeds this.
  double shrink_failure_fraction = 0.25;
  /// EWMA weight of the newest observation, in (0, 1].
  double smoothing = 0.5;
  /// Iterations to sit still after an adjustment before acting again.
  int cooldown = 2;
};

class AdaptiveWindowPolicy final : public WindowPolicy {
 public:
  explicit AdaptiveWindowPolicy(AdaptiveWindowConfig config = {})
      : config_(config) {}

  int initial_window() const override { return config_.initial_window; }
  int next_window(const WindowFeedback& feedback) override;

  std::uint64_t grow_events() const noexcept { return grows_; }
  std::uint64_t shrink_events() const noexcept { return shrinks_; }

 private:
  AdaptiveWindowConfig config_;
  double wait_avg_ = 0.0;
  double fail_avg_ = 0.0;
  int cooldown_left_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

/// Hill-climbing controller: instead of interpreting wait/failure signals,
/// it optimises the end metric directly — the per-iteration elapsed time
/// (wait + compute, which includes replay cost).  Every `epoch` iterations
/// it compares the epoch's mean against the previous one and keeps walking
/// the window in the improving direction, reversing otherwise.  Converges
/// to (and dithers ±1 around) the best window even when waits and
/// corrections trade off nontrivially.
struct HillClimbConfig {
  int initial_window = 1;
  int epoch_iterations = 3;
  /// Relative improvement required to call a move "better".
  double tolerance = 0.02;
};

class HillClimbWindowPolicy final : public WindowPolicy {
 public:
  explicit HillClimbWindowPolicy(HillClimbConfig config = {})
      : config_(config) {}

  int initial_window() const override { return config_.initial_window; }
  int next_window(const WindowFeedback& feedback) override;

 private:
  HillClimbConfig config_;
  double epoch_time_ = 0.0;
  int epoch_count_ = 0;
  double previous_epoch_mean_ = -1.0;
  int direction_ = +1;
};

/// Convenience: a policy pinning the window to a constant (for comparison
/// harnesses that treat fixed FW as a degenerate policy).
class FixedWindowPolicy final : public WindowPolicy {
 public:
  explicit FixedWindowPolicy(int window) : window_(window) {}
  int initial_window() const override { return window_; }
  int next_window(const WindowFeedback&) override { return window_; }

 private:
  int window_;
};

}  // namespace specomp::spec

// Per-peer history of actually received variable blocks.
//
// The backward window (BW) of the paper: speculation functions extrapolate
// from the last BW received values of a peer's variables.  Only *actual*
// (received) blocks enter the history — speculated values never do, so a
// burst of speculation cannot compound into the prediction baseline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/contracts.hpp"
#include "support/ring_buffer.hpp"

namespace specomp::spec {

class History {
 public:
  struct Entry {
    long iteration = -1;
    std::vector<double> block;
  };

  explicit History(std::size_t backward_window)
      : entries_(backward_window) {}

  std::size_t capacity() const noexcept { return entries_.capacity(); }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Newest actually-received iteration, or -1 when empty.
  long newest_iteration() const noexcept {
    return entries_.empty() ? -1 : entries_.back(0).iteration;
  }

  /// Records the actual block for `iteration`.  Out-of-order receipts older
  /// than the newest entry are dropped (they cannot improve extrapolation).
  void record(long iteration, std::span<const double> block) {
    if (iteration <= newest_iteration()) return;
    entries_.push(Entry{iteration, std::vector<double>(block.begin(), block.end())});
  }

  /// Entry `age` steps back from the newest (age 0 = newest).
  const Entry& back(std::size_t age = 0) const { return entries_.back(age); }

  void clear() noexcept { entries_.clear(); }

 private:
  support::RingBuffer<Entry> entries_;
};

}  // namespace specomp::spec

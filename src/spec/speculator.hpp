// Speculation functions.
//
// A Speculator predicts a peer's variable block `steps` iterations past the
// newest entry of its history.  The paper's general form is a weighted sum
// of past values (Section 3.1); concrete instances provided here:
//
//   HoldLastSpeculator        BW=1  x*(t+s) = x(t)
//   LinearSpeculator          BW=2  x*(t+s) = x(t) + s [x(t) - x(t-1)]
//   QuadraticSpeculator       BW=3  second-order Newton extrapolation
//   WeightedHistorySpeculator BW=n  x*(t+s) = sum_i w_i x(t-i+1)  (paper eq.)
//
// Applications with structural knowledge supply their own (the N-body code
// uses a kinematic speculator implementing the paper's eq. 10, r* = r + v dt).
//
// ops_per_variable() is f_spec in the paper's Table 1 — the operation count
// charged to the speculating processor per predicted variable.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "spec/history.hpp"

namespace specomp::spec {

class Speculator {
 public:
  virtual ~Speculator() = default;

  /// Predicts the block `steps` (>= 1) iterations after history's newest
  /// entry.  Requires a non-empty history; uses at most backward_window()
  /// entries (gracefully degrades when fewer are available).
  virtual std::vector<double> predict(const History& history, int steps) const = 0;

  /// BW: maximum number of past values consulted.
  virtual std::size_t backward_window() const noexcept = 0;
  /// f_spec: operations charged per speculated variable.
  virtual double ops_per_variable() const noexcept = 0;
  virtual std::string_view name() const noexcept = 0;
};

class HoldLastSpeculator final : public Speculator {
 public:
  std::vector<double> predict(const History& history, int steps) const override;
  std::size_t backward_window() const noexcept override { return 1; }
  double ops_per_variable() const noexcept override { return 1.0; }
  std::string_view name() const noexcept override { return "hold-last"; }
};

class LinearSpeculator final : public Speculator {
 public:
  std::vector<double> predict(const History& history, int steps) const override;
  std::size_t backward_window() const noexcept override { return 2; }
  double ops_per_variable() const noexcept override { return 3.0; }
  std::string_view name() const noexcept override { return "linear"; }
};

class QuadraticSpeculator final : public Speculator {
 public:
  std::vector<double> predict(const History& history, int steps) const override;
  std::size_t backward_window() const noexcept override { return 3; }
  double ops_per_variable() const noexcept override { return 8.0; }
  std::string_view name() const noexcept override { return "quadratic"; }
};

/// The paper's general weighted-sum form: x* = w_1 x(t) + w_2 x(t-1) + ...
/// Weights apply newest-first.  Note this form ignores `steps` (it is a
/// one-shot filter, not an extrapolation in s); it is included to study the
/// BW accuracy/complexity trade-off the paper describes.
class WeightedHistorySpeculator final : public Speculator {
 public:
  explicit WeightedHistorySpeculator(std::vector<double> weights);
  std::vector<double> predict(const History& history, int steps) const override;
  std::size_t backward_window() const noexcept override { return weights_.size(); }
  double ops_per_variable() const noexcept override {
    return 2.0 * static_cast<double>(weights_.size());
  }
  std::string_view name() const noexcept override { return "weighted-history"; }

 private:
  std::vector<double> weights_;
};

/// Convenience factory by name ("hold-last", "linear", "quadratic").
std::shared_ptr<Speculator> make_speculator(std::string_view name);

}  // namespace specomp::spec

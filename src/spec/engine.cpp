#include "spec/engine.hpp"

#include <algorithm>
#include <utility>

#include "net/buffer_pool.hpp"
#include "net/serialization.hpp"
#include "support/contracts.hpp"

namespace specomp::spec {

using runtime::Phase;

namespace {

std::vector<double> decode_block(net::Message msg) {
  net::ByteReader reader(msg.payload);
  const std::span<const double> values = reader.read_span<double>();
  std::vector<double> block(values.begin(), values.end());
  net::BufferPool::local().release(std::move(msg.payload));
  return block;
}

}  // namespace

SpecEngine::Metrics::Metrics()
    : iterations(obs::metrics().counter("engine.iterations")),
      speculated(obs::metrics().counter("engine.blocks_speculated")),
      received_in_time(obs::metrics().counter("engine.blocks_received_in_time")),
      checks(obs::metrics().counter("engine.checks")),
      failures(obs::metrics().counter("engine.check_failures")),
      incremental_corrections(
          obs::metrics().counter("engine.incremental_corrections")),
      rollbacks(obs::metrics().counter("engine.rollbacks")),
      replayed_iterations(obs::metrics().counter("engine.replayed_iterations")),
      degraded_entries(obs::metrics().counter("degraded.entries")),
      degraded_iterations(obs::metrics().counter("degraded.iterations")),
      forward_window(obs::metrics().gauge("engine.forward_window")),
      check_error(obs::metrics().histogram("engine.check_error", 0.0, 0.1, 50)) {
}

SpecEngine::SpecEngine(runtime::Communicator& comm, SyncIterativeApp& app,
                       EngineConfig config,
                       std::vector<std::vector<double>> initial_blocks)
    : comm_(comm),
      app_(app),
      config_(std::move(config)),
      rank_(comm.rank()),
      size_(comm.size()) {
  SPEC_EXPECTS(config_.forward_window >= 0);
  SPEC_EXPECTS(config_.max_forward_window >= 0);
  fw_now_ = config_.window_policy != nullptr
                ? std::clamp(config_.window_policy->initial_window(), 0,
                             config_.max_forward_window)
                : config_.forward_window;
  if (fw_now_ > 0 || config_.window_policy != nullptr)
    SPEC_EXPECTS(config_.speculator != nullptr);
  if (config_.graceful_degradation) {
    SPEC_EXPECTS(config_.speculator != nullptr);
    SPEC_EXPECTS(config_.max_degraded_window >= 1);
    SPEC_EXPECTS(config_.overdue_after_seconds > 0.0);
  }
  SPEC_EXPECTS(initial_blocks.size() == static_cast<std::size_t>(size_));
  theta_now_ = config_.theta_policy != nullptr
                   ? config_.theta_policy->initial_theta()
                   : config_.threshold;
  SPEC_EXPECTS(theta_now_ >= 0.0);
  stats_.theta_min_used = theta_now_;
  stats_.theta_max_used = theta_now_;

  const std::size_t bw =
      config_.speculator != nullptr ? config_.speculator->backward_window() : 1;
  histories_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) histories_.emplace_back(std::max<std::size_t>(bw, 1));
  outstanding_.assign(static_cast<std::size_t>(size_), 0);

  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    auto& block = initial_blocks[static_cast<std::size_t>(r)];
    histories_[static_cast<std::size_t>(r)].record(0, block);
    app_.install_peer(r, block);
  }
}

SpecStats SpecEngine::run(long iterations) {
  SPEC_EXPECTS(iterations >= 1);
  SPEC_EXPECTS(next_compute_ == 0);  // run() is single-shot

  // Iteration 0: every rank holds the full initial state, so this step is
  // compute-only (see header comment).
  app_.compute_step();
  comm_.compute(app_.compute_ops(), Phase::Compute);
  ++stats_.iterations;
  metrics_.iterations.inc();
  metrics_.forward_window.set(fw_now_);
  comm_.timer().bump_iterations();
  next_compute_ = 1;

  for (long t = 1; t < iterations; ++t) {
    // 1. Incorporate whatever has already been delivered (Fig. 3: "checks
    //    its message queue and incorporates any messages that have arrived").
    drain_pending();

    // 2. Enforce the forward window *before* sending, so the block we send
    //    reflects every correction from iterations <= t - FW (with FW = 1
    //    this is exactly Fig. 3's check-before-next-send ordering).  When
    //    graceful degradation is armed, an overdue peer lets the engine
    //    speculate past FW instead of blocking (see enforce_window).
    for (int k = 0; k < size_; ++k) {
      if (k == rank_) continue;
      enforce_window(k);
    }
    if (degraded_) {
      // Leave degraded mode once no peer saturates FW any more.
      bool saturated = false;
      for (int k = 0; k < size_ && !saturated; ++k) {
        if (k == rank_) continue;
        saturated =
            outstanding_[static_cast<std::size_t>(k)] >= std::max(fw_now_, 1);
      }
      if (!saturated) {
        degraded_ = false;
        comm_.mark_degraded(false);
      }
    }

    // 3. Send X_j(t) to all peers.
    {
      const std::vector<double> block = app_.pack_local();
      for (int k = 0; k < size_; ++k)
        if (k != rank_) comm_.send_doubles(k, tag_for(t), block);
    }

    // 4. Resolve each peer's X_k(t): real message if delivered, else
    //    speculate (FW > 0) or block (FW = 0).
    IterationRecord record;
    record.t = t;
    record.peers.resize(static_cast<std::size_t>(size_));
    bool any_speculated = false;
    for (int k = 0; k < size_; ++k) {
      if (k == rank_) continue;
      auto& slot = record.peers[static_cast<std::size_t>(k)];
      net::Message msg;
      if (comm_.try_recv(k, tag_for(t), msg)) {
        slot.block = decode_block(std::move(msg));
        // Record history only while no older speculation for this peer is
        // outstanding: a jitter-reordered early arrival must not run the
        // history past a record that a later replay will re-speculate.
        if (outstanding_[static_cast<std::size_t>(k)] == 0)
          histories_[static_cast<std::size_t>(k)].record(t, slot.block);
        app_.install_peer(k, slot.block);
        ++stats_.blocks_received_in_time;
        metrics_.received_in_time.inc();
        continue;
      }
      if (fw_now_ == 0) {
        slot.block = comm_.recv_doubles(k, tag_for(t));
        histories_[static_cast<std::size_t>(k)].record(t, slot.block);
        app_.install_peer(k, slot.block);
        continue;
      }
      slot.block = speculate_block(k, t);
      slot.speculated = true;
      app_.install_peer(k, slot.block);
      ++record.unresolved;
      ++outstanding_[static_cast<std::size_t>(k)];
      ++stats_.blocks_speculated;
      metrics_.speculated.inc();
      any_speculated = true;
    }

    // 5. Compute X_j(t+1), checkpointing first whenever a rollback could
    //    later land on (or replay through) this iteration.
    if (record.unresolved > 0 || !window_.empty())
      record.state_before = app_.save_state();
    window_.push_back(std::move(record));
    comm_.mark_speculative(any_speculated);
    app_.compute_step();
    comm_.compute(app_.compute_ops(), Phase::Compute);
    comm_.mark_speculative(false);
    next_compute_ = t + 1;
    ++stats_.iterations;
    metrics_.iterations.inc();
    if (degraded_) {
      ++stats_.degraded_iterations;
      metrics_.degraded_iterations.inc();
    }
    comm_.timer().bump_iterations();

    while (!window_.empty() && window_.front().unresolved == 0)
      window_.pop_front();

    consult_policies(t);
  }

  // Resolve every outstanding speculation so all ranks finish verified and
  // no messages are left undelivered — this is also where a degraded run
  // reconciles: every late block still passes the check/correct/rollback
  // machinery before the final state is declared.
  for (int k = 0; k < size_; ++k) {
    if (k == rank_) continue;
    while (outstanding_[static_cast<std::size_t>(k)] > 0) await_oldest(k);
  }
  while (!window_.empty() && window_.front().unresolved == 0)
    window_.pop_front();
  if (degraded_) {
    degraded_ = false;
    comm_.mark_degraded(false);
  }
  SPEC_ENSURES(window_.empty());
  return stats_;
}

void SpecEngine::enforce_window(int k) {
  const int fw_limit = std::max(fw_now_, 1);
  while (outstanding_[static_cast<std::size_t>(k)] >= fw_limit) {
    const bool at_hard_cap =
        outstanding_[static_cast<std::size_t>(k)] >=
        std::max(config_.max_degraded_window, fw_limit);
    if (!can_degrade() || at_hard_cap) {
      // Strict FW semantics (or the degraded hard cap): block.
      await_oldest(k);
      continue;
    }
    // Give the overdue peer one timeout's grace; if its block arrives the
    // window drains normally.
    if (await_oldest(k, config_.overdue_after_seconds)) continue;
    // Overdue: degrade — this iteration speculates past FW for peer k and
    // the compute span is flagged so traces show the mode explicitly.
    if (!degraded_) {
      degraded_ = true;
      ++stats_.degraded_entries;
      metrics_.degraded_entries.inc();
      comm_.mark_degraded(true);
    }
    return;
  }
}

void SpecEngine::drain_pending() {
  // Resolve opportunistically, but strictly oldest-first per peer: jitter
  // can deliver iteration t+1 before t, and resolving t+1 first would run
  // the peer's history ahead of the still-unresolved record t (breaking the
  // steps >= 1 invariant of speculation during a later replay).  Also never
  // resolve while iterating the window — a replay rewrites records.
  for (;;) {
    int found_k = -1;
    long found_s = -1;
    net::Message msg;
    for (int k = 0; k < size_ && found_k < 0; ++k) {
      if (k == rank_) continue;
      for (const auto& rec : window_) {
        const auto& slot = rec.peers[static_cast<std::size_t>(k)];
        if (slot.speculated && !slot.resolved) {
          // Oldest outstanding speculation for this peer: take it or leave
          // this peer alone this round.
          if (comm_.try_recv(k, tag_for(rec.t), msg)) {
            found_k = k;
            found_s = rec.t;
          }
          break;
        }
      }
    }
    if (found_k < 0) return;
    // resolve_receipt consumes the values through a span, so decode in place
    // instead of materialising a vector.
    net::ByteReader reader(msg.payload);
    resolve_receipt(found_k, found_s, reader.read_span<double>());
    net::BufferPool::local().release(std::move(msg.payload));
  }
}

bool SpecEngine::await_oldest(int k, double timeout_seconds) {
  long s = -1;
  for (const auto& rec : window_) {
    const auto& slot = rec.peers[static_cast<std::size_t>(k)];
    if (slot.speculated && !slot.resolved) {
      s = rec.t;
      break;
    }
  }
  SPEC_ASSERT(s >= 0);
  // Zero-copy: resolve_receipt reads the values straight out of the payload.
  net::Message msg;
  if (timeout_seconds < 0.0) {
    msg = comm_.recv(k, tag_for(s));
  } else if (!comm_.recv_timeout(k, tag_for(s), timeout_seconds, msg)) {
    return false;
  }
  net::ByteReader reader(msg.payload);
  resolve_receipt(k, s, reader.read_span<double>());
  net::BufferPool::local().release(std::move(msg.payload));
  return true;
}

void SpecEngine::resolve_receipt(int k, long s, std::span<const double> actual) {
  histories_[static_cast<std::size_t>(k)].record(s, actual);

  IterationRecord* rec = find_record(s);
  SPEC_ASSERT(rec != nullptr);
  auto& slot = rec->peers[static_cast<std::size_t>(k)];
  SPEC_ASSERT(slot.speculated && !slot.resolved);

  charge_check(k);
  comm_.trace_causal(des::CausalKind::Check, k, s);
  ++stats_.checks;
  metrics_.checks.inc();
  const double err = app_.speculation_error(k, slot.block, actual);
  stats_.error.add(err);
  metrics_.check_error.observe(err);
  iter_max_error_ = std::max(iter_max_error_, err);
  const bool acceptable = err <= theta_now_;

  // From here on the record holds the real block (replays must use it).
  slot.block.assign(actual.begin(), actual.end());
  slot.resolved = true;
  --rec->unresolved;
  --outstanding_[static_cast<std::size_t>(k)];

  if (!acceptable) {
    comm_.trace_causal(des::CausalKind::CheckFail, k, s);
    ++stats_.failures;
    metrics_.failures.inc();
    bool corrected = false;
    if (config_.allow_incremental_correction && s == next_compute_ - 1) {
      corrected = app_.correct_last_step(k, actual);
      if (corrected) {
        comm_.compute(app_.correct_ops(k), Phase::Correct);
        comm_.trace_causal(des::CausalKind::Correct, k, s);
        ++stats_.incremental_corrections;
        metrics_.incremental_corrections.inc();
      }
    }
    if (!corrected) {
      comm_.trace_causal(des::CausalKind::Rollback, k, s);
      rollback_and_replay(s);
    }
  }

  while (!window_.empty() && window_.front().unresolved == 0)
    window_.pop_front();
}

void SpecEngine::rollback_and_replay(long s) {
  ++stats_.rollbacks;
  metrics_.rollbacks.inc();
  // Cascade tracking (DESIGN.md §13.4): this rollback *chains* when its
  // target falls inside the span the previous rollback already replayed —
  // the new arrival invalidated recomputed work, the Manita–Simonot cascade
  // regime.  cascade_span_end_ is advanced to the last iteration this
  // replay rewrites; an iteration that completes clean resets the chain
  // (see consult_policies).
  cascade_depth_now_ = s <= cascade_span_end_ ? cascade_depth_now_ + 1 : 1;
  stats_.max_cascade_depth =
      std::max(stats_.max_cascade_depth, cascade_depth_now_);
  std::size_t start = window_.size();
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_[i].t == s) {
      start = i;
      break;
    }
  }
  SPEC_ASSERT(start < window_.size());
  SPEC_ASSERT(!window_[start].state_before.empty());
  app_.restore_state(window_[start].state_before);

  for (std::size_t j = start; j < window_.size(); ++j) {
    auto& rec = window_[j];
    SPEC_ASSERT(rec.t == s + static_cast<long>(j - start));
    rec.state_before = app_.save_state();
    bool any_speculated = false;
    for (int k = 0; k < size_; ++k) {
      if (k == rank_) continue;
      auto& slot = rec.peers[static_cast<std::size_t>(k)];
      if (slot.speculated && !slot.resolved) {
        // Still unverified: re-speculate with the freshest history.
        slot.block = speculate_block(k, rec.t);
        any_speculated = true;
      }
      app_.install_peer(k, slot.block);
    }
    comm_.mark_speculative(any_speculated);
    app_.compute_step();
    comm_.compute(app_.compute_ops(), Phase::Correct);
    comm_.mark_speculative(false);
    ++stats_.replayed_iterations;
    metrics_.replayed_iterations.inc();
  }
  if (!window_.empty())
    cascade_span_end_ = std::max(cascade_span_end_, window_.back().t);
}

SpecEngine::IterationRecord* SpecEngine::find_record(long t) {
  for (auto& rec : window_)
    if (rec.t == t) return &rec;
  return nullptr;
}

std::vector<double> SpecEngine::speculate_block(int k, long t) {
  auto& history = histories_[static_cast<std::size_t>(k)];
  SPEC_ASSERT(!history.empty());
  const int steps = static_cast<int>(t - history.newest_iteration());
  SPEC_ASSERT(steps >= 1);
  std::vector<double> block = config_.speculator->predict(history, steps);
  comm_.compute(config_.speculator->ops_per_variable() *
                    static_cast<double>(block.size()),
                Phase::Speculate);
  comm_.trace_causal(des::CausalKind::Speculate, k, t);
  return block;
}

void SpecEngine::charge_check(int k) {
  comm_.compute(app_.check_ops(k), Phase::Check);
}

void SpecEngine::consult_policies(long iteration) {
  stats_.max_window_used = std::max(stats_.max_window_used, fw_now_);

  // Per-iteration deltas shared by both policies.
  const std::uint64_t d_checks = stats_.checks - last_checks_;
  const std::uint64_t d_failures = stats_.failures - last_failures_;
  const bool rolled_back = stats_.rollbacks != last_rollbacks_;

  const char* decision = "";
  if (config_.window_policy != nullptr) {
    const double wait =
        comm_.timer().get(Phase::Communicate).to_seconds();
    const double compute = comm_.timer().get(Phase::Compute).to_seconds() +
                           comm_.timer().get(Phase::Correct).to_seconds();
    WindowFeedback feedback;
    feedback.iteration = iteration;
    feedback.current_window = fw_now_;
    feedback.wait_seconds = wait - last_wait_seconds_;
    feedback.compute_seconds = compute - last_compute_seconds_;
    feedback.speculated = stats_.blocks_speculated - last_speculated_;
    feedback.failures = d_failures;
    feedback.cascade_depth = cascade_depth_now_;
    const runtime::DistSnapshot snap = comm_.dist_snapshot();
    feedback.dists_valid = snap.valid;
    feedback.delay_samples = snap.delay_samples;
    feedback.delay_p50 = snap.delay_p50;
    feedback.delay_p90 = snap.delay_p90;
    feedback.delay_p99 = snap.delay_p99;
    feedback.service_samples = snap.service_samples;
    feedback.service_p50 = snap.service_p50;
    feedback.service_p90 = snap.service_p90;
    feedback.service_p99 = snap.service_p99;
    last_wait_seconds_ = wait;
    last_compute_seconds_ = compute;
    last_speculated_ = stats_.blocks_speculated;

    fw_now_ = std::clamp(config_.window_policy->next_window(feedback), 0,
                         config_.max_forward_window);
    decision = config_.window_policy->last_decision();
    metrics_.forward_window.set(fw_now_);
  }

  if (config_.theta_policy != nullptr) {
    ThetaFeedback feedback;
    feedback.iteration = iteration;
    feedback.current_theta = theta_now_;
    feedback.checks = d_checks;
    feedback.failures = d_failures;
    feedback.max_error = iter_max_error_;
    feedback.cascade_depth = cascade_depth_now_;
    const double next = config_.theta_policy->next_theta(feedback);
    SPEC_ASSERT(next > 0.0);
    if (next != theta_now_) {
      theta_now_ = next;
      ++stats_.theta_adjustments;
    }
    stats_.theta_min_used = std::min(stats_.theta_min_used, theta_now_);
    stats_.theta_max_used = std::max(stats_.theta_max_used, theta_now_);
  }

  if (config_.record_control_log) {
    control_log_.push_back(
        {iteration, fw_now_, theta_now_, cascade_depth_now_, decision});
  }

  last_checks_ = stats_.checks;
  last_failures_ = stats_.failures;
  last_rollbacks_ = stats_.rollbacks;
  iter_max_error_ = 0.0;
  // An iteration with no rollback breaks the chain: nothing this iteration
  // invalidated previously replayed work.
  if (!rolled_back) {
    cascade_depth_now_ = 0;
    cascade_span_end_ = -1;
  }
}

}  // namespace specomp::spec

// Cooperative simulated process.
//
// Each process hosts its body on a dedicated OS thread, but the kernel
// enforces strict alternation: the kernel thread and process threads exchange
// a single logical token, so only one of them ever runs.  This gives
// application code a natural blocking style (plain function calls, loops,
// blocking receives) while keeping the simulation fully deterministic.
//
// A process interacts with simulated time through three primitives:
//   - advance(dt): consume `dt` of local compute time,
//   - suspend():   block until another event calls wake(),
//   - yield_now(): reschedule at the same time (after already-queued events).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "des/kernel.hpp"
#include "des/time.hpp"

namespace specomp::des {

class Process {
 public:
  enum class State {
    NotStarted,   // spawn event not yet executed
    Waiting,      // waiting for a scheduled resume event
    Suspended,    // waiting for an external wake()
    Running,      // body currently holds the token
    Finished,     // body returned
  };

  // specomp-lint: allow(hot-path-callable): the body callable is invoked once per process lifetime, not per event
  Process(Kernel& kernel, std::string name, std::function<void(Process&)> body,
          std::uint64_t id);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::uint64_t id() const noexcept { return id_; }
  State state() const noexcept { return state_; }
  Kernel& kernel() noexcept { return kernel_; }
  SimTime now() const noexcept { return kernel_.now(); }

  // ---- Called from inside the process body (body thread only). ----

  /// Advances local time by `dt`, modelling computation of that duration.
  void advance(SimTime dt);
  /// Blocks until some event calls wake().  If a wake is already pending the
  /// call consumes it and returns without advancing time.
  void suspend();
  /// Gives other same-time events a chance to run, then resumes.
  void yield_now();

  // ---- Called from kernel events (kernel thread only). ----

  /// Wakes a suspended process (resumes it at the current event time).  If
  /// the process is not currently suspended the wake is remembered and
  /// consumed by its next suspend().  Idempotent while pending.
  void wake();

 private:
  friend class Kernel;

  /// Kernel-side: transfer control to the body until it yields back.
  void resume_from_kernel();
  /// Body-side: yield control back to the kernel event loop.
  void yield_to_kernel();
  void thread_main();

  Kernel& kernel_;
  std::string name_;
  // specomp-lint: allow(hot-path-callable): stored body, called once at process start
  std::function<void(Process&)> body_;
  std::uint64_t id_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool token_with_body_ = false;  // guarded by mutex_
  bool thread_started_ = false;

  State state_ = State::NotStarted;  // only touched while holding the token
  bool wake_pending_ = false;
  bool resume_scheduled_ = false;
  bool kill_requested_ = false;  // set once by ~Process under mutex_
  std::thread thread_;
};

}  // namespace specomp::des

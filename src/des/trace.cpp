#include "des/trace.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace specomp::des {

char span_symbol(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Compute: return 'C';
    case SpanKind::SpeculativeCompute: return '*';
    case SpanKind::DegradedCompute: return 'D';
    case SpanKind::Speculate: return 's';
    case SpanKind::Check: return 'k';
    case SpanKind::Correct: return 'R';
    case SpanKind::Wait: return '.';
    case SpanKind::Send: return '>';
    case SpanKind::Other: return '?';
  }
  return '?';
}

const char* span_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::SpeculativeCompute: return "speculative compute";
    case SpanKind::DegradedCompute: return "degraded compute";
    case SpanKind::Speculate: return "speculate";
    case SpanKind::Check: return "check";
    case SpanKind::Correct: return "correct/recompute";
    case SpanKind::Wait: return "wait (idle)";
    case SpanKind::Send: return "send";
    case SpanKind::Other: return "other";
  }
  return "?";
}

const char* causal_name(CausalKind kind) noexcept {
  switch (kind) {
    case CausalKind::Send: return "send";
    case CausalKind::Recv: return "recv";
    case CausalKind::Speculate: return "speculate";
    case CausalKind::Check: return "check";
    case CausalKind::CheckFail: return "check-fail";
    case CausalKind::Correct: return "correct";
    case CausalKind::Rollback: return "rollback";
    case CausalKind::DegradedEnter: return "degraded-enter";
    case CausalKind::DegradedExit: return "degraded-exit";
    case CausalKind::Stall: return "stall";
  }
  return "?";
}

bool causal_from_name(std::string_view name, CausalKind& out) noexcept {
  for (const CausalKind k :
       {CausalKind::Send, CausalKind::Recv, CausalKind::Speculate,
        CausalKind::Check, CausalKind::CheckFail, CausalKind::Correct,
        CausalKind::Rollback, CausalKind::DegradedEnter,
        CausalKind::DegradedExit, CausalKind::Stall}) {
    if (name == causal_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void Trace::add_span(std::uint64_t lane, SpanKind kind, SimTime begin,
                     SimTime end, std::string label) {
  SPEC_EXPECTS(end >= begin);
  spans_.push_back(Span{lane, kind, begin, end, std::move(label)});
  horizon_ = std::max(horizon_, end);
}

void Trace::add_event(std::uint64_t lane, SimTime at, std::string label) {
  events_.push_back(PointEvent{lane, at, std::move(label)});
  horizon_ = std::max(horizon_, at);
}

void Trace::add_causal(CausalEvent event) {
  horizon_ = std::max(horizon_, event.at);
  causal_.push_back(event);
}

std::string Trace::gantt(std::size_t lanes, std::size_t columns) const {
  SPEC_EXPECTS(columns >= 10);
  // A trace whose activity all happens at t = 0 (or an empty one) has a zero
  // horizon; render it as a single-instant chart instead of dividing by a
  // denormal and printing a garbage axis label.
  const bool degenerate = horizon_ <= SimTime::zero();
  const double horizon = degenerate ? 1.0 : horizon_.to_seconds();
  std::vector<std::string> rows(lanes, std::string(columns, ' '));

  auto col_of = [&](SimTime t) {
    const double s = std::max(t.to_seconds(), 0.0);
    auto c = static_cast<std::size_t>(s / horizon * static_cast<double>(columns));
    return std::min(c, columns - 1);
  };

  for (const auto& span : spans_) {
    if (span.lane >= lanes) continue;
    const std::size_t c0 = col_of(span.begin);
    std::size_t c1 = col_of(span.end);
    if (span.end > span.begin && c1 == c0) c1 = std::min(c0 + 1, columns - 1);
    for (std::size_t c = c0; c < std::max(c1, c0 + 1); ++c)
      rows[span.lane][c] = span_symbol(span.kind);
  }
  for (const auto& ev : events_) {
    if (ev.lane >= lanes) continue;
    rows[ev.lane][col_of(ev.at)] = '!';
  }

  std::ostringstream os;
  os << "time 0 " << std::string(columns > 20 ? columns - 20 : 0, '-') << " "
     << horizon_.to_seconds() << " s\n";
  for (std::size_t lane = 0; lane < lanes; ++lane)
    os << "P" << lane << " |" << rows[lane] << "|\n";
  os << "legend:";
  for (SpanKind k :
       {SpanKind::Compute, SpanKind::SpeculativeCompute,
        SpanKind::DegradedCompute, SpanKind::Speculate, SpanKind::Check,
        SpanKind::Correct, SpanKind::Wait, SpanKind::Send})
    os << "  " << span_symbol(k) << "=" << span_name(k);
  os << "\n";
  return os.str();
}

void Trace::clear() {
  spans_.clear();
  events_.clear();
  causal_.clear();
  horizon_ = SimTime::zero();
}

}  // namespace specomp::des

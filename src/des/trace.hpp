// Execution trace / Gantt recorder.
//
// Used by the timeline example to reproduce the paper's Figures 2 and 4:
// each simulated processor records spans (compute, wait, speculate, check,
// correct) which render as an ASCII Gantt chart, one lane per processor.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "des/time.hpp"

namespace specomp::des {

enum class SpanKind : std::uint8_t {
  Compute,
  SpeculativeCompute,
  /// Compute past FW on speculated inputs because a peer is overdue — the
  /// engine's graceful-degradation mode (spec/engine.hpp).
  DegradedCompute,
  Speculate,
  Check,
  Correct,
  Wait,
  Send,
  Other,
};

/// One-character lane symbol for each span kind.
char span_symbol(SpanKind kind) noexcept;
const char* span_name(SpanKind kind) noexcept;

struct Span {
  std::uint64_t lane;  // processor / rank
  SpanKind kind;
  SimTime begin;
  SimTime end;
  std::string label;
};

struct PointEvent {
  std::uint64_t lane;
  SimTime at;
  std::string label;
};

/// Causal edge endpoints and speculation-lifecycle markers (trace schema v2).
///
/// Unlike spans (which render occupancy), causal events carry enough identity
/// to reconstruct *edges* between lanes: a Send on lane i and a Recv on lane
/// j with the same (src, tag, seq) form one message edge, and the
/// Speculate → Check → CheckFail → Correct/Rollback kinds chain a single
/// speculation's lifecycle through (peer, iteration).  tools/spectrace
/// rebuilds rollback-cascade graphs and delay-propagation fronts from them.
enum class CausalKind : std::uint8_t {
  Send,           ///< lane=sender, peer=dst: message handed to the wire
  Recv,           ///< lane=receiver, peer=src: message consumed; t2=delivery
  Speculate,      ///< lane, peer, iter: block speculated for peer
  Check,          ///< lane, peer, iter: speculation checked against actual
  CheckFail,      ///< lane, peer, iter: check exceeded θ
  Correct,        ///< lane, peer, iter: incremental correction applied
  Rollback,       ///< lane, peer, iter: checkpoint restored at iteration
  DegradedEnter,  ///< lane: engine entered degraded mode (past FW)
  DegradedExit,   ///< lane: engine left degraded mode
  Stall,          ///< lane: injected one-off processor delay fired (t2=length)
};

const char* causal_name(CausalKind kind) noexcept;
/// Inverse of causal_name(); false when `name` matches no kind.
bool causal_from_name(std::string_view name, CausalKind& out) noexcept;

struct CausalEvent {
  std::uint64_t lane = 0;
  CausalKind kind = CausalKind::Send;
  SimTime at;
  /// Other endpoint: dst for Send, src for Recv, peer rank for the
  /// speculation-lifecycle kinds; -1 when not applicable.
  std::int32_t peer = -1;
  /// Message tag (Send/Recv); 0 otherwise.
  std::int32_t tag = 0;
  /// Sender sequence number — (src, tag, seq) identifies one message, so a
  /// Recv matches exactly one Send.  0 for non-message kinds.
  std::uint64_t seq = 0;
  /// Engine iteration for the speculation-lifecycle kinds; -1 otherwise.
  std::int64_t iter = -1;
  /// Second timestamp: delivery time for Recv (at - t2 = mailbox queueing,
  /// t2 - send.at = transit), stall length for Stall; zero otherwise.
  SimTime t2;
};

class Trace {
 public:
  void add_span(std::uint64_t lane, SpanKind kind, SimTime begin, SimTime end,
                std::string label = {});
  void add_event(std::uint64_t lane, SimTime at, std::string label);
  void add_causal(CausalEvent event);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  const std::vector<PointEvent>& events() const noexcept { return events_; }
  const std::vector<CausalEvent>& causal() const noexcept { return causal_; }
  SimTime horizon() const noexcept { return horizon_; }

  /// Renders an ASCII Gantt chart with `columns` characters covering
  /// [0, horizon]; one row per lane, legend appended.
  std::string gantt(std::size_t lanes, std::size_t columns = 100) const;

  void clear();

 private:
  std::vector<Span> spans_;
  std::vector<PointEvent> events_;
  std::vector<CausalEvent> causal_;
  SimTime horizon_ = SimTime::zero();
};

}  // namespace specomp::des

// Execution trace / Gantt recorder.
//
// Used by the timeline example to reproduce the paper's Figures 2 and 4:
// each simulated processor records spans (compute, wait, speculate, check,
// correct) which render as an ASCII Gantt chart, one lane per processor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace specomp::des {

enum class SpanKind : std::uint8_t {
  Compute,
  SpeculativeCompute,
  /// Compute past FW on speculated inputs because a peer is overdue — the
  /// engine's graceful-degradation mode (spec/engine.hpp).
  DegradedCompute,
  Speculate,
  Check,
  Correct,
  Wait,
  Send,
  Other,
};

/// One-character lane symbol for each span kind.
char span_symbol(SpanKind kind) noexcept;
const char* span_name(SpanKind kind) noexcept;

struct Span {
  std::uint64_t lane;  // processor / rank
  SpanKind kind;
  SimTime begin;
  SimTime end;
  std::string label;
};

struct PointEvent {
  std::uint64_t lane;
  SimTime at;
  std::string label;
};

class Trace {
 public:
  void add_span(std::uint64_t lane, SpanKind kind, SimTime begin, SimTime end,
                std::string label = {});
  void add_event(std::uint64_t lane, SimTime at, std::string label);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  const std::vector<PointEvent>& events() const noexcept { return events_; }
  SimTime horizon() const noexcept { return horizon_; }

  /// Renders an ASCII Gantt chart with `columns` characters covering
  /// [0, horizon]; one row per lane, legend appended.
  std::string gantt(std::size_t lanes, std::size_t columns = 100) const;

  void clear();

 private:
  std::vector<Span> spans_;
  std::vector<PointEvent> events_;
  SimTime horizon_ = SimTime::zero();
};

}  // namespace specomp::des

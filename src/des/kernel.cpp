#include "des/kernel.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "des/process.hpp"
#include "support/contracts.hpp"

namespace specomp::des {

Kernel::Kernel() = default;
Kernel::~Kernel() = default;

void Kernel::schedule_at(SimTime at, std::function<void()> fn) {
  SPEC_EXPECTS(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Kernel::schedule_in(SimTime delay, std::function<void()> fn) {
  SPEC_EXPECTS(delay >= SimTime::zero());
  schedule_at(now_ + delay, std::move(fn));
}

Process* Kernel::spawn(std::string name, std::function<void(Process&)> fn,
                       SimTime start) {
  auto proc = std::make_unique<Process>(*this, std::move(name), std::move(fn),
                                        processes_.size());
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  schedule_at(start, [raw] { raw->resume_from_kernel(); });
  return raw;
}

KernelStats Kernel::run() { return run_impl(/*bounded=*/false, SimTime::zero()); }

KernelStats Kernel::run_until(SimTime limit) {
  return run_impl(/*bounded=*/true, limit);
}

KernelStats Kernel::run_impl(bool bounded, SimTime limit) {
  while (!queue_.empty()) {
    if (bounded && queue_.top().at > limit) {
      now_ = limit;
      break;
    }
    // priority_queue::top() is const; the event is moved out via a copy of
    // the function object after recording its metadata.
    Event ev = queue_.top();
    queue_.pop();
    SPEC_ASSERT(ev.at >= now_);
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (queue_.empty()) check_deadlock();
  return KernelStats{events_executed_, now_};
}

void Kernel::check_deadlock() const {
  std::ostringstream stuck;
  bool any = false;
  for (const auto& proc : processes_) {
    if (proc->state() == Process::State::Suspended) {
      stuck << (any ? ", " : "") << proc->name();
      any = true;
    }
  }
  if (any) {
    throw std::runtime_error(
        "simulation deadlock: event queue empty but processes suspended: " +
        stuck.str());
  }
}

}  // namespace specomp::des

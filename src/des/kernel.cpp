#include "des/kernel.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "des/process.hpp"
#include "support/contracts.hpp"

namespace specomp::des {

Kernel::Kernel() = default;
Kernel::~Kernel() = default;

std::uint32_t Kernel::acquire_slot(EventFn&& fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[slot] = std::move(fn);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(arena_.size());
  arena_.push_back(std::move(fn));
  return slot;
}

void Kernel::release_slot(std::uint32_t slot) noexcept {
  arena_[slot].reset();
  free_slots_.push_back(slot);
}

void Kernel::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!earlier(heap_[hole], heap_[parent])) break;
    std::swap(heap_[hole], heap_[parent]);
    hole = parent;
  }
  if (heap_.size() > queue_peak_) queue_peak_ = heap_.size();
}

void Kernel::sift_down(std::size_t hole) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * hole + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < n && earlier(heap_[right], heap_[left])) best = right;
    if (!earlier(heap_[best], heap_[hole])) break;
    std::swap(heap_[hole], heap_[best]);
    hole = best;
  }
}

Kernel::HeapEntry Kernel::heap_pop() noexcept {
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void Kernel::schedule_at(SimTime at, EventFn fn) {
  SPEC_EXPECTS(at >= now_);
  const std::uint32_t slot = acquire_slot(std::move(fn));
  heap_push(HeapEntry{at, next_seq_++, slot});
}

void Kernel::schedule_in(SimTime delay, EventFn fn) {
  SPEC_EXPECTS(delay >= SimTime::zero());
  schedule_at(now_ + delay, std::move(fn));
}

bool Kernel::try_fast_forward(SimTime at) noexcept {
  if (at < now_) return false;
  if (!heap_.empty() && !(at < heap_.front().at)) return false;
  if (bounded_run_ && run_limit_ < at) return false;
  // Equivalent to scheduling the resume event and immediately popping it:
  // the sequence number is consumed and the event counted so replay totals
  // and later same-time tie-breaks are identical to the queued path.
  ++next_seq_;
  ++events_executed_;
  now_ = at;
  return true;
}

Process* Kernel::spawn(std::string name, std::function<void(Process&)> fn,
                       SimTime start) {
  auto proc = std::make_unique<Process>(*this, std::move(name), std::move(fn),
                                        processes_.size());
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  schedule_at(start, [raw] { raw->resume_from_kernel(); });
  return raw;
}

KernelStats Kernel::run() { return run_impl(/*bounded=*/false, SimTime::zero()); }

KernelStats Kernel::run_until(SimTime limit) {
  return run_impl(/*bounded=*/true, limit);
}

KernelStats Kernel::run_impl(bool bounded, SimTime limit) {
  bounded_run_ = bounded;
  run_limit_ = limit;
  while (!heap_.empty()) {
    if (bounded && limit < heap_.front().at) {
      now_ = limit;
      break;
    }
    const HeapEntry top = heap_pop();
    SPEC_ASSERT(top.at >= now_);
    now_ = top.at;
    ++events_executed_;
    // Lift the callable out of its slot and retire the slot *before*
    // invoking: the event body may schedule new events that reuse it.
    EventFn fn = std::move(arena_[top.slot]);
    release_slot(top.slot);
    fn();
  }
  bounded_run_ = false;
  if (heap_.empty()) check_deadlock();
  return KernelStats{events_executed_, now_, queue_peak_};
}

void Kernel::check_deadlock() const {
  std::ostringstream stuck;
  bool any = false;
  for (const auto& proc : processes_) {
    if (proc->state() == Process::State::Suspended) {
      stuck << (any ? ", " : "") << proc->name();
      any = true;
    }
  }
  if (any) {
    throw std::runtime_error(
        "simulation deadlock: event queue empty but processes suspended: " +
        stuck.str());
  }
}

}  // namespace specomp::des

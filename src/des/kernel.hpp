// Deterministic discrete-event simulation kernel.
//
// The kernel owns a priority queue of timestamped events and a set of
// cooperative processes (see process.hpp).  Exactly one thread of control is
// active at any instant — either the kernel's event loop or a single process
// body — so a simulation run is a pure function of its inputs: identical
// configuration and seeds replay to identical traces.  Ties in event time are
// broken by insertion sequence, giving a total order.
//
// Storage layout (hot path).  Callables live in a recycled arena of EventFn
// slots (48-byte small-buffer storage, see event.hpp); the priority queue is
// an indexed binary heap whose entries carry the (time, seq) key inline, so
// heap sifts never touch the arena and comparisons stay two integer
// compares.  schedule_at / run steady state performs zero heap allocations
// and zero callable copies: slots are reused through a free list and events
// are *moved* out of their slot before execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "des/event.hpp"
#include "des/time.hpp"

namespace specomp::des {

class Process;

/// Statistics the kernel gathers about a completed run.
struct KernelStats {
  std::uint64_t events_executed = 0;
  SimTime end_time = SimTime::zero();
  /// High-water mark of the pending-event queue over the kernel's lifetime.
  std::uint64_t queue_peak = 0;
};

class Kernel {
 public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulated time.  Outside run() this is the time of the last
  /// executed event.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to execute at absolute time `at` (>= now()).  Accepts any
  /// void() callable, including move-only ones.
  void schedule_at(SimTime at, EventFn fn);
  /// Schedules `fn` to execute `delay` after now().
  void schedule_in(SimTime delay, EventFn fn);

  /// Creates a process whose body runs `fn`.  The process starts at time
  /// `start` (default: immediately at the current time).  The returned
  /// pointer remains owned by the kernel and is valid for its lifetime.
  // specomp-lint: allow(hot-path-callable): spawn runs once per process at setup, never on the per-event hot path
  Process* spawn(std::string name, std::function<void(Process&)> fn,
                 SimTime start = SimTime::zero());

  /// Runs until the event queue is empty.  Throws std::runtime_error if
  /// processes remain suspended with no pending events (deadlock).
  KernelStats run();

  /// Runs until simulated time reaches `limit` or the queue drains.
  KernelStats run_until(SimTime limit);

  const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return processes_;
  }

  std::uint64_t events_executed() const noexcept { return events_executed_; }
  std::uint64_t queue_peak() const noexcept { return queue_peak_; }

 private:
  friend class Process;

  /// Heap entry: full ordering key inline + arena slot of the callable.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;  // FIFO among equal times
  }

  /// Process::advance fast path: when no pending event precedes `at` (and a
  /// bounded run's limit is not crossed), the would-be resume event is
  /// executed inline — time, sequence and event count advance exactly as if
  /// it had been queued and popped, but the two kernel/process context
  /// switches are skipped.  Returns false when the caller must take the
  /// queued slow path to preserve ordering.
  bool try_fast_forward(SimTime at) noexcept;

  std::uint32_t acquire_slot(EventFn&& fn);
  void release_slot(std::uint32_t slot) noexcept;
  void heap_push(HeapEntry entry);
  HeapEntry heap_pop() noexcept;
  void sift_down(std::size_t hole) noexcept;

  KernelStats run_impl(bool bounded, SimTime limit);
  void check_deadlock() const;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t queue_peak_ = 0;
  bool bounded_run_ = false;   // valid only inside run_impl
  SimTime run_limit_ = SimTime::zero();
  std::vector<HeapEntry> heap_;
  std::vector<EventFn> arena_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace specomp::des

// Deterministic discrete-event simulation kernel.
//
// The kernel owns a priority queue of timestamped events and a set of
// cooperative processes (see process.hpp).  Exactly one thread of control is
// active at any instant — either the kernel's event loop or a single process
// body — so a simulation run is a pure function of its inputs: identical
// configuration and seeds replay to identical traces.  Ties in event time are
// broken by insertion sequence, giving a total order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace specomp::des {

class Process;

/// Statistics the kernel gathers about a completed run.
struct KernelStats {
  std::uint64_t events_executed = 0;
  SimTime end_time = SimTime::zero();
};

class Kernel {
 public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulated time.  Outside run() this is the time of the last
  /// executed event.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to execute at absolute time `at` (>= now()).
  void schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` to execute `delay` after now().
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Creates a process whose body runs `fn`.  The process starts at time
  /// `start` (default: immediately at the current time).  The returned
  /// pointer remains owned by the kernel and is valid for its lifetime.
  Process* spawn(std::string name, std::function<void(Process&)> fn,
                 SimTime start = SimTime::zero());

  /// Runs until the event queue is empty.  Throws std::runtime_error if
  /// processes remain suspended with no pending events (deadlock).
  KernelStats run();

  /// Runs until simulated time reaches `limit` or the queue drains.
  KernelStats run_until(SimTime limit);

  const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return processes_;
  }

 private:
  friend class Process;

  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO among equal times
    }
  };

  KernelStats run_impl(bool bounded, SimTime limit);
  void check_deadlock() const;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace specomp::des

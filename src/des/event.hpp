// Small-buffer-optimised event callable.
//
// The kernel executes millions of tiny closures per simulated run — process
// resumes capturing one pointer, message deliveries capturing a world pointer
// and a slot index.  std::function would heap-allocate some of them and, more
// importantly, its copy requirement forbids move-only captures and forces a
// copy when an event is lifted out of a priority_queue.  EventFn is the
// narrow replacement: move-only, invoked at most once per schedule, with a
// 48-byte inline buffer that fits every closure the runtime creates today.
// Larger or over-aligned callables fall back to a single heap allocation, so
// correctness never depends on the buffer size.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace specomp::des {

class EventFn {
 public:
  /// Inline storage: sized for "pointer + a few words" closures (the resume
  /// and message-delivery events), chosen so sizeof(EventFn) stays at one
  /// cache line together with the vtable-style operation pointers.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable sink
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      // specomp-lint: allow(naked-new): type-erased fallback slot; ownership is released by heap_ops::destroy below
      Fn* heap = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(buffer_)) Fn*(heap);
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buffer_, other.buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    /// Move-construct into dst from src, then destroy src.  Only used while
    /// the arena vector grows or an event is lifted out for execution.
    void (*relocate)(void* dst, void* src) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      // specomp-lint: allow(naked-new): destroy op of the type-erased heap fallback; pairs the constructor's allocation
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      }};

  alignas(kInlineAlign) std::byte buffer_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace specomp::des

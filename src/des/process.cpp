#include "des/process.hpp"

#include <utility>

#include "support/contracts.hpp"
#include "support/log.hpp"

namespace specomp::des {

namespace {

/// Private exception used to unwind a process body when its simulation is
/// torn down before the body returns.  Deliberately not derived from
/// std::exception so well-behaved `catch (const std::exception&)` handlers in
/// application code do not swallow it.
struct ProcessKilled {};

}  // namespace

Process::Process(Kernel& kernel, std::string name,
                 std::function<void(Process&)> body, std::uint64_t id)
    : kernel_(kernel), name_(std::move(name)), body_(std::move(body)), id_(id) {}

Process::~Process() {
  if (!thread_started_) return;
  if (state_ != State::Finished) {
    // Hand the body the token one final time with the kill flag set; its
    // next yield point throws ProcessKilled and unwinds.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      kill_requested_ = true;
      token_with_body_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return !token_with_body_; });
    }
  }
  if (thread_.joinable()) thread_.join();
}

void Process::advance(SimTime dt) {
  SPEC_EXPECTS(state_ == State::Running);
  SPEC_EXPECTS(dt >= SimTime::zero());
  // Fast path: if no pending event precedes our resume time, the kernel
  // advances the clock inline and we keep running — no resume event, no
  // round trip through the kernel thread.  Ordering is unchanged: the
  // skipped event would have been the very next one popped.
  if (kernel_.try_fast_forward(kernel_.now() + dt)) return;
  resume_scheduled_ = true;
  kernel_.schedule_in(dt, [this] {
    resume_scheduled_ = false;
    resume_from_kernel();
  });
  state_ = State::Waiting;
  yield_to_kernel();
  state_ = State::Running;
}

void Process::suspend() {
  SPEC_EXPECTS(state_ == State::Running);
  if (wake_pending_) {
    wake_pending_ = false;
    return;
  }
  state_ = State::Suspended;
  yield_to_kernel();
  state_ = State::Running;
}

void Process::yield_now() { advance(SimTime::zero()); }

void Process::wake() {
  switch (state_) {
    case State::Suspended:
      if (!resume_scheduled_) {
        resume_scheduled_ = true;
        kernel_.schedule_in(SimTime::zero(), [this] {
          resume_scheduled_ = false;
          resume_from_kernel();
        });
      }
      break;
    case State::Running:
      // A process cannot wake itself mid-run; remember the wake so the next
      // suspend() returns immediately (level-triggered semantics).
      [[fallthrough]];
    case State::Waiting:
    case State::NotStarted:
      wake_pending_ = true;
      break;
    case State::Finished:
      break;  // late wake after completion is harmless
  }
}

void Process::resume_from_kernel() {
  if (state_ == State::Finished) return;
  if (!thread_started_) {
    thread_started_ = true;
    thread_ = std::thread([this] { thread_main(); });
  }
  std::unique_lock<std::mutex> lock(mutex_);
  token_with_body_ = true;
  cv_.notify_all();
  cv_.wait(lock, [this] { return !token_with_body_; });
}

void Process::yield_to_kernel() {
  std::unique_lock<std::mutex> lock(mutex_);
  token_with_body_ = false;
  cv_.notify_all();
  cv_.wait(lock, [this] { return token_with_body_; });
  if (kill_requested_) throw ProcessKilled{};
}

void Process::thread_main() {
  {
    // Wait for the first token hand-off.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return token_with_body_; });
  }
  if (!kill_requested_) {
    state_ = State::Running;
    try {
      body_(*this);
    } catch (const ProcessKilled&) {
      // Torn down by ~Process; fall through to the hand-back below.
    } catch (...) {
      SPEC_LOG_ERROR << "process '" << name_
                     << "' terminated with an uncaught exception";
    }
  }
  state_ = State::Finished;
  std::lock_guard<std::mutex> lock(mutex_);
  token_with_body_ = false;
  cv_.notify_all();
}

}  // namespace specomp::des

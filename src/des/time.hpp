// Simulated time.
//
// A strong type around a double count of seconds.  Using a distinct type
// (rather than a bare double) keeps simulated durations from silently mixing
// with wall-clock quantities in the measurement layer.
#pragma once

#include <compare>

namespace specomp::des {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime seconds(double s) noexcept { return SimTime{s}; }
  static constexpr SimTime millis(double ms) noexcept { return SimTime{ms * 1e-3}; }
  static constexpr SimTime micros(double us) noexcept { return SimTime{us * 1e-6}; }
  static constexpr SimTime zero() noexcept { return SimTime{0.0}; }

  constexpr double to_seconds() const noexcept { return seconds_; }
  constexpr double to_millis() const noexcept { return seconds_ * 1e3; }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  constexpr SimTime& operator+=(SimTime o) noexcept {
    seconds_ += o.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    seconds_ -= o.seconds_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept { return a -= b; }
  friend constexpr SimTime operator*(SimTime a, double s) noexcept {
    return SimTime{a.seconds_ * s};
  }
  friend constexpr SimTime operator*(double s, SimTime a) noexcept { return a * s; }

 private:
  explicit constexpr SimTime(double s) noexcept : seconds_(s) {}
  double seconds_ = 0.0;
};

}  // namespace specomp::des

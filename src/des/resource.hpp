// FIFO-serialised facility.
//
// Models a resource that serves jobs one at a time in arrival order — the
// shared ethernet medium in this reproduction.  Callers ask for service of a
// given duration at the current simulated time and receive the completion
// time; the facility keeps utilisation and queueing statistics.
#pragma once

#include <cstdint>
#include <string>

#include "des/time.hpp"
#include "support/stats.hpp"

namespace specomp::des {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Enqueues a job arriving at `now` needing `service` time on the facility.
  /// Returns the time at which the job completes service.  Jobs are served
  /// in call order (FIFO), so callers must invoke this in nondecreasing
  /// simulated-time order — which the DES kernel guarantees.
  SimTime serve(SimTime now, SimTime service);

  /// Time at which the facility next becomes free.
  SimTime busy_until() const noexcept { return busy_until_; }

  std::uint64_t jobs_served() const noexcept { return jobs_; }
  /// Total time jobs spent waiting before service began.
  SimTime total_wait() const noexcept { return total_wait_; }
  /// Total time the facility spent serving.
  SimTime total_service() const noexcept { return total_service_; }
  /// Mean wait per job (zero when idle arrivals dominate).
  double mean_wait_seconds() const noexcept;
  /// Fraction of [0, horizon] the facility was busy.
  double utilisation(SimTime horizon) const noexcept;

  const support::OnlineStats& wait_stats() const noexcept { return wait_stats_; }

 private:
  std::string name_;
  SimTime busy_until_ = SimTime::zero();
  SimTime total_wait_ = SimTime::zero();
  SimTime total_service_ = SimTime::zero();
  std::uint64_t jobs_ = 0;
  support::OnlineStats wait_stats_;
};

}  // namespace specomp::des

#include "des/resource.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace specomp::des {

SimTime Resource::serve(SimTime now, SimTime service) {
  SPEC_EXPECTS(service >= SimTime::zero());
  const SimTime start = std::max(now, busy_until_);
  const SimTime wait = start - now;
  busy_until_ = start + service;
  total_wait_ += wait;
  total_service_ += service;
  wait_stats_.add(wait.to_seconds());
  ++jobs_;
  return busy_until_;
}

double Resource::mean_wait_seconds() const noexcept {
  if (jobs_ == 0) return 0.0;
  return total_wait_.to_seconds() / static_cast<double>(jobs_);
}

double Resource::utilisation(SimTime horizon) const noexcept {
  if (horizon <= SimTime::zero()) return 0.0;
  return std::min(1.0, total_service_.to_seconds() / horizon.to_seconds());
}

}  // namespace specomp::des

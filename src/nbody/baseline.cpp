#include "nbody/baseline.hpp"

#include "net/buffer_pool.hpp"
#include "net/serialization.hpp"
#include "nbody/forces.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody {

namespace {

constexpr int kTagBase = 1000;  // same base as the speculative engine

std::vector<double> pack_block(std::span<const Vec3> pos,
                               std::span<const Vec3> vel, std::size_t lo,
                               std::size_t count) {
  std::vector<double> block;
  block.reserve(count * kDoublesPerParticle);
  for (std::size_t i = lo; i < lo + count; ++i) {
    block.push_back(pos[i].x);
    block.push_back(pos[i].y);
    block.push_back(pos[i].z);
    block.push_back(vel[i].x);
    block.push_back(vel[i].y);
    block.push_back(vel[i].z);
  }
  return block;
}

void unpack_block(std::span<const double> block, std::span<Vec3> pos,
                  std::span<Vec3> vel, std::size_t lo, std::size_t count) {
  SPEC_EXPECTS(block.size() == count * kDoublesPerParticle);
  for (std::size_t i = 0; i < count; ++i) {
    const double* d = block.data() + i * kDoublesPerParticle;
    pos[lo + i] = {d[0], d[1], d[2]};
    vel[lo + i] = {d[3], d[4], d[5]};
  }
}

}  // namespace

void run_fig7_rank(runtime::Communicator& comm, const NBodyConfig& config,
                   const Partition& partition,
                   std::span<const Particle> initial, long iterations,
                   std::vector<Particle>& final_local) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  const int p = comm.size();
  SPEC_EXPECTS(partition.counts.size() == static_cast<std::size_t>(p));
  SPEC_EXPECTS(initial.size() == partition.total());
  SPEC_EXPECTS(iterations >= 1);

  const std::size_t n = initial.size();
  const std::size_t lo = partition.begin(rank);
  const std::size_t count = partition.counts[rank];

  std::vector<double> mass(n);
  std::vector<Vec3> pos(n);
  std::vector<Vec3> vel(n);
  for (std::size_t i = 0; i < n; ++i) {
    mass[i] = initial[i].mass;
    pos[i] = initial[i].pos;
    vel[i] = initial[i].vel;
  }
  std::vector<Vec3> acc(count);

  const auto local_pos = [&] { return std::span<Vec3>(pos).subspan(lo, count); };
  const auto local_vel = [&] { return std::span<Vec3>(vel).subspan(lo, count); };

  const double update_ops = kOpsPerIntegration * static_cast<double>(count);

  // Iteration 0: every rank holds the complete initial state — compute only.
  acc.assign(count, Vec3{});
  accumulate_accelerations(local_pos(), pos, mass, config.softening2, lo, acc);
  euler_step(local_pos(), local_vel(), acc, config.dt);
  comm.compute(kOpsPerPairForce * static_cast<double>(count) *
                       static_cast<double>(n - 1) +
                   update_ops,
               runtime::Phase::Compute);
  comm.timer().bump_iterations();

  for (long t = 1; t < iterations; ++t) {
    const int tag = kTagBase + static_cast<int>(t);

    // send X_j to all processors
    {
      const std::vector<double> block = pack_block(pos, vel, lo, count);
      for (int k = 0; k < p; ++k)
        if (k != comm.rank()) comm.send_doubles(k, tag, block);
    }

    // Own block's contribution overlaps with the messages in flight.
    acc.assign(count, Vec3{});
    accumulate_accelerations(local_pos(), local_pos(), {mass.data() + lo, count},
                             config.softening2, 0, acc);
    comm.compute(kOpsPerPairForce * static_cast<double>(count) *
                     static_cast<double>(count - 1),
                 runtime::Phase::Compute);

    // while num_recvd < p-1: receive a message, compute force due to X_k
    for (int received = 0; received + 1 < p; ++received) {
      net::Message msg = comm.recv_any(tag);
      net::ByteReader reader(msg.payload);
      // unpack_block consumes the doubles through a span, so read them in
      // place instead of copying into a temporary vector.
      const std::span<const double> block = reader.read_span<double>();
      const auto src = static_cast<std::size_t>(msg.src);
      const std::size_t src_lo = partition.begin(src);
      const std::size_t src_count = partition.counts[src];
      unpack_block(block, pos, vel, src_lo, src_count);
      net::BufferPool::local().release(std::move(msg.payload));
      accumulate_accelerations(
          local_pos(), {pos.data() + src_lo, src_count},
          {mass.data() + src_lo, src_count}, config.softening2,
          std::numeric_limits<std::size_t>::max(), acc);
      comm.compute(kOpsPerPairForce * static_cast<double>(count) *
                       static_cast<double>(src_count),
                   runtime::Phase::Compute);
    }

    // update velocity, position for all local particles
    euler_step(local_pos(), local_vel(), acc, config.dt);
    comm.compute(update_ops, runtime::Phase::Compute);
    comm.timer().bump_iterations();
  }

  final_local.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    final_local[i].mass = mass[lo + i];
    final_local[i].pos = pos[lo + i];
    final_local[i].vel = vel[lo + i];
  }
}

}  // namespace specomp::nbody

// Initial conditions for the N-body case study.
#pragma once

#include <vector>

#include "nbody/types.hpp"

namespace specomp::nbody {

/// Builds the configured initial particle set (deterministic in the seed).
std::vector<Particle> make_initial_conditions(const NBodyConfig& config);

/// Uniform positions in [-1,1]^3 with small isotropic random velocities.
std::vector<Particle> init_uniform_cube(std::size_t n, std::uint64_t seed);

/// Plummer sphere (scale radius 1) with isotropic velocities drawn to
/// approximate virial equilibrium — the standard stellar-dynamics test case.
std::vector<Particle> init_plummer(std::size_t n, std::uint64_t seed);

/// Cold rotating disk: particles on near-circular orbits in the x-y plane.
/// Velocities change slowly, which is the regime the paper identifies as
/// ideal for speculation ("variables generally follow a relatively slow
/// changing trend").
std::vector<Particle> init_rotating_disk(std::size_t n, std::uint64_t seed);

}  // namespace specomp::nbody

// O(N^2) gravitational force kernel (G = 1 units, Plummer softening).
//
// accumulate_accelerations (and everything built on it) executes on the
// force-kernel subsystem under nbody/kernels/: a KernelDispatch layer picks
// between the scalar reference kernel, a cache-blocked SoA tiled kernel and
// a thread-pooled variant (see kernels/dispatch.hpp; drivers expose it as
// --kernel=scalar|tiled|tiled-mt).  The pair_acceleration helper below stays
// the single source of truth for the pair force law.
#pragma once

#include <cmath>  // std::sqrt — do not rely on transitive includes
#include <span>
#include <vector>

#include "nbody/types.hpp"

namespace specomp::nbody {

/// Acceleration exerted on a body at `pos` by a source of mass `src_mass`
/// at `src_pos`:  a = m (r_s - r) / (|r_s - r|^2 + eps^2)^{3/2}.
inline Vec3 pair_acceleration(const Vec3& pos, const Vec3& src_pos,
                              double src_mass, double softening2) noexcept {
  const Vec3 d = src_pos - pos;
  const double dist2 = d.norm2() + softening2;
  const double inv = 1.0 / (dist2 * std::sqrt(dist2));
  return (src_mass * inv) * d;
}

/// Accumulates into `acc` the accelerations that the source block
/// (positions `src_pos`, masses `src_mass`) exerts on each target position.
/// Self-interaction is suppressed by the softened kernel only when targets
/// and sources are distinct ranges; when they overlap the caller passes
/// `skip_offset` = index offset of targets within sources so i == j pairs
/// are skipped (pass SIZE_MAX for disjoint ranges).
void accumulate_accelerations(std::span<const Vec3> target_pos,
                              std::span<const Vec3> src_pos,
                              std::span<const double> src_mass,
                              double softening2, std::size_t skip_offset,
                              std::span<Vec3> acc);

/// Full O(N^2) accelerations of every particle due to every other.
std::vector<Vec3> all_accelerations(std::span<const Particle> particles,
                                    double softening2);

/// Semi-implicit (symplectic) Euler step: velocities absorb the
/// acceleration first, then positions drift with the *new* velocity.  This
/// is the integrator the paper's speculation-error analysis implies: eq. 10
/// predicts r* = r + v_old dt, and the paper notes "this introduces a small
/// error since the resultant forces on the particle may have altered its
/// velocity" — i.e. the true update uses the kicked velocity, so the
/// speculation error per step is a dt^2 per particle.
void euler_step(std::span<Vec3> pos, std::span<Vec3> vel,
                std::span<const Vec3> acc, double dt);

/// Kick-drift-kick leapfrog (second order, symplectic) for the serial
/// reference integrator comparisons.
void leapfrog_step(std::span<Particle> particles, double softening2, double dt);

}  // namespace specomp::nbody

// N-body plugged into the speculation engine (paper, Section 5).
//
// NBodyApp provides the application half of the Figure-3 algorithm:
//   * blocks are (position, velocity) pairs of a rank's particles;
//   * compute_step is the O(N_i * N) force accumulation + time integration
//     (NBodyConfig::integrator picks the scheme from nbody/integrators/;
//     the default "leapfrog" is the paper's kick-drift update);
//   * the speculation error is the paper's eq. 11 ratio of position error to
//     distance-to-local-particles;
//   * correct_last_step is the paper's cheap correction: subtract the pair
//     forces computed from the speculated positions, add those from the
//     actual positions, and redo the (cheap) integration.
//
// KinematicSpeculator is the paper's eq. 10 speculation function:
// r*(t) = r(t-1) + v(t-1) dt, velocity held constant.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nbody/integrators/integrator.hpp"
#include "nbody/types.hpp"
#include "spec/app.hpp"
#include "spec/speculator.hpp"
#include "support/stats.hpp"

namespace specomp::nbody {

class KinematicSpeculator final : public spec::Speculator {
 public:
  explicit KinematicSpeculator(double dt) : dt_(dt) {}

  std::vector<double> predict(const spec::History& history,
                              int steps) const override;
  std::size_t backward_window() const noexcept override { return 1; }
  /// 12 ops per particle (paper) over 6 doubles per particle.
  double ops_per_variable() const noexcept override {
    return kOpsPerSpeculation / static_cast<double>(kDoublesPerParticle);
  }
  std::string_view name() const noexcept override { return "kinematic"; }

 private:
  double dt_;
};

class NBodyApp final : public spec::SyncIterativeApp {
 public:
  NBodyApp(const NBodyConfig& config, const Partition& partition,
           std::span<const Particle> initial, int rank);

  // ---- SyncIterativeApp ----
  std::vector<double> pack_local() const override;
  void install_peer(int peer, std::span<const double> block) override;
  void compute_step() override;
  double compute_ops() const override;
  double speculation_error(int peer, std::span<const double> speculated,
                           std::span<const double> actual) override;
  double check_ops(int peer) const override;
  bool correct_last_step(int peer, std::span<const double> actual) override;
  double correct_ops(int peer) const override;
  std::vector<double> save_state() const override;
  void restore_state(std::span<const double> state) override;

  // ---- Reproduction helpers ----

  /// Initial blocks for priming the engine (one per rank).
  static std::vector<std::vector<double>> initial_blocks(
      const Partition& partition, std::span<const Particle> initial);

  /// This rank's particles in their current state.
  std::vector<Particle> local_particles() const;

  /// When enabled, each *accepted* speculation additionally measures the
  /// true relative force error it caused on local particles (the paper's
  /// Table 3 "Max. error in force" — rejected speculations are recomputed,
  /// so only accepted ones contribute residual error).  Costs an extra
  /// O(N_i N_k) per check of wall time; charged zero virtual time.
  void enable_force_error_measurement(bool on) { measure_force_error_ = on; }
  /// Acceptance threshold used by the instrumentation above (the engine's
  /// θ); speculation errors above it are excluded from force-error stats.
  void set_accept_threshold(double theta) { accept_threshold_ = theta; }
  const support::OnlineStats& force_error_stats() const noexcept {
    return force_error_;
  }

  std::size_t local_count() const noexcept { return count_; }

  /// Force evaluations performed by the most recent compute_step (1 for
  /// leapfrog; 4 for rk4; 6 per attempted substep for rk45) — what
  /// compute_ops bills, so multi-stage integrators cost honest virtual time.
  std::size_t force_evals_last_step() const noexcept {
    return force_evals_last_step_;
  }

 private:
  class WindowForce;

  std::span<const Vec3> peer_positions(int peer) const;
  std::size_t peer_lo(int peer) const;
  std::size_t peer_count(int peer) const;

  NBodyConfig config_;
  Partition partition_;
  int rank_;
  std::size_t lo_ = 0;
  std::size_t count_ = 0;

  // specomp: rollback-covered(mass_): immutable after construction; .data()
  // handles only feed const spans into the force kernels
  std::vector<double> mass_;  // all N (fixed)
  std::vector<Vec3> pos_;     // all N: authoritative locally, view of peers
  std::vector<Vec3> vel_;
  // specomp: rollback-covered(acc_): rewritten in full by the integrator at
  // every compute_step before corrections read it; replay regenerates it
  std::vector<Vec3> acc_;            // last step's local accelerations
  // specomp: rollback-covered(prev_pos_): snapshot of pos_ taken at the top
  // of every compute_step before any read; replay regenerates it
  std::vector<Vec3> prev_pos_;       // local state before the last update
  // specomp: rollback-covered(prev_vel_): snapshot of vel_ taken at the top
  // of every compute_step before any read; replay regenerates it
  std::vector<Vec3> prev_vel_;

  std::unique_ptr<integrators::Integrator> integrator_;
  /// True for the kick-drift integrator, whose update is linear in the
  /// accelerations: only then is the paper's cheap two-pass correction
  /// exact, so other integrators recompute the step on rejection.
  bool linear_correction_ = true;
  // specomp: rollback-covered(force_evals_last_step_): overwritten by every
  // compute_step and read back only in the same step's compute_ops billing
  std::size_t force_evals_last_step_ = 1;

  bool measure_force_error_ = false;
  double accept_threshold_ = 1e300;  // default: measure every speculation
  support::OnlineStats force_error_;
};

}  // namespace specomp::nbody

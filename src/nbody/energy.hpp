// Conservation diagnostics for validating the simulation's physics.
#pragma once

#include <span>

#include "nbody/types.hpp"

namespace specomp::nbody {

struct Diagnostics {
  double kinetic = 0.0;
  double potential = 0.0;
  Vec3 momentum;
  Vec3 angular_momentum;

  double total_energy() const noexcept { return kinetic + potential; }
};

/// O(N^2) energy/momentum computation over the full particle set.
Diagnostics compute_diagnostics(std::span<const Particle> particles,
                                double softening2);

}  // namespace specomp::nbody

#include "nbody/app.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nbody/forces.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody {

namespace {

void unpack_into(std::span<const double> block, std::span<Vec3> pos,
                 std::span<Vec3> vel) {
  SPEC_EXPECTS(block.size() == pos.size() * kDoublesPerParticle);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double* d = block.data() + i * kDoublesPerParticle;
    pos[i] = {d[0], d[1], d[2]};
    vel[i] = {d[3], d[4], d[5]};
  }
}

}  // namespace

/// ForceModel over the app's state: installs candidate local positions
/// into the authoritative window of pos_ (peers stay as-installed), then
/// runs the dispatched force kernel exactly as the original compute_step
/// did.  When the candidate span *is* the window (the leapfrog path), no
/// copy happens and the call is bit-identical to the pre-integrator code.
class NBodyApp::WindowForce final : public integrators::ForceModel {
 public:
  explicit WindowForce(NBodyApp& app) : app_(app) {}

  void eval(std::span<const Vec3> local_pos, std::span<Vec3> acc) override {
    NBodyApp& a = app_;
    const std::span<Vec3> window(a.pos_.data() + a.lo_, a.count_);
    if (local_pos.data() != window.data())
      std::copy(local_pos.begin(), local_pos.end(), window.begin());
    std::fill(acc.begin(), acc.end(), Vec3{});
    accumulate_accelerations(window, a.pos_, a.mass_, a.config_.softening2,
                             a.lo_, acc);
  }

 private:
  NBodyApp& app_;
};

std::vector<double> KinematicSpeculator::predict(const spec::History& history,
                                                 int steps) const {
  SPEC_EXPECTS(!history.empty());
  SPEC_EXPECTS(steps >= 1);
  const auto& newest = history.back(0).block;
  SPEC_EXPECTS(newest.size() % kDoublesPerParticle == 0);
  std::vector<double> out(newest.size());
  const double horizon = dt_ * static_cast<double>(steps);
  for (std::size_t i = 0; i < newest.size(); i += kDoublesPerParticle) {
    // r* = r + v * (steps * dt); v* = v  (paper eq. 10 with constant
    // velocity held over the speculated horizon).
    out[i + 0] = newest[i + 0] + newest[i + 3] * horizon;
    out[i + 1] = newest[i + 1] + newest[i + 4] * horizon;
    out[i + 2] = newest[i + 2] + newest[i + 5] * horizon;
    out[i + 3] = newest[i + 3];
    out[i + 4] = newest[i + 4];
    out[i + 5] = newest[i + 5];
  }
  return out;
}

NBodyApp::NBodyApp(const NBodyConfig& config, const Partition& partition,
                   std::span<const Particle> initial, int rank)
    : config_(config),
      partition_(partition),
      rank_(rank),
      lo_(partition.begin(static_cast<std::size_t>(rank))),
      count_(partition.counts[static_cast<std::size_t>(rank)]) {
  const std::size_t n = initial.size();
  SPEC_EXPECTS(partition.total() == n);
  SPEC_EXPECTS(count_ > 0);
  mass_.resize(n);
  pos_.resize(n);
  vel_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    mass_[i] = initial[i].mass;
    pos_[i] = initial[i].pos;
    vel_[i] = initial[i].vel;
  }
  acc_.assign(count_, Vec3{});
  prev_pos_.assign(count_, Vec3{});
  prev_vel_.assign(count_, Vec3{});
  integrator_ = integrators::make_integrator(config.integrator);
  SPEC_EXPECTS(integrator_ != nullptr);  // drivers validate --integrator
  linear_correction_ = config.integrator == "leapfrog";
}

std::size_t NBodyApp::peer_lo(int peer) const {
  return partition_.begin(static_cast<std::size_t>(peer));
}

std::size_t NBodyApp::peer_count(int peer) const {
  return partition_.counts[static_cast<std::size_t>(peer)];
}

std::span<const Vec3> NBodyApp::peer_positions(int peer) const {
  return {pos_.data() + peer_lo(peer), peer_count(peer)};
}

std::vector<double> NBodyApp::pack_local() const {
  std::vector<double> block;
  block.reserve(count_ * kDoublesPerParticle);
  for (std::size_t i = lo_; i < lo_ + count_; ++i) {
    block.push_back(pos_[i].x);
    block.push_back(pos_[i].y);
    block.push_back(pos_[i].z);
    block.push_back(vel_[i].x);
    block.push_back(vel_[i].y);
    block.push_back(vel_[i].z);
  }
  return block;
}

void NBodyApp::install_peer(int peer, std::span<const double> block) {
  SPEC_EXPECTS(peer != rank_);
  unpack_into(block, {pos_.data() + peer_lo(peer), peer_count(peer)},
              {vel_.data() + peer_lo(peer), peer_count(peer)});
}

void NBodyApp::compute_step() {
  const std::span<Vec3> local_pos(pos_.data() + lo_, count_);
  const std::span<Vec3> local_vel(vel_.data() + lo_, count_);
  std::copy(local_pos.begin(), local_pos.end(), prev_pos_.begin());
  std::copy(local_vel.begin(), local_vel.end(), prev_vel_.begin());
  WindowForce force(*this);
  force_evals_last_step_ =
      integrator_->step(local_pos, local_vel, config_.dt, force, acc_);
}

double NBodyApp::compute_ops() const {
  const auto n = static_cast<double>(pos_.size());
  const auto n_i = static_cast<double>(count_);
  // Each integrator stage re-evaluates every local-remote (and local-local)
  // pair; the engine reads this right after compute_step, so the count
  // reflects the step just taken (rk45 bills rejected attempts too).
  const auto evals = static_cast<double>(force_evals_last_step_);
  return evals * kOpsPerPairForce * n_i * (n - 1.0) + kOpsPerIntegration * n_i;
}

double NBodyApp::speculation_error(int peer, std::span<const double> speculated,
                                   std::span<const double> actual) {
  const std::size_t n_k = peer_count(peer);
  SPEC_EXPECTS(speculated.size() == n_k * kDoublesPerParticle);
  SPEC_EXPECTS(actual.size() == n_k * kDoublesPerParticle);

  // Centroid of the local particles stands in for "the" local position in
  // the paper's per-pair ratio (eq. 11); using it keeps the check at the
  // paper's ~24 ops per remote particle instead of O(N_i) per particle.
  Vec3 centroid;
  for (std::size_t i = lo_; i < lo_ + count_; ++i) centroid += pos_[i];
  centroid *= 1.0 / static_cast<double>(count_);

  double worst = 0.0;
  for (std::size_t a = 0; a < n_k; ++a) {
    const double* sd = speculated.data() + a * kDoublesPerParticle;
    const double* ad = actual.data() + a * kDoublesPerParticle;
    const Vec3 spec_pos{sd[0], sd[1], sd[2]};
    const Vec3 act_pos{ad[0], ad[1], ad[2]};
    const double err = (spec_pos - act_pos).norm();
    const double dist =
        std::max((act_pos - centroid).norm(), std::sqrt(config_.softening2));
    worst = std::max(worst, err / dist);
  }

  if (measure_force_error_ && worst <= accept_threshold_) {
    // True relative force error on local particles due to the speculation —
    // pure instrumentation (paper Table 3), costs no virtual time.
    std::vector<Vec3> spec_p(n_k);
    std::vector<Vec3> act_p(n_k);
    std::vector<Vec3> spec_v(n_k);  // velocities unused in forces
    unpack_into(speculated, spec_p, spec_v);
    unpack_into(actual, act_p, spec_v);
    const std::span<const double> m(mass_.data() + peer_lo(peer), n_k);
    constexpr std::size_t kDisjoint = std::numeric_limits<std::size_t>::max();
    std::vector<Vec3> f_spec(count_);
    std::vector<Vec3> f_act(count_);
    accumulate_accelerations(prev_pos_, spec_p, m, config_.softening2,
                             kDisjoint, f_spec);
    accumulate_accelerations(prev_pos_, act_p, m, config_.softening2,
                             kDisjoint, f_act);
    for (std::size_t i = 0; i < count_; ++i) {
      // Relative to the particle's total resultant force (acc_ holds the
      // last step's accumulation), matching the paper's "error in force":
      // a block whose *net* pull is near zero would otherwise blow up a
      // per-block relative measure.
      const double denom = std::max(acc_[i].norm(), 1e-300);
      force_error_.add((f_spec[i] - f_act[i]).norm() / denom);
    }
  }
  return worst;
}

double NBodyApp::check_ops(int peer) const {
  return kOpsPerCheck * static_cast<double>(peer_count(peer));
}

bool NBodyApp::correct_last_step(int peer, std::span<const double> actual) {
  const std::size_t n_k = peer_count(peer);
  SPEC_EXPECTS(actual.size() == n_k * kDoublesPerParticle);

  if (!linear_correction_) {
    // Multi-stage integrators sample forces at intermediate positions that
    // already absorbed the speculated data, so the two-pass linear patch
    // below is not exact for them.  Install the actual peer state, rewind
    // the local block to its pre-step state and redo the step; correct_ops
    // reads the resulting force_evals_last_step_, billing the full
    // recompute (the honest price — see DESIGN.md §11).
    install_peer(peer, actual);
    std::copy(prev_pos_.begin(), prev_pos_.end(), pos_.begin() + lo_);
    std::copy(prev_vel_.begin(), prev_vel_.end(), vel_.begin() + lo_);
    compute_step();
    return true;
  }

  // The speculated positions are still installed in the view; diff their
  // contribution against the actual one on the pre-update local positions.
  std::vector<Vec3> act_p(n_k);
  std::vector<Vec3> act_v(n_k);
  unpack_into(actual, act_p, act_v);
  const std::span<const Vec3> spec_p = peer_positions(peer);
  const std::span<const double> m(mass_.data() + peer_lo(peer), n_k);

  constexpr std::size_t kDisjoint = std::numeric_limits<std::size_t>::max();
  std::vector<Vec3> f_act(count_);
  std::vector<Vec3> f_spec(count_);
  accumulate_accelerations(prev_pos_, act_p, m, config_.softening2, kDisjoint,
                           f_act);
  accumulate_accelerations(prev_pos_, spec_p, m, config_.softening2, kDisjoint,
                           f_spec);
  for (std::size_t i = 0; i < count_; ++i) acc_[i] += f_act[i] - f_spec[i];
  // Redo the cheap integration from the pre-update state with the corrected
  // accelerations (kick then drift, matching euler_step).
  for (std::size_t i = 0; i < count_; ++i) {
    vel_[lo_ + i] = prev_vel_[i] + config_.dt * acc_[i];
    pos_[lo_ + i] = prev_pos_[i] + config_.dt * vel_[lo_ + i];
  }
  // The view now holds the actual peer state.
  install_peer(peer, actual);
  return true;
}

double NBodyApp::correct_ops(int peer) const {
  if (!linear_correction_) {
    // Full step recompute (correct_last_step re-ran compute_step, and the
    // engine reads this immediately after it).
    return compute_ops();
  }
  const auto n_k = static_cast<double>(peer_count(peer));
  const auto n_i = static_cast<double>(count_);
  // Two force passes (subtract speculated, add actual) plus the re-update.
  return 2.0 * kOpsPerPairForce * n_k * n_i + kOpsPerIntegration * n_i;
}

std::vector<double> NBodyApp::save_state() const {
  std::vector<double> state;
  state.reserve(count_ * kDoublesPerParticle);
  for (std::size_t i = lo_; i < lo_ + count_; ++i) {
    state.push_back(pos_[i].x);
    state.push_back(pos_[i].y);
    state.push_back(pos_[i].z);
    state.push_back(vel_[i].x);
    state.push_back(vel_[i].y);
    state.push_back(vel_[i].z);
  }
  return state;
}

void NBodyApp::restore_state(std::span<const double> state) {
  unpack_into(state, {pos_.data() + lo_, count_}, {vel_.data() + lo_, count_});
}

std::vector<std::vector<double>> NBodyApp::initial_blocks(
    const Partition& partition, std::span<const Particle> initial) {
  std::vector<std::vector<double>> blocks(partition.counts.size());
  for (std::size_t r = 0; r < partition.counts.size(); ++r) {
    auto& block = blocks[r];
    block.reserve(partition.counts[r] * kDoublesPerParticle);
    for (std::size_t i = partition.begin(r); i < partition.end(r); ++i) {
      block.push_back(initial[i].pos.x);
      block.push_back(initial[i].pos.y);
      block.push_back(initial[i].pos.z);
      block.push_back(initial[i].vel.x);
      block.push_back(initial[i].vel.y);
      block.push_back(initial[i].vel.z);
    }
  }
  return blocks;
}

std::vector<Particle> NBodyApp::local_particles() const {
  std::vector<Particle> out(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out[i].mass = mass_[lo_ + i];
    out[i].pos = pos_[lo_ + i];
    out[i].vel = vel_[lo_ + i];
  }
  return out;
}

}  // namespace specomp::nbody

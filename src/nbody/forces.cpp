#include "nbody/forces.hpp"

#include "nbody/kernels/dispatch.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody {

void accumulate_accelerations(std::span<const Vec3> target_pos,
                              std::span<const Vec3> src_pos,
                              std::span<const double> src_mass,
                              double softening2, std::size_t skip_offset,
                              std::span<Vec3> acc) {
  kernels::accumulate(kernels::ForceKernel::Auto, target_pos, src_pos,
                      src_mass, softening2, skip_offset, acc);
}

std::vector<Vec3> all_accelerations(std::span<const Particle> particles,
                                    double softening2) {
  const std::size_t n = particles.size();
  std::vector<Vec3> pos(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }
  std::vector<Vec3> acc(n);
  accumulate_accelerations(pos, pos, mass, softening2, 0, acc);
  return acc;
}

void euler_step(std::span<Vec3> pos, std::span<Vec3> vel,
                std::span<const Vec3> acc, double dt) {
  SPEC_EXPECTS(pos.size() == vel.size());
  SPEC_EXPECTS(pos.size() == acc.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    vel[i] += dt * acc[i];       // kick first
    pos[i] += dt * vel[i];       // drift with the *new* velocity
  }
}

void leapfrog_step(std::span<Particle> particles, double softening2, double dt) {
  std::vector<Vec3> acc = all_accelerations(particles, softening2);
  for (std::size_t i = 0; i < particles.size(); ++i)
    particles[i].vel += (0.5 * dt) * acc[i];
  for (auto& p : particles) p.pos += dt * p.vel;
  acc = all_accelerations(particles, softening2);
  for (std::size_t i = 0; i < particles.size(); ++i)
    particles[i].vel += (0.5 * dt) * acc[i];
}

}  // namespace specomp::nbody

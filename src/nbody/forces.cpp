#include "nbody/forces.hpp"

#include <limits>

#include "support/contracts.hpp"

namespace specomp::nbody {

void accumulate_accelerations(std::span<const Vec3> target_pos,
                              std::span<const Vec3> src_pos,
                              std::span<const double> src_mass,
                              double softening2, std::size_t skip_offset,
                              std::span<Vec3> acc) {
  SPEC_EXPECTS(src_pos.size() == src_mass.size());
  SPEC_EXPECTS(acc.size() == target_pos.size());
  for (std::size_t i = 0; i < target_pos.size(); ++i) {
    Vec3 sum = acc[i];
    const std::size_t self = skip_offset == std::numeric_limits<std::size_t>::max()
                                 ? std::numeric_limits<std::size_t>::max()
                                 : skip_offset + i;
    for (std::size_t j = 0; j < src_pos.size(); ++j) {
      if (j == self) continue;
      sum += pair_acceleration(target_pos[i], src_pos[j], src_mass[j], softening2);
    }
    acc[i] = sum;
  }
}

std::vector<Vec3> all_accelerations(std::span<const Particle> particles,
                                    double softening2) {
  const std::size_t n = particles.size();
  std::vector<Vec3> pos(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }
  std::vector<Vec3> acc(n);
  accumulate_accelerations(pos, pos, mass, softening2, 0, acc);
  return acc;
}

void euler_step(std::span<Vec3> pos, std::span<Vec3> vel,
                std::span<const Vec3> acc, double dt) {
  SPEC_EXPECTS(pos.size() == vel.size());
  SPEC_EXPECTS(pos.size() == acc.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    vel[i] += dt * acc[i];       // kick first
    pos[i] += dt * vel[i];       // drift with the *new* velocity
  }
}

void leapfrog_step(std::span<Particle> particles, double softening2, double dt) {
  std::vector<Vec3> acc = all_accelerations(particles, softening2);
  for (std::size_t i = 0; i < particles.size(); ++i)
    particles[i].vel += (0.5 * dt) * acc[i];
  for (auto& p : particles) p.pos += dt * p.vel;
  acc = all_accelerations(particles, softening2);
  for (std::size_t i = 0; i < particles.size(); ++i)
    particles[i].vel += (0.5 * dt) * acc[i];
}

}  // namespace specomp::nbody

// The paper's Figure 7 algorithm: parallel N-body without speculation.
//
// Each iteration the rank broadcasts its particle block, then folds in peer
// contributions *in arrival order* (overlapping the remaining waits with the
// force work for blocks already delivered), computes its own block's
// contribution while the first messages are in flight, and finally updates
// position and velocity.  This is the measured no-speculation baseline of
// the paper's Figure 8 (its "window size 0").
#pragma once

#include <span>
#include <vector>

#include "nbody/types.hpp"
#include "runtime/communicator.hpp"

namespace specomp::nbody {

/// Runs the Figure-7 algorithm for `iterations` steps on this rank.
/// `initial` is the full initial particle set (the paper's "Distribute
/// particles to processors" hands every processor the complete state, which
/// also makes iteration 0 compute-only — the speculative variant uses the
/// same convention, keeping comparisons exact).  On return `final_local`
/// holds this rank's particles after the last step.
void run_fig7_rank(runtime::Communicator& comm, const NBodyConfig& config,
                   const Partition& partition,
                   std::span<const Particle> initial, long iterations,
                   std::vector<Particle>& final_local);

}  // namespace specomp::nbody

#include "nbody/energy.hpp"

#include <cmath>

namespace specomp::nbody {

Diagnostics compute_diagnostics(std::span<const Particle> particles,
                                double softening2) {
  Diagnostics diag;
  for (const auto& p : particles) {
    diag.kinetic += 0.5 * p.mass * p.vel.norm2();
    diag.momentum += p.mass * p.vel;
    diag.angular_momentum += p.mass * Vec3{p.pos.y * p.vel.z - p.pos.z * p.vel.y,
                                           p.pos.z * p.vel.x - p.pos.x * p.vel.z,
                                           p.pos.x * p.vel.y - p.pos.y * p.vel.x};
  }
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (std::size_t j = i + 1; j < particles.size(); ++j) {
      const double dist = std::sqrt(
          (particles[i].pos - particles[j].pos).norm2() + softening2);
      diag.potential -= particles[i].mass * particles[j].mass / dist;
    }
  }
  return diag;
}

}  // namespace specomp::nbody

#include "nbody/serial.hpp"

#include "nbody/forces.hpp"

namespace specomp::nbody {

void serial_step(std::vector<Particle>& particles, double softening2, double dt) {
  const std::vector<Vec3> acc = all_accelerations(particles, softening2);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].vel += dt * acc[i];
    particles[i].pos += dt * particles[i].vel;
  }
}

std::vector<Particle> run_serial(std::vector<Particle> particles,
                                 const NBodyConfig& config, long iterations) {
  for (long t = 0; t < iterations; ++t)
    serial_step(particles, config.softening2, config.dt);
  return particles;
}

}  // namespace specomp::nbody

#include "nbody/init.hpp"

#include <cmath>
#include <numbers>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::nbody {

namespace {

using support::Xoshiro256;

Vec3 random_unit_vector(Xoshiro256& rng) {
  // Uniform on the sphere via z / azimuth sampling.
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double s = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {s * std::cos(phi), s * std::sin(phi), z};
}

void zero_total_momentum(std::vector<Particle>& particles) {
  Vec3 momentum;
  double mass = 0.0;
  for (const auto& p : particles) {
    momentum += p.mass * p.vel;
    mass += p.mass;
  }
  const Vec3 drift = (1.0 / mass) * momentum;
  for (auto& p : particles) p.vel -= drift;
}

}  // namespace

std::vector<Particle> make_initial_conditions(const NBodyConfig& config) {
  switch (config.init) {
    case InitKind::UniformCube: return init_uniform_cube(config.n, config.seed);
    case InitKind::Plummer: return init_plummer(config.n, config.seed);
    case InitKind::RotatingDisk: return init_rotating_disk(config.n, config.seed);
  }
  SPEC_ASSERT(false);
  return {};
}

std::vector<Particle> init_uniform_cube(std::size_t n, std::uint64_t seed) {
  SPEC_EXPECTS(n > 0);
  Xoshiro256 rng(seed);
  std::vector<Particle> particles(n);
  const double mass = 1.0 / static_cast<double>(n);
  for (auto& p : particles) {
    p.mass = mass;
    p.pos = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    p.vel = rng.uniform(0.0, 0.1) * random_unit_vector(rng);
  }
  zero_total_momentum(particles);
  return particles;
}

std::vector<Particle> init_plummer(std::size_t n, std::uint64_t seed) {
  SPEC_EXPECTS(n > 0);
  Xoshiro256 rng(seed);
  std::vector<Particle> particles(n);
  const double mass = 1.0 / static_cast<double>(n);  // total mass 1, G = 1
  for (auto& p : particles) {
    p.mass = mass;
    // Radius from the Plummer cumulative mass profile (Aarseth et al. 1974),
    // truncated to avoid far outliers.
    double r = 0.0;
    for (;;) {
      const double x = rng.uniform(1e-6, 1.0);
      r = 1.0 / std::sqrt(std::pow(x, -2.0 / 3.0) - 1.0);
      if (r < 10.0) break;
    }
    p.pos = r * random_unit_vector(rng);
    // Velocity magnitude from the local escape speed scaled by a factor
    // drawn from the isotropic distribution q^2 (1-q^2)^{7/2} (von Neumann
    // rejection).
    const double v_escape = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    double q = 0.0;
    for (;;) {
      q = rng.uniform(0.0, 1.0);
      const double g = q * q * std::pow(1.0 - q * q, 3.5);
      if (rng.uniform(0.0, 0.1) < g) break;
    }
    p.vel = (q * v_escape) * random_unit_vector(rng);
  }
  zero_total_momentum(particles);
  return particles;
}

std::vector<Particle> init_rotating_disk(std::size_t n, std::uint64_t seed) {
  SPEC_EXPECTS(n > 0);
  Xoshiro256 rng(seed);
  std::vector<Particle> particles(n);
  const double mass = 1.0 / static_cast<double>(n);
  for (auto& p : particles) {
    p.mass = mass;
    // Exponential surface-density-ish radial profile, thin vertical extent.
    const double r = 0.3 + rng.exponential(0.7);
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    p.pos = {r * std::cos(phi), r * std::sin(phi), rng.normal(0.0, 0.02)};
    // Near-circular orbit around the collective mass interior to r; with
    // total mass 1 and most of it inside, v_c ~ sqrt(M(<r)/r) ~ sqrt(1/r)
    // is a serviceable cold start.
    const double v_circular = std::sqrt(1.0 / r);
    p.vel = {-v_circular * std::sin(phi), v_circular * std::cos(phi),
             rng.normal(0.0, 0.01)};
  }
  zero_total_momentum(particles);
  return particles;
}

}  // namespace specomp::nbody

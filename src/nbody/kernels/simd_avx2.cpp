// Explicit AVX2+FMA force kernel (4-lane __m256d, 8-wide target chunks).
//
// Compiled per-TU with -mavx2 -mfma (plus the kernel fast flags) — see
// src/nbody/CMakeLists.txt.  Never called unless KernelDispatch confirmed
// runtime support via support::cpu::features(), so the wide instructions
// here cannot fault on older hosts.
//
// Structure mirrors tiled.cpp: sources stream through L1-resident tiles of
// kSourceTile rows, targets sit in register-resident chunks (two 4-lane
// halves per 8-wide chunk, accumulators live across the whole tile sweep).
// Determinism (DESIGN.md §11): lane k always holds target i+k, every lane
// accumulates sources in ascending j order, tiles are visited in ascending
// order, and the instruction sequence is fixed — so results are
// bit-identical across runs and independent of everything but the input.
//
// r^{-3/2} uses the 12-bit _mm_rsqrt_ps estimate on the float-converted r2
// polished by three Newton iterations in double (error 2^-12 -> ~2^-24 ->
// ~2^-48 -> sub-ulp), replacing the scalar bit-trick seed + four
// iterations: one fewer polish step and a hardware seed, which is where
// this tier's speedup over the autovectorised `tiled` loop comes from.
//
// Self-pair suppression is branch-free: rows inside the (clamped) self
// window compare the broadcast "self lane index" against each half's
// absolute target indices and zero the force of the matching lane with an
// andnot; all other rows take the same code path with an all-zero mask.
// Tail chunks (n_t % 8) use maskload/maskstore, so no scalar remainder
// loop exists and lane order never changes.
#include "nbody/kernels/simd_impl.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace specomp::nbody::kernels {

namespace {

/// One Newton–Raphson reciprocal-sqrt refinement: y <- y (1.5 - h y^2).
inline __m256d nr_step(__m256d y, __m256d h) noexcept {
  const __m256d t =
      _mm256_fnmadd_pd(_mm256_mul_pd(h, y), y, _mm256_set1_pd(1.5));
  return _mm256_mul_pd(y, t);
}

/// r2^{-3/2}: hardware float rsqrt seed (~2^-12), three double NR steps.
inline __m256d inv_r3(__m256d r2) noexcept {
  __m256d y = _mm256_cvtps_pd(_mm_rsqrt_ps(_mm256_cvtpd_ps(r2)));
  const __m256d h = _mm256_mul_pd(_mm256_set1_pd(0.5), r2);
  y = nr_step(y, h);
  y = nr_step(y, h);
  y = nr_step(y, h);
  return _mm256_mul_pd(_mm256_mul_pd(y, y), y);
}

/// Adds source row (xj,yj,zj,mj) into one 4-lane accumulator half.
/// `kill` lanes (all-ones) contribute nothing — the self-pair mask.
inline void row_half(__m256d xj, __m256d yj, __m256d zj, __m256d mj,
                     __m256d tx, __m256d ty, __m256d tz, __m256d soft2,
                     __m256d kill, __m256d& lx, __m256d& ly,
                     __m256d& lz) noexcept {
  const __m256d dx = _mm256_sub_pd(xj, tx);
  const __m256d dy = _mm256_sub_pd(yj, ty);
  const __m256d dz = _mm256_sub_pd(zj, tz);
  __m256d r2 = _mm256_fmadd_pd(dx, dx, soft2);
  r2 = _mm256_fmadd_pd(dy, dy, r2);
  r2 = _mm256_fmadd_pd(dz, dz, r2);
  __m256d f = _mm256_mul_pd(mj, inv_r3(r2));
  f = _mm256_andnot_pd(kill, f);
  lx = _mm256_fmadd_pd(f, dx, lx);
  ly = _mm256_fmadd_pd(f, dy, ly);
  lz = _mm256_fmadd_pd(f, dz, lz);
}

constexpr std::size_t kChunk = 8;  // two 4-lane halves

/// Lane masks (int64 all-ones per active lane) for a tail of `rem` targets.
inline __m256i tail_mask(std::size_t rem, std::size_t half) noexcept {
  alignas(32) std::int64_t lanes[4];
  for (std::size_t k = 0; k < 4; ++k)
    lanes[k] = (half * 4 + k) < rem ? -1 : 0;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

/// One target chunk (lanes = absolute target indices [i, i+8), the last
/// `8 - active` of them dead) against source rows [tile_begin, tile_end).
/// The self window [self_begin, self_end) has been clamped into the tile by
/// the caller; `skip_offset` identifies which lane each such row kills.
void chunk_accumulate(const SoaView& t, const SoaView& s, std::size_t i,
                      std::size_t active, std::size_t tile_begin,
                      std::size_t tile_end, std::size_t self_begin,
                      std::size_t self_end, std::size_t skip_offset,
                      double soft2, double* ax, double* ay, double* az) {
  const bool full = active == kChunk;
  const __m256i m0 = full ? _mm256_set1_epi64x(-1) : tail_mask(active, 0);
  const __m256i m1 = full ? _mm256_set1_epi64x(-1) : tail_mask(active, 1);

  // Dead lanes load 0.0 via maskload: forces computed for them are finite
  // garbage (r2 >= soft2 > 0) and never stored back.
  const __m256d tx0 = _mm256_maskload_pd(t.x + i, m0);
  const __m256d ty0 = _mm256_maskload_pd(t.y + i, m0);
  const __m256d tz0 = _mm256_maskload_pd(t.z + i, m0);
  const __m256d tx1 = _mm256_maskload_pd(t.x + i + 4, m1);
  const __m256d ty1 = _mm256_maskload_pd(t.y + i + 4, m1);
  const __m256d tz1 = _mm256_maskload_pd(t.z + i + 4, m1);

  const __m256d soft2v = _mm256_set1_pd(soft2);
  const __m256d none = _mm256_setzero_pd();
  __m256d lx0 = none, ly0 = none, lz0 = none;
  __m256d lx1 = none, ly1 = none, lz1 = none;

  const auto idx = [i](std::int64_t base) {
    return _mm256_set_epi64x(static_cast<std::int64_t>(i) + base + 3,
                             static_cast<std::int64_t>(i) + base + 2,
                             static_cast<std::int64_t>(i) + base + 1,
                             static_cast<std::int64_t>(i) + base);
  };
  const __m256i idx0 = idx(0);
  const __m256i idx1 = idx(4);

  const auto sweep = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const __m256d xj = _mm256_set1_pd(s.x[j]);
      const __m256d yj = _mm256_set1_pd(s.y[j]);
      const __m256d zj = _mm256_set1_pd(s.z[j]);
      const __m256d mj = _mm256_set1_pd(s.m[j]);
      row_half(xj, yj, zj, mj, tx0, ty0, tz0, soft2v, none, lx0, ly0, lz0);
      row_half(xj, yj, zj, mj, tx1, ty1, tz1, soft2v, none, lx1, ly1, lz1);
    }
  };

  sweep(tile_begin, self_begin);
  for (std::size_t j = self_begin; j < self_end; ++j) {
    // Row j is the self pair of target lane (j - skip_offset): zero exactly
    // that lane's force.  At most kChunk rows per chunk take this path.
    const __m256i self =
        _mm256_set1_epi64x(static_cast<std::int64_t>(j - skip_offset));
    const __m256d kill0 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(idx0, self));
    const __m256d kill1 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(idx1, self));
    const __m256d xj = _mm256_set1_pd(s.x[j]);
    const __m256d yj = _mm256_set1_pd(s.y[j]);
    const __m256d zj = _mm256_set1_pd(s.z[j]);
    const __m256d mj = _mm256_set1_pd(s.m[j]);
    row_half(xj, yj, zj, mj, tx0, ty0, tz0, soft2v, kill0, lx0, ly0, lz0);
    row_half(xj, yj, zj, mj, tx1, ty1, tz1, soft2v, kill1, lx1, ly1, lz1);
  }
  sweep(self_end, tile_end);

  const auto add_out = [](double* out, __m256i mask, __m256d delta) {
    const __m256d prev = _mm256_maskload_pd(out, mask);
    _mm256_maskstore_pd(out, mask, _mm256_add_pd(prev, delta));
  };
  add_out(ax + i, m0, lx0);
  add_out(ay + i, m0, ly0);
  add_out(az + i, m0, lz0);
  add_out(ax + i + 4, m1, lx1);
  add_out(ay + i + 4, m1, ly1);
  add_out(az + i + 4, m1, lz1);
}

}  // namespace

void avx2_accumulate(const SoaView& t, const SoaView& s, double softening2,
                     std::size_t skip_offset, double* ax, double* ay,
                     double* az) {
  for (std::size_t tile_begin = 0; tile_begin < s.n;
       tile_begin += kSourceTile) {
    const std::size_t tile_end = std::min(s.n, tile_begin + kSourceTile);
    for (std::size_t i = 0; i < t.n; i += kChunk) {
      const std::size_t active = std::min(kChunk, t.n - i);
      std::size_t self_begin = tile_end;
      std::size_t self_end = tile_end;
      if (skip_offset != std::numeric_limits<std::size_t>::max()) {
        const std::size_t first = skip_offset + i;
        self_begin = std::clamp(first, tile_begin, tile_end);
        self_end = std::clamp(first + active, tile_begin, tile_end);
      }
      chunk_accumulate(t, s, i, active, tile_begin, tile_end, self_begin,
                       self_end, skip_offset, softening2, ax, ay, az);
    }
  }
}

}  // namespace specomp::nbody::kernels

#endif  // __AVX2__ && __FMA__

// Cache-blocked, branch-free SoA force kernel.
//
// Compiled with the kernel fast-flags (-O3 -fno-math-errno and, when
// available, -march=native — see src/nbody/CMakeLists.txt): the inner sweep
// is written so the compiler vectorises the kTargetChunk-wide loop, with
// accumulators held in registers across the whole source sweep of a tile.
#include "nbody/kernels/kernel.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>

namespace specomp::nbody::kernels {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define SPEC_KERNEL_RESTRICT __restrict__
#else
#define SPEC_KERNEL_RESTRICT
#endif

/// Branch-free r2^{-3/2}: bit-trick reciprocal-sqrt seed (~3.4% error)
/// polished by four Newton–Raphson steps to ~2 ulp, then cubed.  Unlike
/// 1/(r2*sqrt(r2)) this is pure mul/add, so it pipelines and vectorises on
/// any target without IEEE divide/sqrt throughput limits.  Relative error
/// vs the scalar oracle's expression is ~1e-15, far inside the kernels'
/// 1e-10 equivalence budget.
inline double inv_r3(double r2) noexcept {
  double y = std::bit_cast<double>(0x5FE6EB50C7B537A9ULL -
                                   (std::bit_cast<std::uint64_t>(r2) >> 1));
  const double h = 0.5 * r2;
  y = y * (1.5 - h * y * y);
  y = y * (1.5 - h * y * y);
  y = y * (1.5 - h * y * y);
  y = y * (1.5 - h * y * y);
  return y * y * y;
}

/// One register-blocked chunk of W targets against source rows
/// [tile_begin, tile_end).  The self-interaction window [self_begin,
/// self_end) — already clamped into the tile by the caller — is walked with
/// a per-pair skip test; the sweeps on either side carry no branch at all.
/// Per target, rows are visited in ascending j order, so the accumulation
/// order is fixed and independent of threading.
template <std::size_t W>
void chunk_accumulate(const double* SPEC_KERNEL_RESTRICT tx,
                      const double* SPEC_KERNEL_RESTRICT ty,
                      const double* SPEC_KERNEL_RESTRICT tz,
                      const SoaView& s, std::size_t tile_begin,
                      std::size_t tile_end, std::size_t self_begin,
                      std::size_t self_end, std::size_t first_self_row,
                      double soft2, double* SPEC_KERNEL_RESTRICT ax,
                      double* SPEC_KERNEL_RESTRICT ay,
                      double* SPEC_KERNEL_RESTRICT az) {
  double lx[W];
  double ly[W];
  double lz[W];
  for (std::size_t k = 0; k < W; ++k) lx[k] = ly[k] = lz[k] = 0.0;

  const double* SPEC_KERNEL_RESTRICT sx = s.x;
  const double* SPEC_KERNEL_RESTRICT sy = s.y;
  const double* SPEC_KERNEL_RESTRICT sz = s.z;
  const double* SPEC_KERNEL_RESTRICT sm = s.m;

  auto sweep = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const double xj = sx[j];
      const double yj = sy[j];
      const double zj = sz[j];
      const double mj = sm[j];
      for (std::size_t k = 0; k < W; ++k) {
        const double dx = xj - tx[k];
        const double dy = yj - ty[k];
        const double dz = zj - tz[k];
        const double r2 = dx * dx + dy * dy + dz * dz + soft2;
        const double f = mj * inv_r3(r2);
        lx[k] += f * dx;
        ly[k] += f * dy;
        lz[k] += f * dz;
      }
    }
  };

  sweep(tile_begin, self_begin);
  for (std::size_t j = self_begin; j < self_end; ++j) {
    // Edge strip: at most W rows per chunk contain a self-pair.
    const double xj = sx[j];
    const double yj = sy[j];
    const double zj = sz[j];
    const double mj = sm[j];
    for (std::size_t k = 0; k < W; ++k) {
      if (j == first_self_row + k) continue;
      const double dx = xj - tx[k];
      const double dy = yj - ty[k];
      const double dz = zj - tz[k];
      const double r2 = dx * dx + dy * dy + dz * dz + soft2;
      const double f = mj * inv_r3(r2);
      lx[k] += f * dx;
      ly[k] += f * dy;
      lz[k] += f * dz;
    }
  }
  sweep(self_end, tile_end);

  for (std::size_t k = 0; k < W; ++k) {
    ax[k] += lx[k];
    ay[k] += ly[k];
    az[k] += lz[k];
  }
}

template <std::size_t W>
void chunk_at(const SoaView& t, const SoaView& s, std::size_t tile_begin,
              std::size_t tile_end, std::size_t i, std::size_t skip_offset,
              double soft2, double* ax, double* ay, double* az) {
  std::size_t self_begin = tile_end;
  std::size_t self_end = tile_end;
  std::size_t first_self_row = std::numeric_limits<std::size_t>::max();
  if (skip_offset != std::numeric_limits<std::size_t>::max()) {
    first_self_row = skip_offset + i;
    self_begin = std::clamp(first_self_row, tile_begin, tile_end);
    self_end = std::clamp(first_self_row + W, tile_begin, tile_end);
  }
  chunk_accumulate<W>(t.x + i, t.y + i, t.z + i, s, tile_begin, tile_end,
                      self_begin, self_end, first_self_row, soft2, ax + i,
                      ay + i, az + i);
}

}  // namespace

void tiled_accumulate_range(const SoaView& t, const SoaView& s, double soft2,
                            std::size_t skip_offset, std::size_t i_begin,
                            std::size_t i_end, double* ax, double* ay,
                            double* az) {
  const obs::HistogramRef& timer = tile_timer();
  // specomp-lint: allow(wall-clock): telemetry-only tile timing; never feeds results or virtual time, and is off unless metrics are enabled
  using WallClock = std::chrono::steady_clock;
  for (std::size_t tile_begin = 0; tile_begin < s.n;
       tile_begin += kSourceTile) {
    const std::size_t tile_end = std::min(s.n, tile_begin + kSourceTile);
    const auto started =
        timer.live() ? WallClock::now() : WallClock::time_point{};
    std::size_t i = i_begin;
    for (; i + kTargetChunk <= i_end; i += kTargetChunk)
      chunk_at<kTargetChunk>(t, s, tile_begin, tile_end, i, skip_offset, soft2,
                             ax, ay, az);
    for (; i < i_end; ++i)
      chunk_at<1>(t, s, tile_begin, tile_end, i, skip_offset, soft2, ax, ay,
                  az);
    if (timer.live()) {
      timer.observe(
          std::chrono::duration<double>(WallClock::now() - started).count());
    }
  }
}

void tiled_accumulate(const SoaView& t, const SoaView& s, double soft2,
                      std::size_t skip_offset, double* ax, double* ay,
                      double* az) {
  tiled_accumulate_range(t, s, soft2, skip_offset, 0, t.n, ax, ay, az);
}

}  // namespace specomp::nbody::kernels

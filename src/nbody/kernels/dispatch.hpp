// KernelDispatch: routes every force accumulation to a kernel variant.
//
// Call sites (forces.cpp, NBodyApp, the Fig. 7 baseline) pass Auto and get
// the process default, settable from the command line via --kernel=
// scalar|tiled|tiled-mt|tree (drivers call set_default_force_kernel).  When
// the default itself is Auto, a per-call heuristic picks:
//   * scalar for tiny blocks (SoA conversion would dominate),
//   * tree (Barnes-Hut, kernels/bh_tree.hpp) once the source block is large
//     enough that O(N^2) stops being viable — note this tier is
//     *approximate* (bounded by the θ error model; see bh_tree.hpp), the
//     price of reaching N in 10^5..10^6,
//   * tiled-mt for large target counts when the shared pool has workers,
//   * tiled otherwise.
// The heuristic depends only on block sizes and pool configuration — never
// on data or timing — so kernel selection is deterministic for a given
// process configuration.  Runs that need exact forces at any size pin
// --kernel=tiled (or tiled-mt).
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "nbody/types.hpp"

namespace specomp::support {
class ThreadPool;
}

namespace specomp::nbody::kernels {

enum class ForceKernel { Auto, Scalar, Tiled, TiledMT, Tree };

/// "auto" | "scalar" | "tiled" | "tiled-mt" | "tree" (nullopt otherwise).
std::optional<ForceKernel> parse_force_kernel(std::string_view name) noexcept;
std::string_view force_kernel_name(ForceKernel kind) noexcept;

/// Barnes-Hut opening angle θ used when the Tree kernel runs (CLI
/// --bh-theta; default 0.5).  Process-wide, like the kernel default — the
/// tree kernel's accuracy/speed knob.
void set_bh_opening_angle(double theta) noexcept;
double bh_opening_angle() noexcept;

/// Process-wide default applied when call sites pass Auto (CLI --kernel).
void set_default_force_kernel(ForceKernel kind) noexcept;
ForceKernel default_force_kernel() noexcept;

/// Resolves Auto (via the default, then the size heuristic) to a concrete
/// kernel for a (targets x sources) problem.
ForceKernel resolve_force_kernel(ForceKernel kind, std::size_t targets,
                                 std::size_t sources);

/// Same contract as nbody::accumulate_accelerations, executed by the
/// resolved kernel.  AoS<->SoA staging uses thread-local scratch, so
/// concurrent calls from ThreadCommunicator ranks are safe.
void accumulate(ForceKernel kind, std::span<const Vec3> target_pos,
                std::span<const Vec3> src_pos, std::span<const double> src_mass,
                double softening2, std::size_t skip_offset,
                std::span<Vec3> acc);

/// The shared pool with its metrics observer installed (queue depth gauge,
/// chunk/job counters).  tiled-mt dispatches run on this pool.
support::ThreadPool& kernel_pool();

}  // namespace specomp::nbody::kernels

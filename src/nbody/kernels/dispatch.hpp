// KernelDispatch: routes every force accumulation to a kernel variant.
//
// Call sites (forces.cpp, NBodyApp, the Fig. 7 baseline) pass Auto and get
// the process default, settable from the command line via --kernel=
// scalar|tiled|tiled-mt|simd-avx2|simd-avx512|tree (drivers call
// set_default_force_kernel).  When the default itself is Auto, a per-call
// heuristic picks:
//   * scalar for tiny blocks (SoA conversion would dominate),
//   * tree (Barnes-Hut, kernels/bh_tree.hpp) once the source block is large
//     enough that O(N^2) stops being viable — note this tier is
//     *approximate* (bounded by the θ error model; see bh_tree.hpp), the
//     price of reaching N in 10^5..10^6,
//   * tiled-mt for large target counts when the shared pool has workers,
//   * otherwise the widest *usable* explicit-SIMD tier (simd.hpp: compiled
//     in AND supported by this CPU per support::cpu::features()), falling
//     back to tiled when none is.
// The heuristic depends only on block sizes, pool configuration and the
// (fixed per process) CPU feature set — never on data or timing — so kernel
// selection is deterministic for a given process configuration.  Forcing
// a simd tier the host cannot execute falls back to the widest usable one,
// then tiled; Auto therefore never selects an unsupported tier.  Runs that
// need exact forces at any size pin --kernel=tiled (or tiled-mt).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "nbody/types.hpp"

namespace specomp::support {
class ThreadPool;
}

namespace specomp::nbody::kernels {

enum class ForceKernel {
  Auto,
  Scalar,
  Tiled,
  TiledMT,
  SimdAvx2,
  SimdAvx512,
  Tree,
};

/// Auto-selection boundaries (resolve_force_kernel; exported so tests pin
/// the escalation thresholds exactly).
/// Below this many pair interactions the AoS->SoA staging is not worth it.
inline constexpr std::size_t kScalarPairCutoff = 4096;
/// tiled-mt needs enough target chunks to shard meaningfully.
inline constexpr std::size_t kMinTargetsForMT = 32;
/// Auto escalates to Barnes-Hut at this many sources: far above every
/// exact-path test and bench (so pre-existing runs keep bit-identical
/// results), well below the 10^5..10^6 regime where O(N^2) stops being
/// viable.  Any target count qualifies — the tree build is charged once per
/// call and even a thin target slice amortises it at this N.
inline constexpr std::size_t kTreeSourceCutoff = 32768;

/// "auto" | "scalar" | "tiled" | "tiled-mt" | "simd-avx2" | "simd-avx512" |
/// "tree" (nullopt otherwise).
std::optional<ForceKernel> parse_force_kernel(std::string_view name) noexcept;
std::string_view force_kernel_name(ForceKernel kind) noexcept;

/// Every valid --kernel value, "|"-separated, for driver error messages.
std::string_view force_kernel_names() noexcept;

/// Driver-facing parse: unknown names yield nullopt and fill `error` with a
/// message listing the valid tiers (drivers fail fast on it rather than
/// silently falling back).
std::optional<ForceKernel> parse_force_kernel_cli(std::string_view name,
                                                 std::string& error);

/// --bh-theta only influences the Barnes-Hut tier, so drivers reject it
/// when a non-tree kernel is forced.  Auto qualifies: it may escalate to
/// tree at kTreeSourceCutoff.
bool kernel_uses_bh_theta(ForceKernel kind) noexcept;

/// Barnes-Hut opening angle θ used when the Tree kernel runs (CLI
/// --bh-theta; default 0.5).  Process-wide, like the kernel default — the
/// tree kernel's accuracy/speed knob.
void set_bh_opening_angle(double theta) noexcept;
double bh_opening_angle() noexcept;

/// Process-wide default applied when call sites pass Auto (CLI --kernel).
void set_default_force_kernel(ForceKernel kind) noexcept;
ForceKernel default_force_kernel() noexcept;

/// Resolves Auto (via the default, then the size heuristic) to a concrete
/// kernel for a (targets x sources) problem, and any forced-but-unusable
/// simd tier to the widest usable fallback.
ForceKernel resolve_force_kernel(ForceKernel kind, std::size_t targets,
                                 std::size_t sources);

/// Same, with the worker count the tiled-mt heuristic consults made
/// explicit (the 3-argument overload passes kernel_pool().worker_count());
/// lets tests pin the Auto boundaries on any host.
ForceKernel resolve_force_kernel(ForceKernel kind, std::size_t targets,
                                 std::size_t sources, unsigned pool_workers);

/// Same contract as nbody::accumulate_accelerations, executed by the
/// resolved kernel.  AoS<->SoA staging uses thread-local scratch, so
/// concurrent calls from ThreadCommunicator ranks are safe.
void accumulate(ForceKernel kind, std::span<const Vec3> target_pos,
                std::span<const Vec3> src_pos, std::span<const double> src_mass,
                double softening2, std::size_t skip_offset,
                std::span<Vec3> acc);

/// The shared pool with its metrics observer installed (queue depth gauge,
/// chunk/job counters).  tiled-mt dispatches run on this pool.
support::ThreadPool& kernel_pool();

}  // namespace specomp::nbody::kernels

// Force-kernel implementations behind the dispatch layer.
//
// The exact kernels share one contract — "add to acc the accelerations the
// source block exerts on each target, skipping self-pairs per skip_offset"
// (the approximate Barnes-Hut kernel lives in bh_tree.hpp with the same
// contract plus an opening-angle parameter):
//
//   * scalar     — the pre-dispatch AoS double loop, unchanged.  It is the
//                  oracle: the tiled kernels are validated against it to a
//                  1e-10 max-abs bound (the only deviation is summation
//                  grouping across source tiles and a ~1e-15-relative
//                  Newton-iterated r^{-3/2}).
//   * tiled      — structure-of-arrays, cache-blocked, branch-free.  Targets
//                  are processed in register-resident micro-chunks of
//                  kTargetChunk, sources in L1-resident tiles of
//                  kSourceTile.  The self-interaction window implied by
//                  skip_offset is edge-cased into a separate strip of rows
//                  so the bulk sweep carries no per-pair branch and
//                  auto-vectorises.
//   * tiled-mt   — the same kernel with target chunks sharded across a
//                  support::ThreadPool.  Shard boundaries are chunk-aligned
//                  and every target's source sweep stays in ascending index
//                  order inside a single task, so the result is
//                  bit-identical to single-threaded tiled regardless of
//                  pool size or scheduling.
//
// Virtual-time accounting is deliberately untouched: Cluster/compute() bill
// analytic op counts (kOpsPerPairForce etc.), so SimCommunicator results do
// not depend on which kernel produced the numbers — only wall-clock does.
#pragma once

#include <cstddef>
#include <span>

#include "nbody/types.hpp"
#include "obs/metrics.hpp"

namespace specomp::support {
class ThreadPool;
}

namespace specomp::nbody::kernels {

/// Contiguous structure-of-arrays view of one particle block.
struct SoaView {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  const double* m = nullptr;  // may be null for target blocks (masses unused)
  std::size_t n = 0;
};

/// Register micro-tile: targets processed per inner sweep.  Accumulators for
/// one chunk (3 * kTargetChunk doubles) fit in vector registers.
inline constexpr std::size_t kTargetChunk = 8;
/// Source rows per cache tile: 4 arrays * 8 B * 1024 = 32 KiB, L1-resident.
inline constexpr std::size_t kSourceTile = 1024;

/// Reference kernel (the oracle): scalar AoS loop with a per-pair skip
/// branch, exactly the pre-dispatch accumulate_accelerations body.
void scalar_accumulate(std::span<const Vec3> target_pos,
                       std::span<const Vec3> src_pos,
                       std::span<const double> src_mass, double softening2,
                       std::size_t skip_offset, std::span<Vec3> acc);

/// Tiled kernel over targets [i_begin, i_end); adds into ax/ay/az (full
/// target-indexed arrays).  Building block shared by tiled and tiled-mt.
void tiled_accumulate_range(const SoaView& targets, const SoaView& sources,
                            double softening2, std::size_t skip_offset,
                            std::size_t i_begin, std::size_t i_end, double* ax,
                            double* ay, double* az);

/// Single-threaded tiled kernel over every target.
void tiled_accumulate(const SoaView& targets, const SoaView& sources,
                      double softening2, std::size_t skip_offset, double* ax,
                      double* ay, double* az);

/// Tiled kernel with target chunks sharded across `pool` (the shared pool
/// when null).  Bit-identical to tiled_accumulate.
void tiled_mt_accumulate(const SoaView& targets, const SoaView& sources,
                         double softening2, std::size_t skip_offset, double* ax,
                         double* ay, double* az,
                         support::ThreadPool* pool = nullptr);

/// Histogram of per-source-tile sweep durations ("nbody.kernel.tile_seconds");
/// null (zero-cost) unless metrics collection was enabled at first kernel use.
const obs::HistogramRef& tile_timer() noexcept;

}  // namespace specomp::nbody::kernels

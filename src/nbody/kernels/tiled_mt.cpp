// Multi-threaded tiled kernel: target chunks sharded over the thread pool.
//
// Shard boundaries are aligned to kTargetChunk, and every target's source
// sweep happens inside exactly one task with rows visited in ascending
// order, so the output is bit-identical to single-threaded tiled_accumulate
// for any pool size and any scheduling.
#include "nbody/kernels/kernel.hpp"
#include "support/thread_pool.hpp"

#include <algorithm>

namespace specomp::nbody::kernels {

void tiled_mt_accumulate(const SoaView& t, const SoaView& s, double soft2,
                         std::size_t skip_offset, double* ax, double* ay,
                         double* az, support::ThreadPool* pool) {
  support::ThreadPool& p = pool != nullptr ? *pool : support::ThreadPool::shared();
  const std::size_t chunks = (t.n + kTargetChunk - 1) / kTargetChunk;
  // ~4 tasks per lane amortises queue traffic while still load-balancing.
  const std::size_t lanes = p.worker_count() + 1;
  const std::size_t grain = std::max<std::size_t>(1, chunks / (4 * lanes));
  p.parallel_for(chunks, grain, [&](std::size_t begin, std::size_t end) {
    tiled_accumulate_range(t, s, soft2, skip_offset, begin * kTargetChunk,
                           std::min(t.n, end * kTargetChunk), ax, ay, az);
  });
}

}  // namespace specomp::nbody::kernels

// SIMD tier resolution: maps SimdTier to the per-ISA TUs that this build
// actually contains and this host can actually execute.  Compiled with
// plain project flags — the wide instructions live only in
// simd_avx2.cpp/simd_avx512.cpp (see the CMake per-TU flag setup), so this
// TU is safe to run on any host, which is what makes the runtime fallback
// trustworthy.
#include "nbody/kernels/simd.hpp"

#include "nbody/kernels/simd_impl.hpp"
#include "support/contracts.hpp"
#include "support/cpu_features.hpp"

namespace specomp::nbody::kernels {

std::string_view simd_tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::None: return "none";
    case SimdTier::Avx2: return "avx2";
    case SimdTier::Avx512: return "avx512";
  }
  return "none";
}

bool simd_tier_compiled(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::None: return true;
    case SimdTier::Avx2:
#if defined(SPECOMP_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdTier::Avx512:
#if defined(SPECOMP_SIMD_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool simd_tier_usable(SimdTier tier) noexcept {
  if (!simd_tier_compiled(tier)) return false;
  const support::cpu::Features& cpu = support::cpu::features();
  switch (tier) {
    case SimdTier::None: return true;
    case SimdTier::Avx2: return cpu.usable_avx2();
    case SimdTier::Avx512: return cpu.usable_avx512();
  }
  return false;
}

SimdTier widest_simd_tier() noexcept {
  if (simd_tier_usable(SimdTier::Avx512)) return SimdTier::Avx512;
  if (simd_tier_usable(SimdTier::Avx2)) return SimdTier::Avx2;
  return SimdTier::None;
}

void simd_accumulate(SimdTier tier, const SoaView& targets,
                     const SoaView& sources, double softening2,
                     std::size_t skip_offset, double* ax, double* ay,
                     double* az) {
  SPEC_EXPECTS(tier != SimdTier::None);
  SPEC_EXPECTS(simd_tier_usable(tier));
  switch (tier) {
    case SimdTier::Avx2:
#if defined(SPECOMP_SIMD_HAVE_AVX2)
      avx2_accumulate(targets, sources, softening2, skip_offset, ax, ay, az);
      return;
#else
      break;
#endif
    case SimdTier::Avx512:
#if defined(SPECOMP_SIMD_HAVE_AVX512)
      avx512_accumulate(targets, sources, softening2, skip_offset, ax, ay, az);
      return;
#else
      break;
#endif
    case SimdTier::None: break;
  }
  // Unreachable when the usable() precondition holds; keep numerical
  // behaviour sane regardless.
  tiled_accumulate(targets, sources, softening2, skip_offset, ax, ay, az);
}

}  // namespace specomp::nbody::kernels

// Scalar reference kernel: the pre-dispatch AoS loop, kept bit-for-bit as
// the oracle the tiled kernels are validated against.
#include <limits>

#include "nbody/forces.hpp"
#include "nbody/kernels/kernel.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody::kernels {

void scalar_accumulate(std::span<const Vec3> target_pos,
                       std::span<const Vec3> src_pos,
                       std::span<const double> src_mass, double softening2,
                       std::size_t skip_offset, std::span<Vec3> acc) {
  SPEC_EXPECTS(src_pos.size() == src_mass.size());
  SPEC_EXPECTS(acc.size() == target_pos.size());
  for (std::size_t i = 0; i < target_pos.size(); ++i) {
    Vec3 sum = acc[i];
    const std::size_t self =
        skip_offset == std::numeric_limits<std::size_t>::max()
            ? std::numeric_limits<std::size_t>::max()
            : skip_offset + i;
    for (std::size_t j = 0; j < src_pos.size(); ++j) {
      if (j == self) continue;
      sum += pair_acceleration(target_pos[i], src_pos[j], src_mass[j],
                               softening2);
    }
    acc[i] = sum;
  }
}

}  // namespace specomp::nbody::kernels

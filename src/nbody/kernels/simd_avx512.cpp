// Explicit AVX-512 force kernel (8-lane __m512d, 16-wide target chunks).
//
// Compiled per-TU with -mavx512f -mavx512dq (plus the kernel fast flags);
// reached only after KernelDispatch confirmed runtime F+DQ and ZMM/opmask
// OS support.  Same structure and determinism contract as simd_avx2.cpp
// (fixed lane order, ascending source order, ascending tiles, fixed
// instruction sequence — see DESIGN.md §11), with the ISA differences:
//
//   * r^{-3/2} seeds from _mm512_rsqrt14_pd (2^-14 relative error), so two
//     Newton iterations in double reach sub-ulp instead of three;
//   * tail chunks (n_t % 16) and self-pair suppression use opmask
//     registers (__mmask8) instead of vector masks — masked loads/stores
//     suppress faults on dead lanes, and the self row zeroes the matching
//     lane's force with a single knot+maskz move.
#include "nbody/kernels/simd_impl.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace specomp::nbody::kernels {

namespace {

/// One Newton–Raphson reciprocal-sqrt refinement: y <- y (1.5 - h y^2).
inline __m512d nr_step(__m512d y, __m512d h) noexcept {
  const __m512d t =
      _mm512_fnmadd_pd(_mm512_mul_pd(h, y), y, _mm512_set1_pd(1.5));
  return _mm512_mul_pd(y, t);
}

/// r2^{-3/2}: 14-bit hardware rsqrt seed, two double NR steps, cubed.
inline __m512d inv_r3(__m512d r2) noexcept {
  __m512d y = _mm512_rsqrt14_pd(r2);
  const __m512d h = _mm512_mul_pd(_mm512_set1_pd(0.5), r2);
  y = nr_step(y, h);
  y = nr_step(y, h);
  return _mm512_mul_pd(_mm512_mul_pd(y, y), y);
}

/// Adds source row (xj,yj,zj,mj) into one 8-lane accumulator half; lanes in
/// `kill` contribute nothing (the self-pair mask).
inline void row_half(__m512d xj, __m512d yj, __m512d zj, __m512d mj,
                     __m512d tx, __m512d ty, __m512d tz, __m512d soft2,
                     __mmask8 kill, __m512d& lx, __m512d& ly,
                     __m512d& lz) noexcept {
  const __m512d dx = _mm512_sub_pd(xj, tx);
  const __m512d dy = _mm512_sub_pd(yj, ty);
  const __m512d dz = _mm512_sub_pd(zj, tz);
  __m512d r2 = _mm512_fmadd_pd(dx, dx, soft2);
  r2 = _mm512_fmadd_pd(dy, dy, r2);
  r2 = _mm512_fmadd_pd(dz, dz, r2);
  __m512d f = _mm512_mul_pd(mj, inv_r3(r2));
  f = _mm512_maskz_mov_pd(_knot_mask8(kill), f);
  lx = _mm512_fmadd_pd(f, dx, lx);
  ly = _mm512_fmadd_pd(f, dy, ly);
  lz = _mm512_fmadd_pd(f, dz, lz);
}

constexpr std::size_t kChunk = 16;  // two 8-lane halves

/// One target chunk (absolute indices [i, i+16), the last `16 - active`
/// lanes dead) against source rows [tile_begin, tile_end), self window
/// pre-clamped into the tile.
void chunk_accumulate(const SoaView& t, const SoaView& s, std::size_t i,
                      std::size_t active, std::size_t tile_begin,
                      std::size_t tile_end, std::size_t self_begin,
                      std::size_t self_end, std::size_t skip_offset,
                      double soft2, double* ax, double* ay, double* az) {
  const unsigned live = (active >= kChunk)
                            ? 0xFFFFu
                            : ((1u << static_cast<unsigned>(active)) - 1u);
  const __mmask8 m0 = static_cast<__mmask8>(live & 0xFFu);
  const __mmask8 m1 = static_cast<__mmask8>((live >> 8) & 0xFFu);

  const __m512d tx0 = _mm512_maskz_loadu_pd(m0, t.x + i);
  const __m512d ty0 = _mm512_maskz_loadu_pd(m0, t.y + i);
  const __m512d tz0 = _mm512_maskz_loadu_pd(m0, t.z + i);
  const __m512d tx1 = _mm512_maskz_loadu_pd(m1, t.x + i + 8);
  const __m512d ty1 = _mm512_maskz_loadu_pd(m1, t.y + i + 8);
  const __m512d tz1 = _mm512_maskz_loadu_pd(m1, t.z + i + 8);

  const __m512d soft2v = _mm512_set1_pd(soft2);
  __m512d lx0 = _mm512_setzero_pd(), ly0 = _mm512_setzero_pd();
  __m512d lz0 = _mm512_setzero_pd();
  __m512d lx1 = _mm512_setzero_pd(), ly1 = _mm512_setzero_pd();
  __m512d lz1 = _mm512_setzero_pd();

  const auto idx = [i](std::int64_t base) {
    const auto b = static_cast<std::int64_t>(i) + base;
    return _mm512_set_epi64(b + 7, b + 6, b + 5, b + 4, b + 3, b + 2, b + 1,
                            b);
  };
  const __m512i idx0 = idx(0);
  const __m512i idx1 = idx(8);

  const auto sweep = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t j = row_begin; j < row_end; ++j) {
      const __m512d xj = _mm512_set1_pd(s.x[j]);
      const __m512d yj = _mm512_set1_pd(s.y[j]);
      const __m512d zj = _mm512_set1_pd(s.z[j]);
      const __m512d mj = _mm512_set1_pd(s.m[j]);
      row_half(xj, yj, zj, mj, tx0, ty0, tz0, soft2v, 0, lx0, ly0, lz0);
      row_half(xj, yj, zj, mj, tx1, ty1, tz1, soft2v, 0, lx1, ly1, lz1);
    }
  };

  sweep(tile_begin, self_begin);
  for (std::size_t j = self_begin; j < self_end; ++j) {
    const __m512i self =
        _mm512_set1_epi64(static_cast<std::int64_t>(j - skip_offset));
    const __mmask8 kill0 = _mm512_cmpeq_epi64_mask(idx0, self);
    const __mmask8 kill1 = _mm512_cmpeq_epi64_mask(idx1, self);
    const __m512d xj = _mm512_set1_pd(s.x[j]);
    const __m512d yj = _mm512_set1_pd(s.y[j]);
    const __m512d zj = _mm512_set1_pd(s.z[j]);
    const __m512d mj = _mm512_set1_pd(s.m[j]);
    row_half(xj, yj, zj, mj, tx0, ty0, tz0, soft2v, kill0, lx0, ly0, lz0);
    row_half(xj, yj, zj, mj, tx1, ty1, tz1, soft2v, kill1, lx1, ly1, lz1);
  }
  sweep(self_end, tile_end);

  const auto add_out = [](double* out, __mmask8 mask, __m512d delta) {
    const __m512d prev = _mm512_maskz_loadu_pd(mask, out);
    _mm512_mask_storeu_pd(out, mask, _mm512_add_pd(prev, delta));
  };
  add_out(ax + i, m0, lx0);
  add_out(ay + i, m0, ly0);
  add_out(az + i, m0, lz0);
  add_out(ax + i + 8, m1, lx1);
  add_out(ay + i + 8, m1, ly1);
  add_out(az + i + 8, m1, lz1);
}

}  // namespace

void avx512_accumulate(const SoaView& t, const SoaView& s, double softening2,
                       std::size_t skip_offset, double* ax, double* ay,
                       double* az) {
  for (std::size_t tile_begin = 0; tile_begin < s.n;
       tile_begin += kSourceTile) {
    const std::size_t tile_end = std::min(s.n, tile_begin + kSourceTile);
    for (std::size_t i = 0; i < t.n; i += kChunk) {
      const std::size_t active = std::min(kChunk, t.n - i);
      std::size_t self_begin = tile_end;
      std::size_t self_end = tile_end;
      if (skip_offset != std::numeric_limits<std::size_t>::max()) {
        const std::size_t first = skip_offset + i;
        self_begin = std::clamp(first, tile_begin, tile_end);
        self_end = std::clamp(first + active, tile_begin, tile_end);
      }
      chunk_accumulate(t, s, i, active, tile_begin, tile_end, self_begin,
                       self_end, skip_offset, softening2, ax, ay, az);
    }
  }
}

}  // namespace specomp::nbody::kernels

#endif  // __AVX512F__ && __AVX512DQ__

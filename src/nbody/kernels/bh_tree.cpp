#include "nbody/kernels/bh_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "support/contracts.hpp"

namespace specomp::nbody::kernels {

namespace {

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart —
/// the standard magic-number Morton expansion.
std::uint64_t expand_bits(std::uint64_t v) noexcept {
  v &= 0x1fffff;
  v = (v | v << 32) & 0x001f00000000ffffULL;
  v = (v | v << 16) & 0x001f0000ff0000ffULL;
  v = (v | v << 8) & 0x100f00f00f00f00fULL;
  v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
  v = (v | v << 2) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t morton_key(std::uint64_t ix, std::uint64_t iy,
                         std::uint64_t iz) noexcept {
  return expand_bits(ix) << 2 | expand_bits(iy) << 1 | expand_bits(iz);
}

/// Octant digit of `key` at tree level `depth` (the root's children are
/// split on depth 0's digit).  Bit layout matches morton_key: bit 2 = x,
/// bit 1 = y, bit 0 = z.
unsigned octant_at(std::uint64_t key, int depth) noexcept {
  return static_cast<unsigned>(key >> (3 * (kBhMaxDepth - 1 - depth))) & 7u;
}

/// Cells are laid out depth-first: a cell's first child (if any) is the next
/// cell, and `escape` is the index one past its whole subtree — so sibling
/// iteration is `c = cells[c].escape` and "skip this subtree" is free.  A
/// leaf has escape == its own index + 1.
struct Cell {
  std::uint32_t begin = 0;   ///< body range [begin, end) in sorted order
  std::uint32_t end = 0;
  std::uint32_t escape = 0;  ///< one past the subtree in cell order
  double com_x = 0.0, com_y = 0.0, com_z = 0.0;
  double mass = 0.0;
  double size = 0.0;         ///< cube side length
};

/// Per-thread tree storage, reused across calls (each ThreadCommunicator
/// rank builds its own trees — same discipline as the SoA scratch in
/// dispatch.cpp).
struct TreeScratch {
  std::vector<std::uint64_t> keys;      // by original index
  std::vector<std::uint32_t> order;     // sorted pos -> original index
  std::vector<std::uint32_t> sorted_of; // original index -> sorted pos
  std::vector<double> sx, sy, sz, sm;   // bodies in sorted order
  std::vector<Cell> cells;
};

TreeScratch& scratch() {
  thread_local TreeScratch t;
  return t;
}

/// Recursive depth-first build over the contiguous sorted range
/// [begin, end).  Each octant of a cell is a contiguous subrange of the
/// Morton-sorted bodies, so children are found by boundary scans — no body
/// moves after the initial sort.  Children are visited in ascending octant
/// order, which fixes the centre-of-mass summation order.  Returns the cell
/// index; `cells` may reallocate during recursion, so no Cell reference is
/// held across a recursive call.
std::uint32_t build_cell(TreeScratch& t, std::uint32_t begin, std::uint32_t end,
                         int depth, double cx, double cy, double cz,
                         double half) {
  const auto index = static_cast<std::uint32_t>(t.cells.size());
  t.cells.push_back(Cell{});
  t.cells[index].begin = begin;
  t.cells[index].end = end;
  t.cells[index].size = 2.0 * half;

  if (end - begin > kBhNcrit && depth < kBhMaxDepth) {
    std::uint32_t bounds[9];
    bounds[0] = begin;
    std::uint32_t cursor = begin;
    for (unsigned oct = 0; oct < 8; ++oct) {
      while (cursor < end && octant_at(t.keys[t.order[cursor]], depth) == oct)
        ++cursor;
      bounds[oct + 1] = cursor;
    }
    SPEC_ASSERT(bounds[8] == end);

    std::uint32_t children[8];
    std::uint32_t child_count = 0;
    const double quarter = 0.5 * half;
    for (unsigned oct = 0; oct < 8; ++oct) {
      if (bounds[oct] == bounds[oct + 1]) continue;
      const double ox = (oct & 4u) != 0 ? cx + quarter : cx - quarter;
      const double oy = (oct & 2u) != 0 ? cy + quarter : cy - quarter;
      const double oz = (oct & 1u) != 0 ? cz + quarter : cz - quarter;
      children[child_count++] = build_cell(t, bounds[oct], bounds[oct + 1],
                                           depth + 1, ox, oy, oz, quarter);
    }

    Cell& cell = t.cells[index];
    cell.escape = static_cast<std::uint32_t>(t.cells.size());
    for (std::uint32_t c = 0; c < child_count; ++c) {
      const Cell& child = t.cells[children[c]];
      cell.mass += child.mass;
      cell.com_x += child.mass * child.com_x;
      cell.com_y += child.mass * child.com_y;
      cell.com_z += child.mass * child.com_z;
    }
    if (cell.mass > 0.0) {
      cell.com_x /= cell.mass;
      cell.com_y /= cell.mass;
      cell.com_z /= cell.mass;
    }
    return index;
  }

  // Leaf: centre of mass over bodies in ascending sorted order.
  Cell& cell = t.cells[index];
  cell.escape = index + 1;
  for (std::uint32_t s = begin; s < end; ++s) {
    const double m = t.sm[s];
    cell.mass += m;
    cell.com_x += m * t.sx[s];
    cell.com_y += m * t.sy[s];
    cell.com_z += m * t.sz[s];
  }
  if (cell.mass > 0.0) {
    cell.com_x /= cell.mass;
    cell.com_y /= cell.mass;
    cell.com_z /= cell.mass;
  }
  return index;
}

struct TraverseCtx {
  const TreeScratch* t;
  double px, py, pz;
  double theta2;
  double softening2;
  std::uint32_t self_sorted;  ///< sorted slot to skip; UINT32_MAX if none
  double ax = 0.0, ay = 0.0, az = 0.0;
  std::size_t interactions = 0;
};

void traverse(TraverseCtx& ctx, std::uint32_t cell_index) {
  const TreeScratch& t = *ctx.t;
  const Cell& cell = t.cells[cell_index];
  // A cell holding the target's own source slot is never summarised — the
  // descent bottoms out at the leaf where the self-pair is skipped exactly,
  // the same skip_offset contract as the exact kernels.
  const bool contains_self =
      ctx.self_sorted >= cell.begin && ctx.self_sorted < cell.end;

  if (!contains_self) {
    const double dx = cell.com_x - ctx.px;
    const double dy = cell.com_y - ctx.py;
    const double dz = cell.com_z - ctx.pz;
    const double d2 = dx * dx + dy * dy + dz * dz;
    // Accept when s^2 < θ^2 d^2 (strict, so θ=0 degenerates to the exact
    // sum).  d is the true distance to the centre of mass; softening enters
    // only the force evaluation — matching pair_acceleration's law
    // a = m d / (|d|^2 + eps^2)^{3/2}.
    if (cell.size * cell.size < ctx.theta2 * d2) {
      const double dist2 = d2 + ctx.softening2;
      const double inv = 1.0 / (dist2 * std::sqrt(dist2));
      const double w = cell.mass * inv;
      ctx.ax += w * dx;
      ctx.ay += w * dy;
      ctx.az += w * dz;
      ++ctx.interactions;
      return;
    }
  }

  if (cell.escape == cell_index + 1) {
    // Leaf: direct sum in ascending sorted order, skipping the self slot.
    for (std::uint32_t s = cell.begin; s < cell.end; ++s) {
      if (s == ctx.self_sorted) continue;
      const double dx = t.sx[s] - ctx.px;
      const double dy = t.sy[s] - ctx.py;
      const double dz = t.sz[s] - ctx.pz;
      const double dist2 = dx * dx + dy * dy + dz * dz + ctx.softening2;
      const double inv = 1.0 / (dist2 * std::sqrt(dist2));
      const double w = t.sm[s] * inv;
      ctx.ax += w * dx;
      ctx.ay += w * dy;
      ctx.az += w * dz;
      ++ctx.interactions;
    }
    return;
  }

  for (std::uint32_t c = cell_index + 1; c < cell.escape;
       c = t.cells[c].escape) {
    traverse(ctx, c);
  }
}

}  // namespace

std::size_t bh_accumulate(std::span<const Vec3> target_pos,
                          std::span<const Vec3> src_pos,
                          std::span<const double> src_mass, double softening2,
                          std::size_t skip_offset, std::span<Vec3> acc,
                          double theta) {
  SPEC_EXPECTS(src_pos.size() == src_mass.size());
  SPEC_EXPECTS(acc.size() == target_pos.size());
  SPEC_EXPECTS(theta >= 0.0);
  const std::size_t ns = src_pos.size();
  if (ns == 0 || target_pos.empty()) return 0;

  TreeScratch& t = scratch();

  // Bounding cube of the sources: cubic (equal sides), so Morton cells are
  // cubes and `size` in the opening criterion is a single number.
  double min_x = src_pos[0].x, max_x = src_pos[0].x;
  double min_y = src_pos[0].y, max_y = src_pos[0].y;
  double min_z = src_pos[0].z, max_z = src_pos[0].z;
  for (const Vec3& p : src_pos) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
    min_z = std::min(min_z, p.z);
    max_z = std::max(max_z, p.z);
  }
  const double side = std::max(
      {max_x - min_x, max_y - min_y, max_z - min_z,
       std::numeric_limits<double>::min()});  // degenerate: all coincident
  const double cx = 0.5 * (min_x + max_x);
  const double cy = 0.5 * (min_y + max_y);
  const double cz = 0.5 * (min_z + max_z);

  // Quantise to the 21-bit Morton grid over the bounding cube.
  constexpr double kGrid = 1u << 21;
  const double scale = kGrid / side;
  const double origin_x = cx - 0.5 * side;
  const double origin_y = cy - 0.5 * side;
  const double origin_z = cz - 0.5 * side;
  t.keys.resize(ns);
  for (std::size_t j = 0; j < ns; ++j) {
    const auto quant = [scale](double v) {
      const double q = std::floor(v * scale);
      return static_cast<std::uint64_t>(std::clamp(q, 0.0, kGrid - 1.0));
    };
    t.keys[j] = morton_key(quant(src_pos[j].x - origin_x),
                           quant(src_pos[j].y - origin_y),
                           quant(src_pos[j].z - origin_z));
  }

  // Sort by (key, original index): the index tie-break pins the order of
  // coincident bodies, making the whole kernel input-deterministic.
  t.order.resize(ns);
  std::iota(t.order.begin(), t.order.end(), 0u);
  std::sort(t.order.begin(), t.order.end(),
            [&t](std::uint32_t a, std::uint32_t b) {
              if (t.keys[a] != t.keys[b]) return t.keys[a] < t.keys[b];
              return a < b;
            });
  t.sorted_of.resize(ns);
  t.sx.resize(ns);
  t.sy.resize(ns);
  t.sz.resize(ns);
  t.sm.resize(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const std::uint32_t j = t.order[s];
    t.sorted_of[j] = static_cast<std::uint32_t>(s);
    t.sx[s] = src_pos[j].x;
    t.sy[s] = src_pos[j].y;
    t.sz[s] = src_pos[j].z;
    t.sm[s] = src_mass[j];
  }

  t.cells.clear();
  t.cells.reserve(2 * ns / kBhNcrit + 16);
  build_cell(t, 0, static_cast<std::uint32_t>(ns), 0, cx, cy, cz, 0.5 * side);

  const double theta2 = theta * theta;
  std::size_t interactions = 0;
  for (std::size_t i = 0; i < target_pos.size(); ++i) {
    TraverseCtx ctx;
    ctx.t = &t;
    ctx.px = target_pos[i].x;
    ctx.py = target_pos[i].y;
    ctx.pz = target_pos[i].z;
    ctx.theta2 = theta2;
    ctx.softening2 = softening2;
    ctx.self_sorted = std::numeric_limits<std::uint32_t>::max();
    if (skip_offset != static_cast<std::size_t>(-1) && i + skip_offset < ns)
      ctx.self_sorted = t.sorted_of[i + skip_offset];
    traverse(ctx, 0);
    acc[i].x += ctx.ax;
    acc[i].y += ctx.ay;
    acc[i].z += ctx.az;
    interactions += ctx.interactions;
  }
  return interactions;
}

}  // namespace specomp::nbody::kernels

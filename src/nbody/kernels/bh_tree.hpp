// Barnes-Hut hierarchical force kernel — O(N log N) in the source count.
//
// The O(N^2) kernels stop scaling long before the simulated cluster does:
// pushing N into 10^5..10^6 (the regime where large-p runs are worth
// simulating) needs the classic Barnes-Hut approximation.  The kernel here
// follows the exafmm lineage (SNIPPETS.md §3): a flat array of cells over
// Morton-sorted bodies in SoA layout, an NCRIT leaf cap, and bottom-up
// centres of mass; far cells interact through their centre of mass when the
// opening criterion s/d < θ holds, near cells are opened down to leaves.
//
// Determinism (the repo-wide contract; see DETERMINISM.md):
//   * The Morton sort breaks key ties by original index, so the sorted order
//     — and hence every downstream summation order — is a pure function of
//     the input block.
//   * Build and traversal are single-threaded and visit children in fixed
//     octant order; the accumulation order never depends on timing or
//     --jobs.
//   * Self-interaction is exact, not approximate: a cell whose body range
//     contains the target's own source slot is always opened, so the skip
//     happens at a leaf by index comparison — the same skip_offset contract
//     as the exact kernels.
//
// Accuracy: every accepted cell satisfies s/d < θ, giving the standard
// multipole-acceptance error of order (s/d)^2 per interaction.  Against the
// scalar oracle the observed max error satisfies
//     max_i |a_bh(i) - a_ref(i)| / rms_i |a_ref(i)|  <=  bound(θ)
// with the bounds pinned by tests/nbody/test_bh_kernel.cpp (θ=0.3: 5e-3,
// θ=0.5: 2.5e-2, θ=0.8: 1.5e-1 on Plummer inputs; typical observed errors
// run at roughly half the bound).  θ→0 degenerates to the exact sum.
#pragma once

#include <cstddef>
#include <span>

#include "nbody/types.hpp"

namespace specomp::nbody::kernels {

/// Bodies per leaf cell before subdivision stops (exafmm uses 10; 16 keeps
/// leaf direct sums wide enough to amortise the traversal).
inline constexpr std::size_t kBhNcrit = 16;

/// Maximum octree depth — one level per Morton digit (21 bits per axis).
/// Coincident bodies bottom out here into one shared leaf.
inline constexpr int kBhMaxDepth = 21;

/// Same contract as scalar_accumulate / tiled_accumulate: adds to `acc` the
/// accelerations the source block exerts on each target, skipping the
/// self-pair identified by `skip_offset` (SIZE_MAX for disjoint ranges).
/// `theta` is the opening angle; the tree over the sources is rebuilt per
/// call (the kernel layer is stateless).  Returns the number of interactions
/// evaluated (cell + body), the tree kernel's analogue of the pair count.
std::size_t bh_accumulate(std::span<const Vec3> target_pos,
                          std::span<const Vec3> src_pos,
                          std::span<const double> src_mass, double softening2,
                          std::size_t skip_offset, std::span<Vec3> acc,
                          double theta);

}  // namespace specomp::nbody::kernels

// Explicitly vectorised SoA force kernels with runtime ISA tiers.
//
// Two tiers next to `tiled` (DESIGN.md §11):
//
//   * simd-avx2   — 4-lane __m256d FMA accumulation, 8-wide target chunks
//                   (two vector halves), float-rsqrt seed polished by three
//                   Newton iterations in double;
//   * simd-avx512 — 8-lane __m512d, 16-wide target chunks, _mm512_rsqrt14_pd
//                   seed + two Newton iterations, opmask tail/self handling.
//
// Each tier lives in its own translation unit compiled with the matching
// -m flags (simd_avx2.cpp / simd_avx512.cpp — see src/nbody/CMakeLists.txt),
// so the rest of the binary never contains unguarded wide instructions.  A
// tier is *usable* only when (a) its TU was compiled in and (b)
// support::cpu::features() reports the ISA plus OS register-state support.
// KernelDispatch routes here only for usable tiers and falls back to the
// widest usable one (then `tiled`) otherwise.
//
// Determinism contract (test-pinned, tests/nbody/test_simd_kernels.cpp):
//   * a fixed tier is bit-identical across repeated calls and runs — the
//     instruction sequence is explicit, lane order is fixed (lane k always
//     holds target i+k), sources are accumulated in ascending j order per
//     lane, and nothing depends on threading, timing or allocation;
//   * max-abs deviation vs the scalar oracle is <= 1e-12 (the only
//     deviations are per-source-tile summation grouping, FMA contraction,
//     and a ~1-2 ulp Newton-polished r^{-3/2}).
#pragma once

#include <string_view>

#include "nbody/kernels/kernel.hpp"

namespace specomp::nbody::kernels {

enum class SimdTier { None, Avx2, Avx512 };

std::string_view simd_tier_name(SimdTier tier) noexcept;

/// The tier's translation unit is present in this binary (compiler
/// supported the -m flags at build time).
bool simd_tier_compiled(SimdTier tier) noexcept;

/// Compiled in AND executable on this host per support::cpu::features().
/// SimdTier::None is trivially usable (it means "no SIMD tier").
bool simd_tier_usable(SimdTier tier) noexcept;

/// Widest usable tier, or None when no SIMD tier is usable.
SimdTier widest_simd_tier() noexcept;

/// Same contract as tiled_accumulate: adds into ax/ay/az the accelerations
/// the source block exerts on each target, skipping self pairs per
/// skip_offset.  Pre: simd_tier_usable(tier) && tier != None.
void simd_accumulate(SimdTier tier, const SoaView& targets,
                     const SoaView& sources, double softening2,
                     std::size_t skip_offset, double* ax, double* ay,
                     double* az);

}  // namespace specomp::nbody::kernels

// Internal seam between simd.cpp (tier resolution, always compiled with
// project flags) and the per-ISA translation units (compiled with their own
// -m flags).  Declarations are unconditional; a definition exists only when
// CMake could enable the matching TU, and simd.cpp consults the
// SPECOMP_SIMD_HAVE_* definitions it gets from the build before calling.
#pragma once

#include "nbody/kernels/kernel.hpp"

namespace specomp::nbody::kernels {

/// AVX2+FMA kernel (simd_avx2.cpp).  Same contract as tiled_accumulate.
void avx2_accumulate(const SoaView& targets, const SoaView& sources,
                     double softening2, std::size_t skip_offset, double* ax,
                     double* ay, double* az);

/// AVX-512 F+DQ kernel (simd_avx512.cpp).  Same contract as
/// tiled_accumulate.
void avx512_accumulate(const SoaView& targets, const SoaView& sources,
                       double softening2, std::size_t skip_offset, double* ax,
                       double* ay, double* az);

}  // namespace specomp::nbody::kernels

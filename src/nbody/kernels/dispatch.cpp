#include "nbody/kernels/dispatch.hpp"

#include <atomic>
#include <vector>

#include "nbody/kernels/bh_tree.hpp"
#include "nbody/kernels/kernel.hpp"
#include "nbody/kernels/simd.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"
#include "support/thread_pool.hpp"

namespace specomp::nbody::kernels {

namespace {

std::atomic<ForceKernel> g_default{ForceKernel::Auto};
std::atomic<double> g_bh_theta{0.5};

/// Thread-local SoA staging buffers, reused across calls (each
/// ThreadCommunicator rank gets its own set).
struct SoaScratch {
  std::vector<double> tx, ty, tz;
  std::vector<double> sx, sy, sz, sm;
  std::vector<double> ax, ay, az;
};

SoaScratch& scratch() {
  thread_local SoaScratch s;
  return s;
}

/// Metric refs are captured at first kernel use; as with the PR-1
/// instrumentation, enable collection (--metrics-out does) before the first
/// force computation or the refs stay null and updates cost one branch.
struct KernelMetrics {
  obs::CounterRef calls_scalar;
  obs::CounterRef calls_tiled;
  obs::CounterRef calls_tiled_mt;
  obs::CounterRef calls_simd_avx2;
  obs::CounterRef calls_simd_avx512;
  obs::CounterRef calls_tree;
  obs::CounterRef pairs;
  obs::HistogramRef tile_seconds;
};

KernelMetrics& kernel_metrics() {
  static KernelMetrics m{
      obs::metrics().counter("nbody.kernel.calls.scalar"),
      obs::metrics().counter("nbody.kernel.calls.tiled"),
      obs::metrics().counter("nbody.kernel.calls.tiled_mt"),
      obs::metrics().counter("nbody.kernel.calls.simd_avx2"),
      obs::metrics().counter("nbody.kernel.calls.simd_avx512"),
      obs::metrics().counter("nbody.kernel.calls.tree"),
      obs::metrics().counter("nbody.kernel.pairs"),
      obs::metrics().histogram("nbody.kernel.tile_seconds", 0.0, 1e-3, 50),
  };
  return m;
}

/// The widest usable simd tier as a ForceKernel, or Tiled when none is.
ForceKernel best_single_thread_exact() {
  switch (widest_simd_tier()) {
    case SimdTier::Avx512: return ForceKernel::SimdAvx512;
    case SimdTier::Avx2: return ForceKernel::SimdAvx2;
    case SimdTier::None: break;
  }
  return ForceKernel::Tiled;
}

}  // namespace

const obs::HistogramRef& tile_timer() noexcept {
  return kernel_metrics().tile_seconds;
}

support::ThreadPool& kernel_pool() {
  static support::ThreadPool& pool = []() -> support::ThreadPool& {
    support::ThreadPool& p = support::ThreadPool::shared();
    support::ThreadPool::Observer observer;
    observer.queue_depth = [gauge = obs::metrics().gauge("pool.queue_depth")](
                               double depth) { gauge.set(depth); };
    observer.chunks_executed =
        [counter = obs::metrics().counter("pool.chunks_executed")](
            std::uint64_t n) { counter.inc(n); };
    observer.jobs_submitted =
        [counter = obs::metrics().counter("pool.jobs_submitted")](
            std::uint64_t n) { counter.inc(n); };
    p.set_observer(std::move(observer));
    return p;
  }();
  return pool;
}

std::optional<ForceKernel> parse_force_kernel(std::string_view name) noexcept {
  if (name == "auto") return ForceKernel::Auto;
  if (name == "scalar") return ForceKernel::Scalar;
  if (name == "tiled") return ForceKernel::Tiled;
  if (name == "tiled-mt") return ForceKernel::TiledMT;
  if (name == "simd-avx2") return ForceKernel::SimdAvx2;
  if (name == "simd-avx512") return ForceKernel::SimdAvx512;
  if (name == "tree") return ForceKernel::Tree;
  return std::nullopt;
}

std::string_view force_kernel_name(ForceKernel kind) noexcept {
  switch (kind) {
    case ForceKernel::Auto: return "auto";
    case ForceKernel::Scalar: return "scalar";
    case ForceKernel::Tiled: return "tiled";
    case ForceKernel::TiledMT: return "tiled-mt";
    case ForceKernel::SimdAvx2: return "simd-avx2";
    case ForceKernel::SimdAvx512: return "simd-avx512";
    case ForceKernel::Tree: return "tree";
  }
  return "auto";
}

std::string_view force_kernel_names() noexcept {
  return "auto|scalar|tiled|tiled-mt|simd-avx2|simd-avx512|tree";
}

std::optional<ForceKernel> parse_force_kernel_cli(std::string_view name,
                                                 std::string& error) {
  if (const auto kind = parse_force_kernel(name)) return kind;
  error = "unknown --kernel '";
  error += name;
  error += "' (valid: ";
  error += force_kernel_names();
  error += ")";
  return std::nullopt;
}

bool kernel_uses_bh_theta(ForceKernel kind) noexcept {
  return kind == ForceKernel::Tree || kind == ForceKernel::Auto;
}

void set_bh_opening_angle(double theta) noexcept {
  g_bh_theta.store(theta, std::memory_order_relaxed);
}

double bh_opening_angle() noexcept {
  return g_bh_theta.load(std::memory_order_relaxed);
}

void set_default_force_kernel(ForceKernel kind) noexcept {
  g_default.store(kind, std::memory_order_relaxed);
}

ForceKernel default_force_kernel() noexcept {
  return g_default.load(std::memory_order_relaxed);
}

ForceKernel resolve_force_kernel(ForceKernel kind, std::size_t targets,
                                 std::size_t sources, unsigned pool_workers) {
  if (kind == ForceKernel::Auto) kind = default_force_kernel();
  if (kind != ForceKernel::Auto) {
    // Forced simd tiers on hardware (or builds) that cannot run them fall
    // back to the widest usable tier, then tiled — never an illegal
    // instruction, and still deterministic per process.
    if (kind == ForceKernel::SimdAvx512 &&
        !simd_tier_usable(SimdTier::Avx512)) {
      kind = simd_tier_usable(SimdTier::Avx2) ? ForceKernel::SimdAvx2
                                              : ForceKernel::Tiled;
    }
    if (kind == ForceKernel::SimdAvx2 && !simd_tier_usable(SimdTier::Avx2))
      kind = ForceKernel::Tiled;
    return kind;
  }
  if (targets * sources < kScalarPairCutoff) return ForceKernel::Scalar;
  if (sources >= kTreeSourceCutoff) return ForceKernel::Tree;
  if (targets >= kMinTargetsForMT && pool_workers > 0)
    return ForceKernel::TiledMT;
  return best_single_thread_exact();
}

ForceKernel resolve_force_kernel(ForceKernel kind, std::size_t targets,
                                 std::size_t sources) {
  return resolve_force_kernel(kind, targets, sources,
                              kernel_pool().worker_count());
}

void accumulate(ForceKernel kind, std::span<const Vec3> target_pos,
                std::span<const Vec3> src_pos, std::span<const double> src_mass,
                double softening2, std::size_t skip_offset,
                std::span<Vec3> acc) {
  SPEC_EXPECTS(src_pos.size() == src_mass.size());
  SPEC_EXPECTS(acc.size() == target_pos.size());
  kind = resolve_force_kernel(kind, target_pos.size(), src_pos.size());

  KernelMetrics& metrics = kernel_metrics();
  if (kind == ForceKernel::Tree) {
    // The tree kernel works on the AoS spans directly (it builds its own
    // sorted SoA image) and reports evaluated interactions, the O(N log N)
    // analogue of the pair count.
    metrics.calls_tree.inc();
    const std::size_t interactions =
        bh_accumulate(target_pos, src_pos, src_mass, softening2, skip_offset,
                      acc, bh_opening_angle());
    metrics.pairs.inc(static_cast<std::uint64_t>(interactions));
    return;
  }
  metrics.pairs.inc(
      static_cast<std::uint64_t>(target_pos.size() * src_pos.size()));

  if (kind == ForceKernel::Scalar) {
    metrics.calls_scalar.inc();
    scalar_accumulate(target_pos, src_pos, src_mass, softening2, skip_offset,
                      acc);
    return;
  }

  const std::size_t nt = target_pos.size();
  const std::size_t ns = src_pos.size();
  SoaScratch& s = scratch();
  s.tx.resize(nt);
  s.ty.resize(nt);
  s.tz.resize(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    s.tx[i] = target_pos[i].x;
    s.ty[i] = target_pos[i].y;
    s.tz[i] = target_pos[i].z;
  }
  s.sx.resize(ns);
  s.sy.resize(ns);
  s.sz.resize(ns);
  s.sm.resize(ns);
  for (std::size_t j = 0; j < ns; ++j) {
    s.sx[j] = src_pos[j].x;
    s.sy[j] = src_pos[j].y;
    s.sz[j] = src_pos[j].z;
    s.sm[j] = src_mass[j];
  }
  s.ax.assign(nt, 0.0);
  s.ay.assign(nt, 0.0);
  s.az.assign(nt, 0.0);

  const SoaView targets{s.tx.data(), s.ty.data(), s.tz.data(), nullptr, nt};
  const SoaView sources{s.sx.data(), s.sy.data(), s.sz.data(), s.sm.data(), ns};
  switch (kind) {
    case ForceKernel::TiledMT:
      metrics.calls_tiled_mt.inc();
      tiled_mt_accumulate(targets, sources, softening2, skip_offset,
                          s.ax.data(), s.ay.data(), s.az.data(),
                          &kernel_pool());
      break;
    case ForceKernel::SimdAvx2:
      metrics.calls_simd_avx2.inc();
      simd_accumulate(SimdTier::Avx2, targets, sources, softening2,
                      skip_offset, s.ax.data(), s.ay.data(), s.az.data());
      break;
    case ForceKernel::SimdAvx512:
      metrics.calls_simd_avx512.inc();
      simd_accumulate(SimdTier::Avx512, targets, sources, softening2,
                      skip_offset, s.ax.data(), s.ay.data(), s.az.data());
      break;
    default:
      metrics.calls_tiled.inc();
      tiled_accumulate(targets, sources, softening2, skip_offset, s.ax.data(),
                       s.ay.data(), s.az.data());
      break;
  }

  for (std::size_t i = 0; i < nt; ++i) {
    acc[i].x += s.ax[i];
    acc[i].y += s.ay[i];
    acc[i].z += s.az[i];
  }
}

}  // namespace specomp::nbody::kernels

// Scenario driver: configures and executes one simulated N-body run.
//
// This is the top-level entry the benchmark harnesses and examples use to
// regenerate the paper's measurements: pick a fleet, a network, a forward
// window and a threshold; get back makespan, per-phase times, speculation
// statistics and the final particle state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nbody/types.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "spec/stats.hpp"
#include "support/stats.hpp"

namespace specomp::nbody {

enum class Algorithm {
  Fig7Baseline,  // the paper's no-speculation algorithm (arrival-order folds)
  Speculative,   // the Fig. 3 engine; forward_window = 0 degenerates to Fig. 1
};

struct NBodyScenario {
  NBodyConfig body;
  runtime::SimConfig sim;  // cluster (p = cluster.size()), channel, overheads
  long iterations = 20;
  Algorithm algorithm = Algorithm::Speculative;
  /// FW; ignored by Fig7Baseline.
  int forward_window = 1;
  /// θ, the paper's error threshold (0.01 in Fig. 8).
  double theta = 0.01;
  /// "kinematic" (paper eq. 10) or a generic one: "hold-last", "linear",
  /// "quadratic".
  std::string speculator = "kinematic";
  /// Offer NBodyApp's cheap force correction before rolling back (paper
  /// behaviour).  Disable to force bit-identical rollback + replay repair.
  bool allow_incremental_correction = true;
  /// Let an AdaptiveWindowPolicy choose FW at run time (paper future work);
  /// forward_window is then ignored.
  bool adaptive_window = false;
  /// Same, with the hill-climbing controller (optimises iteration time).
  bool hill_climb_window = false;
  /// Window controller by name ("static", "heuristic", "hill-climb",
  /// "model"; see spec::parse_window_policy).  Empty keeps the legacy bool
  /// selection above.  "model" forces sim.record_dists on: the policy reads
  /// the live delay/service quantiles through Communicator::dist_snapshot().
  std::string window_policy;
  /// θ controller by name ("static", "adaptive"; see
  /// spec::parse_theta_policy).  Empty/"static" keeps the fixed theta.
  std::string theta_policy;
  /// Record the engine's per-iteration controller trace (window, θ, cascade
  /// depth, decision) into NBodyRunResult::control_log.
  bool record_control_log = false;
  int max_forward_window = 8;
  /// Collect the true force-error distribution (Table 3); costly.
  bool measure_force_error = false;
  /// Engine graceful degradation under faults (DESIGN.md §9): keep
  /// computing on speculated values when a peer is overdue past FW.  The
  /// examples arm this whenever a fault plan is given; leave it off for
  /// fault-free determinism baselines.
  bool graceful_degradation = false;
  /// How long the oldest speculation may stay unresolved before degrading.
  /// The testbed's healthy round trip is ~5.5-6 s propagation + backoff, so
  /// the default only fires on genuinely faulted links.
  double overdue_after_seconds = 3.0;
  /// Hard cap on outstanding speculations per peer while degraded.
  int max_degraded_window = 12;
};

struct NBodyRunResult {
  runtime::SimResult sim;
  /// Aggregated speculation statistics over all ranks (zeros for Fig. 7).
  spec::SpecStats spec;
  /// Full final particle state, in partition order.
  std::vector<Particle> final_particles;
  /// True force-error samples (only when measure_force_error was set).
  support::OnlineStats force_error;
  /// Rank 0's per-iteration controller trace (only when record_control_log
  /// was set).
  std::vector<spec::ControlSample> control_log;
  /// Mean per-iteration communication (blocked) time across ranks.
  double mean_comm_per_iteration = 0.0;
  /// Mean per-iteration times of the remaining phases across ranks.
  double mean_compute_per_iteration = 0.0;
  double mean_speculate_per_iteration = 0.0;
  double mean_check_per_iteration = 0.0;
  double mean_correct_per_iteration = 0.0;
  /// Makespan per iteration (total time / iterations).
  double time_per_iteration = 0.0;
};

/// Runs the scenario on the deterministic simulated cluster.
NBodyRunResult run_scenario(const NBodyScenario& scenario);

/// Fast-LAN channel: 10 Mb/s shared ethernet wire model with light jitter.
/// Used by tests and as a building block; the paper's measured testbed was
/// far slower — see paper_testbed_scenario().
net::ChannelConfig paper_channel_config(std::uint64_t seed = 0x5eedc0ffee);

/// The calibrated reproduction of the paper's measured environment
/// (Section 5): the heterogeneous 16-workstation fleet of
/// Cluster::paper_fleet(), a 10 Mb/s shared wire, and a large, variable
/// per-message latency (5.5 s + Exp(0.6 s)) standing in for PVM daemon
/// routing, ethernet contention and background load on time-shared hosts.
/// With N = 1000 and dt = 0.03 this lands on the paper's operating point:
/// ~6.6 s compute and ~4.5 s blocked communication per iteration at p = 16
/// without speculation, 34-38% speedup gain with FW = 1, and FW = 2 within
/// a few percent of the maximum attainable speedup.  `p` selects the
/// fastest p machines, as in the paper.
NBodyScenario paper_testbed_scenario(std::size_t p, long iterations = 10,
                                     std::uint64_t channel_seed = 0x5eedc0ffee);

}  // namespace specomp::nbody

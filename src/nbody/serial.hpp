// Serial reference simulation — ground truth for correctness tests and the
// numerical baseline the parallel trajectories are compared against.
#pragma once

#include <span>
#include <vector>

#include "nbody/types.hpp"

namespace specomp::nbody {

/// One semi-implicit Euler step of the full system (matches the parallel
/// code's integrator exactly, so trajectories are bit-comparable).
void serial_step(std::vector<Particle>& particles, double softening2, double dt);

/// Runs `iterations` steps from the given initial conditions.
std::vector<Particle> run_serial(std::vector<Particle> particles,
                                 const NBodyConfig& config, long iterations);

}  // namespace specomp::nbody

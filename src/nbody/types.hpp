// Core types of the O(N^2) gravitational N-body case study (paper, Sec. 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/vec3.hpp"

namespace specomp::nbody {

using support::Vec3;

struct Particle {
  double mass = 1.0;
  Vec3 pos;
  Vec3 vel;
};

/// Operation counts per the paper's measurements of its implementation:
/// "computing the force between a pair of particles involves about 70
/// floating point operations, speculating the position of a particle takes
/// 12 floating point operations, error checking involves 24 operations."
inline constexpr double kOpsPerPairForce = 70.0;
inline constexpr double kOpsPerSpeculation = 12.0;  // per particle
inline constexpr double kOpsPerCheck = 24.0;        // per particle
/// Position/velocity update per particle (6 mul + 6 add).
inline constexpr double kOpsPerIntegration = 12.0;

/// Doubles per particle on the wire: position + velocity (masses are
/// distributed once at startup and never change).
inline constexpr std::size_t kDoublesPerParticle = 6;

enum class InitKind {
  UniformCube,    // uniform positions in a cube, small random velocities
  Plummer,        // Plummer sphere with virial velocity dispersion
  RotatingDisk,   // cold disk in near-circular orbits (smooth trajectories)
};

struct NBodyConfig {
  std::size_t n = 1000;
  double dt = 1.0e-3;
  /// Plummer softening epsilon^2 keeps close encounters bounded.
  double softening2 = 1.0e-4;
  InitKind init = InitKind::Plummer;
  std::uint64_t seed = 20240101;
  /// Time integrator (see nbody/integrators/): "leapfrog" (default, the
  /// paper's kick-drift update with an exact cheap correction), "rk4", or
  /// "rk45" (embedded adaptive).  Drivers expose it as --integrator=.
  std::string integrator = "leapfrog";
};

/// Contiguous block partition of particles over ranks, proportional to
/// processor capacity (paper eqs. 4-5: N_i / M_i equal).
struct Partition {
  std::vector<std::size_t> counts;
  std::vector<std::size_t> offsets;  // offsets[r] = first index of rank r

  static Partition from_counts(const std::vector<std::size_t>& counts) {
    Partition part;
    part.counts = counts;
    part.offsets.resize(counts.size());
    std::size_t at = 0;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      part.offsets[r] = at;
      at += counts[r];
    }
    return part;
  }

  std::size_t begin(std::size_t rank) const { return offsets[rank]; }
  std::size_t end(std::size_t rank) const { return offsets[rank] + counts[rank]; }
  std::size_t total() const {
    return counts.empty() ? 0 : offsets.back() + counts.back();
  }
};

}  // namespace specomp::nbody

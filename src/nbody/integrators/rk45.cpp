// Embedded Fehlberg 4(5) pair with deterministic step control.
//
// Each attempt runs the six-stage RKF tableau on the coupled (r, v) system
// and advances with the 5th-order weights (local extrapolation); the
// 4th/5th-order difference gives the local error estimate.  The controller
// is deliberately NOT the usual continuous step-size PI loop: that couples
// the step sequence to floating-point noise in the estimate, which would
// make trajectories fragile across kernels.  Instead the whole dt is
// retried as 2^k equal substeps — k grows until every substep's scaled
// error is within tol (capped at kMaxHalvings, then the result is accepted
// as-is).  The split therefore depends only on the state, never on timing
// or randomness, and all evaluations of failed attempts are reported in the
// returned count so the app bills them into virtual time.
#include <algorithm>
#include <cmath>
#include <vector>

#include "nbody/integrators/integrator.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody::integrators {

namespace {

// Fehlberg coefficients (Butcher tableau, row-major lower triangle).
constexpr double kA[6][5] = {
    {},
    {1.0 / 4.0},
    {3.0 / 32.0, 9.0 / 32.0},
    {1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0},
    {439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0},
    {-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0},
};
constexpr double kB5[6] = {16.0 / 135.0,     0.0,        6656.0 / 12825.0,
                           28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0};
constexpr double kB4[6] = {25.0 / 216.0, 0.0,  1408.0 / 2565.0,
                           2197.0 / 4104.0, -1.0 / 5.0, 0.0};

/// 2^8 = 256 substeps of the engine dt is already far below any sensible
/// step size; past this the result is accepted rather than refined.
constexpr int kMaxHalvings = 8;

class Rk45 final : public Integrator {
 public:
  explicit Rk45(double tol) : tol_(tol) { SPEC_EXPECTS(tol > 0.0); }

  std::size_t step(std::span<Vec3> pos, std::span<Vec3> vel, double dt,
                   ForceModel& force, std::span<Vec3> acc_out) override {
    const std::size_t n = pos.size();
    r0_.assign(pos.begin(), pos.end());
    v0_.assign(vel.begin(), vel.end());
    r_.resize(n);
    v_.resize(n);
    rt_.resize(n);
    for (auto& k : kr_) k.resize(n);
    for (auto& k : kv_) k.resize(n);

    std::size_t evals = 0;
    for (int halvings = 0;; ++halvings) {
      const std::size_t substeps = std::size_t{1} << halvings;
      const bool last_resort = halvings == kMaxHalvings;
      const double h = dt / static_cast<double>(substeps);
      std::copy(r0_.begin(), r0_.end(), r_.begin());
      std::copy(v0_.begin(), v0_.end(), v_.begin());
      bool ok = true;
      for (std::size_t s = 0; s < substeps; ++s) {
        evals += 6;
        const bool within_tol =
            substep(h, force, s == 0 && halvings == 0 ? acc_out
                                                      : std::span<Vec3>{});
        if (!within_tol) {
          ok = false;
          // A failed substep aborts this attempt — except at the cap, where
          // the remaining substeps still run so the returned state covers
          // the whole dt (accepted as-is, tolerance notwithstanding).
          if (!last_resort) break;
        }
      }
      if (ok || last_resort) break;
    }
    std::copy(r_.begin(), r_.end(), pos.begin());
    std::copy(v_.begin(), v_.end(), vel.begin());
    // acc_out was filled by the very first stage of the first attempt (the
    // accelerations at the initial positions — identical for every retry,
    // since each attempt restarts from the same state).
    return evals;
  }

  std::string_view name() const noexcept override { return "rk45"; }

 private:
  /// One tableau evaluation advancing (r_, v_) by h; returns whether the
  /// scaled embedded error estimate is within tol.  When `first_acc` is
  /// non-empty, stage 0's accelerations are copied into it.
  bool substep(double h, ForceModel& force, std::span<Vec3> first_acc) {
    const std::size_t n = r_.size();
    for (std::size_t stage = 0; stage < 6; ++stage) {
      for (std::size_t i = 0; i < n; ++i) {
        Vec3 ri = r_[i];
        Vec3 vi = v_[i];
        for (std::size_t j = 0; j < stage; ++j) {
          ri += (h * kA[stage][j]) * kr_[j][i];
          vi += (h * kA[stage][j]) * kv_[j][i];
        }
        rt_[i] = ri;
        kr_[stage][i] = vi;  // dr/dt at this stage
      }
      force.eval(rt_, kv_[stage]);
      if (stage == 0 && !first_acc.empty())
        std::copy(kv_[0].begin(), kv_[0].end(), first_acc.begin());
    }

    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 dr5, dv5, dr_err, dv_err;
      for (std::size_t stage = 0; stage < 6; ++stage) {
        dr5 += (h * kB5[stage]) * kr_[stage][i];
        dv5 += (h * kB5[stage]) * kv_[stage][i];
        dr_err += (h * (kB5[stage] - kB4[stage])) * kr_[stage][i];
        dv_err += (h * (kB5[stage] - kB4[stage])) * kv_[stage][i];
      }
      const double rscale = tol_ * (1.0 + r_[i].norm());
      const double vscale = tol_ * (1.0 + v_[i].norm());
      worst = std::max(worst, dr_err.norm() / rscale);
      worst = std::max(worst, dv_err.norm() / vscale);
      r_[i] += dr5;
      v_[i] += dv5;
    }
    return worst <= 1.0;
  }

  double tol_;
  std::vector<Vec3> r0_, v0_;  // state at step entry (retries restart here)
  std::vector<Vec3> r_, v_;    // working state across substeps
  std::vector<Vec3> rt_;       // stage position scratch
  std::vector<Vec3> kr_[6], kv_[6];
};

}  // namespace

std::unique_ptr<Integrator> make_rk45(double tol) {
  return std::make_unique<Rk45>(tol);
}

}  // namespace specomp::nbody::integrators

#include "nbody/integrators/integrator.hpp"

namespace specomp::nbody::integrators {

std::unique_ptr<Integrator> make_integrator(std::string_view name) {
  if (name == "leapfrog") return make_leapfrog();
  if (name == "rk4") return make_rk4();
  if (name == "rk45") return make_rk45(kRk45DefaultTol);
  return nullptr;
}

std::string_view integrator_names() noexcept { return "leapfrog|rk4|rk45"; }

std::unique_ptr<Integrator> make_integrator_cli(std::string_view name,
                                               std::string& error) {
  if (auto integ = make_integrator(name)) return integ;
  error = "unknown --integrator '";
  error += name;
  error += "' (valid: ";
  error += integrator_names();
  error += ")";
  return nullptr;
}

}  // namespace specomp::nbody::integrators

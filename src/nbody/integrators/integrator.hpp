// Pluggable time integrators for the N-body application (--integrator=).
//
// The speculation engine is integrator-agnostic: SyncIterativeApp only asks
// for "advance the local block one dt".  What changes with the integrator is
// (a) how many force evaluations one step costs — which the app must bill
// into compute_ops so the paper's virtual-time model stays honest — and
// (b) whether the cheap linear correction of Section 5 is exact.  The
// kick-drift update is linear in the accelerations, so a mispredicted
// peer's contribution can be patched by two partial force passes; a
// multi-stage integrator samples forces at intermediate positions that
// themselves depend on the speculated data, so the app falls back to a full
// recompute on rejection (see NBodyApp::correct_last_step and DESIGN.md
// §11).
//
// Determinism contract: every integrator here is deterministic — stage
// order is fixed, and the adaptive controller (rk45) decides step splits
// from the state alone (no wall clock, no randomness), so a run is
// reproducible bit-for-bit for a fixed kernel tier.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "nbody/types.hpp"

namespace specomp::nbody::integrators {

/// Force oracle handed to Integrator::step.  `eval` overwrites `acc` with
/// the accelerations of the local block evaluated at candidate positions
/// `local_pos` (peer positions, masses and softening are captured by the
/// implementation).  Each call is one full force evaluation — integrators
/// must report how many they made.
class ForceModel {
 public:
  virtual ~ForceModel() = default;
  virtual void eval(std::span<const Vec3> local_pos, std::span<Vec3> acc) = 0;
};

class Integrator {
 public:
  virtual ~Integrator() = default;

  /// Advances (pos, vel) in place by one dt using `force`.  `acc_out` is
  /// overwritten with the accelerations at the *initial* positions (the
  /// first stage's evaluation) — the app keeps them for the correction
  /// patch and the force-error instrumentation.  Returns the number of
  /// ForceModel::eval calls made (>= 1).
  virtual std::size_t step(std::span<Vec3> pos, std::span<Vec3> vel, double dt,
                           ForceModel& force, std::span<Vec3> acc_out) = 0;

  virtual std::string_view name() const noexcept = 0;
};

/// Kick-drift update extracted verbatim from the original compute_step path
/// (forces.hpp euler_step): one force evaluation, bit-identical to the
/// pre-integrator-subsystem code.  This is the oracle the others are
/// validated against and the only integrator with an exact cheap correction.
std::unique_ptr<Integrator> make_leapfrog();

/// Classical 4th-order Runge-Kutta: four force evaluations per step.
std::unique_ptr<Integrator> make_rk4();

/// Embedded Fehlberg 4(5) pair with deterministic step control: six force
/// evaluations per attempt; when the embedded error estimate exceeds `tol`
/// the whole dt is retried as 2^k equal substeps (k grows until every
/// substep passes, capped), so the split depends only on the state.
std::unique_ptr<Integrator> make_rk45(double tol);

/// Default rk45 tolerance (see make_rk45).
inline constexpr double kRk45DefaultTol = 1e-8;

/// "leapfrog" | "rk4" | "rk45" -> instance (nullopt-equivalent nullptr on
/// unknown names; drivers should fail fast via make_integrator_cli).
std::unique_ptr<Integrator> make_integrator(std::string_view name);

/// Every valid --integrator value, "|"-separated, for driver errors.
std::string_view integrator_names() noexcept;

/// Driver-facing construction: unknown names yield nullptr and fill `error`
/// with a message listing the valid integrators.
std::unique_ptr<Integrator> make_integrator_cli(std::string_view name,
                                               std::string& error);

}  // namespace specomp::nbody::integrators

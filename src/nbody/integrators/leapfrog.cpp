// The original compute_step integrator, unchanged: one force evaluation at
// the current positions, then the semi-implicit (kick-drift) update of
// forces.hpp euler_step.  Serves as the bit-identical oracle for the
// integrator subsystem — NBodyApp with --integrator=leapfrog must reproduce
// the pre-subsystem trajectory exactly.
#include "nbody/forces.hpp"
#include "nbody/integrators/integrator.hpp"

namespace specomp::nbody::integrators {

namespace {

class Leapfrog final : public Integrator {
 public:
  std::size_t step(std::span<Vec3> pos, std::span<Vec3> vel, double dt,
                   ForceModel& force, std::span<Vec3> acc_out) override {
    force.eval(pos, acc_out);
    euler_step(pos, vel, acc_out, dt);
    return 1;
  }

  std::string_view name() const noexcept override { return "leapfrog"; }
};

}  // namespace

std::unique_ptr<Integrator> make_leapfrog() {
  return std::make_unique<Leapfrog>();
}

}  // namespace specomp::nbody::integrators

// Classical 4th-order Runge-Kutta on the second-order system r'' = a(r).
//
// With a force that depends on positions only, the standard (r, v) tableau
// collapses to the textbook result
//   r1 = r0 + h v0 + (h^2/6) (a1 + a2 + a3)
//   v1 = v0 + (h/6) (a1 + 2 a2 + 2 a3 + a4)
// with a1 = a(r0), a2 = a(r0 + (h/2) v0),
//      a3 = a(r0 + (h/2) v0 + (h^2/4) a1),
//      a4 = a(r0 + h v0 + (h^2/2) a2):
// four force evaluations per step, fixed stage order (deterministic).
#include <vector>

#include "nbody/integrators/integrator.hpp"

namespace specomp::nbody::integrators {

namespace {

class Rk4 final : public Integrator {
 public:
  std::size_t step(std::span<Vec3> pos, std::span<Vec3> vel, double dt,
                   ForceModel& force, std::span<Vec3> acc_out) override {
    const std::size_t n = pos.size();
    const double h = dt;
    const double h2 = 0.5 * dt;
    r0_.assign(pos.begin(), pos.end());
    v0_.assign(vel.begin(), vel.end());
    rs_.resize(n);
    a2_.resize(n);
    a3_.resize(n);
    a4_.resize(n);

    force.eval(pos, acc_out);  // a1 at the initial positions
    for (std::size_t i = 0; i < n; ++i) rs_[i] = r0_[i] + h2 * v0_[i];
    force.eval(rs_, a2_);
    for (std::size_t i = 0; i < n; ++i)
      rs_[i] = r0_[i] + h2 * (v0_[i] + h2 * acc_out[i]);
    force.eval(rs_, a3_);
    for (std::size_t i = 0; i < n; ++i)
      rs_[i] = r0_[i] + h * (v0_[i] + h2 * a2_[i]);
    force.eval(rs_, a4_);

    const double w = h / 6.0;
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = r0_[i] + h * v0_[i] + (h * w) * (acc_out[i] + a2_[i] + a3_[i]);
      vel[i] = v0_[i] +
               w * (acc_out[i] + 2.0 * a2_[i] + 2.0 * a3_[i] + a4_[i]);
    }
    return 4;
  }

  std::string_view name() const noexcept override { return "rk4"; }

 private:
  std::vector<Vec3> r0_, v0_, rs_, a2_, a3_, a4_;
};

}  // namespace

std::unique_ptr<Integrator> make_rk4() { return std::make_unique<Rk4>(); }

}  // namespace specomp::nbody::integrators

#include "nbody/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "nbody/app.hpp"
#include "nbody/baseline.hpp"
#include "nbody/init.hpp"
#include "spec/engine.hpp"
#include "support/contracts.hpp"

namespace specomp::nbody {

NBodyScenario paper_testbed_scenario(std::size_t p, long iterations,
                                     std::uint64_t channel_seed) {
  NBodyScenario s;
  s.body.n = 1000;
  s.body.dt = 0.03;
  s.body.softening2 = 1e-3;
  s.body.init = InitKind::Plummer;
  s.body.seed = 42;
  s.iterations = iterations;
  s.algorithm = Algorithm::Speculative;
  s.forward_window = 1;
  s.theta = 0.01;
  s.sim.cluster = runtime::Cluster::paper_fleet().prefix(p);
  s.sim.channel = paper_channel_config(channel_seed);
  // Large, variable per-message latency: PVM daemon store-and-forward,
  // ethernet contention and background load on 1994 time-shared hosts.
  s.sim.channel.propagation = des::SimTime::millis(5500);
  s.sim.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(600));
  s.sim.send_sw_time = des::SimTime::millis(3);
  return s;
}

net::ChannelConfig paper_channel_config(std::uint64_t seed) {
  net::ChannelConfig config;
  config.bandwidth_bytes_per_sec = 1.25e6;  // 10 Mb/s ethernet
  config.per_message_overhead_bytes = 64;
  config.propagation = des::SimTime::micros(100);
  // Modest exponential jitter models the paper's "large variations due to
  // non-deterministic network traffic".
  config.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(2));
  config.seed = seed;
  return config;
}

NBodyRunResult run_scenario(const NBodyScenario& scenario) {
  const std::size_t p = scenario.sim.cluster.size();
  SPEC_EXPECTS(p >= 1);
  SPEC_EXPECTS(scenario.iterations >= 1);

  // Resolve named policy kinds up front so a typo fails before the run.
  spec::WindowPolicyKind window_kind = spec::WindowPolicyKind::Static;
  if (!scenario.window_policy.empty()) {
    const auto parsed = spec::parse_window_policy(scenario.window_policy);
    if (!parsed)
      throw std::invalid_argument("NBodyScenario: unknown window_policy \"" +
                                  scenario.window_policy + "\"");
    window_kind = *parsed;
  }
  spec::ThetaPolicyKind theta_kind = spec::ThetaPolicyKind::Static;
  if (!scenario.theta_policy.empty()) {
    const auto parsed = spec::parse_theta_policy(scenario.theta_policy);
    if (!parsed)
      throw std::invalid_argument("NBodyScenario: unknown theta_policy \"" +
                                  scenario.theta_policy + "\"");
    theta_kind = *parsed;
  }

  runtime::SimConfig sim_config = scenario.sim;
  // The model controller consumes live DistSketch quantiles; without
  // recording it would hold at its initial window forever.
  if (window_kind == spec::WindowPolicyKind::Model)
    sim_config.record_dists = true;

  const std::vector<Particle> initial = make_initial_conditions(scenario.body);
  const Partition partition = Partition::from_counts(
      scenario.sim.cluster.proportional_partition(initial.size()));

  // Per-rank output slots; safe to write from rank bodies on both backends
  // (disjoint slots, fully ordered on the simulated one).
  std::vector<std::vector<Particle>> finals(p);
  std::vector<spec::SpecStats> stats(p);
  std::vector<support::OnlineStats> force_errors(p);
  std::vector<spec::ControlSample> control_log;

  const runtime::RankBody body = [&](runtime::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    if (scenario.algorithm == Algorithm::Fig7Baseline) {
      run_fig7_rank(comm, scenario.body, partition, initial,
                    scenario.iterations, finals[rank]);
      return;
    }
    NBodyApp app(scenario.body, partition, initial, comm.rank());
    app.enable_force_error_measurement(scenario.measure_force_error);
    app.set_accept_threshold(scenario.theta);
    spec::EngineConfig engine_config;
    engine_config.forward_window = scenario.forward_window;
    engine_config.threshold = scenario.theta;
    engine_config.allow_incremental_correction =
        scenario.allow_incremental_correction;
    if (window_kind != spec::WindowPolicyKind::Static) {
      engine_config.window_policy =
          spec::make_window_policy(window_kind, scenario.forward_window);
      engine_config.max_forward_window = scenario.max_forward_window;
    } else if (scenario.adaptive_window) {
      engine_config.window_policy = std::make_shared<spec::AdaptiveWindowPolicy>();
      engine_config.max_forward_window = scenario.max_forward_window;
    } else if (scenario.hill_climb_window) {
      engine_config.window_policy = std::make_shared<spec::HillClimbWindowPolicy>();
      engine_config.max_forward_window = scenario.max_forward_window;
    }
    if (theta_kind != spec::ThetaPolicyKind::Static)
      engine_config.theta_policy =
          spec::make_theta_policy(theta_kind, scenario.theta);
    engine_config.record_control_log =
        scenario.record_control_log && comm.rank() == 0;
    engine_config.graceful_degradation = scenario.graceful_degradation;
    engine_config.overdue_after_seconds = scenario.overdue_after_seconds;
    engine_config.max_degraded_window = scenario.max_degraded_window;
    if (engine_config.forward_window > 0 ||
        engine_config.window_policy != nullptr ||
        engine_config.graceful_degradation) {
      engine_config.speculator =
          scenario.speculator == "kinematic"
              ? std::make_shared<KinematicSpeculator>(scenario.body.dt)
              : spec::make_speculator(scenario.speculator);
    }
    spec::SpecEngine engine(comm, app, engine_config,
                            NBodyApp::initial_blocks(partition, initial));
    stats[rank] = engine.run(scenario.iterations);
    finals[rank] = app.local_particles();
    force_errors[rank] = app.force_error_stats();
    if (engine_config.record_control_log) control_log = engine.control_log();
  };

  NBodyRunResult result;
  result.sim = runtime::run_simulated(sim_config, body);
  result.control_log = std::move(control_log);

  for (std::size_t r = 0; r < p; ++r) {
    result.spec.merge(stats[r]);
    result.force_error.merge(force_errors[r]);
    for (const auto& particle : finals[r])
      result.final_particles.push_back(particle);
  }

  const auto iters = static_cast<double>(scenario.iterations);
  double comm_sum = 0.0;
  double compute_sum = 0.0;
  double speculate_sum = 0.0;
  double check_sum = 0.0;
  double correct_sum = 0.0;
  for (const auto& timer : result.sim.timers) {
    comm_sum += timer.get(runtime::Phase::Communicate).to_seconds();
    compute_sum += timer.get(runtime::Phase::Compute).to_seconds();
    speculate_sum += timer.get(runtime::Phase::Speculate).to_seconds();
    check_sum += timer.get(runtime::Phase::Check).to_seconds();
    correct_sum += timer.get(runtime::Phase::Correct).to_seconds();
  }
  const double denom = static_cast<double>(p) * iters;
  result.mean_comm_per_iteration = comm_sum / denom;
  result.mean_compute_per_iteration = compute_sum / denom;
  result.mean_speculate_per_iteration = speculate_sum / denom;
  result.mean_check_per_iteration = check_sum / denom;
  result.mean_correct_per_iteration = correct_sum / denom;
  result.time_per_iteration = result.sim.makespan_seconds / iters;
  return result;
}

}  // namespace specomp::nbody

#include "net/latency.hpp"

namespace specomp::net {

des::SimTime TransientSpike::delay(Rank src, Rank dst, std::size_t,
                                   des::SimTime now, support::Xoshiro256&) {
  des::SimTime total = des::SimTime::zero();
  for (const auto& rule : rules_) {
    const bool src_ok = rule.src < 0 || rule.src == src;
    const bool dst_ok = rule.dst < 0 || rule.dst == dst;
    if (src_ok && dst_ok && now >= rule.window_begin && now < rule.window_end)
      total += rule.extra;
  }
  return total;
}

des::SimTime CompositeLatency::delay(Rank src, Rank dst, std::size_t bytes,
                                     des::SimTime now,
                                     support::Xoshiro256& rng) {
  des::SimTime total = des::SimTime::zero();
  for (const auto& part : parts_) total += part->delay(src, dst, bytes, now, rng);
  return total;
}

}  // namespace specomp::net

#include "net/channel.hpp"

#include <string>

#include "support/contracts.hpp"

namespace specomp::net {

namespace {

double checked_effective_bandwidth(const ChannelConfig& config) {
  SPEC_EXPECTS(config.bandwidth_bytes_per_sec > 0.0);
  SPEC_EXPECTS(config.background_load >= 0.0 && config.background_load < 1.0);
  return config.bandwidth_bytes_per_sec * (1.0 - config.background_load);
}

}  // namespace

SharedMediumChannel::SharedMediumChannel(ChannelConfig config)
    : config_(std::move(config)),
      effective_bandwidth_(checked_effective_bandwidth(config_)),
      medium_("shared-medium"),
      rng_(config_.seed) {}

des::SimTime SharedMediumChannel::post(const Message& msg, des::SimTime now) {
  const std::size_t wire_bytes =
      msg.size_bytes() + config_.per_message_overhead_bytes;
  const auto tx = des::SimTime::seconds(static_cast<double>(wire_bytes) /
                                        effective_bandwidth_);
  // The shared medium serialises transmissions: later senders wait for the
  // wire to free up, which is where contention (and the linear growth of
  // t_comm with p for all-to-all traffic) comes from.
  const des::SimTime tx_done = medium_.serve(now, tx);
  des::SimTime delivered = tx_done + config_.propagation;
  if (config_.extra_delay != nullptr) {
    delivered += config_.extra_delay->delay(msg.src, msg.dst, wire_bytes, now, rng_);
  }
  record(wire_bytes, now, delivered);
  return delivered;
}

PointToPointNetwork::PointToPointNetwork(ChannelConfig config, int num_ranks)
    : config_(std::move(config)),
      effective_bandwidth_(checked_effective_bandwidth(config_)),
      num_ranks_(num_ranks),
      rng_(config_.seed) {
  SPEC_EXPECTS(num_ranks > 0);
  links_.reserve(static_cast<std::size_t>(num_ranks) * num_ranks);
  for (int s = 0; s < num_ranks; ++s)
    for (int d = 0; d < num_ranks; ++d)
      links_.emplace_back("link-" + std::to_string(s) + "-" + std::to_string(d));
}

des::Resource& PointToPointNetwork::link(Rank src, Rank dst) {
  SPEC_EXPECTS(src >= 0 && src < num_ranks_);
  SPEC_EXPECTS(dst >= 0 && dst < num_ranks_);
  return links_[static_cast<std::size_t>(src) * num_ranks_ + dst];
}

des::SimTime PointToPointNetwork::post(const Message& msg, des::SimTime now) {
  const std::size_t wire_bytes =
      msg.size_bytes() + config_.per_message_overhead_bytes;
  const auto tx = des::SimTime::seconds(static_cast<double>(wire_bytes) /
                                        effective_bandwidth_);
  const des::SimTime tx_done = link(msg.src, msg.dst).serve(now, tx);
  des::SimTime delivered = tx_done + config_.propagation;
  if (config_.extra_delay != nullptr) {
    delivered += config_.extra_delay->delay(msg.src, msg.dst, wire_bytes, now, rng_);
  }
  record(wire_bytes, now, delivered);
  return delivered;
}

}  // namespace specomp::net

// Latency models.
//
// The paper's testbed was a shared ethernet whose delays were "large and
// often subject to large variations due to non-deterministic network
// traffic".  These models supply the *variable* component of delay added on
// top of deterministic transmission time: constant propagation, random
// jitter, occasional random spikes, and scripted transient spikes on a
// specific path (used to reproduce the scenario of the paper's Figure 4).
#pragma once

#include <memory>
#include <vector>

#include "des/time.hpp"
#include "net/message.hpp"
#include "support/rng.hpp"

namespace specomp::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Extra delay applied to a message from `src` to `dst` posted at `now`.
  virtual des::SimTime delay(Rank src, Rank dst, std::size_t bytes,
                             des::SimTime now, support::Xoshiro256& rng) = 0;
};

/// Always the same delay (the model's constant-t_comm assumption).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(des::SimTime value) : value_(value) {}
  des::SimTime delay(Rank, Rank, std::size_t, des::SimTime,
                     support::Xoshiro256&) override {
    return value_;
  }

 private:
  des::SimTime value_;
};

/// Uniform jitter in [0, max_jitter).
class UniformJitter final : public LatencyModel {
 public:
  explicit UniformJitter(des::SimTime max_jitter) : max_(max_jitter) {}
  des::SimTime delay(Rank, Rank, std::size_t, des::SimTime,
                     support::Xoshiro256& rng) override {
    return des::SimTime::seconds(rng.uniform(0.0, max_.to_seconds()));
  }

 private:
  des::SimTime max_;
};

/// Exponentially distributed jitter with the given mean — heavy enough a
/// tail to occasionally stall one path, which is what FW > 1 exploits.
class ExponentialJitter final : public LatencyModel {
 public:
  explicit ExponentialJitter(des::SimTime mean) : mean_(mean) {}
  des::SimTime delay(Rank, Rank, std::size_t, des::SimTime,
                     support::Xoshiro256& rng) override {
    return des::SimTime::seconds(rng.exponential(mean_.to_seconds()));
  }

 private:
  des::SimTime mean_;
};

/// With probability `prob`, adds `magnitude` (a burst of cross traffic).
class RandomSpike final : public LatencyModel {
 public:
  RandomSpike(double prob, des::SimTime magnitude)
      : prob_(prob), magnitude_(magnitude) {}
  des::SimTime delay(Rank, Rank, std::size_t, des::SimTime,
                     support::Xoshiro256& rng) override {
    return rng.bernoulli(prob_) ? magnitude_ : des::SimTime::zero();
  }

 private:
  double prob_;
  des::SimTime magnitude_;
};

/// Scripted spike: messages from `src` to `dst` posted inside
/// [window_begin, window_end) experience `extra` delay.  Reproduces the
/// "first message from P1 to P2 is delayed in transit" scenario of Fig. 4.
struct SpikeRule {
  Rank src = -1;  // -1 matches any rank
  Rank dst = -1;
  des::SimTime window_begin = des::SimTime::zero();
  des::SimTime window_end = des::SimTime::zero();
  des::SimTime extra = des::SimTime::zero();
};

class TransientSpike final : public LatencyModel {
 public:
  explicit TransientSpike(std::vector<SpikeRule> rules)
      : rules_(std::move(rules)) {}
  des::SimTime delay(Rank src, Rank dst, std::size_t, des::SimTime now,
                     support::Xoshiro256&) override;

 private:
  std::vector<SpikeRule> rules_;
};

/// Sums the delays of its parts.
class CompositeLatency final : public LatencyModel {
 public:
  void add(std::unique_ptr<LatencyModel> part) { parts_.push_back(std::move(part)); }
  des::SimTime delay(Rank src, Rank dst, std::size_t bytes, des::SimTime now,
                     support::Xoshiro256& rng) override;

 private:
  std::vector<std::unique_ptr<LatencyModel>> parts_;
};

}  // namespace specomp::net

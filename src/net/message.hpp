// Message record exchanged between simulated processors.
//
// Mirrors the PVM usage in the paper: asynchronous tagged sends between
// ranks, received by (source, tag) matching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/time.hpp"

namespace specomp::net {

using Rank = int;

/// Well-known tags used by the applications; user code may use any value.
enum Tag : int {
  kTagState = 1,      // iteration state exchange (X_j(t))
  kTagBarrier = 2,    // barrier protocol
  kTagReduce = 3,     // reduction protocol
  kTagUser = 100,     // first tag free for applications
};

struct Message {
  Rank src = -1;
  Rank dst = -1;
  int tag = 0;
  /// Sender-assigned sequence number; with FIFO channels this lets receivers
  /// distinguish successive iterations of the same (src, tag) stream.
  std::uint64_t seq = 0;
  des::SimTime sent_at = des::SimTime::zero();
  des::SimTime delivered_at = des::SimTime::zero();
  std::vector<std::byte> payload;

  std::size_t size_bytes() const noexcept { return payload.size(); }
};

}  // namespace specomp::net

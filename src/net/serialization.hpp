// Byte-level serialisation of message payloads.
//
// Only trivially copyable types and contiguous ranges of them are supported,
// matching what the paper's application (particle state vectors) needs while
// keeping wire sizes explicit — message length drives transmission time in
// the network model, so serialisation *is* part of the performance model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "support/contracts.hpp"

namespace specomp::net {

class ByteWriter {
 public:
  ByteWriter() = default;

  /// Builds on top of `reuse`'s storage (cleared, capacity kept), so pooled
  /// buffers (see buffer_pool.hpp) avoid re-allocating per message.
  explicit ByteWriter(std::vector<std::byte> reuse) : bytes_(std::move(reuse)) {
    bytes_.clear();
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> values) {
    write<std::uint64_t>(values.size());
    const auto* raw = reinterpret_cast<const std::byte*>(values.data());
    bytes_.insert(bytes_.end(), raw, raw + values.size_bytes());
  }

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    write_span(std::span<const T>(values));
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::byte> take() && { return std::move(bytes_); }
  const std::vector<std::byte>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    SPEC_EXPECTS(pos_ + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    SPEC_EXPECTS(pos_ + count * sizeof(T) <= bytes_.size());
    std::vector<T> values(count);
    std::memcpy(values.data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return values;
  }

  /// Zero-copy variant of read_vector: a view into the reader's buffer,
  /// valid only while the underlying payload is alive and unmoved.  Use when
  /// the caller consumes the values immediately (copies into its own state);
  /// the span must not outlive the message.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::span<const T> read_span() {
    const auto count = read<std::uint64_t>();
    SPEC_EXPECTS(pos_ + count * sizeof(T) <= bytes_.size());
    const std::byte* raw = bytes_.data() + pos_;
    // Payload vectors are allocator-aligned and every write_span is preceded
    // by an 8-byte count, so in-place reinterpretation is safe; guard anyway
    // against payloads built by hand with odd prefixes.
    SPEC_EXPECTS(reinterpret_cast<std::uintptr_t>(raw) % alignof(T) == 0);
    pos_ += count * sizeof(T);
    return {reinterpret_cast<const T*>(raw), static_cast<std::size_t>(count)};
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace specomp::net

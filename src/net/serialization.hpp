// Byte-level serialisation of message payloads.
//
// Only trivially copyable types and contiguous ranges of them are supported,
// matching what the paper's application (particle state vectors) needs while
// keeping wire sizes explicit — message length drives transmission time in
// the network model, so serialisation *is* part of the performance model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "support/contracts.hpp"

namespace specomp::net {

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> values) {
    write<std::uint64_t>(values.size());
    const auto* raw = reinterpret_cast<const std::byte*>(values.data());
    bytes_.insert(bytes_.end(), raw, raw + values.size_bytes());
  }

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    write_span(std::span<const T>(values));
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::byte> take() && { return std::move(bytes_); }
  const std::vector<std::byte>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    SPEC_EXPECTS(pos_ + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    SPEC_EXPECTS(pos_ + count * sizeof(T) <= bytes_.size());
    std::vector<T> values(count);
    std::memcpy(values.data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return values;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace specomp::net

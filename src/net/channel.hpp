// Network channel models.
//
// A Channel answers one question for the runtime: given a message posted at
// simulated time `now`, when is it delivered?  Two concrete models are
// provided:
//
//  * SharedMediumChannel — one ethernet-like medium shared by all ranks.
//    Transmissions are FIFO-serialised (des::Resource), so all-to-all
//    exchanges contend and aggregate communication time grows roughly
//    linearly with the number of processors, exactly the t_comm(p) behaviour
//    the paper's model assumes and its testbed exhibited.
//  * PointToPointNetwork — independent full-duplex links per ordered pair
//    (an idealised switch), useful as a contention-free baseline.
//
// Both add a configurable LatencyModel on top (propagation, jitter, spikes).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/resource.hpp"
#include "des/time.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace specomp::net {

struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  support::OnlineStats delay_seconds;  // post-to-delivery per message
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Computes the delivery time of `msg` posted at `now` and updates
  /// internal state (medium occupancy, statistics).  Must be called in
  /// nondecreasing `now` order — guaranteed under the DES kernel.
  virtual des::SimTime post(const Message& msg, des::SimTime now) = 0;

  const ChannelStats& stats() const noexcept { return stats_; }

 protected:
  void record(std::size_t bytes, des::SimTime posted, des::SimTime delivered) {
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.delay_seconds.add((delivered - posted).to_seconds());
  }

 private:
  ChannelStats stats_;
};

/// Configuration shared by both channel kinds.
struct ChannelConfig {
  /// Raw medium bandwidth in bytes/second (10 Mb/s ethernet ~ 1.25e6).
  double bandwidth_bytes_per_sec = 1.25e6;
  /// Fraction of the medium consumed by unrelated background traffic;
  /// effective bandwidth is scaled by (1 - background_load).
  double background_load = 0.0;
  /// Fixed per-message wire/protocol overhead in bytes (headers, framing).
  std::size_t per_message_overhead_bytes = 64;
  /// Constant propagation delay.
  des::SimTime propagation = des::SimTime::micros(100);
  /// Optional extra-delay model (jitter, spikes); may be null.
  std::shared_ptr<LatencyModel> extra_delay;
  /// Seed for the channel's jitter stream.
  std::uint64_t seed = 0x5eedc0ffee;
};

class SharedMediumChannel final : public Channel {
 public:
  explicit SharedMediumChannel(ChannelConfig config);

  des::SimTime post(const Message& msg, des::SimTime now) override;

  const des::Resource& medium() const noexcept { return medium_; }
  double effective_bandwidth() const noexcept { return effective_bandwidth_; }

 private:
  ChannelConfig config_;
  double effective_bandwidth_;
  des::Resource medium_;
  support::Xoshiro256 rng_;
};

class PointToPointNetwork final : public Channel {
 public:
  PointToPointNetwork(ChannelConfig config, int num_ranks);

  des::SimTime post(const Message& msg, des::SimTime now) override;

 private:
  des::Resource& link(Rank src, Rank dst);

  ChannelConfig config_;
  double effective_bandwidth_;
  int num_ranks_;
  std::vector<des::Resource> links_;  // num_ranks^2, indexed src*n+dst
  support::Xoshiro256 rng_;
};

}  // namespace specomp::net

#include "net/buffer_pool.hpp"

namespace specomp::net {

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace specomp::net

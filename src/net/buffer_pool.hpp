// Recycled payload buffers.
//
// Every message send allocates a payload vector and every receive frees one;
// over a sweep that is millions of identical-size allocations.  BufferPool
// keeps a small free list of retired vectors so steady-state send/recv
// traffic reuses capacity instead of hitting the allocator.
//
// The pool is per-thread (see local()): the simulated backend runs each
// rank's sends and receives on distinct process threads, and the thread
// backend is concurrent by construction, so a thread-local pool needs no
// locking.  Buffers may migrate between threads (sent by one rank, released
// by another); that only transfers capacity between pools and is harmless.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace specomp::net {

class BufferPool {
 public:
  /// Retired buffers kept per thread; beyond this, release() lets the
  /// vector free normally.  Bounds worst-case retention to a few MB even
  /// for pathological payload sizes.
  static constexpr std::size_t kMaxPooled = 64;

  /// Returns an empty vector, reusing pooled capacity when available.
  std::vector<std::byte> acquire() {
    if (pool_.empty()) return {};
    std::vector<std::byte> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    return buf;
  }

  /// Retires a buffer's storage into the pool.
  void release(std::vector<std::byte>&& buf) noexcept {
    if (buf.capacity() == 0 || pool_.size() >= kMaxPooled) return;
    pool_.push_back(std::move(buf));
  }

  std::size_t pooled() const noexcept { return pool_.size(); }

  /// The calling thread's pool.
  static BufferPool& local();

 private:
  std::vector<std::vector<std::byte>> pool_;
};

}  // namespace specomp::net

// Shared observability flag handling for examples and bench binaries.
//
// Every driver constructs an ArtifactWriter from its Cli right after
// parsing; the writer claims the shared telemetry flags
//
//   --metrics-out=FILE   metrics registry snapshot (enables collection)
//   --trace-out=FILE     Chrome trace JSON (or JSONL if FILE ends .jsonl)
//   --report-out=FILE    structured run/bench report JSON
//   --csv-out=FILE       every recorded table, as diffable CSV
//
// and the driver hands it whatever it produced (tables, a trace, a
// RunReport, extra entries).  flush() writes only the artifacts that were
// requested, so binaries stay plain-stdout tools unless asked.
//
// Bench reports without a full RunReport use the
// "specomp.bench_report.v1" envelope:
//   {schema, binary, tables: {name: {headers, rows}}, entries: {...},
//    metrics: {...}}
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "des/trace.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace specomp::obs {

inline constexpr const char* kBenchReportSchema = "specomp.bench_report.v1";
/// Emitted as "schema_version" next to every envelope's "schema" so tooling
/// can reject artifacts from a future incompatible writer with a clear
/// error instead of a missing-key crash.
inline constexpr int kBenchReportVersion = 1;

/// Converts a Table to {"headers": [...], "rows": [[...], ...]} (cells stay
/// strings, exactly as printed, so the JSON matches the ASCII output).
Json table_to_json(const support::Table& table);

class ArtifactWriter {
 public:
  ArtifactWriter(std::string binary, const support::Cli& cli);

  /// True when --trace-out was given — drivers use this to turn on
  /// SimConfig::record_trace only when somebody will read the result.
  bool wants_trace() const noexcept { return !trace_path_.empty(); }
  bool wants_report() const noexcept { return !report_path_.empty(); }
  bool wants_metrics() const noexcept { return !metrics_path_.empty(); }

  /// Records a named table for the CSV and bench-report outputs.
  void add_table(const std::string& name, const support::Table& table);
  /// Records the trace to export (copies; traces are modest).
  void set_trace(const des::Trace& trace, std::size_t lanes = 0);
  /// Adds a named entry to the bench report's "entries" object.
  void add_entry(const std::string& key, Json value);
  /// Replaces the bench-report envelope with a full RunReport document.
  void set_run_report(const RunReport& report);

  /// Writes every requested artifact; reports failures on stderr and
  /// returns false if any write failed.
  bool flush();

 private:
  std::string binary_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string report_path_;
  std::string csv_path_;
  std::vector<std::pair<std::string, support::Table>> tables_;
  des::Trace trace_;
  std::size_t trace_lanes_ = 0;
  bool have_trace_ = false;
  Json entries_;
  Json run_report_;
  bool have_run_report_ = false;
};

}  // namespace specomp::obs

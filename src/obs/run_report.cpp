#include "obs/run_report.hpp"

#include <stdexcept>

#include "obs/atomic_file.hpp"

namespace specomp::obs {

void RunReport::fill_phases(const std::vector<runtime::PhaseTimer>& timers,
                            long run_iterations) {
  phases.clear();
  ranks = timers.size();
  iterations = run_iterations;
  const double denom =
      static_cast<double>(timers.size()) *
      static_cast<double>(run_iterations > 0 ? run_iterations : 1);
  for (std::size_t p = 0; p < static_cast<std::size_t>(runtime::Phase::kCount);
       ++p) {
    const auto phase = static_cast<runtime::Phase>(p);
    double total = 0.0;
    for (const auto& timer : timers) total += timer.get(phase).to_seconds();
    PhaseRow row;
    row.phase = runtime::phase_name(phase);
    row.total_seconds = total;
    row.mean_per_iteration_seconds = total / denom;
    phases.push_back(std::move(row));
  }
}

void RunReport::fill_spec(const spec::SpecStats& stats) {
  blocks_received_in_time = stats.blocks_received_in_time;
  blocks_speculated = stats.blocks_speculated;
  checks = stats.checks;
  failures = stats.failures;
  incremental_corrections = stats.incremental_corrections;
  replayed_iterations = stats.replayed_iterations;
  rollbacks = stats.rollbacks;
  failure_fraction = stats.failure_fraction();
  error_mean = stats.checks > 0 ? stats.error.mean() : 0.0;
  error_max = stats.checks > 0 ? stats.error.max() : 0.0;
  max_window_used = stats.max_window_used;
  max_cascade_depth = stats.max_cascade_depth;
  theta_min_used = stats.theta_min_used;
  theta_max_used = stats.theta_max_used;
  theta_adjustments = stats.theta_adjustments;
}

void RunReport::fill_channel(const net::ChannelStats& stats) {
  messages = stats.messages;
  bytes = stats.bytes;
  mean_delay_seconds = stats.messages > 0 ? stats.delay_seconds.mean() : 0.0;
}

void RunReport::fill_cluster(const runtime::Cluster& cluster) {
  cluster_ops_per_sec.clear();
  for (const auto& machine : cluster.machines())
    cluster_ops_per_sec.push_back(machine.ops_per_sec);
}

void RunReport::fill_dists(const std::vector<NamedDist>& dists) {
  distributions.clear();
  distributions.reserve(dists.size());
  for (const auto& nd : dists) {
    DistRow row;
    row.name = nd.name;
    row.count = nd.sketch.count();
    row.mean = nd.sketch.mean();
    row.min = nd.sketch.min();
    row.max = nd.sketch.max();
    row.p50 = nd.sketch.quantile(0.5);
    row.p90 = nd.sketch.quantile(0.9);
    row.p99 = nd.sketch.quantile(0.99);
    distributions.push_back(std::move(row));
  }
}

double RunReport::phase_mean_per_iteration(const std::string& phase) const {
  for (const auto& row : phases)
    if (row.phase == phase) return row.mean_per_iteration_seconds;
  return 0.0;
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kRunReportSchema);
  doc.set("schema_version", kRunReportVersion);
  doc.set("binary", binary);

  Json config = Json::object();
  config.set("backend", backend);
  config.set("algorithm", algorithm);
  config.set("speculator", speculator);
  config.set("forward_window", forward_window);
  config.set("theta", theta);
  config.set("iterations", iterations);
  config.set("ranks", ranks);
  Json shape = Json::array();
  for (const double m : cluster_ops_per_sec) shape.push_back(m);
  config.set("cluster_ops_per_sec", std::move(shape));
  doc.set("config", std::move(config));

  Json timing = Json::object();
  timing.set("makespan_seconds", makespan_seconds);
  Json phase_rows = Json::array();
  for (const auto& row : phases) {
    Json r = Json::object();
    r.set("phase", row.phase);
    r.set("total_seconds", row.total_seconds);
    r.set("mean_per_iteration_seconds", row.mean_per_iteration_seconds);
    phase_rows.push_back(std::move(r));
  }
  timing.set("phases", std::move(phase_rows));
  doc.set("timing", std::move(timing));

  Json spec = Json::object();
  spec.set("blocks_received_in_time", blocks_received_in_time);
  spec.set("blocks_speculated", blocks_speculated);
  spec.set("checks", checks);
  spec.set("failures", failures);
  spec.set("incremental_corrections", incremental_corrections);
  spec.set("replayed_iterations", replayed_iterations);
  spec.set("rollbacks", rollbacks);
  spec.set("failure_fraction", failure_fraction);
  spec.set("error_mean", error_mean);
  spec.set("error_max", error_max);
  spec.set("max_window_used", max_window_used);
  spec.set("max_cascade_depth", max_cascade_depth);
  spec.set("theta_min_used", theta_min_used);
  spec.set("theta_max_used", theta_max_used);
  spec.set("theta_adjustments", theta_adjustments);
  doc.set("speculation", std::move(spec));

  Json comm = Json::object();
  comm.set("messages", messages);
  comm.set("bytes", bytes);
  comm.set("mean_delay_seconds", mean_delay_seconds);
  doc.set("network", std::move(comm));

  if (!distributions.empty()) {
    Json rows = Json::array();
    for (const auto& d : distributions) {
      Json r = Json::object();
      r.set("name", d.name);
      r.set("count", d.count);
      r.set("mean", d.mean);
      r.set("min", d.min);
      r.set("max", d.max);
      r.set("p50", d.p50);
      r.set("p90", d.p90);
      r.set("p99", d.p99);
      rows.push_back(std::move(r));
    }
    doc.set("distributions", std::move(rows));
  }

  if (!extra.is_null()) doc.set("extra", extra);
  return doc;
}

RunReport RunReport::from_json(const Json& doc) {
  if (!doc.is_object()) throw std::runtime_error("RunReport: not an object");
  const std::string schema = doc.at("schema").as_string();
  // v1 documents predate schema_version and the distributions section; they
  // load fine.  Anything else is a different or newer artifact — fail with
  // the identity so the caller knows what it actually read.
  if (schema != kRunReportSchema && schema != kRunReportSchemaV1) {
    throw std::runtime_error(
        "RunReport: incompatible schema \"" + schema + "\" (this build reads " +
        kRunReportSchema + " and " + kRunReportSchemaV1 + ")");
  }
  if (const Json* v = doc.find("schema_version");
      v != nullptr && v->as_int() > kRunReportVersion) {
    throw std::runtime_error(
        "RunReport: document schema_version " + std::to_string(v->as_int()) +
        " is newer than this build supports (" +
        std::to_string(kRunReportVersion) + ")");
  }
  RunReport report;
  report.binary = doc.at("binary").as_string();

  const Json& config = doc.at("config");
  report.backend = config.at("backend").as_string();
  report.algorithm = config.at("algorithm").as_string();
  report.speculator = config.at("speculator").as_string();
  report.forward_window = static_cast<int>(config.at("forward_window").as_int());
  report.theta = config.at("theta").as_double();
  report.iterations = static_cast<long>(config.at("iterations").as_int());
  report.ranks = static_cast<std::size_t>(config.at("ranks").as_uint());
  for (const Json& m : config.at("cluster_ops_per_sec").as_array())
    report.cluster_ops_per_sec.push_back(m.as_double());

  const Json& timing = doc.at("timing");
  report.makespan_seconds = timing.at("makespan_seconds").as_double();
  for (const Json& r : timing.at("phases").as_array()) {
    PhaseRow row;
    row.phase = r.at("phase").as_string();
    row.total_seconds = r.at("total_seconds").as_double();
    row.mean_per_iteration_seconds =
        r.at("mean_per_iteration_seconds").as_double();
    report.phases.push_back(std::move(row));
  }

  const Json& spec = doc.at("speculation");
  report.blocks_received_in_time = spec.at("blocks_received_in_time").as_uint();
  report.blocks_speculated = spec.at("blocks_speculated").as_uint();
  report.checks = spec.at("checks").as_uint();
  report.failures = spec.at("failures").as_uint();
  report.incremental_corrections = spec.at("incremental_corrections").as_uint();
  report.replayed_iterations = spec.at("replayed_iterations").as_uint();
  report.failure_fraction = spec.at("failure_fraction").as_double();
  report.error_mean = spec.at("error_mean").as_double();
  report.error_max = spec.at("error_max").as_double();
  report.max_window_used = static_cast<int>(spec.at("max_window_used").as_int());
  // Fields added with the adaptive controllers (DESIGN.md §13); absent in
  // reports written before them.
  if (const Json* v = spec.find("rollbacks")) report.rollbacks = v->as_uint();
  if (const Json* v = spec.find("max_cascade_depth"))
    report.max_cascade_depth = static_cast<int>(v->as_int());
  if (const Json* v = spec.find("theta_min_used"))
    report.theta_min_used = v->as_double();
  if (const Json* v = spec.find("theta_max_used"))
    report.theta_max_used = v->as_double();
  if (const Json* v = spec.find("theta_adjustments"))
    report.theta_adjustments = v->as_uint();

  const Json& comm = doc.at("network");
  report.messages = comm.at("messages").as_uint();
  report.bytes = comm.at("bytes").as_uint();
  report.mean_delay_seconds = comm.at("mean_delay_seconds").as_double();

  if (const Json* dists = doc.find("distributions")) {
    for (const Json& r : dists->as_array()) {
      DistRow row;
      row.name = r.at("name").as_string();
      row.count = r.at("count").as_uint();
      row.mean = r.at("mean").as_double();
      row.min = r.at("min").as_double();
      row.max = r.at("max").as_double();
      row.p50 = r.at("p50").as_double();
      row.p90 = r.at("p90").as_double();
      row.p99 = r.at("p99").as_double();
      report.distributions.push_back(std::move(row));
    }
  }

  if (const Json* extra = doc.find("extra")) report.extra = *extra;
  return report;
}

bool RunReport::write(const std::string& path) const {
  return atomic_write_file(path, to_json().dump(2) + "\n");
}

}  // namespace specomp::obs

#include "obs/atomic_file.hpp"

#include <cstdio>
#include <fstream>

namespace specomp::obs {

bool atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace specomp::obs

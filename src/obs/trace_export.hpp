// Machine-readable exporters for des::Trace.
//
// The DES already records the exact wait/compute/speculate interleaving the
// paper's Figures 2 and 4 visualise; these sinks turn that recording into
// files tools can open:
//
//  * ChromeTraceSink — Chrome trace-event JSON ("ph":"X" complete events),
//    loadable in Perfetto / chrome://tracing.  Ranks appear as named tracks
//    ("rank 0", "rank 1", ...) via thread_name metadata; timestamps are in
//    microseconds of simulated time.
//  * JsonlTraceSink — one JSON object per line, convenient for jq/python
//    scripting and the tools/spectrace analyzer.  Line types: a "meta"
//    header (schema "specomp.trace.v2", lane count), then "span", "event"
//    and "causal" records.  Causal records carry the edge identity fields
//    of des::CausalEvent, so send→recv pairs and speculation lifecycles
//    can be re-linked offline.
//
// export_trace() replays a Trace through any sink; write_* helpers bundle
// the common sink-to-stream cases.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "des/trace.hpp"

namespace specomp::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once before any span/event, with the number of lanes (ranks).
  virtual void begin(std::size_t lanes) { (void)lanes; }
  virtual void span(const des::Span& span) = 0;
  virtual void event(const des::PointEvent& event) = 0;
  /// Causal edge endpoint (schema v2); default no-op keeps custom sinks
  /// that only care about occupancy working unchanged.
  virtual void causal(const des::CausalEvent& event) { (void)event; }
  /// Called once after the last span/event.
  virtual void end() {}
};

/// Streams spans then events of `trace` through `sink`.  `lanes` of 0 means
/// "infer from the trace" (max lane + 1).
void export_trace(const des::Trace& trace, TraceSink& sink,
                  std::size_t lanes = 0);

class ChromeTraceSink final : public TraceSink {
 public:
  /// `process_name` labels the single pid-0 process row in the viewer.
  explicit ChromeTraceSink(std::ostream& os,
                           std::string process_name = "specomp");

  void begin(std::size_t lanes) override;
  void span(const des::Span& span) override;
  void event(const des::PointEvent& event) override;
  void causal(const des::CausalEvent& event) override;
  void end() override;

 private:
  void comma();

  std::ostream& os_;
  std::string process_name_;
  bool first_ = true;
};

class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}

  void begin(std::size_t lanes) override;
  void span(const des::Span& span) override;
  void event(const des::PointEvent& event) override;
  void causal(const des::CausalEvent& event) override;

 private:
  std::ostream& os_;
};

/// JSONL trace schema identifier written by JsonlTraceSink's meta line and
/// checked by tools/spectrace.
inline constexpr const char* kTraceSchema = "specomp.trace.v2";
inline constexpr int kTraceSchemaVersion = 2;

/// Writes `trace` as Chrome trace-event JSON.
void write_chrome_trace(const des::Trace& trace, std::ostream& os,
                        std::size_t lanes = 0);
/// Writes `trace` as newline-delimited JSON.
void write_trace_jsonl(const des::Trace& trace, std::ostream& os,
                       std::size_t lanes = 0);
/// Writes to `path`, picking the format from the extension: ".jsonl" gets
/// JSONL, anything else Chrome trace JSON.  Returns false on I/O failure.
bool write_trace_file(const des::Trace& trace, const std::string& path,
                      std::size_t lanes = 0);

}  // namespace specomp::obs

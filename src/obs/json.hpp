// Minimal JSON document model for the observability layer.
//
// The telemetry exporters (metrics snapshots, run reports, trace files) need
// a dependency-free way to *write* well-formed JSON with a stable key order,
// and the test suite needs to *parse* those artifacts back to verify them.
// This is deliberately small: numbers are doubles (with exact round-trip for
// 64-bit-safe integers), objects preserve insertion order, and parse errors
// throw std::runtime_error with an offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace specomp::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered object: key order in the emitted document is the
  /// order of set() calls, which keeps report schemas diffable.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(long i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned u) : value_(static_cast<double>(u)) {}
  Json(unsigned long u) : value_(static_cast<double>(u)) {}
  Json(unsigned long long u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_double() const { return std::get<double>(value_); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(std::get<double>(value_)); }
  std::uint64_t as_uint() const { return static_cast<std::uint64_t>(std::get<double>(value_)); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Appends to an array value (converts a null value to an array first).
  void push_back(Json v);
  /// Sets `key` on an object value (converts a null value to an object
  /// first); overwrites an existing key in place, preserving its position.
  void set(std::string_view key, Json v);
  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const noexcept;
  /// Object member access; throws std::runtime_error when absent.
  const Json& at(std::string_view key) const;

  /// Serialises the document.  indent < 0 produces one line; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws std::runtime_error with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Escapes and quotes `s` as a JSON string literal.
std::string json_quote(std::string_view s);

/// Formats a double as a JSON number: integers exactly, non-finite values as
/// null (JSON has no NaN/Inf), everything else round-trippable.
std::string json_number(double v);

}  // namespace specomp::obs

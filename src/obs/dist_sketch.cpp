#include "obs/dist_sketch.hpp"

#include <algorithm>
#include <cmath>

namespace specomp::obs {

double DistSketch::marker_prob(std::size_t i) noexcept {
  // 0, q1/2, q1, (q1+q2)/2, q2, (q2+q3)/2, q3, (1+q3)/2, 1 — the marker
  // ladder of the multi-quantile P² extension.
  if (i == 0) return 0.0;
  if (i + 1 >= kMarkers) return 1.0;
  const std::size_t j = (i - 1) / 2;  // index into kQuantiles
  if (i % 2 == 0) return kQuantiles[j];
  const double lo = j == 0 ? 0.0 : kQuantiles[j - 1];
  const double hi = i + 2 >= kMarkers ? 1.0 : kQuantiles[j];
  // Odd markers sit midway between their neighbours' probabilities.
  return i + 2 >= kMarkers ? (kQuantiles[kNumQuantiles - 1] + 1.0) / 2.0
                           : (lo + hi) / 2.0;
}

double DistSketch::parabolic(std::size_t i, double s) const noexcept {
  const double np = pos_[i - 1];
  const double n = pos_[i];
  const double nn = pos_[i + 1];
  const double hp = height_[i - 1];
  const double h = height_[i];
  const double hn = height_[i + 1];
  return h + s / (nn - np) *
                 ((n - np + s) * (hn - h) / (nn - n) +
                  (nn - n - s) * (h - hp) / (n - np));
}

void DistSketch::observe(double x) noexcept {
  sum_ += x;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  if (count_ < kMarkers) {
    // Warm-up: buffer the first kMarkers samples verbatim.
    height_[count_] = x;
    ++count_;
    if (count_ == kMarkers) {
      std::sort(height_.begin(), height_.end());
      for (std::size_t i = 0; i < kMarkers; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        desired_[i] =
            1.0 + static_cast<double>(kMarkers - 1) * marker_prob(i);
      }
    }
    return;
  }

  ++count_;
  // Locate the cell [height_[k], height_[k+1]) containing x, widening the
  // extreme markers when x falls outside the observed range.
  std::size_t k = 0;
  if (x < height_[0]) {
    height_[0] = x;
  } else if (x >= height_[kMarkers - 1]) {
    height_[kMarkers - 1] = x;
    k = kMarkers - 2;
  } else {
    while (k + 2 < kMarkers && x >= height_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < kMarkers; ++i) pos_[i] += 1.0;
  const double n1 = static_cast<double>(count_ - 1);
  for (std::size_t i = 0; i < kMarkers; ++i)
    desired_[i] = 1.0 + n1 * marker_prob(i);

  // Nudge interior markers toward their desired positions, preferring the
  // parabolic prediction and falling back to linear when it would invert
  // the height ordering.
  for (std::size_t i = 1; i + 1 < kMarkers; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double candidate = parabolic(i, s);
      if (height_[i - 1] < candidate && candidate < height_[i + 1]) {
        height_[i] = candidate;
      } else {
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        height_[i] += s * (height_[j] - height_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double DistSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (count_ <= kMarkers) {
    // Exact regime: interpolate the order statistics of the warm-up buffer.
    std::array<double, kMarkers> v = height_;
    std::sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(count_));
    const double idx = q * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(count_) - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  // Marker regime: interpolate heights by actual marker positions.
  const double target = 1.0 + q * static_cast<double>(count_ - 1);
  if (target <= pos_[0]) return height_[0];
  for (std::size_t i = 0; i + 1 < kMarkers; ++i) {
    if (target <= pos_[i + 1]) {
      const double span = pos_[i + 1] - pos_[i];
      if (span <= 0.0) return height_[i + 1];
      const double frac = (target - pos_[i]) / span;
      return height_[i] + frac * (height_[i + 1] - height_[i]);
    }
  }
  return height_[kMarkers - 1];
}

Json DistSketch::to_json() const {
  Json j = Json::object();
  j.set("count", count_);
  j.set("mean", mean());
  j.set("min", min());
  j.set("max", max());
  j.set("p50", quantile(0.5));
  j.set("p90", quantile(0.9));
  j.set("p99", quantile(0.99));
  return j;
}

}  // namespace specomp::obs

#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace specomp::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers that a double represents exactly print without an exponent or
  // fraction so counters stay greppable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (const int precision : {1, 3, 5, 7, 9, 11, 13, 15}) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(v));
}

void Json::set(std::string_view key, Json v) {
  if (is_null()) value_ = Object{};
  for (auto& [k, existing] : as_object()) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  as_object().emplace_back(std::string(key), std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("Json: missing key '" + std::string(key) + "'");
  return *v;
}

namespace {

void dump_value(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    out += json_number(v.as_double());
  } else if (v.is_string()) {
    out += json_quote(v.as_string());
  } else if (v.is_array()) {
    const auto& items = v.as_array();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      dump_value(items[i], out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& members = v.as_object();
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      out += json_quote(members[i].first);
      out += indent < 0 ? ":" : ": ";
      dump_value(members[i].second, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the basic-multilingual-plane code point (surrogate
          // pairs are beyond what telemetry artifacts need).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace specomp::obs

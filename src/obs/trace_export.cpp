#include "obs/trace_export.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/atomic_file.hpp"
#include "obs/json.hpp"

namespace specomp::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

std::size_t inferred_lanes(const des::Trace& trace) {
  std::uint64_t max_lane = 0;
  bool any = false;
  for (const auto& span : trace.spans()) {
    max_lane = std::max(max_lane, span.lane);
    any = true;
  }
  for (const auto& ev : trace.events()) {
    max_lane = std::max(max_lane, ev.lane);
    any = true;
  }
  for (const auto& ce : trace.causal()) {
    max_lane = std::max(max_lane, ce.lane);
    any = true;
  }
  return any ? static_cast<std::size_t>(max_lane) + 1 : 0;
}

}  // namespace

void export_trace(const des::Trace& trace, TraceSink& sink, std::size_t lanes) {
  if (lanes == 0) lanes = inferred_lanes(trace);
  sink.begin(lanes);
  for (const auto& span : trace.spans()) sink.span(span);
  for (const auto& ev : trace.events()) sink.event(ev);
  for (const auto& ce : trace.causal()) sink.causal(ce);
  sink.end();
}

ChromeTraceSink::ChromeTraceSink(std::ostream& os, std::string process_name)
    : os_(os), process_name_(std::move(process_name)) {}

void ChromeTraceSink::comma() {
  if (!first_) os_ << ",\n";
  first_ = false;
}

void ChromeTraceSink::begin(std::size_t lanes) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  comma();
  os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":" << json_quote(process_name_) << "}}";
  // One named track per rank: tid = lane, labelled via thread_name metadata.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    comma();
    os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << lane
        << ",\"args\":{\"name\":\"rank " << lane << "\"}}";
  }
}

void ChromeTraceSink::span(const des::Span& span) {
  comma();
  const double ts = span.begin.to_seconds() * kMicrosPerSecond;
  const double dur =
      std::max((span.end - span.begin).to_seconds(), 0.0) * kMicrosPerSecond;
  os_ << "{\"name\":" << json_quote(des::span_name(span.kind))
      << ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" << json_number(ts)
      << ",\"dur\":" << json_number(dur) << ",\"pid\":0,\"tid\":" << span.lane;
  if (!span.label.empty())
    os_ << ",\"args\":{\"label\":" << json_quote(span.label) << "}";
  os_ << "}";
}

void ChromeTraceSink::event(const des::PointEvent& event) {
  comma();
  const double ts = event.at.to_seconds() * kMicrosPerSecond;
  os_ << "{\"name\":" << json_quote(event.label.empty() ? "event" : event.label)
      << ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
      << json_number(ts) << ",\"pid\":0,\"tid\":" << event.lane << "}";
}

void ChromeTraceSink::causal(const des::CausalEvent& event) {
  comma();
  const double ts = event.at.to_seconds() * kMicrosPerSecond;
  os_ << "{\"name\":" << json_quote(des::causal_name(event.kind))
      << ",\"cat\":\"causal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
      << json_number(ts) << ",\"pid\":0,\"tid\":" << event.lane
      << ",\"args\":{\"peer\":" << event.peer << ",\"seq\":" << event.seq
      << ",\"iter\":" << event.iter << "}}";
}

void ChromeTraceSink::end() { os_ << "\n]}\n"; }

void JsonlTraceSink::begin(std::size_t lanes) {
  Json line = Json::object();
  line.set("type", "meta");
  line.set("schema", kTraceSchema);
  line.set("schema_version", kTraceSchemaVersion);
  line.set("lanes", lanes);
  os_ << line.dump() << "\n";
}

void JsonlTraceSink::span(const des::Span& span) {
  Json line = Json::object();
  line.set("type", "span");
  line.set("lane", span.lane);
  line.set("kind", des::span_name(span.kind));
  line.set("begin_s", span.begin.to_seconds());
  line.set("end_s", span.end.to_seconds());
  if (!span.label.empty()) line.set("label", span.label);
  os_ << line.dump() << "\n";
}

void JsonlTraceSink::event(const des::PointEvent& event) {
  Json line = Json::object();
  line.set("type", "event");
  line.set("lane", event.lane);
  line.set("at_s", event.at.to_seconds());
  line.set("label", event.label);
  os_ << line.dump() << "\n";
}

void JsonlTraceSink::causal(const des::CausalEvent& event) {
  Json line = Json::object();
  line.set("type", "causal");
  line.set("kind", des::causal_name(event.kind));
  line.set("lane", event.lane);
  line.set("at_s", event.at.to_seconds());
  if (event.peer >= 0) line.set("peer", static_cast<std::int64_t>(event.peer));
  if (event.kind == des::CausalKind::Send ||
      event.kind == des::CausalKind::Recv) {
    line.set("tag", static_cast<std::int64_t>(event.tag));
    line.set("seq", event.seq);
  }
  if (event.iter >= 0) line.set("iter", event.iter);
  if (event.t2 > des::SimTime::zero()) line.set("t2_s", event.t2.to_seconds());
  os_ << line.dump() << "\n";
}

void write_chrome_trace(const des::Trace& trace, std::ostream& os,
                        std::size_t lanes) {
  ChromeTraceSink sink(os);
  export_trace(trace, sink, lanes);
}

void write_trace_jsonl(const des::Trace& trace, std::ostream& os,
                       std::size_t lanes) {
  JsonlTraceSink sink(os);
  export_trace(trace, sink, lanes);
}

bool write_trace_file(const des::Trace& trace, const std::string& path,
                      std::size_t lanes) {
  std::ostringstream os;
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    write_trace_jsonl(trace, os, lanes);
  } else {
    write_chrome_trace(trace, os, lanes);
  }
  return atomic_write_file(path, os.str());
}

}  // namespace specomp::obs

// Process-wide metrics registry.
//
// Hot-loop instrumentation for the engine and runtime: named monotonic
// counters, gauges and fixed-bucket histograms, all updated with relaxed
// atomics so the thread backend's ranks can bump them concurrently.
//
// Cost model.  Collection is off by default.  Instrumented objects fetch
// *refs* (CounterRef & co.) once, at construction; while the registry is
// disabled those refs are null and every update is a single predictable
// branch — no lock, no atomic, no allocation on the hot path.  Binaries that
// want telemetry call set_metrics_enabled(true) (the --metrics-out flag does
// this) before constructing engines/communicators, and the same refs then
// point into registry-owned storage with stable addresses.
//
// Registration takes a mutex; updates through refs are lock-free.  reset()
// destroys all instruments — only call it while no instrumented object that
// cached refs is still alive (tests reset between cases).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace specomp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-width buckets over [lo, hi); out-of-range samples saturate into the
/// edge buckets, so totals are never lost.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void observe(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const;
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

// ---- Null-safe handles handed to instrumentation sites ----

class CounterRef {
 public:
  CounterRef() = default;
  explicit CounterRef(Counter* c) noexcept : c_(c) {}
  void inc(std::uint64_t n = 1) const noexcept {
    if (c_ != nullptr) c_->inc(n);
  }
  bool live() const noexcept { return c_ != nullptr; }

 private:
  Counter* c_ = nullptr;
};

class GaugeRef {
 public:
  GaugeRef() = default;
  explicit GaugeRef(Gauge* g) noexcept : g_(g) {}
  void set(double v) const noexcept {
    if (g_ != nullptr) g_->set(v);
  }
  bool live() const noexcept { return g_ != nullptr; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramRef {
 public:
  HistogramRef() = default;
  explicit HistogramRef(HistogramMetric* h) noexcept : h_(h) {}
  void observe(double x) const noexcept {
    if (h_ != nullptr) h_->observe(x);
  }
  bool live() const noexcept { return h_ != nullptr; }

 private:
  HistogramMetric* h_ = nullptr;
};

class MetricsRegistry {
 public:
  /// Returns a ref to the named instrument, registering it on first use.
  /// While the registry is disabled, returns a null (no-op) ref.  A name
  /// registered as one kind must not be re-requested as another.
  CounterRef counter(const std::string& name);
  GaugeRef gauge(const std::string& name);
  HistogramRef histogram(const std::string& name, double lo, double hi,
                         std::size_t buckets);

  // ---- Read side (export / tests); snapshots are not atomic across
  //      instruments, which is fine for post-run reporting. ----

  /// Value of a registered counter; 0 when the name is unknown.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {lo, hi,
  ///  total, sum, buckets: [...]}}} — keys sorted for stable diffs.
  Json to_json() const;

  /// Destroys every instrument.  Callers must guarantee no cached refs
  /// outlive this (see file comment).
  void reset();

  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Master switch for metric collection; reads are lock-free.
void set_metrics_enabled(bool on) noexcept;
bool metrics_enabled() noexcept;

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace specomp::obs

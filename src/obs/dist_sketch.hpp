// Streaming quantile sketch (extended P² algorithm).
//
// The adaptive-control reproduction (ROADMAP: Anselmi & Walton's speculative
// queueing networks) needs per-link delivery-delay and per-rank service-time
// *distributions*, not just the flat counters obs::Metrics keeps — an online
// controller sets θ from observed tails.  Recording every sample would make
// trace memory scale with virtual events; instead each stream feeds a
// DistSketch: the piecewise-parabolic (P²) estimator of Jain & Chlamtac,
// extended to track several quantiles at once (Raatikainen's variant).
//
// Properties the hot path relies on:
//   * fixed size — 2m+3 markers in std::array storage, no heap, ever;
//   * O(m) per observe(), allocation-free (specomp-lint hot-path scope
//     covers this header);
//   * exact while count ≤ marker count, asymptotically consistent after.
//
// Estimates are deterministic functions of the sample sequence, so sketch
// output is byte-stable across reruns like every other artifact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace specomp::obs {

class DistSketch {
 public:
  static constexpr std::size_t kNumQuantiles = 3;
  /// Tracked tail points; to_json() reports them as p50/p90/p99.
  static constexpr std::array<double, kNumQuantiles> kQuantiles{0.5, 0.9,
                                                                0.99};
  static constexpr std::size_t kMarkers = 2 * kNumQuantiles + 3;

  /// Folds one sample in: O(kMarkers), no allocation.
  void observe(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Estimated q-quantile: exact order statistic (with interpolation) while
  /// count() ≤ kMarkers, P² marker interpolation after.  0 when empty.
  double quantile(double q) const noexcept;

  /// {"count","mean","min","max","p50","p90","p99"} — the report shape
  /// documented in README's Observability section.
  Json to_json() const;

 private:
  /// Cumulative probability assigned to marker `i` (0, q1/2, q1, ..., 1).
  static double marker_prob(std::size_t i) noexcept;
  double parabolic(std::size_t i, double s) const noexcept;

  std::array<double, kMarkers> height_{};   // marker heights (sample values)
  std::array<double, kMarkers> pos_{};      // actual marker positions n_i
  std::array<double, kMarkers> desired_{};  // desired positions n'_i
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A labelled sketch, e.g. "link_delay.0->2" or "service.rank1"; the report
/// writer serialises SimResult::dists rows straight from these.
struct NamedDist {
  std::string name;
  DistSketch sketch;
};

}  // namespace specomp::obs

// Crash-safe artifact writes.
//
// The fault layer (PR 5) can kill a run mid-flight (crash:R@T), and CI
// harvests whatever artifacts exist afterwards.  A plain ofstream left a
// truncated JSON/JSONL file in that window; every artifact writer in the
// repo instead stages the full content in a sibling temp file and renames
// it into place, so a reader either sees the previous complete artifact or
// the new complete one — never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace specomp::obs {

/// Writes `content` to `path` atomically: stage into `path + ".tmp"`, then
/// std::rename over the destination.  Returns false (and removes the temp
/// file) if any step fails.
bool atomic_write_file(const std::string& path, std::string_view content);

}  // namespace specomp::obs

#include "obs/metrics.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace specomp::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets) {
  SPEC_EXPECTS(buckets >= 1);
  SPEC_EXPECTS(hi > lo);
}

void HistogramMetric::observe(double x) noexcept {
  std::size_t bucket;
  if (!(x > lo_)) {  // also catches NaN → lowest bucket
    bucket = 0;
  } else if (x >= hi_) {
    bucket = counts_.size() - 1;
  } else {
    bucket = static_cast<std::size_t>((x - lo_) / width_);
    if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(x)) {
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + x,
                                       std::memory_order_relaxed)) {
    }
  }
}

std::uint64_t HistogramMetric::count(std::size_t bucket) const {
  SPEC_EXPECTS(bucket < counts_.size());
  return counts_[bucket].load(std::memory_order_relaxed);
}

double HistogramMetric::bucket_lo(std::size_t bucket) const {
  SPEC_EXPECTS(bucket < counts_.size());
  return lo_ + width_ * static_cast<double>(bucket);
}

double HistogramMetric::bucket_hi(std::size_t bucket) const {
  SPEC_EXPECTS(bucket < counts_.size());
  return bucket + 1 == counts_.size() ? hi_
                                      : lo_ + width_ * static_cast<double>(bucket + 1);
}

CounterRef MetricsRegistry::counter(const std::string& name) {
  if (!metrics_enabled()) return CounterRef{};
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return CounterRef{slot.get()};
}

GaugeRef MetricsRegistry::gauge(const std::string& name) {
  if (!metrics_enabled()) return GaugeRef{};
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return GaugeRef{slot.get()};
}

HistogramRef MetricsRegistry::histogram(const std::string& name, double lo,
                                        double hi, std::size_t buckets) {
  if (!metrics_enabled()) return HistogramRef{};
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return HistogramRef{slot.get()};
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

Json MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json buckets = Json::array();
    for (std::size_t b = 0; b < h->bucket_count(); ++b) {
      Json bucket = Json::object();
      bucket.set("lo", h->bucket_lo(b));
      bucket.set("hi", h->bucket_hi(b));
      bucket.set("count", h->count(b));
      buckets.push_back(std::move(bucket));
    }
    Json entry = Json::object();
    entry.set("total", h->total());
    entry.set("sum", h->sum());
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace specomp::obs

// Structured end-of-run report.
//
// One JSON document per run with a stable schema ("specomp.run_report.v1"),
// collecting everything the paper's evaluation tables need: the run
// configuration (FW, θ, speculator, cluster shape), the Table-2 phase
// breakdown from runtime::PhaseTimer, the Table-3 speculation outcome from
// spec::SpecStats, and the network totals from net::ChannelStats.  Every
// bench binary and example can emit one, so BENCH_*.json trajectories are
// comparable across PRs.  from_json() restores a report, which is how the
// tests prove the schema round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "obs/json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/phase_timer.hpp"
#include "spec/stats.hpp"

namespace specomp::obs {

inline constexpr const char* kRunReportSchema = "specomp.run_report.v1";

struct RunReport {
  // ---- Identity & configuration ----
  std::string binary;              // emitting program, e.g. "nbody_sim"
  std::string backend = "sim";     // "sim" or "thread"
  std::string algorithm;           // e.g. "speculative", "fig7-baseline"
  std::string speculator;          // empty when not speculating
  int forward_window = 0;          // FW
  double theta = 0.0;              // θ
  long iterations = 0;
  std::size_t ranks = 0;
  /// Cluster shape: per-rank capacity M_i in ops/s, fastest first.
  std::vector<double> cluster_ops_per_sec;

  // ---- Timing (Table 2) ----
  double makespan_seconds = 0.0;
  struct PhaseRow {
    std::string phase;             // runtime::phase_name()
    double total_seconds = 0.0;    // summed over all ranks
    double mean_per_iteration_seconds = 0.0;  // total / (ranks * iterations)
  };
  std::vector<PhaseRow> phases;

  // ---- Speculation outcome (Table 3) ----
  std::uint64_t blocks_received_in_time = 0;
  std::uint64_t blocks_speculated = 0;
  std::uint64_t checks = 0;
  std::uint64_t failures = 0;
  std::uint64_t incremental_corrections = 0;
  std::uint64_t replayed_iterations = 0;
  double failure_fraction = 0.0;   // the paper's k
  double error_mean = 0.0;
  double error_max = 0.0;
  int max_window_used = 0;

  // ---- Network totals ----
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double mean_delay_seconds = 0.0;

  /// Free-form per-binary additions, emitted under "extra".
  Json extra;

  // ---- Fillers ----

  /// Phase totals summed across `timers`, means divided by ranks*iterations
  /// — the same arithmetic the ASCII per-phase printouts use.
  void fill_phases(const std::vector<runtime::PhaseTimer>& timers,
                   long run_iterations);
  void fill_spec(const spec::SpecStats& stats);
  void fill_channel(const net::ChannelStats& stats);
  void fill_cluster(const runtime::Cluster& cluster);

  /// Mean per-iteration seconds recorded for `phase` (0 when absent).
  double phase_mean_per_iteration(const std::string& phase) const;

  Json to_json() const;
  static RunReport from_json(const Json& doc);

  /// Serialises to `path` (pretty-printed); returns false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace specomp::obs

// Structured end-of-run report.
//
// One JSON document per run with a stable schema ("specomp.run_report.v2"),
// collecting everything the paper's evaluation tables need: the run
// configuration (FW, θ, speculator, cluster shape), the Table-2 phase
// breakdown from runtime::PhaseTimer, the Table-3 speculation outcome from
// spec::SpecStats, and the network totals from net::ChannelStats.  Every
// bench binary and example can emit one, so BENCH_*.json trajectories are
// comparable across PRs.  from_json() restores a report, which is how the
// tests prove the schema round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "obs/dist_sketch.hpp"
#include "obs/json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/phase_timer.hpp"
#include "spec/stats.hpp"

namespace specomp::obs {

inline constexpr const char* kRunReportSchema = "specomp.run_report.v2";
/// Current document version; from_json() also accepts v1 documents (which
/// simply lack the "distributions" section) and rejects anything newer or
/// unknown with a clear error.
inline constexpr int kRunReportVersion = 2;
inline constexpr const char* kRunReportSchemaV1 = "specomp.run_report.v1";

struct RunReport {
  // ---- Identity & configuration ----
  std::string binary;              // emitting program, e.g. "nbody_sim"
  std::string backend = "sim";     // "sim" or "thread"
  std::string algorithm;           // e.g. "speculative", "fig7-baseline"
  std::string speculator;          // empty when not speculating
  int forward_window = 0;          // FW
  double theta = 0.0;              // θ
  long iterations = 0;
  std::size_t ranks = 0;
  /// Cluster shape: per-rank capacity M_i in ops/s, fastest first.
  std::vector<double> cluster_ops_per_sec;

  // ---- Timing (Table 2) ----
  double makespan_seconds = 0.0;
  struct PhaseRow {
    std::string phase;             // runtime::phase_name()
    double total_seconds = 0.0;    // summed over all ranks
    double mean_per_iteration_seconds = 0.0;  // total / (ranks * iterations)
  };
  std::vector<PhaseRow> phases;

  // ---- Speculation outcome (Table 3) ----
  std::uint64_t blocks_received_in_time = 0;
  std::uint64_t blocks_speculated = 0;
  std::uint64_t checks = 0;
  std::uint64_t failures = 0;
  std::uint64_t incremental_corrections = 0;
  std::uint64_t replayed_iterations = 0;
  std::uint64_t rollbacks = 0;
  double failure_fraction = 0.0;   // the paper's k
  double error_mean = 0.0;
  double error_max = 0.0;
  int max_window_used = 0;
  // Adaptive-control observables (DESIGN.md §13); degenerate for fixed runs
  // (cascade 0, θ range collapsed to the configured threshold).
  int max_cascade_depth = 0;
  double theta_min_used = 0.0;
  double theta_max_used = 0.0;
  std::uint64_t theta_adjustments = 0;

  // ---- Network totals ----
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double mean_delay_seconds = 0.0;

  // ---- Observed distributions (schema v2) ----
  /// One summary row per DistSketch the run recorded (per-link delivery
  /// delay, per-rank service time); empty when SimConfig::record_dists was
  /// off.  Rows carry the sketch's summary statistics, not its internal
  /// marker state, so documents round-trip exactly.
  struct DistRow {
    std::string name;              // e.g. "link_delay.0->2", "service.rank1"
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<DistRow> distributions;

  /// Free-form per-binary additions, emitted under "extra".
  Json extra;

  // ---- Fillers ----

  /// Phase totals summed across `timers`, means divided by ranks*iterations
  /// — the same arithmetic the ASCII per-phase printouts use.
  void fill_phases(const std::vector<runtime::PhaseTimer>& timers,
                   long run_iterations);
  void fill_spec(const spec::SpecStats& stats);
  void fill_channel(const net::ChannelStats& stats);
  void fill_cluster(const runtime::Cluster& cluster);
  /// Summarises SimResult::dists into `distributions`.
  void fill_dists(const std::vector<NamedDist>& dists);

  /// Mean per-iteration seconds recorded for `phase` (0 when absent).
  double phase_mean_per_iteration(const std::string& phase) const;

  Json to_json() const;
  static RunReport from_json(const Json& doc);

  /// Serialises to `path` (pretty-printed); returns false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace specomp::obs

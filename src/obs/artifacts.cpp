#include "obs/artifacts.hpp"

#include <cstdio>

#include "obs/atomic_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace specomp::obs {

Json table_to_json(const support::Table& table) {
  Json headers = Json::array();
  for (const auto& h : table.headers()) headers.push_back(h);
  Json rows = Json::array();
  for (std::size_t r = 0; r < table.rows(); ++r) {
    Json row = Json::array();
    for (std::size_t c = 0; c < table.columns(); ++c)
      row.push_back(table.cell(r, c));
    rows.push_back(std::move(row));
  }
  Json out = Json::object();
  out.set("headers", std::move(headers));
  out.set("rows", std::move(rows));
  return out;
}

ArtifactWriter::ArtifactWriter(std::string binary, const support::Cli& cli)
    : binary_(std::move(binary)),
      metrics_path_(cli.get("metrics-out", "")),
      trace_path_(cli.get("trace-out", "")),
      report_path_(cli.get("report-out", "")),
      csv_path_(cli.get("csv-out", "")) {
  // Enable collection before the driver constructs engines/communicators so
  // their cached metric refs are live.
  if (!metrics_path_.empty()) set_metrics_enabled(true);
}

void ArtifactWriter::add_table(const std::string& name,
                               const support::Table& table) {
  tables_.emplace_back(name, table);
}

void ArtifactWriter::set_trace(const des::Trace& trace, std::size_t lanes) {
  trace_ = trace;
  trace_lanes_ = lanes;
  have_trace_ = true;
}

void ArtifactWriter::add_entry(const std::string& key, Json value) {
  entries_.set(key, std::move(value));
}

void ArtifactWriter::set_run_report(const RunReport& report) {
  run_report_ = report.to_json();
  have_run_report_ = true;
}

bool ArtifactWriter::flush() {
  bool ok = true;
  auto write_text = [&](const std::string& path, const std::string& text,
                        const char* what) {
    // Staged + renamed, so a crash-injected run never leaves a truncated
    // artifact for CI to harvest.
    if (!atomic_write_file(path, text)) {
      std::fprintf(stderr, "error: failed to write %s to '%s'\n", what,
                   path.c_str());
      ok = false;
    }
  };

  if (!metrics_path_.empty())
    write_text(metrics_path_, metrics().to_json().dump(2) + "\n", "metrics");

  if (!trace_path_.empty()) {
    if (!have_trace_) {
      std::fprintf(stderr,
                   "warning: --trace-out given but this run recorded no "
                   "trace; writing an empty one to '%s'\n",
                   trace_path_.c_str());
    }
    if (!write_trace_file(trace_, trace_path_, trace_lanes_)) {
      std::fprintf(stderr, "error: failed to write trace to '%s'\n",
                   trace_path_.c_str());
      ok = false;
    }
  }

  if (!report_path_.empty()) {
    Json doc;
    if (have_run_report_) {
      doc = run_report_;
      if (!entries_.is_null()) doc.set("entries", entries_);
    } else {
      doc = Json::object();
      doc.set("schema", kBenchReportSchema);
      doc.set("schema_version", kBenchReportVersion);
      doc.set("binary", binary_);
      Json tables = Json::object();
      for (const auto& [name, table] : tables_)
        tables.set(name, table_to_json(table));
      doc.set("tables", std::move(tables));
      if (!entries_.is_null()) doc.set("entries", entries_);
      if (metrics_enabled()) doc.set("metrics", metrics().to_json());
    }
    write_text(report_path_, doc.dump(2) + "\n", "report");
  }

  if (!csv_path_.empty()) {
    std::string out;
    for (const auto& [name, table] : tables_) {
      if (!out.empty()) out += "\n";
      if (tables_.size() > 1) out += "# " + name + "\n";
      out += table.to_csv();
    }
    write_text(csv_path_, out, "csv");
  }

  return ok;
}

}  // namespace specomp::obs

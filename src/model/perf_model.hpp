// Empirical performance model (paper, Section 4).
//
// Estimates per-iteration execution time of a synchronous iterative
// algorithm with and without speculative computation on a heterogeneous
// processor set, using the paper's equations:
//
//   eq. 3   t_total(1)   = N f_comp / M_1
//   eq. 4-5 N_i ∝ M_i, sum N_i = N              (ideal load balance)
//   eq. 6   t_total(p)   = N_i f_comp / M_i + t_comm(p)
//   eq. 8   t̂_i(p)      = max[(N-N_i) f_spec/M_i + N_i f_comp/M_i,
//                              t_comm(p)]
//                          + (N-N_i) f_check/M_i + k N_i f_comp/M_i
//   eq. 9   t̂(p)        = max_i t̂_i(p)
//
// The model treats N_i as continuous (ideal balancing), communication time
// as constant across processors and iterations, and k as a given fraction
// of recomputed variables.  A Monte-Carlo extension relaxing the constant
// t_comm assumption (the paper's stated future work) is also provided.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/cluster.hpp"
#include "support/rng.hpp"

namespace specomp::model {

struct ModelParams {
  /// N: total number of application variables.
  std::size_t total_variables = 1000;
  /// f_comp / f_spec / f_check: operations per variable for computing,
  /// speculating and checking.  Paper's Fig. 5/6 use
  /// f_comp = 100 f_spec = 50 f_check.
  double f_comp = 70.0;
  double f_spec = 0.7;
  double f_check = 1.4;
  /// k: fraction of variables recomputed due to speculation error, in [0,1].
  double k = 0.02;
  /// t_comm(p) = t_comm_base + t_comm_slope * p  (seconds).  The paper
  /// assumes linear growth with p.
  double t_comm_base = 0.0;
  double t_comm_slope = 0.0;
  /// Processor set, fastest first (M_1 >= M_2 >= ...).
  runtime::Cluster cluster;
};

class PerfModel {
 public:
  explicit PerfModel(ModelParams params);

  const ModelParams& params() const noexcept { return params_; }

  /// t_comm(p) from the linear law.
  double t_comm(std::size_t p) const;
  /// Ideal continuous allocation N_i for processor i (0-based) in a
  /// p-processor run (eqs. 4-5).
  double allocation(std::size_t i, std::size_t p) const;
  /// Per-iteration time without speculation (eqs. 3, 6).
  double iteration_time_no_spec(std::size_t p) const;
  /// Per-iteration time of processor i with speculation, FW = 1 (eq. 8).
  double iteration_time_spec(std::size_t i, std::size_t p) const;
  /// Per-iteration time with speculation (eq. 9).
  double iteration_time_spec(std::size_t p) const;

  /// speedup(p) relative to the fastest processor P1.
  double speedup_no_spec(std::size_t p) const;
  double speedup_spec(std::size_t p) const;
  /// speedup_max(p) = sum M_i / M_1.
  double max_speedup(std::size_t p) const;

  /// Predicted gain of speculation over no speculation at p processors,
  /// as a fraction (0.34 = 34%).
  double improvement(std::size_t p) const;

 private:
  ModelParams params_;
};

/// Constructs the parameter set of the paper's Figures 5 and 6: N = 1000,
/// 16 processors with capacities declining linearly 10:1,
/// f_comp = 100 f_spec = 50 f_check, t_comm linear in p with
/// t_comm(16) equal to the balanced computation time per iteration at p=16.
ModelParams paper_figure5_params(double k = 0.02);

/// Monte-Carlo extension (paper future work): per-iteration communication
/// time is a random draw instead of a constant.
struct StochasticCommModel {
  /// Mean follows the linear law of `params`; each iteration draws
  /// t_comm ~ mean + Exponential(jitter_mean) (heavy-tailed transients).
  double jitter_mean_seconds = 0.0;
  std::size_t samples = 10000;
  std::uint64_t seed = 42;
};

/// Expected per-iteration time with speculation under stochastic t_comm.
double stochastic_iteration_time_spec(const PerfModel& model, std::size_t p,
                                      const StochasticCommModel& stochastic);
/// Expected per-iteration time without speculation under stochastic t_comm.
double stochastic_iteration_time_no_spec(const PerfModel& model, std::size_t p,
                                         const StochasticCommModel& stochastic);

}  // namespace specomp::model

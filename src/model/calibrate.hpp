// Model calibration from measured runs.
//
// The paper parameterises its Section 4 model with values measured from the
// N-body implementation (per-variable operation counts, communication times,
// observed recomputation fraction k) and then compares model predictions
// with measured speedups (Figure 9).  This module performs that
// parameterisation: a least-squares fit of the linear t_comm(p) law from
// per-p measured communication times, combined with the application's
// operation constants.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "model/perf_model.hpp"
#include "runtime/cluster.hpp"

namespace specomp::model {

struct MeasuredCommPoint {
  std::size_t p = 0;
  /// Mean per-iteration communication time observed at p processors.
  double t_comm_seconds = 0.0;
};

/// Least-squares fit of t = base + slope * p.  With a single point the base
/// is pinned to 0 (a line through the origin).
std::pair<double, double> fit_linear_comm(std::span<const MeasuredCommPoint> points);

struct CalibrationInputs {
  std::size_t total_variables = 0;
  double f_comp = 0.0;
  double f_spec = 0.0;
  double f_check = 0.0;
  /// Observed recomputation fraction in [0, 1].
  double k = 0.0;
  runtime::Cluster cluster;
};

/// Builds a parameterised model from application constants and measured
/// communication times.
ModelParams calibrate(const CalibrationInputs& inputs,
                      std::span<const MeasuredCommPoint> comm_points);

}  // namespace specomp::model

#include "model/calibrate.hpp"

#include "support/contracts.hpp"

namespace specomp::model {

std::pair<double, double> fit_linear_comm(
    std::span<const MeasuredCommPoint> points) {
  SPEC_EXPECTS(!points.empty());
  if (points.size() == 1) {
    const auto& pt = points.front();
    SPEC_EXPECTS(pt.p > 0);
    return {0.0, pt.t_comm_seconds / static_cast<double>(pt.p)};
  }
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto n = static_cast<double>(points.size());
  for (const auto& pt : points) {
    const auto x = static_cast<double>(pt.p);
    sx += x;
    sy += pt.t_comm_seconds;
    sxx += x * x;
    sxy += x * pt.t_comm_seconds;
  }
  const double denom = n * sxx - sx * sx;
  SPEC_EXPECTS(denom != 0.0);  // at least two distinct p values
  const double slope = (n * sxy - sx * sy) / denom;
  const double base = (sy - slope * sx) / n;
  return {base, slope};
}

ModelParams calibrate(const CalibrationInputs& inputs,
                      std::span<const MeasuredCommPoint> comm_points) {
  SPEC_EXPECTS(inputs.total_variables > 0);
  SPEC_EXPECTS(inputs.cluster.size() > 0);
  ModelParams params;
  params.total_variables = inputs.total_variables;
  params.f_comp = inputs.f_comp;
  params.f_spec = inputs.f_spec;
  params.f_check = inputs.f_check;
  params.k = inputs.k;
  params.cluster = inputs.cluster;
  const auto [base, slope] = fit_linear_comm(comm_points);
  params.t_comm_base = base;
  params.t_comm_slope = slope;
  return params;
}

}  // namespace specomp::model

#include "model/perf_model.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace specomp::model {

PerfModel::PerfModel(ModelParams params) : params_(std::move(params)) {
  SPEC_EXPECTS(params_.total_variables > 0);
  SPEC_EXPECTS(params_.f_comp > 0.0);
  SPEC_EXPECTS(params_.f_spec >= 0.0);
  SPEC_EXPECTS(params_.f_check >= 0.0);
  SPEC_EXPECTS(params_.k >= 0.0 && params_.k <= 1.0);
  SPEC_EXPECTS(params_.cluster.size() > 0);
}

double PerfModel::t_comm(std::size_t p) const {
  return params_.t_comm_base + params_.t_comm_slope * static_cast<double>(p);
}

double PerfModel::allocation(std::size_t i, std::size_t p) const {
  SPEC_EXPECTS(i < p);
  SPEC_EXPECTS(p <= params_.cluster.size());
  const double total_capacity = params_.cluster.prefix(p).total_ops_per_sec();
  return static_cast<double>(params_.total_variables) *
         params_.cluster.machine(i).ops_per_sec / total_capacity;
}

double PerfModel::iteration_time_no_spec(std::size_t p) const {
  SPEC_EXPECTS(p >= 1 && p <= params_.cluster.size());
  if (p == 1) {
    return static_cast<double>(params_.total_variables) * params_.f_comp /
           params_.cluster.machine(0).ops_per_sec;
  }
  // With ideal balancing N_i f_comp / M_i is equal on all processors.
  const double compute =
      allocation(0, p) * params_.f_comp / params_.cluster.machine(0).ops_per_sec;
  return compute + t_comm(p);
}

double PerfModel::iteration_time_spec(std::size_t i, std::size_t p) const {
  SPEC_EXPECTS(i < p);
  const auto n = static_cast<double>(params_.total_variables);
  const double m = params_.cluster.machine(i).ops_per_sec;
  const double n_i = allocation(i, p);
  const double speculate = (n - n_i) * params_.f_spec / m;
  const double compute = n_i * params_.f_comp / m;
  const double check = (n - n_i) * params_.f_check / m;
  const double recompute = params_.k * n_i * params_.f_comp / m;
  return std::max(speculate + compute, t_comm(p)) + check + recompute;
}

double PerfModel::iteration_time_spec(std::size_t p) const {
  SPEC_EXPECTS(p >= 1 && p <= params_.cluster.size());
  if (p == 1) return iteration_time_no_spec(1);
  double worst = 0.0;
  for (std::size_t i = 0; i < p; ++i)
    worst = std::max(worst, iteration_time_spec(i, p));
  return worst;
}

double PerfModel::speedup_no_spec(std::size_t p) const {
  return iteration_time_no_spec(1) / iteration_time_no_spec(p);
}

double PerfModel::speedup_spec(std::size_t p) const {
  return iteration_time_no_spec(1) / iteration_time_spec(p);
}

double PerfModel::max_speedup(std::size_t p) const {
  return params_.cluster.prefix(p).max_speedup();
}

double PerfModel::improvement(std::size_t p) const {
  return speedup_spec(p) / speedup_no_spec(p) - 1.0;
}

ModelParams paper_figure5_params(double k) {
  ModelParams params;
  params.total_variables = 1000;
  // One variable costs an O(N) force sum: f_comp ~ 70 ops/pair * (N-1).
  params.f_comp = 70.0 * 999.0;
  // The paper's generic example states f_comp = 100 f_spec = 50 f_check.
  // Taken literally with the 10:1 heterogeneous fleet, eq. 8 makes the
  // slowest processor's speculation + checking of its (N - N_16) ~ 989
  // remote variables cost MORE than its own 11-variable compute share, so
  // the model would predict speculation losing at p = 16 — contradicting
  // the paper's reported ~25% model gain.  We therefore calibrate the ratio
  // to f_comp / f_spec = 500 (between the paper's generic 100 and the
  // 70(N-1)/12 ~ 5800 of its own N-body measurements), which reproduces the
  // published Figure 5/6 shapes.  See EXPERIMENTS.md.
  params.f_spec = params.f_comp / 500.0;
  params.f_check = params.f_comp / 250.0;
  params.k = k;
  params.cluster = runtime::Cluster::linear(16, 12.0e6, 10.0);
  // t_comm(16) = balanced computation time per iteration on 16 processors;
  // with ideal balancing that time is N f_comp / sum_i(M_i).
  const double balanced16 = static_cast<double>(params.total_variables) *
                            params.f_comp / params.cluster.total_ops_per_sec();
  params.t_comm_base = 0.0;
  params.t_comm_slope = balanced16 / 16.0;
  return params;
}

double stochastic_iteration_time_spec(const PerfModel& model, std::size_t p,
                                      const StochasticCommModel& stochastic) {
  SPEC_EXPECTS(stochastic.samples > 0);
  const auto& params = model.params();
  support::Xoshiro256 rng(stochastic.seed);
  double sum = 0.0;
  for (std::size_t s = 0; s < stochastic.samples; ++s) {
    const double comm =
        model.t_comm(p) + (stochastic.jitter_mean_seconds > 0.0
                               ? rng.exponential(stochastic.jitter_mean_seconds)
                               : 0.0);
    double worst = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      const auto n = static_cast<double>(params.total_variables);
      const double m = params.cluster.machine(i).ops_per_sec;
      const double n_i = model.allocation(i, p);
      const double work = (n - n_i) * params.f_spec / m + n_i * params.f_comp / m;
      const double tail = (n - n_i) * params.f_check / m +
                          params.k * n_i * params.f_comp / m;
      worst = std::max(worst, std::max(work, comm) + tail);
    }
    sum += worst;
  }
  return sum / static_cast<double>(stochastic.samples);
}

double stochastic_iteration_time_no_spec(const PerfModel& model, std::size_t p,
                                         const StochasticCommModel& stochastic) {
  SPEC_EXPECTS(stochastic.samples > 0);
  support::Xoshiro256 rng(stochastic.seed + 1);
  const double compute = model.iteration_time_no_spec(p) - model.t_comm(p);
  double sum = 0.0;
  for (std::size_t s = 0; s < stochastic.samples; ++s) {
    const double comm =
        model.t_comm(p) + (stochastic.jitter_mean_seconds > 0.0
                               ? rng.exponential(stochastic.jitter_mean_seconds)
                               : 0.0);
    sum += compute + comm;
  }
  return sum / static_cast<double>(stochastic.samples);
}

}  // namespace specomp::model

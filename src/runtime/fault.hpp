// Deterministic fault injection for both communicator backends.
//
// The paper's premise is masking communication *misbehaviour* with
// speculation, yet net/latency.hpp only models benign delays: every message
// eventually arrives, exactly once, and processors never hiccup.  A
// FaultPlan widens the modelled failure universe to the classic message and
// processor fault classes (DESIGN.md §9):
//
//   message faults (per directed link, per message):
//     drop     — the transmission is lost on the wire,
//     dup      — the network delivers a second copy,
//     reorder  — the message is held back so a later send overtakes it;
//   processor faults (per rank, scripted against local time):
//     slowdown — compute charges are stretched by a factor over a window,
//     stall    — a one-off freeze of fixed duration at a given time,
//     crash    — the rank stops executing at a given time (fail-stop).
//
// Determinism contract: every decision is a pure hash of
// (plan seed, src, dst, tag, seq, attempt) — no RNG stream is consumed, so
// decisions are independent of evaluation order and identical on the
// simulated and thread backends.  Same plan + same seed ⇒ the same faults
// hit the same messages, and on SimCommunicator the whole SimResult is
// byte-identical across reruns.
//
// Recovery (`recovery = true`, the default) models an ARQ-style reliable
// link plus receiver-side hygiene:
//
//   drop     — bounded retransmit with exponential backoff: a message whose
//              first d transmissions drop is delivered after an extra
//              rto·(2^d − 1) seconds; after max_retransmits consecutive
//              drops the next attempt always succeeds (a bounded-loss
//              network, so the protocol stays live).  The backoff is folded
//              into the delivery time at send — the paper's algorithms never
//              see a lost message, only a (possibly long) delay, which is
//              exactly the claim speculation then masks.
//   dup      — the receiver's dedup filter drops the second copy before it
//              reaches the mailbox (at-most-once delivery restored).
//   reorder  — the per-(src, tag) seq-ordered mailboxes (runtime/mailbox.hpp)
//              already reassemble send order; the hold-back only delays.
//
// With `recovery = false` the raw faults reach the application: drops lose
// the message forever (a blocking recv for it deadlocks — only use with
// try_recv-style workloads), duplicates are consumed twice, and mailboxes
// hand messages out in *arrival* order.  This mode exists to demonstrate
// the failure and to arm the happens-before detector tests: dup trips the
// duplicate-delivery check, reorder trips stream-inversion.
//
// Crash semantics: the rank raises RankCrashed once its local clock reaches
// the crash time (checked at send/recv/compute boundaries, and the compute
// charge that crosses the crash instant is truncated to it).  The run
// harness catches RankCrashed, records the rank's finish time, and lets the
// remaining ranks continue — liveness of peers that *block* on the dead
// rank is not guaranteed (fail-stop without membership/failover is exactly
// that); peers using timeouts or try_recv continue.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace specomp::runtime {

/// Thrown inside a rank body when its FaultPlan crash time is reached; the
/// run harnesses (run_simulated / run_threaded) catch it and record the
/// rank as crashed.  Application code should not catch it.
struct RankCrashed {};

/// Per-run fault bookkeeping, counted by the world that owns the run and
/// returned in SimResult / ThreadResult (plain counters so parallel sweep
/// lanes do not share registry state).
struct FaultStats {
  std::uint64_t injected_drops = 0;        ///< transmissions dropped on the wire
  std::uint64_t retransmits = 0;           ///< recovery resends after a drop
  std::uint64_t messages_lost = 0;         ///< drops with recovery off (gone forever)
  std::uint64_t injected_duplicates = 0;   ///< second copies created
  std::uint64_t duplicates_suppressed = 0; ///< copies removed by the dedup filter
  std::uint64_t injected_reorders = 0;     ///< messages held back past a later send
  std::uint64_t slowdown_charges = 0;      ///< compute charges stretched by a slowdown
  std::uint64_t stalls = 0;                ///< one-off stalls that fired
  std::uint64_t crashed_ranks = 0;         ///< ranks that hit their crash time

  void merge(const FaultStats& other) noexcept;
  /// True when any fault actually fired during the run.
  bool any() const noexcept;
  /// Mirrors the counters into the obs metrics registry under "fault.*"
  /// (no-op unless metrics collection is enabled).  Called once per run.
  void publish() const;
};

/// Message-fault probabilities for one directed link.  src/dst of -1 match
/// any rank.  For each fault field independently, the first matching rule
/// with a nonzero probability wins — so `drop:0.05,dup:0.2@0->1` drops on
/// every link and duplicates only on 0→1.
struct LinkFaultRule {
  net::Rank src = -1;
  net::Rank dst = -1;
  double drop = 0.0;       ///< P(one transmission attempt is lost)
  double duplicate = 0.0;  ///< P(the network delivers a second copy)
  double reorder = 0.0;    ///< P(the message is held back reorder_hold_seconds)
};

/// Stretches compute charges by `factor` while the rank's local time is in
/// [begin_seconds, end_seconds).  probability < 1 makes it stochastic per
/// compute charge (hash-decided, so still deterministic).
struct SlowdownRule {
  net::Rank rank = -1;  ///< -1 = every rank
  double factor = 2.0;
  double begin_seconds = 0.0;
  double end_seconds = std::numeric_limits<double>::infinity();
  double probability = 1.0;
};

/// One-off freeze: the first compute charge at local time >= at_seconds is
/// extended by duration_seconds (the paper's Fig. 4 transient, but on the
/// processor instead of the wire).
struct StallRule {
  net::Rank rank = 0;
  double at_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Fail-stop: the rank raises RankCrashed once its local time reaches
/// at_seconds.
struct CrashRule {
  net::Rank rank = 0;
  double at_seconds = 0.0;
};

struct FaultPlanConfig {
  std::vector<LinkFaultRule> links;
  std::vector<SlowdownRule> slowdowns;
  std::vector<StallRule> stalls;
  std::vector<CrashRule> crashes;
  /// ARQ retransmit timeout: the d-th consecutive drop of a message adds
  /// rto·2^(d−1) seconds of backoff before the resend.
  double retransmit_timeout_seconds = 1.0;
  /// Consecutive drops tolerated per message; the attempt after the last
  /// tolerated drop always delivers (bounded-loss assumption).
  int max_retransmits = 4;
  /// Extra hold applied to a reordered message.
  double reorder_hold_seconds = 0.5;
  /// Delivery offset of an injected duplicate after the original.
  double duplicate_offset_seconds = 0.05;
  /// true: retransmit + dedup + seq-ordered delivery (see header comment);
  /// false: raw faults reach the application.
  bool recovery = true;
  std::uint64_t seed = 0xfa017;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  /// Everything the plan decides about one message, at send time.  The
  /// decision depends only on (seed, src, dst, tag, seq) — recomputing it
  /// later (e.g. the receive-side dedup filter) yields the same answer.
  struct SendOutcome {
    bool lost = false;        ///< recovery off: the message never arrives
    bool duplicated = false;  ///< a second copy is delivered
    bool reordered = false;   ///< held back by reorder_hold_seconds
    std::uint32_t drops = 0;        ///< transmissions dropped for this message
    std::uint32_t retransmits = 0;  ///< == drops when recovering, else 0
    double extra_delay_seconds = 0.0;  ///< retransmit backoff + reorder hold
  };
  SendOutcome on_send(net::Rank src, net::Rank dst, int tag,
                      std::uint64_t seq) const noexcept;

  /// Product of the factors of every slowdown rule active for `rank` at
  /// local time `now_seconds`; `draw` must be a per-communicator counter so
  /// stochastic rules decide independently per compute charge.
  double compute_multiplier(net::Rank rank, double now_seconds,
                            std::uint64_t draw) const noexcept;

  /// Total stall seconds that became due for `rank` at or before
  /// `now_seconds`.  `cursor` is per-communicator scan state (start at 0);
  /// each rule fires at most once per cursor.  `fired`, when non-null, is
  /// incremented per rule that fired.
  double take_due_stalls(net::Rank rank, double now_seconds,
                         std::size_t& cursor,
                         std::uint64_t* fired = nullptr) const noexcept;

  /// Earliest crash time scripted for `rank`, if any.
  std::optional<double> crash_time(net::Rank rank) const noexcept;

  bool recovery() const noexcept { return config_.recovery; }
  /// Recovery is on and some link can duplicate: receivers need the dedup
  /// filter.
  bool wants_dedup() const noexcept { return config_.recovery && any_duplicate_; }
  /// Recovery is off and some link can reorder: mailboxes must hand out
  /// messages in arrival order so the injected inversion is observable.
  bool arrival_order_delivery() const noexcept {
    return !config_.recovery && any_reorder_;
  }
  bool has_link_faults() const noexcept { return !config_.links.empty(); }
  bool has_compute_faults() const noexcept {
    return !config_.slowdowns.empty() || !config_.stalls.empty();
  }
  const FaultPlanConfig& config() const noexcept { return config_; }

 private:
  double unit_hash(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c, std::uint64_t d) const noexcept;

  FaultPlanConfig config_;
  std::vector<StallRule> stalls_by_time_;  // all ranks, sorted by at_seconds
  bool any_duplicate_ = false;
  bool any_reorder_ = false;
};

/// Parses a comma-separated fault-plan spec *onto* `config`, so callers can
/// pre-seed defaults (seed, rto) before parsing.  Clauses:
///
///   drop:P[@S->D]       dup:P[@S->D]       reorder:P[@S->D]
///   slow:RxF[@T0..T1][~P]   stall:R@T+D    crash:R@T
///   rto:SECONDS  retries:N  reorder-hold:SECONDS  dup-offset:SECONDS
///   norecovery
///
/// R/S/D are rank numbers or `*` (any).  Example:
///   drop:0.05,dup:0.01@0->1,slow:2x3@10..20,crash:3@55,rto:2
///
/// Returns false and fills `error` on malformed input.
bool parse_fault_plan(const std::string& spec, FaultPlanConfig& config,
                      std::string& error);

/// Shared pointer alias used by SimConfig / ThreadConfig.
using FaultPlanPtr = std::shared_ptr<const FaultPlan>;

}  // namespace specomp::runtime

#include "runtime/thread_comm.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>

#include "runtime/hb_check.hpp"
#include "runtime/mailbox.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::runtime {

namespace {

// specomp-lint: allow(wall-clock): the thread backend measures genuine wall time by design; SimCommunicator is the deterministic instrument
using Clock = std::chrono::steady_clock;

des::SimTime elapsed_since(Clock::time_point start) {
  return des::SimTime::seconds(
      std::chrono::duration<double>(Clock::now() - start).count());
}

class ThreadWorld;

class ThreadCommunicator final : public Communicator {
 public:
  ThreadCommunicator(ThreadWorld& world, net::Rank rank)
      : world_(world), rank_(rank) {}

  net::Rank rank() const override { return rank_; }
  int size() const override;
  double ops_per_sec() const override;
  void send(net::Rank dst, int tag, std::vector<std::byte> payload) override;
  bool try_recv(net::Rank src, int tag, net::Message& out) override;
  net::Message recv(net::Rank src, int tag) override;
  net::Message recv_any(int tag) override;
  void barrier() override;
  void compute(double ops, Phase phase) override;
  double time_seconds() const override;

 private:
  friend class ThreadWorld;
  ThreadWorld& world_;
  net::Rank rank_;
  std::uint64_t next_seq_ = 0;
};

class ThreadWorld {
 public:
  explicit ThreadWorld(const ThreadConfig& config)
      : config_(config),
        num_ranks_(static_cast<int>(config.cluster.size())),
        rng_(config.seed),
        start_(Clock::now()) {
    SPEC_EXPECTS(num_ranks_ > 0);
    mailboxes_.reserve(config.cluster.size());
    for (int r = 0; r < num_ranks_; ++r)
      mailboxes_.push_back(std::make_unique<TimedMailbox>(num_ranks_));
#if SPECOMP_HB_CHECK_ENABLED
    if (config_.hb_check) hb_ = std::make_unique<HbChecker>(num_ranks_);
#endif
  }

#if SPECOMP_HB_CHECK_ENABLED
  HbChecker* hb() noexcept { return hb_.get(); }
#endif

  const ThreadConfig& config() const noexcept { return config_; }
  int num_ranks() const noexcept { return num_ranks_; }
  Clock::time_point start() const noexcept { return start_; }
  TimedMailbox& mailbox(net::Rank rank) {
    SPEC_EXPECTS(rank >= 0 && rank < num_ranks_);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  Clock::duration sample_latency() {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    const double seconds =
        config_.latency_seconds +
        (config_.latency_jitter_seconds > 0.0
             ? rng_.uniform(0.0, config_.latency_jitter_seconds)
             : 0.0);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  void barrier_arrive() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t my_generation = barrier_generation_;
    if (++barrier_count_ == num_ranks_) {
      barrier_count_ = 0;
      ++barrier_generation_;
#if SPECOMP_HB_CHECK_ENABLED
      // Join all clocks while still holding the barrier mutex: no waiter can
      // resume (and issue new sends) before the merge completes.
      if (hb_ != nullptr) hb_->on_barrier();
#endif
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != my_generation; });
  }

 private:
  ThreadConfig config_;
  int num_ranks_;
  std::vector<std::unique_ptr<TimedMailbox>> mailboxes_;
  std::mutex rng_mutex_;
  support::Xoshiro256 rng_;
  Clock::time_point start_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
#if SPECOMP_HB_CHECK_ENABLED
  std::unique_ptr<HbChecker> hb_;
#endif
};

int ThreadCommunicator::size() const { return world_.num_ranks(); }

double ThreadCommunicator::ops_per_sec() const {
  return world_.config().cluster.machine(static_cast<std::size_t>(rank_)).ops_per_sec;
}

void ThreadCommunicator::send(net::Rank dst, int tag,
                              std::vector<std::byte> payload) {
  SPEC_EXPECTS(dst >= 0 && dst < world_.num_ranks());
  SPEC_EXPECTS(dst != rank_);
  net::Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.seq = next_seq_++;
  msg.payload = std::move(payload);
  record_send(msg.payload.size());
#if SPECOMP_HB_CHECK_ENABLED
  // Recorded before the message becomes receivable: once deliver() runs the
  // receiver may consume it concurrently, and its check must find the send.
  if (HbChecker* hb = world_.hb()) hb->on_send(rank_, dst, tag, msg.seq);
#endif
  world_.mailbox(dst).deliver(std::move(msg),
                              Clock::now() + world_.sample_latency());
}

bool ThreadCommunicator::try_recv(net::Rank src, int tag, net::Message& out) {
  auto msg = world_.mailbox(rank_).try_take(src, tag);
  if (!msg) return false;
  out = std::move(*msg);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, out.src, out.tag, out.seq);
#endif
  record_receive(out.payload.size());
  return true;
}

net::Message ThreadCommunicator::recv(net::Rank src, int tag) {
  const auto begin = Clock::now();
  net::Message msg = world_.mailbox(rank_).take_blocking(src, tag);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, msg.src, msg.tag, msg.seq);
#endif
  const des::SimTime waited = elapsed_since(begin);
  timer_.add(Phase::Communicate, waited);
  record_receive(msg.payload.size());
  record_recv_wait(waited.to_seconds());
  return msg;
}

net::Message ThreadCommunicator::recv_any(int tag) {
  const auto begin = Clock::now();
  net::Message msg = world_.mailbox(rank_).take_blocking_any(tag);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, msg.src, msg.tag, msg.seq);
#endif
  const des::SimTime waited = elapsed_since(begin);
  timer_.add(Phase::Communicate, waited);
  record_receive(msg.payload.size());
  record_recv_wait(waited.to_seconds());
  return msg;
}

void ThreadCommunicator::barrier() { world_.barrier_arrive(); }

void ThreadCommunicator::compute(double ops, Phase phase) {
  SPEC_EXPECTS(ops >= 0.0);
  const auto begin = Clock::now();
  if (world_.config().time_scale > 0.0) {
    const double seconds = ops / ops_per_sec() * world_.config().time_scale;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  timer_.add(phase, elapsed_since(begin));
}

double ThreadCommunicator::time_seconds() const {
  return elapsed_since(world_.start()).to_seconds();
}

}  // namespace

ThreadResult run_threaded(const ThreadConfig& config, const RankBody& body) {
#if !SPECOMP_HB_CHECK_ENABLED
  if (config.hb_check) {
    std::fprintf(stderr,
                 "specomp: hb_check requested but this build compiled the "
                 "detector out — reconfigure with -DSPECOMP_HB_CHECK=ON\n");
  }
#endif
  ThreadWorld world(config);
  const int p = world.num_ranks();

  std::vector<std::unique_ptr<ThreadCommunicator>> comms;
  comms.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    comms.push_back(std::make_unique<ThreadCommunicator>(world, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::vector<double> finish(static_cast<std::size_t>(p), 0.0);
  for (int r = 0; r < p; ++r) {
    ThreadCommunicator* comm = comms[static_cast<std::size_t>(r)].get();
    threads.emplace_back([comm, &body, &finish, r] {
      body(*comm);
      finish[static_cast<std::size_t>(r)] = comm->time_seconds();
    });
  }
  for (auto& t : threads) t.join();

  ThreadResult result;
  result.makespan_seconds = *std::max_element(finish.begin(), finish.end());
  result.timers.reserve(comms.size());
  for (const auto& comm : comms) result.timers.push_back(comm->timer());
  return result;
}

}  // namespace specomp::runtime

#include "runtime/thread_comm.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>

#include "runtime/collectives.hpp"
#include "runtime/hb_check.hpp"
#include "runtime/mailbox.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::runtime {

namespace {

// specomp-lint: allow(wall-clock): the thread backend measures genuine wall time by design; SimCommunicator is the deterministic instrument
using Clock = std::chrono::steady_clock;

des::SimTime elapsed_since(Clock::time_point start) {
  return des::SimTime::seconds(
      std::chrono::duration<double>(Clock::now() - start).count());
}

class ThreadWorld;

class ThreadCommunicator final : public Communicator {
 public:
  ThreadCommunicator(ThreadWorld& world, net::Rank rank);

  net::Rank rank() const override { return rank_; }
  int size() const override;
  double ops_per_sec() const override;
  void send(net::Rank dst, int tag, std::vector<std::byte> payload) override;
  bool try_recv(net::Rank src, int tag, net::Message& out) override;
  net::Message recv(net::Rank src, int tag) override;
  net::Message recv_any(int tag) override;
  bool recv_timeout(net::Rank src, int tag, double timeout_seconds,
                    net::Message& out) override;
  void barrier() override;
  void compute(double ops, Phase phase) override;
  double time_seconds() const override;
  void trace_causal(des::CausalKind kind, int peer = -1,
                    std::int64_t iter = -1) override;

 private:
  friend class ThreadWorld;

  /// Raises RankCrashed once wall time since run start reaches this rank's
  /// scripted crash time.
  void maybe_crash() const;
  /// Causal Send/Recv edge endpoint; no-op unless the world records a trace.
  void note_msg_causal(des::CausalKind kind, net::Rank peer, int tag,
                       std::uint64_t seq);

  ThreadWorld& world_;
  net::Rank rank_;
  std::uint64_t next_seq_ = 0;
  std::optional<double> crash_at_seconds_;
  std::uint64_t compute_draw_ = 0;
  std::size_t stall_cursor_ = 0;
  /// Per-(dst, tag) in-order delivery floors; entries exist only for
  /// streams a fault delayed (see send()).
  std::unordered_map<std::uint64_t, Clock::time_point> delivery_floor_;
};

class ThreadWorld {
 public:
  explicit ThreadWorld(const ThreadConfig& config)
      : config_(config),
        num_ranks_(static_cast<int>(config.cluster.size())),
        rng_(config.seed),
        start_(Clock::now()) {
    SPEC_EXPECTS(num_ranks_ > 0);
    const DeliveryOrder order =
        config_.fault != nullptr && config_.fault->arrival_order_delivery()
            ? DeliveryOrder::ByArrival
            : DeliveryOrder::BySeq;
    mailboxes_.reserve(config.cluster.size());
    for (int r = 0; r < num_ranks_; ++r)
      mailboxes_.push_back(std::make_unique<TimedMailbox>(num_ranks_, order));
#if SPECOMP_HB_CHECK_ENABLED
    if (config_.hb_check) hb_ = std::make_unique<HbChecker>(num_ranks_);
#endif
  }

#if SPECOMP_HB_CHECK_ENABLED
  HbChecker* hb() noexcept { return hb_.get(); }
#endif

  const ThreadConfig& config() const noexcept { return config_; }
  int num_ranks() const noexcept { return num_ranks_; }
  Clock::time_point start() const noexcept { return start_; }
  const FaultPlan* fault() const noexcept { return config_.fault.get(); }

  /// Folds a per-thread stats delta into the run totals.
  void merge_fault(const FaultStats& delta) {
    const std::lock_guard<std::mutex> lock(fault_mutex_);
    fault_stats_.merge(delta);
  }
  FaultStats fault_stats() {
    const std::lock_guard<std::mutex> lock(fault_mutex_);
    return fault_stats_;
  }
  TimedMailbox& mailbox(net::Rank rank) {
    SPEC_EXPECTS(rank >= 0 && rank < num_ranks_);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  bool tracing() const noexcept { return config_.record_trace; }
  /// Serialises appends from all rank threads; callers pre-check tracing()
  /// so untraced runs never touch the mutex.
  void add_causal(const des::CausalEvent& event) {
    const std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_.add_causal(event);
  }
  des::Trace take_trace() { return std::move(trace_); }

  Clock::duration sample_latency() {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    const double seconds =
        config_.latency_seconds +
        (config_.latency_jitter_seconds > 0.0
             ? rng_.uniform(0.0, config_.latency_jitter_seconds)
             : 0.0);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  void barrier_arrive() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t my_generation = barrier_generation_;
    if (++barrier_count_ == num_ranks_) {
      barrier_count_ = 0;
      ++barrier_generation_;
#if SPECOMP_HB_CHECK_ENABLED
      // Join all clocks while still holding the barrier mutex: no waiter can
      // resume (and issue new sends) before the merge completes.
      if (hb_ != nullptr) hb_->on_barrier();
#endif
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != my_generation; });
  }

 private:
  ThreadConfig config_;
  int num_ranks_;
  std::vector<std::unique_ptr<TimedMailbox>> mailboxes_;
  std::mutex rng_mutex_;
  support::Xoshiro256 rng_;
  Clock::time_point start_;
  std::mutex fault_mutex_;
  FaultStats fault_stats_;  // guarded by fault_mutex_
  std::mutex trace_mutex_;
  des::Trace trace_;  // guarded by trace_mutex_
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
#if SPECOMP_HB_CHECK_ENABLED
  std::unique_ptr<HbChecker> hb_;
#endif
};

ThreadCommunicator::ThreadCommunicator(ThreadWorld& world, net::Rank rank)
    : world_(world), rank_(rank) {
  set_collective_algo(world.config().collective);
  if (const FaultPlan* fault = world.fault())
    crash_at_seconds_ = fault->crash_time(rank);
}

void ThreadCommunicator::maybe_crash() const {
  if (crash_at_seconds_ && time_seconds() >= *crash_at_seconds_)
    throw RankCrashed{};
}

void ThreadCommunicator::note_msg_causal(des::CausalKind kind, net::Rank peer,
                                         int tag, std::uint64_t seq) {
  if (!world_.tracing()) return;
  des::CausalEvent ev;
  ev.lane = static_cast<std::uint64_t>(rank_);
  ev.kind = kind;
  ev.at = des::SimTime::seconds(time_seconds());
  ev.peer = peer;
  ev.tag = tag;
  ev.seq = seq;
  world_.add_causal(ev);
}

void ThreadCommunicator::trace_causal(des::CausalKind kind, int peer,
                                      std::int64_t iter) {
  if (!world_.tracing()) return;
  des::CausalEvent ev;
  ev.lane = static_cast<std::uint64_t>(rank_);
  ev.kind = kind;
  ev.at = des::SimTime::seconds(time_seconds());
  ev.peer = peer;
  ev.iter = iter;
  world_.add_causal(ev);
}

int ThreadCommunicator::size() const { return world_.num_ranks(); }

double ThreadCommunicator::ops_per_sec() const {
  return world_.config().cluster.machine(static_cast<std::size_t>(rank_)).ops_per_sec;
}

void ThreadCommunicator::send(net::Rank dst, int tag,
                              std::vector<std::byte> payload) {
  SPEC_EXPECTS(dst >= 0 && dst < world_.num_ranks());
  SPEC_EXPECTS(dst != rank_);
  maybe_crash();
  net::Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.seq = next_seq_++;
  msg.payload = std::move(payload);
  record_send(msg.payload.size());
  note_msg_causal(des::CausalKind::Send, dst, tag, msg.seq);

  FaultPlan::SendOutcome outcome;
  const FaultPlan* fault = world_.fault();
  if (fault != nullptr && fault->has_link_faults()) {
    outcome = fault->on_send(rank_, dst, tag, msg.seq);
    FaultStats delta;
    delta.injected_drops = outcome.drops;
    delta.retransmits = outcome.retransmits;
    if (outcome.duplicated) delta.injected_duplicates = 1;
    if (outcome.reordered) delta.injected_reorders = 1;
    if (outcome.lost) delta.messages_lost = 1;
    if (outcome.duplicated && fault->recovery()) {
      // On this backend the dedup filter is modelled at the sender's NIC:
      // the second copy is created and immediately suppressed, so only one
      // copy ever travels (the simulated backend delivers both and filters
      // at the receiver — same observable behaviour, fewer shared-state
      // races here).
      delta.duplicates_suppressed = 1;
    }
    world_.merge_fault(delta);
    if (outcome.lost) return;  // recovery off: the message vanishes
  }

  auto deliver_at =
      Clock::now() + world_.sample_latency() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(outcome.extra_delay_seconds));
  if (fault != nullptr && fault->recovery() && fault->has_link_faults()) {
    // Head-of-line blocking of an in-order reliable transport (mirrors the
    // simulated backend): a fault-delayed message floors every later send
    // on its (dst, tag) stream so injected faults never invert send order.
    const std::uint64_t stream =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32 |
        static_cast<std::uint32_t>(tag);
    if (const auto it = delivery_floor_.find(stream);
        it != delivery_floor_.end() && deliver_at < it->second) {
      deliver_at = it->second;
    }
    if (outcome.extra_delay_seconds > 0.0) delivery_floor_[stream] = deliver_at;
  }
#if SPECOMP_HB_CHECK_ENABLED
  // Recorded before the message becomes receivable: once deliver() runs the
  // receiver may consume it concurrently, and its check must find the send.
  if (HbChecker* hb = world_.hb()) hb->on_send(rank_, dst, tag, msg.seq);
#endif
  if (outcome.duplicated && !fault->recovery()) {
    net::Message copy = msg;
    world_.mailbox(dst).deliver(
        std::move(copy),
        deliver_at + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             fault->config().duplicate_offset_seconds)));
  }
  world_.mailbox(dst).deliver(std::move(msg), deliver_at);
}

bool ThreadCommunicator::try_recv(net::Rank src, int tag, net::Message& out) {
  auto msg = world_.mailbox(rank_).try_take(src, tag);
  if (!msg) return false;
  out = std::move(*msg);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, out.src, out.tag, out.seq);
#endif
  record_receive(out.payload.size());
  note_msg_causal(des::CausalKind::Recv, out.src, out.tag, out.seq);
  return true;
}

net::Message ThreadCommunicator::recv(net::Rank src, int tag) {
  const auto begin = Clock::now();
  net::Message msg;
  if (crash_at_seconds_) {
    // Bound the wait by the crash instant so a blocked rank still dies on
    // schedule instead of waiting out a message that may never come.
    const auto crash_deadline =
        world_.start() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(*crash_at_seconds_));
    auto taken =
        world_.mailbox(rank_).take_blocking_until(src, tag, crash_deadline);
    if (!taken) throw RankCrashed{};
    msg = std::move(*taken);
  } else {
    msg = world_.mailbox(rank_).take_blocking(src, tag);
  }
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, msg.src, msg.tag, msg.seq);
#endif
  const des::SimTime waited = elapsed_since(begin);
  timer_.add(Phase::Communicate, waited);
  record_receive(msg.payload.size());
  record_recv_wait(waited.to_seconds());
  note_msg_causal(des::CausalKind::Recv, msg.src, msg.tag, msg.seq);
  return msg;
}

bool ThreadCommunicator::recv_timeout(net::Rank src, int tag,
                                      double timeout_seconds,
                                      net::Message& out) {
  if (timeout_seconds < 0.0) {
    out = recv(src, tag);
    return true;
  }
  const auto begin = Clock::now();
  const auto deadline =
      begin + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(timeout_seconds));
  auto taken = world_.mailbox(rank_).take_blocking_until(src, tag, deadline);
  const des::SimTime waited = elapsed_since(begin);
  timer_.add(Phase::Communicate, waited);
  record_recv_wait(waited.to_seconds());
  if (!taken) return false;
  out = std::move(*taken);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, out.src, out.tag, out.seq);
#endif
  record_receive(out.payload.size());
  note_msg_causal(des::CausalKind::Recv, out.src, out.tag, out.seq);
  return true;
}

net::Message ThreadCommunicator::recv_any(int tag) {
  const auto begin = Clock::now();
  net::Message msg = world_.mailbox(rank_).take_blocking_any(tag);
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb())
    hb->on_receive(rank_, msg.src, msg.tag, msg.seq);
#endif
  const des::SimTime waited = elapsed_since(begin);
  timer_.add(Phase::Communicate, waited);
  record_receive(msg.payload.size());
  record_recv_wait(waited.to_seconds());
  note_msg_causal(des::CausalKind::Recv, msg.src, msg.tag, msg.seq);
  return msg;
}

void ThreadCommunicator::barrier() {
  // Same selection as the simulated backend: Tree runs the dissemination
  // barrier over real messages (so its latency shape is observable here
  // too), Flat keeps the condition-variable world barrier.
  if (resolve_collective_algo(collective_algo(), world_.num_ranks()) ==
      CollectiveAlgo::Tree) {
    dissemination_barrier(*this, kBarrierTag);
    return;
  }
  world_.barrier_arrive();
}

void ThreadCommunicator::compute(double ops, Phase phase) {
  SPEC_EXPECTS(ops >= 0.0);
  const FaultPlan* fault = world_.fault();
  const auto begin = Clock::now();
  double seconds = world_.config().time_scale > 0.0
                       ? ops / ops_per_sec() * world_.config().time_scale
                       : 0.0;
  if (fault != nullptr) {
    maybe_crash();
    if (fault->has_compute_faults()) {
      const double now = time_seconds();
      FaultStats delta;
      const double multiplier =
          fault->compute_multiplier(rank_, now, compute_draw_++);
      if (multiplier != 1.0) {
        seconds *= multiplier;
        delta.slowdown_charges = 1;
      }
      seconds += fault->take_due_stalls(rank_, now, stall_cursor_,
                                        &delta.stalls);
      if (delta.slowdown_charges != 0 || delta.stalls != 0)
        world_.merge_fault(delta);
    }
    if (crash_at_seconds_ && time_seconds() + seconds >= *crash_at_seconds_) {
      // Sleep only up to the crash instant, then fail-stop.
      const double until = *crash_at_seconds_ - time_seconds();
      if (until > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(until));
      timer_.add(phase, elapsed_since(begin));
      throw RankCrashed{};
    }
  }
  if (seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  timer_.add(phase, elapsed_since(begin));
}

double ThreadCommunicator::time_seconds() const {
  return elapsed_since(world_.start()).to_seconds();
}

}  // namespace

ThreadResult run_threaded(const ThreadConfig& config, const RankBody& body) {
#if !SPECOMP_HB_CHECK_ENABLED
  if (config.hb_check) {
    std::fprintf(stderr,
                 "specomp: hb_check requested but this build compiled the "
                 "detector out — reconfigure with -DSPECOMP_HB_CHECK=ON\n");
  }
#endif
  ThreadWorld world(config);
  const int p = world.num_ranks();

  std::vector<std::unique_ptr<ThreadCommunicator>> comms;
  comms.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    comms.push_back(std::make_unique<ThreadCommunicator>(world, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::vector<double> finish(static_cast<std::size_t>(p), 0.0);
  for (int r = 0; r < p; ++r) {
    ThreadCommunicator* comm = comms[static_cast<std::size_t>(r)].get();
    threads.emplace_back([comm, &body, &finish, &world, r] {
      try {
        body(*comm);
      } catch (const RankCrashed&) {
        // Fail-stop: the rank simply stops executing; peers run on.
        FaultStats delta;
        delta.crashed_ranks = 1;
        world.merge_fault(delta);
      }
      finish[static_cast<std::size_t>(r)] = comm->time_seconds();
    });
  }
  for (auto& t : threads) t.join();

  ThreadResult result;
  result.makespan_seconds = *std::max_element(finish.begin(), finish.end());
  result.timers.reserve(comms.size());
  for (const auto& comm : comms) result.timers.push_back(comm->timer());
  result.fault_stats = world.fault_stats();
  if (config.fault != nullptr) result.fault_stats.publish();
  if (config.record_trace) result.trace = world.take_trace();
  return result;
}

}  // namespace specomp::runtime

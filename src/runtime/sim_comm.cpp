#include "runtime/sim_comm.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <tuple>
#include <utility>

#include "net/buffer_pool.hpp"
#include "obs/metrics.hpp"
#include "runtime/collectives.hpp"
#include "runtime/hb_check.hpp"
#include "support/contracts.hpp"

namespace specomp::runtime {

namespace detail {

/// Shared state of one simulated SPMD run: the kernel, the channel, one
/// communicator per rank, and the barrier bookkeeping.
class SimWorld {
 public:
  SimWorld(const SimConfig& config)
      : config_(config), num_ranks_(static_cast<int>(config.cluster.size())) {
    SPEC_EXPECTS(num_ranks_ > 0);
    if (config_.shared_medium) {
      channel_ = std::make_unique<net::SharedMediumChannel>(config_.channel);
    } else {
      channel_ =
          std::make_unique<net::PointToPointNetwork>(config_.channel, num_ranks_);
    }
    comms_.reserve(static_cast<std::size_t>(num_ranks_));
    for (int r = 0; r < num_ranks_; ++r)
      comms_.push_back(std::make_unique<SimCommunicator>(*this, r));
    finish_times_.resize(static_cast<std::size_t>(num_ranks_),
                         des::SimTime::zero());
#if SPECOMP_HB_CHECK_ENABLED
    if (config_.hb_check) hb_ = std::make_unique<HbChecker>(num_ranks_);
#endif
    if (config_.record_dists) {
      const auto p = static_cast<std::size_t>(num_ranks_);
      link_delay_.resize(p * p);
      inbound_delay_.resize(p);
      service_.resize(p);
    }
  }

  SimResult run(const RankBody& body) {
    for (int r = 0; r < num_ranks_; ++r) {
      SimCommunicator* comm = comms_[static_cast<std::size_t>(r)].get();
      comm->process_ = kernel_.spawn(
          "rank" + std::to_string(r),
          [this, comm, &body](des::Process& proc) {
            try {
              body(*comm);
            } catch (const RankCrashed&) {
              // Fail-stop: the rank simply stops executing; peers run on.
              ++fault_stats_.crashed_ranks;
            }
            finish_times_[static_cast<std::size_t>(comm->rank_)] = proc.now();
          });
    }
    if (config_.fault != nullptr) {
      // A rank blocked in a receive has no event of its own at the crash
      // instant — schedule a wake there so it resumes, notices local time
      // reached the crash time, and raises.  Late wakes of finished
      // processes are harmless no-ops.
      for (int r = 0; r < num_ranks_; ++r) {
        if (const auto t = config_.fault->crash_time(r)) {
          des::Process* proc = comms_[static_cast<std::size_t>(r)]->process_;
          kernel_.schedule_at(des::SimTime::seconds(*t),
                              [proc] { proc->wake(); });
        }
      }
    }
    SimResult result;
    result.kernel_stats = kernel_.run();
    // Surfaced once per run, after the event loop — the kernel hot path
    // never touches the registry, so telemetry stays zero-cost when off.
    obs::metrics()
        .counter("des.events_executed")
        .inc(result.kernel_stats.events_executed);
    obs::metrics()
        .gauge("des.queue_peak")
        .set(static_cast<double>(result.kernel_stats.queue_peak));
#if SPECOMP_HB_CHECK_ENABLED
    if (hb_ != nullptr)
      obs::metrics().counter("hb.events_checked").inc(hb_->events_checked());
#endif
    for (const auto t : finish_times_)
      result.makespan_seconds =
          std::max(result.makespan_seconds, t.to_seconds());
    result.timers.reserve(comms_.size());
    for (const auto& comm : comms_) result.timers.push_back(comm->timer());
    result.channel_stats = channel_->stats();
    result.trace = std::move(trace_);
    result.fault_stats = fault_stats_;
    if (config_.record_dists) {
      for (int s = 0; s < num_ranks_; ++s) {
        for (int d = 0; d < num_ranks_; ++d) {
          const obs::DistSketch& sk =
              link_delay_[static_cast<std::size_t>(s * num_ranks_ + d)];
          if (sk.count() == 0) continue;
          result.dists.push_back(obs::NamedDist{
              "link_delay." + std::to_string(s) + "->" + std::to_string(d),
              sk});
        }
      }
      for (int r = 0; r < num_ranks_; ++r) {
        const obs::DistSketch& sk = service_[static_cast<std::size_t>(r)];
        if (sk.count() == 0) continue;
        result.dists.push_back(
            obs::NamedDist{"service.rank" + std::to_string(r), sk});
      }
    }
    // Mirror into the metrics registry only when a plan was armed, so
    // fault-free runs do not grow "fault.*" zero rows in run reports.
    if (config_.fault != nullptr) result.fault_stats.publish();
    return result;
  }

  const SimConfig& config() const noexcept { return config_; }
  int num_ranks() const noexcept { return num_ranks_; }
  des::Kernel& kernel() noexcept { return kernel_; }
  net::Channel& channel() noexcept { return *channel_; }
  const FaultPlan* fault() const noexcept { return config_.fault.get(); }
  FaultStats& fault_stats() noexcept { return fault_stats_; }
  DeliveryOrder delivery_order() const noexcept {
    return config_.fault != nullptr && config_.fault->arrival_order_delivery()
               ? DeliveryOrder::ByArrival
               : DeliveryOrder::BySeq;
  }

  /// Parks `msg` in the slot pool and schedules its arrival at
  /// msg.delivered_at; the closure stays inline in the kernel's event
  /// storage (see the in-flight pool note below).
  void schedule_delivery(net::Message&& msg) {
    const des::SimTime at = msg.delivered_at;
    SimWorld* world = this;
    const std::uint32_t slot = inflight_acquire(std::move(msg));
    kernel_.schedule_at(at, [world, slot] {
      net::Message delivered_msg = world->inflight_release(slot);
      SimCommunicator& receiver = world->comm(delivered_msg.dst);
      receiver.deliver_from_wire(std::move(delivered_msg));
    });
  }
  des::Trace* trace() noexcept { return config_.record_trace ? &trace_ : nullptr; }
  /// nullptr unless record_dists — the same single-test guard as trace().
  obs::DistSketch* link_delay_sketch(net::Rank src, net::Rank dst) noexcept {
    if (link_delay_.empty()) return nullptr;
    return &link_delay_[static_cast<std::size_t>(src * num_ranks_ + dst)];
  }
  obs::DistSketch* service_sketch(net::Rank rank) noexcept {
    if (service_.empty()) return nullptr;
    return &service_[static_cast<std::size_t>(rank)];
  }
  /// All-peers inbound delay at `rank` — the aggregate the model-driven
  /// window policy consumes (one sketch, not p, so the per-iteration
  /// snapshot stays O(markers)).
  obs::DistSketch* inbound_delay_sketch(net::Rank rank) noexcept {
    if (inbound_delay_.empty()) return nullptr;
    return &inbound_delay_[static_cast<std::size_t>(rank)];
  }
  SimCommunicator& comm(net::Rank rank) {
    SPEC_EXPECTS(rank >= 0 && rank < num_ranks_);
    return *comms_[static_cast<std::size_t>(rank)];
  }

  // ---- In-flight message pool ----
  //
  // Messages between send and delivery live in recycled slots owned by the
  // world; the delivery event then captures only {world, slot} (16 bytes),
  // which fits the kernel's inline event storage.  Capturing the ~72-byte
  // Message directly would push every delivery closure to the heap.

  std::uint32_t inflight_acquire(net::Message&& msg) {
    if (!inflight_free_.empty()) {
      const std::uint32_t slot = inflight_free_.back();
      inflight_free_.pop_back();
      inflight_[slot] = std::move(msg);
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.push_back(std::move(msg));
    return slot;
  }

  net::Message inflight_release(std::uint32_t slot) noexcept {
    net::Message msg = std::move(inflight_[slot]);
    inflight_free_.push_back(slot);
    return msg;
  }

  // ---- Barrier (kernel-level; zero-cost synchronisation primitive) ----

  void barrier_arrive(SimCommunicator& comm) {
    const std::uint64_t my_generation = barrier_generation_;
    if (++barrier_count_ == num_ranks_) {
      barrier_count_ = 0;
      ++barrier_generation_;
#if SPECOMP_HB_CHECK_ENABLED
      // The barrier synchronises every rank: join all vector clocks before
      // anyone proceeds.
      if (hb_ != nullptr) hb_->on_barrier();
#endif
      for (auto& other : comms_)
        if (other.get() != &comm) other->process_->wake();
      return;
    }
    while (barrier_generation_ == my_generation) comm.process_->suspend();
  }

#if SPECOMP_HB_CHECK_ENABLED
  HbChecker* hb() noexcept { return hb_.get(); }
#endif

 private:
  SimConfig config_;
  int num_ranks_;
  des::Kernel kernel_;
  std::unique_ptr<net::Channel> channel_;
  std::vector<std::unique_ptr<SimCommunicator>> comms_;
  std::vector<des::SimTime> finish_times_;
  std::vector<net::Message> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  des::Trace trace_;
  FaultStats fault_stats_;
  std::vector<obs::DistSketch> link_delay_;     // p×p, row-major by src
  std::vector<obs::DistSketch> inbound_delay_;  // per dst, all srcs folded
  std::vector<obs::DistSketch> service_;        // per rank
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
#if SPECOMP_HB_CHECK_ENABLED
  std::unique_ptr<HbChecker> hb_;
#endif
};

SimCommunicator::SimCommunicator(SimWorld& world, net::Rank rank)
    : world_(world),
      rank_(rank),
      mailbox_(world.num_ranks(), world.delivery_order()) {
  set_collective_algo(world.config().collective);
  if (const FaultPlan* fault = world.fault())
    crash_at_seconds_ = fault->crash_time(rank);
}

int SimCommunicator::size() const { return world_.num_ranks(); }

double SimCommunicator::ops_per_sec() const {
  return world_.config().cluster.machine(static_cast<std::size_t>(rank_)).ops_per_sec;
}

des::SpanKind SimCommunicator::span_kind_for(Phase phase) const {
  switch (phase) {
    case Phase::Compute:
      if (degraded_) return des::SpanKind::DegradedCompute;
      return speculative_ ? des::SpanKind::SpeculativeCompute
                          : des::SpanKind::Compute;
    case Phase::Communicate: return des::SpanKind::Wait;
    case Phase::Speculate: return des::SpanKind::Speculate;
    case Phase::Check: return des::SpanKind::Check;
    case Phase::Correct: return des::SpanKind::Correct;
    case Phase::Send: return des::SpanKind::Send;
    case Phase::kCount: break;
  }
  return des::SpanKind::Other;
}

void SimCommunicator::advance_traced(des::SimTime dt, Phase phase) {
  const des::SimTime begin = process_->now();
  process_->advance(dt);
  timer_.add(phase, dt);
  if (des::Trace* trace = world_.trace()) {
    trace->add_span(static_cast<std::uint64_t>(rank_), span_kind_for(phase),
                    begin, process_->now());
  }
  if (phase == Phase::Compute) {
    if (obs::DistSketch* dist = world_.service_sketch(rank_))
      dist->observe(dt.to_seconds());
  }
}

void SimCommunicator::mark_degraded(bool on) {
  if (on != degraded_) {
    if (des::Trace* trace = world_.trace()) {
      des::CausalEvent ev;
      ev.lane = static_cast<std::uint64_t>(rank_);
      ev.kind = on ? des::CausalKind::DegradedEnter
                   : des::CausalKind::DegradedExit;
      ev.at = process_->now();
      trace->add_causal(ev);
    }
  }
  degraded_ = on;
}

void SimCommunicator::trace_causal(des::CausalKind kind, int peer,
                                   std::int64_t iter) {
  if (des::Trace* trace = world_.trace()) {
    des::CausalEvent ev;
    ev.lane = static_cast<std::uint64_t>(rank_);
    ev.kind = kind;
    ev.at = process_->now();
    ev.peer = peer;
    ev.iter = iter;
    trace->add_causal(ev);
  }
}

void SimCommunicator::send(net::Rank dst, int tag,
                           std::vector<std::byte> payload) {
  SPEC_EXPECTS(dst >= 0 && dst < world_.num_ranks());
  SPEC_EXPECTS(dst != rank_);
  maybe_crash();
  // Send-side software overhead (PVM pack + syscall) occupies this CPU.
  advance_traced(world_.config().send_sw_time, Phase::Send);

  net::Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.seq = next_seq_++;
  msg.sent_at = process_->now();
  msg.payload = std::move(payload);
  record_send(msg.payload.size());
  if (des::Trace* trace = world_.trace()) {
    // Emitted before the fault plan is consulted: a Send edge with no
    // matching Recv is exactly how a lost (norecovery) message shows up in
    // the causal record.
    des::CausalEvent ev;
    ev.lane = static_cast<std::uint64_t>(rank_);
    ev.kind = des::CausalKind::Send;
    ev.at = msg.sent_at;
    ev.peer = dst;
    ev.tag = tag;
    ev.seq = msg.seq;
    trace->add_causal(ev);
  }

  FaultPlan::SendOutcome outcome;
  const FaultPlan* fault = world_.fault();
  if (fault != nullptr && fault->has_link_faults()) {
    outcome = fault->on_send(rank_, dst, tag, msg.seq);
    FaultStats& fs = world_.fault_stats();
    fs.injected_drops += outcome.drops;
    fs.retransmits += outcome.retransmits;
    if (outcome.duplicated) ++fs.injected_duplicates;
    if (outcome.reordered) ++fs.injected_reorders;
    if (outcome.lost) {
      // Recovery off: the transmission vanishes at the sender's NIC — no
      // delivery event, no channel occupancy, and no happens-before send
      // record (the detector must never see a send that cannot arrive).
      ++fs.messages_lost;
      net::BufferPool::local().release(std::move(msg.payload));
      return;
    }
  }

  des::SimTime delivered = world_.channel().post(msg, process_->now());
  // Retransmit backoff and reorder hold resolve to a plain delivery delay:
  // the application only ever observes a late message, which is exactly the
  // misbehaviour speculation is claimed to mask.
  if (outcome.extra_delay_seconds > 0.0)
    delivered += des::SimTime::seconds(outcome.extra_delay_seconds);
  if (fault != nullptr && fault->recovery() && fault->has_link_faults()) {
    // Head-of-line blocking of an in-order reliable transport: a message
    // the plan delayed floors the delivery of every later send on its
    // (dst, tag) stream, so injected faults never invert send order (the
    // mailbox can only reassemble what has already arrived).  Floors are
    // created exclusively by fault-delayed messages, so a plan whose rules
    // never fire leaves all delivery times — and the whole SimResult —
    // byte-identical to a fault-free run.
    const std::uint64_t stream =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32 |
        static_cast<std::uint32_t>(tag);
    if (const auto it = delivery_floor_.find(stream);
        it != delivery_floor_.end() && delivered < it->second) {
      delivered = it->second;
    }
    if (outcome.extra_delay_seconds > 0.0) delivery_floor_[stream] = delivered;
  }
  msg.delivered_at = delivered;

#if SPECOMP_HB_CHECK_ENABLED
  // Recorded before the delivery event is scheduled, so the receive-side
  // check can never observe a send that does not exist yet.
  if (HbChecker* hb = world_.hb()) hb->on_send(rank_, dst, tag, msg.seq);
#endif

  if (outcome.duplicated) {
    // The network manufactures a second copy arriving shortly after the
    // first; the receiver's dedup filter (recovery on) or the application
    // (recovery off) deals with it.
    net::Message copy = msg;
    copy.delivered_at = delivered + des::SimTime::seconds(
                                        fault->config().duplicate_offset_seconds);
    world_.schedule_delivery(std::move(copy));
  }
  world_.schedule_delivery(std::move(msg));
}

void SimCommunicator::deliver_from_wire(net::Message&& msg) {
  const FaultPlan* fault = world_.fault();
  if (fault != nullptr && fault->wants_dedup() &&
      fault->on_send(msg.src, rank_, msg.tag, msg.seq).duplicated) {
    // on_send is a pure hash of the message identity, so recomputing it
    // here answers "does this message have two copies in flight?" without
    // any sender→receiver side channel.
    const std::tuple<net::Rank, int, std::uint64_t> key{msg.src, msg.tag,
                                                        msg.seq};
    const auto it =
        std::find(pending_dups_.begin(), pending_dups_.end(), key);
    if (it != pending_dups_.end()) {
      // Second copy: the filter restores at-most-once delivery.
      pending_dups_.erase(it);
      ++world_.fault_stats().duplicates_suppressed;
      net::BufferPool::local().release(std::move(msg.payload));
      return;
    }
    pending_dups_.push_back(key);
  }
  // Sampled at delivery (not consumption), so a message the application
  // never matches still contributes its link delay.
  if (obs::DistSketch* dist = world_.link_delay_sketch(msg.src, rank_)) {
    const double delay = (msg.delivered_at - msg.sent_at).to_seconds();
    dist->observe(delay);
    world_.inbound_delay_sketch(rank_)->observe(delay);
  }
  mailbox_.push(std::move(msg));
  process_->wake();
}

void SimCommunicator::note_recv_causal(const net::Message& msg) {
  if (des::Trace* trace = world_.trace()) {
    des::CausalEvent ev;
    ev.lane = static_cast<std::uint64_t>(rank_);
    ev.kind = des::CausalKind::Recv;
    ev.at = process_->now();
    ev.peer = msg.src;
    ev.tag = msg.tag;
    ev.seq = msg.seq;
    ev.t2 = msg.delivered_at;
    trace->add_causal(ev);
  }
}

void SimCommunicator::maybe_crash() {
  if (crash_at_seconds_ &&
      process_->now().to_seconds() >= *crash_at_seconds_) {
    throw RankCrashed{};
  }
}

bool SimCommunicator::try_recv(net::Rank src, int tag, net::Message& out) {
  maybe_crash();
  // The mailbox indexes per-(src, tag) streams ordered by sender sequence
  // number, so iteration streams are consumed in send order even if jitter
  // reordered deliveries.
  if (!mailbox_.take(src, tag, out)) return false;
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb()) {
    hb->on_receive_sim(rank_, out.src, out.tag, out.seq,
                       out.sent_at.to_seconds(), out.delivered_at.to_seconds(),
                       process_->now().to_seconds());
  }
#endif
  record_receive(out.payload.size());
  note_recv_causal(out);
  return true;
}

void SimCommunicator::note_received(const net::Message& msg,
                                    des::SimTime wait_begin) {
#if SPECOMP_HB_CHECK_ENABLED
  if (HbChecker* hb = world_.hb()) {
    hb->on_receive_sim(rank_, msg.src, msg.tag, msg.seq,
                       msg.sent_at.to_seconds(), msg.delivered_at.to_seconds(),
                       process_->now().to_seconds());
  }
#endif
  const des::SimTime waited = process_->now() - wait_begin;
  timer_.add(Phase::Communicate, waited);
  record_receive(msg.payload.size());
  record_recv_wait(waited.to_seconds());
  note_recv_causal(msg);
  if (des::Trace* trace = world_.trace();
      trace != nullptr && waited > des::SimTime::zero()) {
    trace->add_span(static_cast<std::uint64_t>(rank_), des::SpanKind::Wait,
                    wait_begin, process_->now());
  }
}

net::Message SimCommunicator::recv_blocking(bool any, net::Rank src, int tag) {
  const des::SimTime begin = process_->now();
  net::Message msg;
  for (;;) {
    maybe_crash();
    if (any ? mailbox_.take_any(tag, msg) : mailbox_.take(src, tag, msg)) {
      note_received(msg, begin);
      return msg;
    }
    process_->suspend();
  }
}

bool SimCommunicator::recv_timeout(net::Rank src, int tag,
                                   double timeout_seconds, net::Message& out) {
  if (timeout_seconds < 0.0) {
    out = recv(src, tag);
    return true;
  }
  const des::SimTime begin = process_->now();
  const des::SimTime deadline = begin + des::SimTime::seconds(timeout_seconds);
  // One wake at the deadline so a suspended receiver resumes to time out;
  // if the message arrives first, the leftover wake of a non-suspended (or
  // finished) process is a harmless no-op.
  des::Process* proc = process_;
  world_.kernel().schedule_at(deadline, [proc] { proc->wake(); });
  net::Message msg;
  for (;;) {
    maybe_crash();
    if (mailbox_.take(src, tag, msg)) {
      note_received(msg, begin);
      out = std::move(msg);
      return true;
    }
    if (process_->now() >= deadline) {
      const des::SimTime waited = process_->now() - begin;
      timer_.add(Phase::Communicate, waited);
      record_recv_wait(waited.to_seconds());
      if (des::Trace* trace = world_.trace();
          trace != nullptr && waited > des::SimTime::zero()) {
        trace->add_span(static_cast<std::uint64_t>(rank_), des::SpanKind::Wait,
                        begin, process_->now());
      }
      return false;
    }
    process_->suspend();
  }
}

net::Message SimCommunicator::recv(net::Rank src, int tag) {
  return recv_blocking(/*any=*/false, src, tag);
}

net::Message SimCommunicator::recv_any(int tag) {
  return recv_blocking(/*any=*/true, /*src=*/-1, tag);
}

void SimCommunicator::barrier() {
  maybe_crash();
  // Tree: a dissemination barrier made of real messages, so the
  // synchronisation itself costs send overhead and channel delays (and shows
  // up in traces).  Flat: the kernel-level primitive — instantaneous, the
  // pre-existing behaviour.
  if (resolve_collective_algo(collective_algo(), world_.num_ranks()) ==
      CollectiveAlgo::Tree) {
    dissemination_barrier(*this, kBarrierTag);
    return;
  }
  world_.barrier_arrive(*this);
}

void SimCommunicator::compute(double ops, Phase phase) {
  SPEC_EXPECTS(ops >= 0.0);
  const FaultPlan* fault = world_.fault();
  if (fault == nullptr) {
    // Fault-free fast path: the exact pre-fault arithmetic, so unfaulted
    // runs stay byte-identical and pay one pointer test.
    advance_traced(des::SimTime::seconds(ops / ops_per_sec()), phase);
    return;
  }
  maybe_crash();
  double seconds = ops / ops_per_sec();
  if (fault->has_compute_faults()) {
    const double now = process_->now().to_seconds();
    FaultStats& fs = world_.fault_stats();
    const double multiplier =
        fault->compute_multiplier(rank_, now, compute_draw_++);
    if (multiplier != 1.0) {
      seconds *= multiplier;
      ++fs.slowdown_charges;
    }
    const double stall =
        fault->take_due_stalls(rank_, now, stall_cursor_, &fs.stalls);
    if (stall > 0.0) {
      seconds += stall;
      if (des::Trace* trace = world_.trace()) {
        // Anchors spectrace's delay-propagation analysis: the injected
        // one-off delay fires here, at this rank, for t2 seconds.
        des::CausalEvent ev;
        ev.lane = static_cast<std::uint64_t>(rank_);
        ev.kind = des::CausalKind::Stall;
        ev.at = process_->now();
        ev.t2 = des::SimTime::seconds(stall);
        trace->add_causal(ev);
      }
    }
  }
  if (crash_at_seconds_ &&
      process_->now().to_seconds() + seconds >= *crash_at_seconds_) {
    // The charge crosses the crash instant: truncate it there and stop.
    const double until = *crash_at_seconds_ - process_->now().to_seconds();
    if (until > 0.0) advance_traced(des::SimTime::seconds(until), phase);
    throw RankCrashed{};
  }
  advance_traced(des::SimTime::seconds(seconds), phase);
}

double SimCommunicator::time_seconds() const {
  return process_->now().to_seconds();
}

DistSnapshot SimCommunicator::dist_snapshot() const {
  DistSnapshot snap;
  const obs::DistSketch* delay = world_.inbound_delay_sketch(rank_);
  const obs::DistSketch* service = world_.service_sketch(rank_);
  if (delay == nullptr || service == nullptr) return snap;  // dists off
  snap.valid = true;
  snap.delay_samples = delay->count();
  snap.delay_p50 = delay->quantile(0.5);
  snap.delay_p90 = delay->quantile(0.9);
  snap.delay_p99 = delay->quantile(0.99);
  snap.service_samples = service->count();
  snap.service_p50 = service->quantile(0.5);
  snap.service_p90 = service->quantile(0.9);
  snap.service_p99 = service->quantile(0.99);
  return snap;
}

}  // namespace detail

SimResult run_simulated(const SimConfig& config, const RankBody& body) {
#if !SPECOMP_HB_CHECK_ENABLED
  if (config.hb_check) {
    std::fprintf(stderr,
                 "specomp: hb_check requested but this build compiled the "
                 "detector out — reconfigure with -DSPECOMP_HB_CHECK=ON\n");
  }
#endif
  detail::SimWorld world(config);
  return world.run(body);
}

}  // namespace specomp::runtime

// Cluster description: the heterogeneous processor fleet.
//
// The paper's testbed was up to 16 SUN/Sparc workstations whose capacities
// differed by a factor of ten (SparcStation 10/1 at 120 MIPS down to a SUN
// 4/10 at 10 MIPS), ordered fastest-first; a p-processor run uses the p
// fastest.  Machine capacity M_i is expressed in application operations per
// second and is what converts operation counts into simulated time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace specomp::runtime {

struct Machine {
  std::string name;
  double ops_per_sec = 1.0;  // M_i in the paper's Table 1
};

class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<Machine> machines);

  std::size_t size() const noexcept { return machines_.size(); }
  const Machine& machine(std::size_t i) const;
  const std::vector<Machine>& machines() const noexcept { return machines_; }

  /// The first (fastest) p machines.  Requires p <= size().
  Cluster prefix(std::size_t p) const;

  /// Sum of capacities — numerator of the paper's speedup_max(p).
  double total_ops_per_sec() const noexcept;
  /// speedup_max(p) = sum_i M_i / M_1 (paper, Section 4).
  double max_speedup() const;

  /// Splits `total_items` work items proportionally to capacity (paper
  /// eqs. 4-5): N_i / M_i equal across i, sum N_i = total.  Remainders are
  /// assigned largest-fractional-part first, so the partition is exact.
  std::vector<std::size_t> proportional_partition(std::size_t total_items) const;

  // ---- Factories ----

  /// Homogeneous fleet of p machines.
  static Cluster homogeneous(std::size_t p, double ops_per_sec);

  /// p machines whose capacities decline linearly from `fastest` to
  /// `fastest / ratio` (paper model: ratio = 10 across 16 machines).
  static Cluster linear(std::size_t p, double fastest, double ratio);

  /// The default 16-machine fleet used throughout the reproduction:
  /// capacities linear from 1.2e6 ops/s down to 1.2e5 ops/s.  Calibrated to
  /// the paper's own measurements: with the 70-op pair force and N = 1000,
  /// P1 alone takes ~58 s per iteration and the balanced 16-processor
  /// compute time is ~6.6 s — matching the ~5.8 s computation row of the
  /// paper's Table 2 and its Figure 8 speedup scale (max speedup 8.8).
  static Cluster paper_fleet();

 private:
  std::vector<Machine> machines_;
};

}  // namespace specomp::runtime

#include "runtime/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::runtime {

namespace {

// Decision salts keep the per-message hash streams for drop / dup / reorder
// decorrelated; drop attempts additionally fold in the attempt index.
constexpr std::uint64_t kDropSalt = 0xd201;
constexpr std::uint64_t kDupSalt = 0xd202;
constexpr std::uint64_t kReorderSalt = 0xd203;
constexpr std::uint64_t kSlowSalt = 0xd210;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  support::SplitMix64 g(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return g.next();
}

constexpr double to_unit(std::uint64_t h) noexcept {
  // Top 53 bits -> [0, 1), the same mapping Xoshiro256::uniform uses.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultStats::merge(const FaultStats& other) noexcept {
  injected_drops += other.injected_drops;
  retransmits += other.retransmits;
  messages_lost += other.messages_lost;
  injected_duplicates += other.injected_duplicates;
  duplicates_suppressed += other.duplicates_suppressed;
  injected_reorders += other.injected_reorders;
  slowdown_charges += other.slowdown_charges;
  stalls += other.stalls;
  crashed_ranks += other.crashed_ranks;
}

bool FaultStats::any() const noexcept {
  return injected_drops != 0 || messages_lost != 0 ||
         injected_duplicates != 0 || injected_reorders != 0 ||
         slowdown_charges != 0 || stalls != 0 || crashed_ranks != 0;
}

void FaultStats::publish() const {
  auto& registry = obs::metrics();
  registry.counter("fault.injected_drops").inc(injected_drops);
  registry.counter("fault.retransmits").inc(retransmits);
  registry.counter("fault.messages_lost").inc(messages_lost);
  registry.counter("fault.injected_duplicates").inc(injected_duplicates);
  registry.counter("fault.duplicates_suppressed").inc(duplicates_suppressed);
  registry.counter("fault.injected_reorders").inc(injected_reorders);
  registry.counter("fault.slowdown_charges").inc(slowdown_charges);
  registry.counter("fault.stalls").inc(stalls);
  registry.counter("fault.crashed_ranks").inc(crashed_ranks);
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  SPEC_EXPECTS(config_.retransmit_timeout_seconds >= 0.0);
  SPEC_EXPECTS(config_.max_retransmits >= 0 && config_.max_retransmits <= 30);
  SPEC_EXPECTS(config_.reorder_hold_seconds >= 0.0);
  SPEC_EXPECTS(config_.duplicate_offset_seconds >= 0.0);
  for (const auto& rule : config_.links) {
    SPEC_EXPECTS(rule.drop >= 0.0 && rule.drop <= 1.0);
    SPEC_EXPECTS(rule.duplicate >= 0.0 && rule.duplicate <= 1.0);
    SPEC_EXPECTS(rule.reorder >= 0.0 && rule.reorder <= 1.0);
    any_duplicate_ = any_duplicate_ || rule.duplicate > 0.0;
    any_reorder_ = any_reorder_ || rule.reorder > 0.0;
  }
  stalls_by_time_ = config_.stalls;
  std::sort(stalls_by_time_.begin(), stalls_by_time_.end(),
            [](const StallRule& a, const StallRule& b) {
              if (a.at_seconds != b.at_seconds)
                return a.at_seconds < b.at_seconds;
              return a.rank < b.rank;
            });
}

double FaultPlan::unit_hash(std::uint64_t salt, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c,
                            std::uint64_t d) const noexcept {
  std::uint64_t h = config_.seed;
  h = mix(h, salt);
  h = mix(h, a);
  h = mix(h, b);
  h = mix(h, c);
  h = mix(h, d);
  return to_unit(h);
}

FaultPlan::SendOutcome FaultPlan::on_send(net::Rank src, net::Rank dst,
                                          int tag,
                                          std::uint64_t seq) const noexcept {
  SendOutcome out;
  // Field-wise first-match merge over the rule list (see LinkFaultRule doc).
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  for (const auto& rule : config_.links) {
    if (rule.src != -1 && rule.src != src) continue;
    if (rule.dst != -1 && rule.dst != dst) continue;
    if (drop == 0.0) drop = rule.drop;
    if (duplicate == 0.0) duplicate = rule.duplicate;
    if (reorder == 0.0) reorder = rule.reorder;
  }
  if (drop == 0.0 && duplicate == 0.0 && reorder == 0.0) return out;

  const auto us = static_cast<std::uint64_t>(static_cast<std::uint32_t>(src));
  const auto ud = static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  const auto ut = static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));

  if (drop > 0.0) {
    if (config_.recovery) {
      // Bounded ARQ: each consecutive drop costs one backoff interval,
      // doubling every attempt; the attempt after the last tolerated drop
      // always delivers.  The whole schedule is resolved here, at send, so
      // the channel sees a single (delayed) delivery.
      for (int attempt = 0; attempt < config_.max_retransmits; ++attempt) {
        if (unit_hash(kDropSalt + static_cast<std::uint64_t>(attempt), us, ud,
                      ut, seq) >= drop) {
          break;
        }
        ++out.drops;
        ++out.retransmits;
        out.extra_delay_seconds += config_.retransmit_timeout_seconds *
                                   static_cast<double>(1u << attempt);
      }
    } else if (unit_hash(kDropSalt, us, ud, ut, seq) < drop) {
      ++out.drops;
      out.lost = true;
      return out;  // nothing else can happen to a lost message
    }
  }
  if (duplicate > 0.0 && unit_hash(kDupSalt, us, ud, ut, seq) < duplicate)
    out.duplicated = true;
  if (reorder > 0.0 && unit_hash(kReorderSalt, us, ud, ut, seq) < reorder) {
    out.reordered = true;
    out.extra_delay_seconds += config_.reorder_hold_seconds;
  }
  return out;
}

double FaultPlan::compute_multiplier(net::Rank rank, double now_seconds,
                                     std::uint64_t draw) const noexcept {
  double multiplier = 1.0;
  for (std::size_t i = 0; i < config_.slowdowns.size(); ++i) {
    const SlowdownRule& rule = config_.slowdowns[i];
    if (rule.rank != -1 && rule.rank != rank) continue;
    if (now_seconds < rule.begin_seconds || now_seconds >= rule.end_seconds)
      continue;
    if (rule.probability < 1.0 &&
        unit_hash(kSlowSalt + i,
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)),
                  draw, 0, 0) >= rule.probability) {
      continue;
    }
    multiplier *= rule.factor;
  }
  return multiplier;
}

double FaultPlan::take_due_stalls(net::Rank rank, double now_seconds,
                                  std::size_t& cursor,
                                  std::uint64_t* fired) const noexcept {
  double total = 0.0;
  while (cursor < stalls_by_time_.size() &&
         stalls_by_time_[cursor].at_seconds <= now_seconds) {
    const StallRule& rule = stalls_by_time_[cursor++];
    if (rule.rank == -1 || rule.rank == rank) {
      total += rule.duration_seconds;
      if (fired != nullptr) ++*fired;
    }
  }
  return total;
}

std::optional<double> FaultPlan::crash_time(net::Rank rank) const noexcept {
  std::optional<double> earliest;
  for (const auto& rule : config_.crashes) {
    if (rule.rank != rank) continue;
    if (!earliest || rule.at_seconds < *earliest) earliest = rule.at_seconds;
  }
  return earliest;
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool parse_rank(const std::string& text, net::Rank& out) {
  if (text == "*") {
    out = -1;
    return true;
  }
  double value = 0.0;
  if (!parse_double(text, value) || value < 0.0 ||
      value != static_cast<double>(static_cast<net::Rank>(value))) {
    return false;
  }
  out = static_cast<net::Rank>(value);
  return true;
}

/// Parses the optional `@S->D` link suffix; `body` is the clause after the
/// kind prefix (e.g. "0.05@1->2").  On success `prob_text` holds the part
/// before '@'.
bool parse_link_suffix(const std::string& body, std::string& prob_text,
                       net::Rank& src, net::Rank& dst, std::string& error) {
  const std::size_t at = body.find('@');
  src = -1;
  dst = -1;
  if (at == std::string::npos) {
    prob_text = body;
    return true;
  }
  prob_text = body.substr(0, at);
  const std::string link = body.substr(at + 1);
  const std::size_t arrow = link.find("->");
  if (arrow == std::string::npos) {
    error = "link suffix must be @SRC->DST (got '@" + link + "')";
    return false;
  }
  if (!parse_rank(link.substr(0, arrow), src) ||
      !parse_rank(link.substr(arrow + 2), dst)) {
    error = "bad rank in link suffix '@" + link + "' (want a number or *)";
    return false;
  }
  return true;
}

bool parse_probability(const std::string& text, double& out,
                       std::string& error) {
  if (!parse_double(text, out) || out < 0.0 || out > 1.0) {
    error = "probability must be in [0, 1] (got '" + text + "')";
    return false;
  }
  return true;
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlanConfig& config,
                      std::string& error) {
  error.clear();
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) {
      error = "empty clause (stray comma) in fault plan '" + spec + "'";
      return false;
    }
    if (clause == "norecovery") {
      config.recovery = false;
      continue;
    }
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      error = "clause '" + clause + "' has no ':' (see runtime/fault.hpp)";
      return false;
    }
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);

    if (kind == "drop" || kind == "dup" || kind == "reorder") {
      std::string prob_text;
      LinkFaultRule rule;
      if (!parse_link_suffix(body, prob_text, rule.src, rule.dst, error))
        return false;
      double prob = 0.0;
      if (!parse_probability(prob_text, prob, error)) return false;
      if (kind == "drop") rule.drop = prob;
      if (kind == "dup") rule.duplicate = prob;
      if (kind == "reorder") rule.reorder = prob;
      config.links.push_back(rule);
    } else if (kind == "slow") {
      // slow:RxF[@T0..T1][~P]
      SlowdownRule rule;
      std::string rest = body;
      if (const std::size_t tilde = rest.find('~');
          tilde != std::string::npos) {
        if (!parse_probability(rest.substr(tilde + 1), rule.probability,
                               error)) {
          return false;
        }
        rest = rest.substr(0, tilde);
      }
      if (const std::size_t at = rest.find('@'); at != std::string::npos) {
        const std::string window = rest.substr(at + 1);
        const std::size_t dots = window.find("..");
        if (dots == std::string::npos ||
            !parse_double(window.substr(0, dots), rule.begin_seconds) ||
            !parse_double(window.substr(dots + 2), rule.end_seconds) ||
            rule.end_seconds < rule.begin_seconds) {
          error = "slow window must be @T0..T1 with T1 >= T0 (got '" + body +
                  "')";
          return false;
        }
        rest = rest.substr(0, at);
      }
      const std::size_t x = rest.find('x');
      if (x == std::string::npos || !parse_rank(rest.substr(0, x), rule.rank) ||
          !parse_double(rest.substr(x + 1), rule.factor) || rule.factor <= 0.0) {
        error = "slow clause must be slow:RANKxFACTOR[@T0..T1][~P] (got '" +
                clause + "')";
        return false;
      }
      config.slowdowns.push_back(rule);
    } else if (kind == "stall") {
      // stall:R@T+D
      StallRule rule;
      const std::size_t at = body.find('@');
      const std::size_t plus =
          at == std::string::npos ? std::string::npos : body.find('+', at);
      if (at == std::string::npos || plus == std::string::npos ||
          !parse_rank(body.substr(0, at), rule.rank) || rule.rank < 0 ||
          !parse_double(body.substr(at + 1, plus - at - 1), rule.at_seconds) ||
          !parse_double(body.substr(plus + 1), rule.duration_seconds) ||
          rule.at_seconds < 0.0 || rule.duration_seconds < 0.0) {
        error = "stall clause must be stall:RANK@T+DURATION (got '" + clause +
                "')";
        return false;
      }
      config.stalls.push_back(rule);
    } else if (kind == "crash") {
      // crash:R@T
      CrashRule rule;
      const std::size_t at = body.find('@');
      if (at == std::string::npos ||
          !parse_rank(body.substr(0, at), rule.rank) || rule.rank < 0 ||
          !parse_double(body.substr(at + 1), rule.at_seconds) ||
          rule.at_seconds < 0.0) {
        error = "crash clause must be crash:RANK@T (got '" + clause + "')";
        return false;
      }
      config.crashes.push_back(rule);
    } else if (kind == "rto") {
      if (!parse_double(body, config.retransmit_timeout_seconds) ||
          config.retransmit_timeout_seconds < 0.0) {
        error = "rto wants a nonnegative number of seconds (got '" + body + "')";
        return false;
      }
    } else if (kind == "retries") {
      double value = 0.0;
      if (!parse_double(body, value) || value < 1.0 || value > 30.0 ||
          value != static_cast<double>(static_cast<int>(value))) {
        error = "retries wants an integer in [1, 30] (got '" + body + "')";
        return false;
      }
      config.max_retransmits = static_cast<int>(value);
    } else if (kind == "reorder-hold") {
      if (!parse_double(body, config.reorder_hold_seconds) ||
          config.reorder_hold_seconds < 0.0) {
        error = "reorder-hold wants nonnegative seconds (got '" + body + "')";
        return false;
      }
    } else if (kind == "dup-offset") {
      if (!parse_double(body, config.duplicate_offset_seconds) ||
          config.duplicate_offset_seconds < 0.0) {
        error = "dup-offset wants nonnegative seconds (got '" + body + "')";
        return false;
      }
    } else {
      error = "unknown fault clause kind '" + kind +
              "' (want drop/dup/reorder/slow/stall/crash/rto/retries/"
              "reorder-hold/dup-offset/norecovery)";
      return false;
    }
  }
  return true;
}

}  // namespace specomp::runtime

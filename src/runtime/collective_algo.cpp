#include "runtime/collective_algo.hpp"

#include <atomic>

namespace specomp::runtime {

namespace {
std::atomic<CollectiveAlgo> g_default{CollectiveAlgo::Auto};
}  // namespace

std::optional<CollectiveAlgo> parse_collective_algo(
    std::string_view name) noexcept {
  if (name == "flat") return CollectiveAlgo::Flat;
  if (name == "tree") return CollectiveAlgo::Tree;
  if (name == "auto") return CollectiveAlgo::Auto;
  return std::nullopt;
}

std::string_view collective_algo_name(CollectiveAlgo algo) noexcept {
  switch (algo) {
    case CollectiveAlgo::Flat: return "flat";
    case CollectiveAlgo::Tree: return "tree";
    case CollectiveAlgo::Auto: return "auto";
  }
  return "auto";
}

void set_default_collective_algo(CollectiveAlgo algo) noexcept {
  g_default.store(algo, std::memory_order_relaxed);
}

CollectiveAlgo default_collective_algo() noexcept {
  return g_default.load(std::memory_order_relaxed);
}

CollectiveAlgo resolve_collective_algo(CollectiveAlgo algo, int p) noexcept {
  if (algo == CollectiveAlgo::Auto) algo = default_collective_algo();
  if (algo == CollectiveAlgo::Auto)
    return p > kCollectiveAutoTreeCutoff ? CollectiveAlgo::Tree
                                         : CollectiveAlgo::Flat;
  return algo;
}

}  // namespace specomp::runtime

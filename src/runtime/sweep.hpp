// Parallel deterministic sweep runner.
//
// Every paper figure is produced by sweeping run_simulated / run_scenario
// over a (p, FW, θ, latency, ...) grid, and each sweep point is a *pure
// function* of its configuration: the DES kernel gives every run its own
// virtual clock, event queue and seeded channel, so two runs cannot observe
// each other no matter how the host schedules them.  That makes sweep-level
// parallelism trivially safe: run the points concurrently, write each result
// into its own index slot, and the collected vector — and therefore every
// table, JSON report and headline computed from it — is byte-identical to a
// serial sweep regardless of --jobs.
//
// Wall-clock is the only thing that changes.  Each sweep call builds a
// dedicated pool of (jobs - 1) workers and participates from the calling
// thread, so --jobs=N means exactly N concurrent simulations; jobs <= 1 is
// a plain serial loop with no pool and no synchronisation.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/cli.hpp"

namespace specomp::runtime {

/// Reads the shared `--jobs=N` bench flag (default 1 = serial).
int jobs_from_cli(const support::Cli& cli);

namespace detail_sweep {

/// Runs body(i) for every i in [0, n): inline when jobs <= 1, otherwise on
/// a dedicated pool of min(jobs, n) lanes (including the calling thread).
void run_indexed(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& body);

}  // namespace detail_sweep

/// Evaluates fn(i) for i in [0, n) with up to `jobs` simulations in flight
/// and returns the results in index order.  fn must be safe to call from
/// multiple threads (independent run_simulated configurations are; see the
/// file comment) and its result type default-constructible.
template <typename Fn>
auto sweep_indexed(std::size_t n, int jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<Result> results(n);
  detail_sweep::run_indexed(
      n, jobs, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// Convenience overload: maps fn over an explicit configuration list.
template <typename Config, typename Fn>
auto sweep_map(const std::vector<Config>& configs, int jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const Config&>> {
  return sweep_indexed(configs.size(), jobs, [&](std::size_t i) {
    return fn(configs[i]);
  });
}

}  // namespace specomp::runtime

#include "runtime/sweep.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/thread_pool.hpp"

namespace specomp::runtime {

int jobs_from_cli(const support::Cli& cli) {
  const auto jobs = cli.get_int("jobs", 1);
  SPEC_EXPECTS(jobs >= 1);
  return static_cast<int>(jobs);
}

namespace detail_sweep {

void run_indexed(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // A dedicated pool per sweep (not ThreadPool::shared()): simulated ranks
  // are blocking OS threads, so sweep lanes must not occupy the compute
  // pool that the force kernels shard work onto.  Grain 1 hands every index
  // to the next free lane; the caller claims chunks too, so lanes == jobs.
  const std::size_t lanes =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  support::ThreadPool pool(static_cast<unsigned>(lanes - 1));
  pool.parallel_for(n, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace detail_sweep

}  // namespace specomp::runtime

// Real-thread communicator.
//
// Functional backend: each rank is an OS thread; messages travel through
// in-process mailboxes with optional injected delivery delays.  Used to
// cross-check that application code and the speculation engine behave
// identically under genuine concurrency (arbitrary interleavings) as under
// the deterministic simulator.  Timing figures from this backend are
// wall-clock and hardware-dependent; the simulated backend is the
// measurement instrument.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "des/trace.hpp"
#include "net/message.hpp"
#include "runtime/cluster.hpp"
#include "runtime/communicator.hpp"
#include "runtime/fault.hpp"

namespace specomp::runtime {

struct ThreadConfig {
  Cluster cluster;
  /// Real sleep per modelled second of compute: compute(ops) sleeps
  /// ops / M_i * time_scale seconds.  0 disables sleeping (fast tests).
  double time_scale = 0.0;
  /// Constant message delivery delay, seconds of wall time.
  double latency_seconds = 0.0;
  /// Extra uniform jitter in [0, latency_jitter_seconds).
  double latency_jitter_seconds = 0.0;
  std::uint64_t seed = 0x7ead5;
  /// Run the vector-clock happens-before detector on every send/recv/barrier
  /// (see runtime/hb_check.hpp).  Only honoured when the build enables
  /// -DSPECOMP_HB_CHECK=ON; otherwise the hooks are compiled out and this
  /// flag warns and is ignored.
  bool hb_check = false;
  /// Optional fault-injection plan (see runtime/fault.hpp).  Fault decisions
  /// hash the same message identities as the simulated backend, so the same
  /// plan + seed faults the same messages on both.  Times in the plan
  /// (slow/stall/crash windows) are interpreted as wall seconds since the
  /// run started on this backend.
  FaultPlanPtr fault;
  /// Record causal trace events (send/recv edges, speculation lifecycle)
  /// into ThreadResult::trace.  Timestamps are wall seconds since run start,
  /// so causal *structure* is comparable with the simulated backend even
  /// though timings are hardware-dependent.
  bool record_trace = false;
  /// Collective-algorithm preference for this run (same semantics as
  /// SimConfig::collective): Auto resolution for collectives, and barrier()
  /// runs the dissemination barrier when this resolves to Tree.
  CollectiveAlgo collective = CollectiveAlgo::Auto;
};

struct ThreadResult {
  double makespan_seconds = 0.0;
  std::vector<PhaseTimer> timers;
  /// Fault-injection bookkeeping; all zeros when ThreadConfig::fault is unset.
  FaultStats fault_stats;
  /// Causal events only (no spans on this backend); empty unless
  /// ThreadConfig::record_trace.
  des::Trace trace;
};

/// Runs `body` on one real thread per cluster machine and joins them all.
ThreadResult run_threaded(const ThreadConfig& config, const RankBody& body);

}  // namespace specomp::runtime

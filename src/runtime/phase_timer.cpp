#include "runtime/phase_timer.hpp"

#include "support/contracts.hpp"

namespace specomp::runtime {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::Compute: return "compute";
    case Phase::Communicate: return "communicate";
    case Phase::Speculate: return "speculate";
    case Phase::Check: return "check";
    case Phase::Correct: return "correct";
    case Phase::Send: return "send";
    case Phase::kCount: break;
  }
  return "?";
}

void PhaseTimer::add(Phase phase, des::SimTime dt) {
  SPEC_EXPECTS(phase != Phase::kCount);
  SPEC_EXPECTS(dt >= des::SimTime::zero());
  spent_[static_cast<std::size_t>(phase)] += dt;
}

des::SimTime PhaseTimer::get(Phase phase) const {
  SPEC_EXPECTS(phase != Phase::kCount);
  return spent_[static_cast<std::size_t>(phase)];
}

des::SimTime PhaseTimer::total() const noexcept {
  des::SimTime sum = des::SimTime::zero();
  for (const auto& t : spent_) sum += t;
  return sum;
}

void PhaseTimer::merge(const PhaseTimer& other) noexcept {
  for (std::size_t i = 0; i < spent_.size(); ++i) spent_[i] += other.spent_[i];
  iterations_ += other.iterations_;
}

void PhaseTimer::reset() noexcept {
  spent_.fill(des::SimTime::zero());
  iterations_ = 0;
}

double PhaseTimer::per_iteration_seconds(Phase phase) const noexcept {
  if (iterations_ == 0) return 0.0;
  return spent_[static_cast<std::size_t>(phase)].to_seconds() /
         static_cast<double>(iterations_);
}

}  // namespace specomp::runtime

// Indexed mailboxes for both communicator backends.
//
// Receives match on (source, tag).  The old mailboxes kept one flat deque
// and linearly scanned every pending message per receive, recomputing the
// lowest sequence number each time — O(mailbox) per call, quadratic over an
// iteration's message burst.  These containers index messages into
// per-(src, tag) streams ordered by sender sequence number:
//
//   * take(src, tag)     — O(1) pop of the stream head (+ tag hash lookup),
//   * take_any(tag)      — O(#sources) scan of one tag's stream heads,
//   * push/deliver       — O(log stream) heap insert, amortised O(1) for the
//                          in-order deliveries that dominate.
//
// Selection semantics are exactly the old scan's: among matching messages
// the lowest (seq, arrival-order) wins, so jitter-reordered deliveries of
// one stream are consumed in send order and equal-seq messages from
// different sources resolve by arrival — byte-identical simulation results.
//
// SimMailbox is the single-threaded variant used by SimCommunicator (the
// DES kernel serialises access).  TimedMailbox adds a mutex, a condition
// variable and per-message visibility times for the real-thread backend;
// its take_blocking no longer rescans the whole queue to recompute the next
// wake-up — the not-yet-visible messages sit in a per-stream min-heap whose
// top *is* the next maturity time.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.hpp"

namespace specomp::runtime {

/// How a mailbox orders messages within one (src, tag) stream.  BySeq (the
/// default) reassembles sender order — which is also what recovers from
/// network-level reordering injected by a FaultPlan.  ByArrival hands
/// messages out in delivery order, so injected reordering stays observable
/// (fault plans with recovery off use it to demonstrate the failure mode).
enum class DeliveryOrder : std::uint8_t { BySeq, ByArrival };

namespace detail_mailbox {

/// One (src, tag) stream: a min-heap of messages keyed by `key` — the
/// sender sequence number under DeliveryOrder::BySeq (seqs within a stream
/// are unique, so the head is the unambiguous next message in send order)
/// or the arrival counter under ByArrival.
struct Stored {
  net::Message msg;
  std::uint64_t arrival = 0;
  std::uint64_t key = 0;
};

class SeqStream {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const Stored& front() const noexcept { return heap_.front(); }

  void push(Stored item) {
    heap_.push_back(std::move(item));
    std::size_t hole = heap_.size() - 1;
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (heap_[parent].key <= heap_[hole].key) break;
      std::swap(heap_[parent], heap_[hole]);
      hole = parent;
    }
  }

  Stored pop() {
    Stored out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    std::size_t hole = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * hole + 1;
      if (left >= n) break;
      std::size_t best = left;
      const std::size_t right = left + 1;
      if (right < n && heap_[right].key < heap_[left].key) best = right;
      if (heap_[hole].key <= heap_[best].key) break;
      std::swap(heap_[hole], heap_[best]);
      hole = best;
    }
    return out;
  }

 private:
  std::vector<Stored> heap_;
};

}  // namespace detail_mailbox

/// Mailbox of one simulated rank.  Not thread-safe: the DES kernel
/// guarantees a single active thread of control.
class SimMailbox {
 public:
  /// `num_sources` = cluster size; streams are indexed by source rank.
  explicit SimMailbox(int num_sources,
                      DeliveryOrder order = DeliveryOrder::BySeq)
      : num_sources_(num_sources > 0 ? num_sources : 1), order_(order) {}

  void push(net::Message msg) {
    const std::uint64_t arrival = next_arrival_++;
    const std::uint64_t key =
        order_ == DeliveryOrder::BySeq ? msg.seq : arrival;
    streams_for(msg.tag)[static_cast<std::size_t>(msg.src)].push(
        {std::move(msg), arrival, key});
  }

  bool take(net::Rank src, int tag, net::Message& out) {
    auto it = by_tag_.find(tag);
    if (it == by_tag_.end()) return false;
    auto& stream = it->second[static_cast<std::size_t>(src)];
    if (stream.empty()) return false;
    out = stream.pop().msg;
    return true;
  }

  bool take_any(int tag, net::Message& out) {
    auto it = by_tag_.find(tag);
    if (it == by_tag_.end()) return false;
    detail_mailbox::SeqStream* best = nullptr;
    for (auto& stream : it->second) {
      if (stream.empty()) continue;
      if (best == nullptr || wins(stream.front(), best->front())) best = &stream;
    }
    if (best == nullptr) return false;
    out = best->pop().msg;
    return true;
  }

 private:
  /// Cross-stream selection rule of the old linear scan: lowest key (seq in
  /// BySeq mode) first, ties resolve by arrival order.
  static bool wins(const detail_mailbox::Stored& a,
                   const detail_mailbox::Stored& b) noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.arrival < b.arrival;
  }

  std::vector<detail_mailbox::SeqStream>& streams_for(int tag) {
    auto [it, inserted] = by_tag_.try_emplace(tag);
    if (inserted) it->second.resize(static_cast<std::size_t>(num_sources_));
    return it->second;
  }

  int num_sources_;
  DeliveryOrder order_;
  std::uint64_t next_arrival_ = 0;
  std::unordered_map<int, std::vector<detail_mailbox::SeqStream>> by_tag_;
};

/// Thread-safe mailbox with delayed visibility for the real-thread backend:
/// a message becomes receivable only once its delivery time has passed.
class TimedMailbox {
 public:
  // specomp-lint: allow(wall-clock): TimedMailbox serves the real-thread backend, whose delivery delays are genuine wall time
  using Clock = std::chrono::steady_clock;

  explicit TimedMailbox(int num_sources,
                        DeliveryOrder order = DeliveryOrder::BySeq)
      : num_sources_(num_sources > 0 ? num_sources : 1), order_(order) {}

  void deliver(net::Message msg, Clock::time_point deliver_at) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto& stream = streams_for(msg.tag)[static_cast<std::size_t>(msg.src)];
      stream.pending.push_back({std::move(msg), next_arrival_++, deliver_at});
      std::push_heap(stream.pending.begin(), stream.pending.end(), later);
    }
    cv_.notify_all();
  }

  std::optional<net::Message> try_take(net::Rank src, int tag) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return take_locked(src, tag, Clock::now());
  }

  std::optional<net::Message> try_take_any(int tag) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return take_any_locked(tag, Clock::now());
  }

  net::Message take_blocking(net::Rank src, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto now = Clock::now();
      if (auto msg = take_locked(src, tag, now)) return std::move(*msg);
      // The stream's pending heap top is the earliest maturity — no rescan.
      auto next_ready = Clock::time_point::max();
      if (auto it = by_tag_.find(tag); it != by_tag_.end()) {
        const auto& stream = it->second[static_cast<std::size_t>(src)];
        if (!stream.pending.empty())
          next_ready = stream.pending.front().deliver_at;
      }
      wait(lock, next_ready);
    }
  }

  net::Message take_blocking_any(int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto now = Clock::now();
      if (auto msg = take_any_locked(tag, now)) return std::move(*msg);
      auto next_ready = Clock::time_point::max();
      if (auto it = by_tag_.find(tag); it != by_tag_.end()) {
        for (const auto& stream : it->second) {
          if (!stream.pending.empty() &&
              stream.pending.front().deliver_at < next_ready) {
            next_ready = stream.pending.front().deliver_at;
          }
        }
      }
      wait(lock, next_ready);
    }
  }

  /// take_blocking bounded by a deadline: returns nullopt if no matching
  /// message became receivable by `deadline`.
  std::optional<net::Message> take_blocking_until(net::Rank src, int tag,
                                                  Clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto now = Clock::now();
      if (auto msg = take_locked(src, tag, now)) return msg;
      if (now >= deadline) return std::nullopt;
      auto next_ready = deadline;
      if (auto it = by_tag_.find(tag); it != by_tag_.end()) {
        const auto& stream = it->second[static_cast<std::size_t>(src)];
        if (!stream.pending.empty() &&
            stream.pending.front().deliver_at < next_ready) {
          next_ready = stream.pending.front().deliver_at;
        }
      }
      wait(lock, next_ready);
    }
  }

 private:
  struct Timed {
    net::Message msg;
    std::uint64_t arrival = 0;
    Clock::time_point deliver_at;
  };

  /// std::push_heap comparator: max-heap by "later maturity", so the heap
  /// top is the message that matures first (ties by arrival for stability).
  static bool later(const Timed& a, const Timed& b) noexcept {
    if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
    return a.arrival > b.arrival;
  }

  struct Stream {
    detail_mailbox::SeqStream ready;  // visible, ordered by seq
    std::vector<Timed> pending;       // min-heap by deliver_at
  };

  std::vector<Stream>& streams_for(int tag) {
    auto [it, inserted] = by_tag_.try_emplace(tag);
    if (inserted) it->second.resize(static_cast<std::size_t>(num_sources_));
    return it->second;
  }

  /// Moves every matured message of `stream` into its ready heap.
  void promote(Stream& stream, Clock::time_point now) {
    while (!stream.pending.empty() &&
           stream.pending.front().deliver_at <= now) {
      std::pop_heap(stream.pending.begin(), stream.pending.end(), later);
      Timed timed = std::move(stream.pending.back());
      stream.pending.pop_back();
      const std::uint64_t key =
          order_ == DeliveryOrder::BySeq ? timed.msg.seq : timed.arrival;
      stream.ready.push({std::move(timed.msg), timed.arrival, key});
    }
  }

  std::optional<net::Message> take_locked(net::Rank src, int tag,
                                          Clock::time_point now) {
    auto it = by_tag_.find(tag);
    if (it == by_tag_.end()) return std::nullopt;
    auto& stream = it->second[static_cast<std::size_t>(src)];
    promote(stream, now);
    if (stream.ready.empty()) return std::nullopt;
    return stream.ready.pop().msg;
  }

  std::optional<net::Message> take_any_locked(int tag, Clock::time_point now) {
    auto it = by_tag_.find(tag);
    if (it == by_tag_.end()) return std::nullopt;
    detail_mailbox::SeqStream* best = nullptr;
    for (auto& stream : it->second) {
      promote(stream, now);
      if (stream.ready.empty()) continue;
      if (best == nullptr ||
          stream.ready.front().key < best->front().key ||
          (stream.ready.front().key == best->front().key &&
           stream.ready.front().arrival < best->front().arrival)) {
        best = &stream.ready;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->pop().msg;
  }

  void wait(std::unique_lock<std::mutex>& lock, Clock::time_point next_ready) {
    if (next_ready == Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, next_ready);
    }
  }

  int num_sources_;
  DeliveryOrder order_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_arrival_ = 0;  // guarded by mutex_
  std::unordered_map<int, std::vector<Stream>> by_tag_;  // guarded by mutex_
};

}  // namespace specomp::runtime

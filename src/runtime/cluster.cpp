#include "runtime/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/contracts.hpp"

namespace specomp::runtime {

Cluster::Cluster(std::vector<Machine> machines) : machines_(std::move(machines)) {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    SPEC_EXPECTS(machines_[i].ops_per_sec > 0.0);
    if (i > 0) SPEC_EXPECTS(machines_[i - 1].ops_per_sec >= machines_[i].ops_per_sec);
  }
}

const Machine& Cluster::machine(std::size_t i) const {
  SPEC_EXPECTS(i < machines_.size());
  return machines_[i];
}

Cluster Cluster::prefix(std::size_t p) const {
  SPEC_EXPECTS(p <= machines_.size());
  return Cluster(std::vector<Machine>(machines_.begin(),
                                      machines_.begin() + static_cast<long>(p)));
}

double Cluster::total_ops_per_sec() const noexcept {
  double total = 0.0;
  for (const auto& m : machines_) total += m.ops_per_sec;
  return total;
}

double Cluster::max_speedup() const {
  SPEC_EXPECTS(!machines_.empty());
  return total_ops_per_sec() / machines_.front().ops_per_sec;
}

std::vector<std::size_t> Cluster::proportional_partition(
    std::size_t total_items) const {
  SPEC_EXPECTS(!machines_.empty());
  const double total_capacity = total_ops_per_sec();
  const std::size_t p = machines_.size();

  std::vector<std::size_t> counts(p, 0);
  std::vector<std::pair<double, std::size_t>> fractions;  // (frac, index)
  fractions.reserve(p);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const double exact = static_cast<double>(total_items) *
                         machines_[i].ops_per_sec / total_capacity;
    counts[i] = static_cast<std::size_t>(std::floor(exact));
    assigned += counts[i];
    fractions.emplace_back(exact - std::floor(exact), i);
  }
  // Distribute the remainder to the largest fractional parts (stable for
  // equal fractions: lower index first, i.e. faster machine first).
  std::stable_sort(fractions.begin(), fractions.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t r = 0; assigned < total_items; ++r, ++assigned)
    ++counts[fractions[r % p].second];

  SPEC_ENSURES(std::accumulate(counts.begin(), counts.end(), std::size_t{0}) ==
               total_items);
  return counts;
}

Cluster Cluster::homogeneous(std::size_t p, double ops_per_sec) {
  SPEC_EXPECTS(p > 0);
  std::vector<Machine> machines;
  machines.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    machines.push_back({"node" + std::to_string(i), ops_per_sec});
  return Cluster(std::move(machines));
}

Cluster Cluster::linear(std::size_t p, double fastest, double ratio) {
  SPEC_EXPECTS(p > 0);
  SPEC_EXPECTS(fastest > 0.0);
  SPEC_EXPECTS(ratio >= 1.0);
  std::vector<Machine> machines;
  machines.reserve(p);
  const double slowest = fastest / ratio;
  for (std::size_t i = 0; i < p; ++i) {
    const double frac = p == 1 ? 0.0
                               : static_cast<double>(i) /
                                     static_cast<double>(p - 1);
    machines.push_back(
        {"node" + std::to_string(i), fastest + frac * (slowest - fastest)});
  }
  return Cluster(std::move(machines));
}

Cluster Cluster::paper_fleet() { return linear(16, 1.2e6, 10.0); }

}  // namespace specomp::runtime

// Collective operations built from point-to-point messages.
//
// PVM programs of the paper's era composed collectives from sends and
// receives; these helpers do the same over the Communicator API, so they
// run unchanged on the simulated and the real-thread backend and their
// traffic is charged through the same channel models.  All ranks must call
// the same collective with the same root and tag.
#pragma once

#include <span>
#include <vector>

#include "runtime/communicator.hpp"

namespace specomp::runtime {

/// Gathers each rank's block at `root` (result indexed by rank; only the
/// root's return value is populated — other ranks get an empty vector).
std::vector<std::vector<double>> gather(Communicator& comm, net::Rank root,
                                        std::span<const double> local, int tag);

/// Broadcasts `data` from `root` to every rank (in place on non-roots).
void broadcast(Communicator& comm, net::Rank root, std::vector<double>& data,
               int tag);

/// Sum / max of one double across all ranks; every rank gets the result.
double allreduce_sum(Communicator& comm, double value, int tag);
double allreduce_max(Communicator& comm, double value, int tag);

}  // namespace specomp::runtime

// Collective operations built from point-to-point messages.
//
// PVM programs of the paper's era composed collectives from sends and
// receives; these helpers do the same over the Communicator API, so they
// run unchanged on the simulated and the real-thread backend and their
// traffic is charged through the same channel models.  All ranks must call
// the same collective with the same root, tag and algorithm.
//
// Two algorithm families sit behind the CollectiveAlgo selector
// (runtime/collective_algo.hpp):
//
//   * Flat — the linear fan-in/fan-out the paper's PVM codes used: the root
//     exchanges one message per peer, so both latency and the root's message
//     count grow linearly in p (flat allgather is the full all-to-all:
//     p(p-1) messages).
//   * Tree — switched-cluster algorithms: binomial-tree broadcast/gather
//     (p-1 messages over ceil(log2 p) rounds), recursive-doubling allreduce
//     (O(p log p) messages, O(log p) rounds), and allgather as binomial
//     gather + broadcast.  Correct at any p, including non-powers of two.
//
// Determinism: reductions fold contributions in ascending rank order on
// every algorithm (the tree allreduce moves *values*, not partial sums), so
// flat and tree produce bit-identical results for non-associative folds like
// floating-point sum.
//
// Telemetry: every constituent message increments the aggregated
// "collectives.messages" / "collectives.bytes" counters (plus the
// per-collective call counters), and — because the traffic flows through the
// ordinary send/recv paths — each hop emits the usual causal Send/Recv trace
// edges, so spectrace critical paths attribute collective hops like any
// other message.
#pragma once

#include <span>
#include <vector>

#include "runtime/collective_algo.hpp"
#include "runtime/communicator.hpp"

namespace specomp::runtime {

/// Gathers each rank's block at `root` (result indexed by rank; only the
/// root's return value is populated — other ranks get an empty vector).
std::vector<std::vector<double>> gather(Communicator& comm, net::Rank root,
                                        std::span<const double> local, int tag,
                                        CollectiveAlgo algo = CollectiveAlgo::Auto);

/// Broadcasts `data` from `root` to every rank (in place on non-roots).
void broadcast(Communicator& comm, net::Rank root, std::vector<double>& data,
               int tag, CollectiveAlgo algo = CollectiveAlgo::Auto);

/// Every rank ends with every rank's block (result indexed by rank).  This
/// is the exchange pattern of the synchronous iterative algorithms (each
/// rank's block to all peers); flat is the paper's p(p-1)-message
/// all-to-all, tree routes blocks through a binomial gather + broadcast.
std::vector<std::vector<double>> allgather(Communicator& comm,
                                           std::span<const double> local,
                                           int tag,
                                           CollectiveAlgo algo = CollectiveAlgo::Auto);

/// Sum / max of one double across all ranks; every rank gets the result.
/// Folds in ascending rank order on every algorithm (bit-identical results
/// between Flat and Tree).
double allreduce_sum(Communicator& comm, double value, int tag,
                     CollectiveAlgo algo = CollectiveAlgo::Auto);
double allreduce_max(Communicator& comm, double value, int tag,
                     CollectiveAlgo algo = CollectiveAlgo::Auto);

/// Dissemination barrier over point-to-point messages: ceil(log2 p) rounds,
/// one send + one recv per rank per round (p * ceil(log2 p) messages).
/// Unlike Communicator::barrier()'s Flat path (a world-level primitive that
/// costs no virtual time), this charges real send overhead and channel
/// delays — it is what barrier() executes when the backend resolves its
/// configured algorithm to Tree.  `tag` must not collide with application
/// tags; backends use kBarrierTag.
void dissemination_barrier(Communicator& comm, int tag);

/// Reserved tag for backend-issued barrier rounds, far above the tag ranges
/// the engine and the apps use (engine tags are base + iteration).
inline constexpr int kBarrierTag = 0x7eb00000;

}  // namespace specomp::runtime

#include "runtime/hb_check.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace specomp::runtime {

HbChecker::HbChecker(int num_ranks) {
  SPEC_EXPECTS(num_ranks > 0);
  clocks_.assign(static_cast<std::size_t>(num_ranks),
                 VectorClock(static_cast<std::size_t>(num_ranks), 0));
}

std::string HbChecker::clock_str(const VectorClock& clock) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (i != 0) out << ',';
    out << clock[i];
  }
  out << ']';
  return out.str();
}

void HbChecker::violation_locked(const std::string& message) const {
  throw HbViolation("happens-before violation: " + message);
}

void HbChecker::on_send(int src, int dst, int tag, std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SPEC_EXPECTS(src >= 0 && static_cast<std::size_t>(src) < clocks_.size());
  SPEC_EXPECTS(dst >= 0 && static_cast<std::size_t>(dst) < clocks_.size());
  VectorClock& clock = clocks_[static_cast<std::size_t>(src)];
  ++clock[static_cast<std::size_t>(src)];
  Stream& stream = streams_[StreamKey{src, dst, tag}];
  // Sender seq numbers increase monotonically, so within one (src, dst, tag)
  // stream the outstanding deque is ordered: front = oldest send.
  SPEC_EXPECTS(stream.outstanding.empty() ||
               stream.outstanding.back().seq < seq);
  stream.outstanding.push_back({seq, clock});
  ++events_checked_;
}

void HbChecker::check_and_merge_locked(int dst, int src, int tag,
                                       std::uint64_t seq) {
  SPEC_EXPECTS(dst >= 0 && static_cast<std::size_t>(dst) < clocks_.size());
  SPEC_EXPECTS(src >= 0 && static_cast<std::size_t>(src) < clocks_.size());
  VectorClock& receiver = clocks_[static_cast<std::size_t>(dst)];
  const auto it = streams_.find(StreamKey{src, dst, tag});
  std::ostringstream who;
  who << "rank " << dst << " consumed message (src=" << src << ", tag=" << tag
      << ", seq=" << seq << ")";

  if (it == streams_.end()) {
    violation_locked(who.str() +
                     " but no send on this stream was ever recorded — "
                     "phantom message: this state cannot exist in any causal "
                     "history (receiver clock " +
                     clock_str(receiver) + ")");
  }
  Stream& stream = it->second;
  if (stream.delivered.count(seq) != 0) {
    violation_locked(who.str() + " twice — duplicate delivery (receiver clock " +
                     clock_str(receiver) + ")");
  }
  const auto pos =
      std::find_if(stream.outstanding.begin(), stream.outstanding.end(),
                   [&](const SendRecord& r) { return r.seq == seq; });
  if (pos == stream.outstanding.end()) {
    violation_locked(who.str() +
                     " but that send was never recorded — phantom message: "
                     "this state cannot exist in any causal history "
                     "(receiver clock " +
                     clock_str(receiver) + ")");
  }
  if (pos != stream.outstanding.begin()) {
    const SendRecord& skipped = stream.outstanding.front();
    std::ostringstream path;
    path << who.str() << " before the stream's oldest outstanding seq="
         << skipped.seq << ".  Causal path: send(seq=" << skipped.seq
         << ") by rank " << src << " at clock " << clock_str(skipped.stamp)
         << " happens-before send(seq=" << seq << ") at clock "
         << clock_str(pos->stamp)
         << ", but rank " << dst << " (clock " << clock_str(receiver)
         << ") observed them inverted — delivery out of seq/HB order";
    violation_locked(path.str());
  }
  // Verified: merge the stamp, tick the receiver.
  for (std::size_t i = 0; i < receiver.size(); ++i)
    receiver[i] = std::max(receiver[i], pos->stamp[i]);
  ++receiver[static_cast<std::size_t>(dst)];
  stream.delivered.insert(seq);
  stream.outstanding.pop_front();
  ++events_checked_;
}

void HbChecker::on_receive(int dst, int src, int tag, std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_and_merge_locked(dst, src, tag, seq);
}

void HbChecker::on_receive_sim(int dst, int src, int tag, std::uint64_t seq,
                               double sent_at, double delivered_at,
                               double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream who;
  who << "rank " << dst << " consumed message (src=" << src << ", tag=" << tag
      << ", seq=" << seq << ")";
  if (delivered_at < sent_at) {
    std::ostringstream path;
    path << who.str() << " delivered at t=" << delivered_at
         << " before it was sent at t=" << sent_at
         << " — the channel inverted virtual time";
    violation_locked(path.str());
  }
  if (now < delivered_at) {
    std::ostringstream path;
    path << who.str() << " at virtual time t=" << now
         << " before its delivery time t=" << delivered_at
         << " — reading state the happens-before relation says cannot exist "
            "yet";
    violation_locked(path.str());
  }
  check_and_merge_locked(dst, src, tag, seq);
}

void HbChecker::on_barrier() {
  const std::lock_guard<std::mutex> lock(mutex_);
  VectorClock merged(clocks_.front().size(), 0);
  for (const VectorClock& clock : clocks_)
    for (std::size_t i = 0; i < merged.size(); ++i)
      merged[i] = std::max(merged[i], clock[i]);
  for (std::size_t r = 0; r < clocks_.size(); ++r) {
    clocks_[r] = merged;
    ++clocks_[r][r];
  }
  ++events_checked_;
}

VectorClock HbChecker::clock(int rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SPEC_EXPECTS(rank >= 0 && static_cast<std::size_t>(rank) < clocks_.size());
  return clocks_[static_cast<std::size_t>(rank)];
}

std::uint64_t HbChecker::events_checked() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_checked_;
}

}  // namespace specomp::runtime

// Vector-clock happens-before detector for both communicator backends.
//
// The paper's measurements are only meaningful if the synchronization
// protocol underneath them is sound: a speculation "check" that reads peer
// state which — per the happens-before relation — could not have been
// produced yet is not a measurement, it is a race.  PR 3 guards this
// empirically (bit-identity reruns, TSan); this detector guards it
// structurally, following the self-stabilization line of work: verify the
// protocol itself, not just sampled executions.
//
// Every send ticks the sender's clock and stamps the message; every receive
// verifies, then merges.  Violations detected:
//
//   * phantom message — a rank consumes (src, tag, seq) that no send ever
//     produced: state that cannot exist in any causal history;
//   * stream inversion — a (src, dst, tag) stream delivers seq B before an
//     earlier outstanding seq A, although send(A) happens-before send(B)
//     (the mailbox invariant both backends rely on);
//   * duplicate delivery — a seq consumed twice on one stream;
//   * time travel (simulated backend only) — a message consumed at a virtual
//     time before its delivery time, or delivered before it was sent.
//
// Each violation throws HbViolation whose what() carries a causal-path
// diagnostic: the implicated sends with their vector clocks, and the
// receiver's clock at the moment of the violation.
//
// Cost model: the detector is opt-in twice over.  The communicator hooks are
// compiled only under -DSPECOMP_HB_CHECK=ON (macro SPECOMP_HB_CHECK_ENABLED),
// so default builds carry zero extra code on the send/recv path — verified
// by bench_micro's BM_SimSendRecv against BENCH_sweep.json.  Within such a
// build it still needs `--hb-check` (SimConfig/ThreadConfig::hb_check) at
// run time.  This class itself is always compiled so its unit tests run in
// every configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace specomp::runtime {

/// Thrown (never swallowed) on a happens-before violation; what() is the
/// causal-path diagnostic.
class HbViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using VectorClock = std::vector<std::uint64_t>;

class HbChecker {
 public:
  explicit HbChecker(int num_ranks);

  /// Records a send: ticks `src`'s clock and stamps the (src→dst, tag, seq)
  /// message with it.  Thread-safe (the thread backend sends concurrently).
  void on_send(int src, int dst, int tag, std::uint64_t seq);

  /// Records rank `dst` consuming the (src→dst, tag, seq) message.  Verifies
  /// the message exists, is not a duplicate, and is its stream's oldest
  /// outstanding send; then merges the stamp into dst's clock.  Throws
  /// HbViolation otherwise.
  void on_receive(int dst, int src, int tag, std::uint64_t seq);

  /// Simulated-backend variant: additionally verifies virtual-time sanity
  /// (sent_at <= delivered_at <= now) before the clock checks.
  void on_receive_sim(int dst, int src, int tag, std::uint64_t seq,
                      double sent_at, double delivered_at, double now);

  /// A barrier synchronises every rank: all clocks join to their elementwise
  /// maximum, then each rank ticks.
  void on_barrier();

  /// Snapshot of one rank's clock (tests and diagnostics).
  VectorClock clock(int rank) const;

  /// Total sends + receives + barriers verified so far.
  std::uint64_t events_checked() const;

 private:
  struct StreamKey {
    int src;
    int dst;
    int tag;
    bool operator<(const StreamKey& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };
  struct SendRecord {
    std::uint64_t seq = 0;
    VectorClock stamp;  // sender clock at send time
  };
  struct Stream {
    std::deque<SendRecord> outstanding;  // send order = seq order
    std::set<std::uint64_t> delivered;
  };

  [[noreturn]] void violation_locked(const std::string& message) const;
  void check_and_merge_locked(int dst, int src, int tag, std::uint64_t seq);
  static std::string clock_str(const VectorClock& clock);

  mutable std::mutex mutex_;
  std::vector<VectorClock> clocks_;
  std::map<StreamKey, Stream> streams_;
  std::uint64_t events_checked_ = 0;
};

}  // namespace specomp::runtime

// Per-phase time accounting.
//
// Reproduces the measurement the paper reports in Table 2: for each rank,
// time per iteration is split into computation, communication (waiting),
// speculation, error checking and correction.  In the simulated backend the
// quantities are exact virtual times; in the thread backend they are
// wall-clock durations.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "des/time.hpp"

namespace specomp::runtime {

enum class Phase : std::size_t {
  Compute = 0,
  Communicate,  // blocked waiting for messages
  Speculate,
  Check,
  Correct,  // recomputation due to failed speculation
  Send,     // send-side software overhead
  kCount,
};

const char* phase_name(Phase phase) noexcept;

class PhaseTimer {
 public:
  void add(Phase phase, des::SimTime dt);
  des::SimTime get(Phase phase) const;
  des::SimTime total() const noexcept;
  void merge(const PhaseTimer& other) noexcept;
  void reset() noexcept;

  /// Number of completed iterations recorded (for per-iteration averages).
  void bump_iterations() noexcept { ++iterations_; }
  std::size_t iterations() const noexcept { return iterations_; }
  /// Mean seconds per iteration spent in `phase` (0 if no iterations).
  double per_iteration_seconds(Phase phase) const noexcept;

 private:
  std::array<des::SimTime, static_cast<std::size_t>(Phase::kCount)> spent_{};
  std::size_t iterations_ = 0;
};

}  // namespace specomp::runtime

#include "runtime/collectives.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "net/buffer_pool.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace specomp::runtime {

namespace {

// Per-invocation counter handles.  Fetched per collective call (not per
// message): collectives are issued per iteration, not per event, and a
// per-call fetch keeps the counters live even when metrics collection is
// enabled after the first communicator was built.
struct CollCounters {
  obs::CounterRef messages;
  obs::CounterRef bytes;
};

CollCounters coll_counters() {
  return {obs::metrics().counter("collectives.messages"),
          obs::metrics().counter("collectives.bytes")};
}

void send_counted(Communicator& comm, const CollCounters& counters,
                  net::Rank dst, int tag, std::vector<std::byte> payload) {
  counters.messages.inc();
  counters.bytes.inc(payload.size());
  comm.send(dst, tag, std::move(payload));
}

void send_doubles_counted(Communicator& comm, const CollCounters& counters,
                          net::Rank dst, int tag,
                          std::span<const double> values) {
  net::ByteWriter writer(net::BufferPool::local().acquire());
  writer.write_span(values);
  send_counted(comm, counters, dst, tag, std::move(writer).take());
}

std::vector<double> recv_doubles_pooled(Communicator& comm, net::Rank src,
                                        int tag) {
  net::Message msg = comm.recv(src, tag);
  net::ByteReader reader(msg.payload);
  const std::span<const double> values = reader.read_span<double>();
  std::vector<double> out(values.begin(), values.end());
  net::BufferPool::local().release(std::move(msg.payload));
  return out;
}

// ---------------------------------------------------------------------------
// Rank-labelled block sets: the unit the binomial gather forwards upward.
// Wire image: u64 count, then per block u64 rank + (u64 len + doubles).
// ---------------------------------------------------------------------------

struct RankBlock {
  std::uint64_t rank = 0;
  std::vector<double> values;
};

std::vector<std::byte> encode_blocks(const std::vector<RankBlock>& blocks) {
  net::ByteWriter writer(net::BufferPool::local().acquire());
  writer.write<std::uint64_t>(blocks.size());
  for (const RankBlock& b : blocks) {
    writer.write<std::uint64_t>(b.rank);
    writer.write_span(std::span<const double>(b.values));
  }
  return std::move(writer).take();
}

void decode_blocks_into(std::span<const std::byte> payload,
                        std::vector<RankBlock>& out) {
  net::ByteReader reader(payload);
  const auto count = reader.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    RankBlock b;
    b.rank = reader.read<std::uint64_t>();
    const std::span<const double> values = reader.read_span<double>();
    b.values.assign(values.begin(), values.end());
    out.push_back(std::move(b));
  }
}

/// Binomial-tree gather of rank-labelled blocks at `root`: each rank folds
/// its children's subtree sets into its own, then forwards the union to its
/// parent — p-1 messages over ceil(log2 p) rounds.  Returns the full set at
/// the root (unspecified order), an empty vector elsewhere.
std::vector<RankBlock> gather_tree_blocks(Communicator& comm,
                                          const CollCounters& counters,
                                          net::Rank root,
                                          std::span<const double> local,
                                          int tag) {
  const int p = comm.size();
  const int vrank = (comm.rank() - root + p) % p;
  std::vector<RankBlock> collected;
  collected.push_back(RankBlock{static_cast<std::uint64_t>(comm.rank()),
                                {local.begin(), local.end()}});
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int src_vrank = vrank + mask;
      if (src_vrank < p) {
        const net::Rank src = (src_vrank + root) % p;
        net::Message msg = comm.recv(src, tag);
        decode_blocks_into(msg.payload, collected);
        net::BufferPool::local().release(std::move(msg.payload));
      }
    } else {
      const net::Rank parent = ((vrank - mask) + root) % p;
      send_counted(comm, counters, parent, tag, encode_blocks(collected));
      return {};
    }
  }
  return collected;  // only the root reaches here with the full set
}

/// Binomial-tree broadcast of an opaque payload from `root` (p-1 messages,
/// ceil(log2 p) rounds; children are served highest-distance first, the
/// classic binomial schedule).  On non-roots `payload` is replaced by the
/// received image.
void broadcast_tree_bytes(Communicator& comm, const CollCounters& counters,
                          net::Rank root, std::vector<std::byte>& payload,
                          int tag) {
  const int p = comm.size();
  const int vrank = (comm.rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      const net::Rank parent = ((vrank - mask) + root) % p;
      net::Message msg = comm.recv(parent, tag);
      payload = std::move(msg.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const net::Rank child = ((vrank + mask) + root) % p;
      send_counted(comm, counters, child, tag,
                   std::vector<std::byte>(payload));
    }
    mask >>= 1;
  }
}

CollectiveAlgo resolve(const Communicator& comm, CollectiveAlgo algo) {
  if (algo == CollectiveAlgo::Auto) algo = comm.collective_algo();
  return resolve_collective_algo(algo, comm.size());
}

// ---------------------------------------------------------------------------
// Flat (paper-era linear) implementations — unchanged message patterns.
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> gather_flat(Communicator& comm,
                                             const CollCounters& counters,
                                             net::Rank root,
                                             std::span<const double> local,
                                             int tag) {
  std::vector<std::vector<double>> blocks;
  if (comm.rank() == root) {
    blocks.resize(static_cast<std::size_t>(comm.size()));
    blocks[static_cast<std::size_t>(root)].assign(local.begin(), local.end());
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      blocks[static_cast<std::size_t>(r)] = recv_doubles_pooled(comm, r, tag);
    }
  } else {
    send_doubles_counted(comm, counters, root, tag, local);
  }
  return blocks;
}

void broadcast_flat(Communicator& comm, const CollCounters& counters,
                    net::Rank root, std::vector<double>& data, int tag) {
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r)
      if (r != root)
        send_doubles_counted(comm, counters, r, tag,
                             std::span<const double>(data));
  } else {
    data = recv_doubles_pooled(comm, root, tag);
  }
}

// ---------------------------------------------------------------------------
// Tree reductions: recursive doubling over (rank, value) pairs.
//
// The exchange moves values, not partial sums, and every rank folds the
// complete set in ascending rank order — the same order the flat scheme's
// root uses — so Flat and Tree reductions are bit-identical even for
// non-associative folds (floating-point sum).  Non-powers of two use the
// standard pre/post phase: ranks >= p2 (largest power of two <= p) park
// their value at rank - p2 and receive the result back at the end.
// Messages: (p - p2) + p2 * log2(p2) + (p - p2)  =  O(p log p).
// ---------------------------------------------------------------------------

using RankValue = std::pair<std::uint64_t, double>;

void send_pairs(Communicator& comm, const CollCounters& counters,
                net::Rank dst, int tag, const std::vector<RankValue>& pairs) {
  net::ByteWriter writer(net::BufferPool::local().acquire());
  writer.write<std::uint64_t>(pairs.size());
  for (const RankValue& rv : pairs) {
    writer.write<std::uint64_t>(rv.first);
    writer.write<double>(rv.second);
  }
  send_counted(comm, counters, dst, tag, std::move(writer).take());
}

std::vector<RankValue> recv_pairs(Communicator& comm, net::Rank src, int tag) {
  net::Message msg = comm.recv(src, tag);
  net::ByteReader reader(msg.payload);
  const auto count = reader.read<std::uint64_t>();
  std::vector<RankValue> pairs;
  pairs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto rank = reader.read<std::uint64_t>();
    const auto value = reader.read<double>();
    pairs.emplace_back(rank, value);
  }
  net::BufferPool::local().release(std::move(msg.payload));
  return pairs;
}

template <typename Fold>
double allreduce_tree(Communicator& comm, const CollCounters& counters,
                      double value, int tag, Fold&& fold) {
  const int p = comm.size();
  const int rank = comm.rank();
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;

  if (rank >= p2) {
    // Park the value at the power-of-two partner, await the folded result.
    send_pairs(comm, counters, rank - p2, tag,
               {{static_cast<std::uint64_t>(rank), value}});
    return recv_doubles_pooled(comm, rank - p2, tag)[0];
  }

  std::vector<RankValue> known{{static_cast<std::uint64_t>(rank), value}};
  if (rank < rem) {
    std::vector<RankValue> parked = recv_pairs(comm, rank + p2, tag);
    known.insert(known.end(), parked.begin(), parked.end());
    std::sort(known.begin(), known.end());
  }
  for (int mask = 1; mask < p2; mask <<= 1) {
    const net::Rank partner = rank ^ mask;
    send_pairs(comm, counters, partner, tag, known);
    std::vector<RankValue> theirs = recv_pairs(comm, partner, tag);
    std::vector<RankValue> merged;
    merged.reserve(known.size() + theirs.size());
    std::merge(known.begin(), known.end(), theirs.begin(), theirs.end(),
               std::back_inserter(merged));
    known = std::move(merged);
  }
  SPEC_ASSERT(known.size() == static_cast<std::size_t>(p));
  double acc = known[0].second;
  for (int r = 1; r < p; ++r)
    acc = fold(acc, known[static_cast<std::size_t>(r)].second);
  if (rank < rem) {
    const double result[] = {acc};
    send_doubles_counted(comm, counters, rank + p2, tag, result);
  }
  return acc;
}

template <typename Fold>
double allreduce_flat(Communicator& comm, const CollCounters& counters,
                      double value, int tag, Fold&& fold) {
  // Fan-in to rank 0, fold, fan-out — the simple linear scheme the paper's
  // PVM codes used.  Two tags keep the phases apart.
  constexpr net::Rank kRoot = 0;
  const std::vector<double> mine{value};
  const auto blocks = gather_flat(comm, counters, kRoot, mine, tag);
  std::vector<double> result{value};
  if (comm.rank() == kRoot) {
    double acc = blocks[0][0];
    for (int r = 1; r < comm.size(); ++r)
      acc = fold(acc, blocks[static_cast<std::size_t>(r)][0]);
    result[0] = acc;
  }
  broadcast_flat(comm, counters, kRoot, result, tag + 1);
  return result[0];
}

template <typename Fold>
double allreduce(Communicator& comm, double value, int tag, CollectiveAlgo algo,
                 Fold&& fold) {
  obs::metrics().counter("coll.allreduce").inc();
  if (comm.size() <= 1) return value;
  const CollCounters counters = coll_counters();
  if (resolve(comm, algo) == CollectiveAlgo::Tree)
    return allreduce_tree(comm, counters, value, tag, fold);
  return allreduce_flat(comm, counters, value, tag, fold);
}

}  // namespace

std::vector<std::vector<double>> gather(Communicator& comm, net::Rank root,
                                        std::span<const double> local, int tag,
                                        CollectiveAlgo algo) {
  SPEC_EXPECTS(root >= 0 && root < comm.size());
  obs::metrics().counter("coll.gather").inc();
  const CollCounters counters = coll_counters();
  if (resolve(comm, algo) != CollectiveAlgo::Tree)
    return gather_flat(comm, counters, root, local, tag);

  std::vector<RankBlock> collected =
      gather_tree_blocks(comm, counters, root, local, tag);
  std::vector<std::vector<double>> blocks;
  if (comm.rank() == root) {
    blocks.resize(static_cast<std::size_t>(comm.size()));
    for (RankBlock& b : collected)
      blocks[static_cast<std::size_t>(b.rank)] = std::move(b.values);
  }
  return blocks;
}

void broadcast(Communicator& comm, net::Rank root, std::vector<double>& data,
               int tag, CollectiveAlgo algo) {
  SPEC_EXPECTS(root >= 0 && root < comm.size());
  obs::metrics().counter("coll.broadcast").inc();
  const CollCounters counters = coll_counters();
  if (resolve(comm, algo) != CollectiveAlgo::Tree) {
    broadcast_flat(comm, counters, root, data, tag);
    return;
  }
  net::ByteWriter writer(net::BufferPool::local().acquire());
  writer.write_span(std::span<const double>(data));
  std::vector<std::byte> payload = std::move(writer).take();
  broadcast_tree_bytes(comm, counters, root, payload, tag);
  if (comm.rank() != root) {
    net::ByteReader reader(payload);
    const std::span<const double> values = reader.read_span<double>();
    data.assign(values.begin(), values.end());
  }
  net::BufferPool::local().release(std::move(payload));
}

std::vector<std::vector<double>> allgather(Communicator& comm,
                                           std::span<const double> local,
                                           int tag, CollectiveAlgo algo) {
  obs::metrics().counter("coll.allgather").inc();
  const CollCounters counters = coll_counters();
  const int p = comm.size();
  const int rank = comm.rank();
  std::vector<std::vector<double>> blocks(static_cast<std::size_t>(p));
  if (p == 1) {
    blocks[0].assign(local.begin(), local.end());
    return blocks;
  }

  if (resolve(comm, algo) != CollectiveAlgo::Tree) {
    // The paper's all-to-all: every rank posts its block to every peer —
    // p(p-1) messages in one round (what the Fig. 1/7 exchange does each
    // iteration).
    for (int i = 1; i < p; ++i)
      send_doubles_counted(comm, counters, (rank + i) % p, tag, local);
    blocks[static_cast<std::size_t>(rank)].assign(local.begin(), local.end());
    for (int r = 0; r < p; ++r) {
      if (r == rank) continue;
      blocks[static_cast<std::size_t>(r)] = recv_doubles_pooled(comm, r, tag);
    }
    return blocks;
  }

  // Tree: binomial gather of rank-labelled blocks at rank 0, then binomial
  // broadcast of the combined image — 2(p-1) messages, 2 ceil(log2 p) rounds.
  constexpr net::Rank kRoot = 0;
  std::vector<RankBlock> collected =
      gather_tree_blocks(comm, counters, kRoot, local, tag);
  std::vector<std::byte> payload;
  if (rank == kRoot) {
    std::sort(collected.begin(), collected.end(),
              [](const RankBlock& a, const RankBlock& b) {
                return a.rank < b.rank;
              });
    payload = encode_blocks(collected);
  }
  broadcast_tree_bytes(comm, counters, kRoot, payload, tag + 1);
  std::vector<RankBlock> all;
  decode_blocks_into(payload, all);
  net::BufferPool::local().release(std::move(payload));
  for (RankBlock& b : all)
    blocks[static_cast<std::size_t>(b.rank)] = std::move(b.values);
  return blocks;
}

double allreduce_sum(Communicator& comm, double value, int tag,
                     CollectiveAlgo algo) {
  return allreduce(comm, value, tag, algo,
                   [](double a, double b) { return a + b; });
}

double allreduce_max(Communicator& comm, double value, int tag,
                     CollectiveAlgo algo) {
  return allreduce(comm, value, tag, algo,
                   [](double a, double b) { return std::max(a, b); });
}

void dissemination_barrier(Communicator& comm, int tag) {
  const int p = comm.size();
  if (p <= 1) return;
  obs::metrics().counter("coll.barrier").inc();
  const CollCounters counters = coll_counters();
  const int rank = comm.rank();
  for (int dist = 1; dist < p; dist <<= 1) {
    send_counted(comm, counters, (rank + dist) % p, tag, {});
    net::Message msg = comm.recv((rank - dist + p) % p, tag);
    net::BufferPool::local().release(std::move(msg.payload));
  }
}

}  // namespace specomp::runtime

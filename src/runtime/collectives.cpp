#include "runtime/collectives.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace specomp::runtime {

std::vector<std::vector<double>> gather(Communicator& comm, net::Rank root,
                                        std::span<const double> local, int tag) {
  SPEC_EXPECTS(root >= 0 && root < comm.size());
  obs::metrics().counter("coll.gather").inc();
  std::vector<std::vector<double>> blocks;
  if (comm.rank() == root) {
    blocks.resize(static_cast<std::size_t>(comm.size()));
    blocks[static_cast<std::size_t>(root)].assign(local.begin(), local.end());
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      blocks[static_cast<std::size_t>(r)] = comm.recv_doubles(r, tag);
    }
  } else {
    comm.send_doubles(root, tag, local);
  }
  return blocks;
}

void broadcast(Communicator& comm, net::Rank root, std::vector<double>& data,
               int tag) {
  SPEC_EXPECTS(root >= 0 && root < comm.size());
  obs::metrics().counter("coll.broadcast").inc();
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r)
      if (r != root) comm.send_doubles(r, tag, data);
  } else {
    data = comm.recv_doubles(root, tag);
  }
}

namespace {

template <typename Fold>
double allreduce(Communicator& comm, double value, int tag, Fold&& fold) {
  // Fan-in to rank 0, fold, fan-out — the simple linear scheme the paper's
  // PVM codes used.  Two tags keep the phases apart.
  obs::metrics().counter("coll.allreduce").inc();
  constexpr net::Rank kRoot = 0;
  const std::vector<double> mine{value};
  const auto blocks = gather(comm, kRoot, mine, tag);
  std::vector<double> result{value};
  if (comm.rank() == kRoot) {
    double acc = blocks[0][0];
    for (int r = 1; r < comm.size(); ++r)
      acc = fold(acc, blocks[static_cast<std::size_t>(r)][0]);
    result[0] = acc;
  }
  broadcast(comm, kRoot, result, tag + 1);
  return result[0];
}

}  // namespace

double allreduce_sum(Communicator& comm, double value, int tag) {
  return allreduce(comm, value, tag, [](double a, double b) { return a + b; });
}

double allreduce_max(Communicator& comm, double value, int tag) {
  return allreduce(comm, value, tag,
                   [](double a, double b) { return std::max(a, b); });
}

}  // namespace specomp::runtime

// Collective-algorithm selection (flat linear vs logarithmic tree).
//
// The paper's PVM collectives were flat: a root receives p-1 blocks one
// after another (linear in p, like the shared-ethernet testbed itself).
// Switched clusters changed the shape of t_comm(p) from linear to
// logarithmic, and the collectives in runtime/collectives.hpp implement both
// generations behind this selector:
//
//   * Flat — the paper-era linear fan-in/fan-out (and the zero-cost
//     world-level barrier on the backends).  Default behaviour of every
//     pre-existing bench and test.
//   * Tree — binomial-tree broadcast/gather, recursive-doubling allreduce,
//     and a dissemination barrier built from real point-to-point messages;
//     O(log p) rounds, correct at any p.
//   * Auto — resolves through the process default (set by --collective=),
//     then a size heuristic: Tree when p > kCollectiveAutoTreeCutoff.
//
// Selection depends only on configuration and p — never on data or timing —
// so it is deterministic for a given process configuration (the same
// discipline as nbody/kernels/dispatch.hpp).
#pragma once

#include <optional>
#include <string_view>

namespace specomp::runtime {

enum class CollectiveAlgo { Flat, Tree, Auto };

/// Auto picks Tree strictly above this many ranks (flat fan-in is fine —
/// often cheaper — while the root can drain its peers in a handful of
/// receives).
inline constexpr int kCollectiveAutoTreeCutoff = 8;

/// "flat" | "tree" | "auto" (nullopt otherwise).
std::optional<CollectiveAlgo> parse_collective_algo(
    std::string_view name) noexcept;
std::string_view collective_algo_name(CollectiveAlgo algo) noexcept;

/// Process-wide default applied when both the call site and the
/// communicator's configuration say Auto (CLI --collective).
void set_default_collective_algo(CollectiveAlgo algo) noexcept;
CollectiveAlgo default_collective_algo() noexcept;

/// Resolves Auto (via the process default, then the size heuristic) to a
/// concrete algorithm for a p-rank communicator.
CollectiveAlgo resolve_collective_algo(CollectiveAlgo algo, int p) noexcept;

}  // namespace specomp::runtime

// Simulated communicator and run harness.
//
// Substitutes for the paper's physical testbed (heterogeneous SUN/Sparc
// workstations on shared ethernet under PVM): each rank becomes a
// des::Process; computation charges virtual time at the rank's M_i; sends
// traverse a net::Channel whose contention and jitter determine delivery
// times.  Numerics execute for real, so speculation error rates are genuine
// — only *time* is simulated.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "des/kernel.hpp"
#include "des/process.hpp"
#include "des/trace.hpp"
#include "net/channel.hpp"
#include "obs/dist_sketch.hpp"
#include "runtime/cluster.hpp"
#include "runtime/communicator.hpp"
#include "runtime/fault.hpp"
#include "runtime/mailbox.hpp"

namespace specomp::runtime {

struct SimConfig {
  Cluster cluster;  // one rank per machine, fastest first
  net::ChannelConfig channel;
  /// true: all ranks share one ethernet-like medium (the paper's testbed);
  /// false: independent point-to-point links (idealised switch baseline).
  bool shared_medium = true;
  /// Send-side software overhead per message (PVM pack + syscall), charged
  /// to the sending processor.
  des::SimTime send_sw_time = des::SimTime::millis(1);
  /// Record a Gantt trace of all rank activity (costs memory; used by the
  /// timeline example).
  bool record_trace = false;
  /// Record per-link delivery-delay and per-rank service-time distributions
  /// into SimResult::dists via obs::DistSketch (fixed memory: p² + p
  /// sketches; the sample paths pay one pointer test when off).
  bool record_dists = false;
  /// Run the vector-clock happens-before detector on every send/recv/barrier
  /// (see runtime/hb_check.hpp).  Only honoured when the build enables
  /// -DSPECOMP_HB_CHECK=ON; otherwise the hooks are compiled out and this
  /// flag warns and is ignored.
  bool hb_check = false;
  /// Optional fault-injection plan consulted on every send/deliver/compute
  /// (see runtime/fault.hpp).  nullptr = fault-free; the hot paths then pay
  /// a single pointer test.
  FaultPlanPtr fault;
  /// Collective-algorithm preference for this run: resolves the Auto default
  /// of runtime/collectives.hpp calls and selects the barrier
  /// implementation (Flat = zero-cost world barrier; Tree = dissemination
  /// barrier over real messages).  Auto defers to the process default /
  /// size heuristic (see runtime/collective_algo.hpp).
  CollectiveAlgo collective = CollectiveAlgo::Auto;
};

struct SimResult {
  /// Latest local finish time over all ranks — the run's makespan.
  double makespan_seconds = 0.0;
  /// Per-rank phase accounting (index = rank).
  std::vector<PhaseTimer> timers;
  net::ChannelStats channel_stats;
  des::KernelStats kernel_stats;
  des::Trace trace;
  /// Fault-injection bookkeeping; all zeros when SimConfig::fault is unset.
  FaultStats fault_stats;
  /// Observed distributions ("link_delay.S->D", "service.rankR"); empty
  /// unless SimConfig::record_dists.  Links with no traffic are omitted.
  std::vector<obs::NamedDist> dists;
};

/// Runs `body` as an SPMD program, one simulated rank per cluster machine.
/// Deterministic: identical config and body ⇒ identical result.
SimResult run_simulated(const SimConfig& config, const RankBody& body);

namespace detail {

class SimWorld;

class SimCommunicator final : public Communicator {
 public:
  SimCommunicator(SimWorld& world, net::Rank rank);

  net::Rank rank() const override { return rank_; }
  int size() const override;
  double ops_per_sec() const override;
  void send(net::Rank dst, int tag, std::vector<std::byte> payload) override;
  bool try_recv(net::Rank src, int tag, net::Message& out) override;
  net::Message recv(net::Rank src, int tag) override;
  net::Message recv_any(int tag) override;
  bool recv_timeout(net::Rank src, int tag, double timeout_seconds,
                    net::Message& out) override;
  void barrier() override;
  void compute(double ops, Phase phase = Phase::Compute) override;
  double time_seconds() const override;
  void mark_speculative(bool on) override { speculative_ = on; }
  void mark_degraded(bool on) override;
  void trace_causal(des::CausalKind kind, int peer = -1,
                    std::int64_t iter = -1) override;
  DistSnapshot dist_snapshot() const override;

 private:
  friend class SimWorld;

  void advance_traced(des::SimTime dt, Phase phase);
  des::SpanKind span_kind_for(Phase phase) const;
  net::Message recv_blocking(bool any, net::Rank src, int tag);
  /// Bookkeeping common to every successful receive (hb check, phase timer,
  /// metrics, Wait trace span).
  void note_received(const net::Message& msg, des::SimTime wait_begin);
  /// Causal Recv edge endpoint + link-delay distribution sample; shared by
  /// every receive path.
  void note_recv_causal(const net::Message& msg);
  /// Mailbox insertion at delivery time; applies the duplicate filter when
  /// the fault plan wants it.
  void deliver_from_wire(net::Message&& msg);
  /// Raises RankCrashed once local time reaches this rank's crash time.
  void maybe_crash();

  SimWorld& world_;
  net::Rank rank_;
  des::Process* process_ = nullptr;  // bound by the harness before start
  SimMailbox mailbox_;
  std::uint64_t next_seq_ = 0;
  bool speculative_ = false;
  bool degraded_ = false;

  // Fault-plan state (all idle when the plan is unset).
  std::optional<double> crash_at_seconds_;
  std::uint64_t compute_draw_ = 0;   ///< per-charge draw for stochastic slowdowns
  std::size_t stall_cursor_ = 0;     ///< scan state for FaultPlan::take_due_stalls
  /// (src, tag, seq) of first copies of duplicated messages already
  /// delivered; the second copy erases its entry and is suppressed.
  std::vector<std::tuple<net::Rank, int, std::uint64_t>> pending_dups_;
  /// Per-(dst, tag) in-order delivery floors; entries exist only for
  /// streams a fault delayed (see send()).
  std::unordered_map<std::uint64_t, des::SimTime> delivery_floor_;
};

}  // namespace detail

}  // namespace specomp::runtime

// The message-passing programming interface (PVM-analogue).
//
// Application code — the Fig. 7 N-body algorithm, the speculative engine,
// the Jacobi/heat examples — is written once against this interface and runs
// unchanged on either backend:
//
//   * SimCommunicator  — deterministic discrete-event simulation; time is
//     virtual and heterogeneous processor speeds / network contention are
//     modelled (see sim_comm.hpp).  This is the measurement backend.
//   * ThreadCommunicator — real std::thread ranks exchanging messages
//     through in-process channels with injectable delays (thread_comm.hpp).
//     This is the functional backend used to cross-check correctness.
//
// Semantics follow the paper's PVM usage: sends are asynchronous and never
// block; receives match on (source, tag) and block until delivery; channels
// are reliable.  `compute(ops)` charges `ops` of application work to this
// rank's processor — on the simulated backend time advances by ops / M_i.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "des/trace.hpp"
#include "net/buffer_pool.hpp"
#include "net/message.hpp"
#include "net/serialization.hpp"
#include "obs/metrics.hpp"
#include "runtime/collective_algo.hpp"
#include "runtime/phase_timer.hpp"

namespace specomp::runtime {

/// Live quantile snapshot of this rank's observed delay/service
/// distributions (obs::DistSketch), read mid-run by the model-driven
/// speculation controllers (spec/adaptive.hpp, DESIGN.md §13).  `valid` is
/// false when the backend records no distributions — policies must then
/// hold rather than act on the zeroed quantiles.
struct DistSnapshot {
  bool valid = false;
  /// Inbound one-way delivery delay to this rank, seconds, all peers
  /// aggregated at delivery time.
  std::uint64_t delay_samples = 0;
  double delay_p50 = 0.0;
  double delay_p90 = 0.0;
  double delay_p99 = 0.0;
  /// This rank's per-charge compute (service) time, seconds.
  std::uint64_t service_samples = 0;
  double service_p50 = 0.0;
  double service_p90 = 0.0;
  double service_p99 = 0.0;
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual net::Rank rank() const = 0;
  virtual int size() const = 0;
  /// This rank's processor capacity M_i (operations per second).
  virtual double ops_per_sec() const = 0;

  /// Asynchronous send; never blocks on the network (send-side software
  /// overhead is charged to this rank's processor).
  virtual void send(net::Rank dst, int tag, std::vector<std::byte> payload) = 0;
  /// Non-blocking receive: if a message from `src` with `tag` has been
  /// delivered, moves it into `out` and returns true.
  virtual bool try_recv(net::Rank src, int tag, net::Message& out) = 0;
  /// Blocking receive from a specific source.  Waiting time is recorded
  /// under Phase::Communicate.
  virtual net::Message recv(net::Rank src, int tag) = 0;
  /// Blocking receive from any source (Fig. 7 processes messages in
  /// arrival order).
  virtual net::Message recv_any(int tag) = 0;
  /// Blocking receive bounded by a timeout (local seconds): returns true and
  /// fills `out` on delivery, false once the timeout elapses with no match.
  /// A negative timeout blocks forever.  The default forwards to recv() —
  /// backends without a clock to wait against behave as if the message is
  /// never overdue.  Used by the engine's graceful-degradation path.
  virtual bool recv_timeout(net::Rank src, int tag, double timeout_seconds,
                            net::Message& out) {
    (void)timeout_seconds;
    out = recv(src, tag);
    return true;
  }
  /// Synchronises all ranks.
  virtual void barrier() = 0;

  /// Charges `ops` operations of work to this processor under `phase`.
  virtual void compute(double ops, Phase phase = Phase::Compute) = 0;
  /// Local elapsed time in seconds (virtual on the simulated backend).
  virtual double time_seconds() const = 0;
  /// Marks subsequent Compute charges as based on speculated inputs — only
  /// affects trace rendering (Fig. 2 distinguishes them with '*').
  virtual void mark_speculative(bool on) { (void)on; }
  /// Marks subsequent Compute charges as running in the engine's degraded
  /// mode (a peer is overdue and the rank is speculating past FW).  Only
  /// affects trace rendering; see spec/engine.hpp.
  virtual void mark_degraded(bool on) { (void)on; }
  /// Records a causal trace event at this rank's current local time — the
  /// engine's speculation-lifecycle instrumentation (speculate / check /
  /// check-fail / correct / rollback keyed by (peer, iter)).  Default:
  /// discard, so backends without a trace recorder — and runs with tracing
  /// off — pay nothing (same guard discipline as hb_check).
  virtual void trace_causal(des::CausalKind kind, int peer = -1,
                            std::int64_t iter = -1) {
    (void)kind;
    (void)peer;
    (void)iter;
  }

  /// Live delay/service distribution quantiles for this rank, for the
  /// model-driven speculation controllers.  Default: invalid (backends
  /// without distribution recording — and runs with it off — return a
  /// snapshot the policies treat as "hold").  The simulated backend fills
  /// it from its per-rank DistSketches when SimConfig::record_dists is on.
  virtual DistSnapshot dist_snapshot() const { return {}; }

  PhaseTimer& timer() noexcept { return timer_; }
  const PhaseTimer& timer() const noexcept { return timer_; }

  /// Collective-algorithm preference this endpoint was configured with
  /// (SimConfig::collective / ThreadConfig::collective).  The collectives in
  /// runtime/collectives.hpp resolve their Auto default through it, and the
  /// backends use it to pick their barrier implementation.
  CollectiveAlgo collective_algo() const noexcept { return collective_; }
  void set_collective_algo(CollectiveAlgo algo) noexcept { collective_ = algo; }

  // ---- Convenience helpers ----

  void send_doubles(net::Rank dst, int tag, std::span<const double> values) {
    // Reuse a pooled buffer for the wire image; the receive helpers retire
    // consumed payloads back into the pool, so iterating exchanges reach a
    // steady state with no allocations.
    net::ByteWriter writer(net::BufferPool::local().acquire());
    writer.write_span(values);
    send(dst, tag, std::move(writer).take());
  }

  std::vector<double> recv_doubles(net::Rank src, int tag) {
    net::Message msg = recv(src, tag);
    net::ByteReader reader(msg.payload);
    const std::span<const double> values = reader.read_span<double>();
    std::vector<double> out(values.begin(), values.end());
    net::BufferPool::local().release(std::move(msg.payload));
    return out;
  }

 protected:
  /// Fetches the shared telemetry instruments.  The refs are no-ops unless
  /// obs::set_metrics_enabled(true) ran before this communicator was
  /// constructed, so the hot paths pay a single branch when telemetry is
  /// off (see obs/metrics.hpp).  Both backends report under the same names,
  /// aggregated across ranks.
  Communicator()
      : metric_msgs_sent_(obs::metrics().counter("comm.messages_sent")),
        metric_bytes_sent_(obs::metrics().counter("comm.bytes_sent")),
        metric_msgs_received_(obs::metrics().counter("comm.messages_received")),
        metric_bytes_received_(obs::metrics().counter("comm.bytes_received")),
        metric_recv_wait_(obs::metrics().histogram("comm.recv_wait_seconds",
                                                   0.0, 10.0, 50)) {}

  void record_send(std::size_t payload_bytes) const noexcept {
    metric_msgs_sent_.inc();
    metric_bytes_sent_.inc(payload_bytes);
  }
  void record_receive(std::size_t payload_bytes) const noexcept {
    metric_msgs_received_.inc();
    metric_bytes_received_.inc(payload_bytes);
  }
  void record_recv_wait(double seconds) const noexcept {
    metric_recv_wait_.observe(seconds);
  }

  PhaseTimer timer_;
  CollectiveAlgo collective_ = CollectiveAlgo::Auto;

 private:
  obs::CounterRef metric_msgs_sent_;
  obs::CounterRef metric_bytes_sent_;
  obs::CounterRef metric_msgs_received_;
  obs::CounterRef metric_bytes_received_;
  obs::HistogramRef metric_recv_wait_;
};

/// An SPMD program body: invoked once per rank with that rank's endpoint.
using RankBody = std::function<void(Communicator&)>;

}  // namespace specomp::runtime

#include "apps/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spec/engine.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::apps {

JacobiProblem make_jacobi_problem(std::size_t n, std::uint64_t seed,
                                  double dominance) {
  SPEC_EXPECTS(n > 0);
  SPEC_EXPECTS(dominance > 1.0);
  support::Xoshiro256 rng(seed);
  JacobiProblem problem;
  problem.n = n;
  problem.a.resize(n * n);
  problem.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = rng.uniform(-1.0, 1.0) / static_cast<double>(n);
      problem.a[i * n + j] = v;
      off_sum += std::fabs(v);
    }
    problem.a[i * n + i] = dominance * off_sum + 1e-3;
    problem.b[i] = rng.uniform(-1.0, 1.0);
  }
  return problem;
}

std::vector<double> serial_jacobi(const JacobiProblem& problem,
                                  long iterations) {
  const std::size_t n = problem.n;
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (long t = 0; t < iterations; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) acc += problem.at(i, j) * x[j];
      next[i] = (problem.b[i] - acc) / problem.at(i, i);
    }
    x.swap(next);
  }
  return x;
}

double jacobi_residual(const JacobiProblem& problem, std::span<const double> x) {
  SPEC_EXPECTS(x.size() == problem.n);
  double worst = 0.0;
  for (std::size_t i = 0; i < problem.n; ++i) {
    double row = -problem.b[i];
    for (std::size_t j = 0; j < problem.n; ++j) row += problem.at(i, j) * x[j];
    worst = std::max(worst, std::fabs(row));
  }
  return worst;
}

JacobiApp::JacobiApp(const JacobiProblem& problem,
                     const nbody::Partition& partition, int rank)
    : problem_(problem),
      partition_(partition),
      rank_(rank),
      lo_(partition.begin(static_cast<std::size_t>(rank))),
      count_(partition.counts[static_cast<std::size_t>(rank)]),
      x_(problem.n, 0.0),
      acc_(count_, 0.0) {
  SPEC_EXPECTS(partition.total() == problem.n);
  SPEC_EXPECTS(count_ > 0);
}

std::vector<double> JacobiApp::pack_local() const {
  return {x_.begin() + static_cast<long>(lo_),
          x_.begin() + static_cast<long>(lo_ + count_)};
}

void JacobiApp::install_peer(int peer, std::span<const double> block) {
  SPEC_EXPECTS(peer != rank_);
  const std::size_t plo = partition_.begin(static_cast<std::size_t>(peer));
  SPEC_EXPECTS(block.size() ==
               partition_.counts[static_cast<std::size_t>(peer)]);
  std::copy(block.begin(), block.end(), x_.begin() + static_cast<long>(plo));
}

void JacobiApp::compute_step() {
  // Jacobi semantics: every row reads the iteration-t view, so buffer the
  // new local values before writing them back.
  std::vector<double> next(count_);
  for (std::size_t r = 0; r < count_; ++r) {
    const std::size_t i = lo_ + r;
    double acc = 0.0;
    for (std::size_t j = 0; j < problem_.n; ++j)
      if (j != i) acc += problem_.at(i, j) * x_[j];
    acc_[r] = acc;
    next[r] = (problem_.b[i] - acc) / problem_.at(i, i);
  }
  std::copy(next.begin(), next.end(), x_.begin() + static_cast<long>(lo_));
}

double JacobiApp::compute_ops() const {
  return 2.0 * static_cast<double>(count_) * static_cast<double>(problem_.n);
}

double JacobiApp::speculation_error(int, std::span<const double> speculated,
                                    std::span<const double> actual) {
  // Relative max-norm difference of the block.
  double scale = 1e-12;
  for (double v : actual) scale = std::max(scale, std::fabs(v));
  double worst = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    worst = std::max(worst, std::fabs(speculated[i] - actual[i]));
  return worst / scale;
}

double JacobiApp::check_ops(int peer) const {
  return 2.0 *
         static_cast<double>(partition_.counts[static_cast<std::size_t>(peer)]);
}

bool JacobiApp::correct_last_step(int peer, std::span<const double> actual) {
  // Swap the peer's contribution out of the stored row sums and recompute
  // the (cheap) division — an exact repair, like the N-body force delta.
  const std::size_t plo = partition_.begin(static_cast<std::size_t>(peer));
  const std::size_t pcount = partition_.counts[static_cast<std::size_t>(peer)];
  SPEC_EXPECTS(actual.size() == pcount);
  for (std::size_t r = 0; r < count_; ++r) {
    const std::size_t i = lo_ + r;
    double delta = 0.0;
    for (std::size_t j = 0; j < pcount; ++j) {
      // x_ still holds the speculated values for this peer.
      delta += problem_.at(i, plo + j) * (actual[j] - x_[plo + j]);
    }
    acc_[r] += delta;
    x_[i] = (problem_.b[i] - acc_[r]) / problem_.at(i, i);
  }
  install_peer(peer, actual);
  return true;
}

double JacobiApp::correct_ops(int peer) const {
  return 4.0 * static_cast<double>(count_) *
         static_cast<double>(partition_.counts[static_cast<std::size_t>(peer)]);
}

std::vector<double> JacobiApp::save_state() const { return pack_local(); }

void JacobiApp::restore_state(std::span<const double> state) {
  SPEC_EXPECTS(state.size() == count_);
  std::copy(state.begin(), state.end(), x_.begin() + static_cast<long>(lo_));
}

std::vector<std::vector<double>> JacobiApp::initial_blocks(
    const nbody::Partition& partition) {
  std::vector<std::vector<double>> blocks(partition.counts.size());
  for (std::size_t r = 0; r < partition.counts.size(); ++r)
    blocks[r].assign(partition.counts[r], 0.0);  // x(0) = 0
  return blocks;
}

JacobiRunResult run_jacobi_scenario(const JacobiScenario& scenario) {
  const std::size_t p = scenario.sim.cluster.size();
  SPEC_EXPECTS(p >= 1);
  const JacobiProblem problem =
      make_jacobi_problem(scenario.n, scenario.seed, scenario.dominance);
  const nbody::Partition partition = nbody::Partition::from_counts(
      scenario.sim.cluster.proportional_partition(scenario.n));

  spec::WindowPolicyKind window_kind = spec::WindowPolicyKind::Static;
  if (!scenario.window_policy.empty()) {
    const auto parsed = spec::parse_window_policy(scenario.window_policy);
    if (!parsed)
      throw std::invalid_argument("JacobiScenario: unknown window_policy \"" +
                                  scenario.window_policy + "\"");
    window_kind = *parsed;
  }
  spec::ThetaPolicyKind theta_kind = spec::ThetaPolicyKind::Static;
  if (!scenario.theta_policy.empty()) {
    const auto parsed = spec::parse_theta_policy(scenario.theta_policy);
    if (!parsed)
      throw std::invalid_argument("JacobiScenario: unknown theta_policy \"" +
                                  scenario.theta_policy + "\"");
    theta_kind = *parsed;
  }
  runtime::SimConfig sim_config = scenario.sim;
  if (window_kind == spec::WindowPolicyKind::Model)
    sim_config.record_dists = true;

  std::vector<std::vector<double>> finals(p);
  std::vector<spec::SpecStats> stats(p);
  JacobiRunResult result;
  result.sim = runtime::run_simulated(sim_config, [&](runtime::Communicator&
                                                          comm) {
    JacobiApp app(problem, partition, comm.rank());
    spec::EngineConfig engine_config;
    engine_config.forward_window = scenario.forward_window;
    engine_config.threshold = scenario.theta;
    engine_config.graceful_degradation = scenario.graceful_degradation;
    engine_config.overdue_after_seconds = scenario.overdue_after_seconds;
    engine_config.max_degraded_window = scenario.max_degraded_window;
    if (window_kind != spec::WindowPolicyKind::Static) {
      engine_config.window_policy =
          spec::make_window_policy(window_kind, scenario.forward_window);
      engine_config.max_forward_window = scenario.max_forward_window;
    }
    if (theta_kind != spec::ThetaPolicyKind::Static)
      engine_config.theta_policy =
          spec::make_theta_policy(theta_kind, scenario.theta);
    if (scenario.forward_window > 0 || scenario.graceful_degradation ||
        engine_config.window_policy != nullptr)
      engine_config.speculator = spec::make_speculator(scenario.speculator);
    spec::SpecEngine engine(comm, app, engine_config,
                            JacobiApp::initial_blocks(partition));
    stats[static_cast<std::size_t>(comm.rank())] =
        engine.run(scenario.iterations);
    const auto values = app.local_values();
    finals[static_cast<std::size_t>(comm.rank())]
        .assign(values.begin(), values.end());
  });

  for (std::size_t r = 0; r < p; ++r) {
    result.spec.merge(stats[r]);
    for (double v : finals[r]) result.solution.push_back(v);
  }
  result.residual = jacobi_residual(problem, result.solution);
  return result;
}

JacobiRunResult run_jacobi_async(const JacobiScenario& scenario) {
  const std::size_t p = scenario.sim.cluster.size();
  SPEC_EXPECTS(p >= 1);
  const JacobiProblem problem =
      make_jacobi_problem(scenario.n, scenario.seed, scenario.dominance);
  const nbody::Partition partition = nbody::Partition::from_counts(
      scenario.sim.cluster.proportional_partition(scenario.n));

  constexpr int kTag = 7000;
  std::vector<std::vector<double>> finals(p);
  JacobiRunResult result;
  result.sim = runtime::run_simulated(
      scenario.sim, [&](runtime::Communicator& comm) {
        JacobiApp app(problem, partition, comm.rank());
        for (long t = 0; t < scenario.iterations; ++t) {
          // Broadcast the current block, then fold in whatever has arrived
          // (later messages overwrite earlier ones — install newest last).
          const std::vector<double> block = app.pack_local();
          for (int k = 0; k < comm.size(); ++k)
            if (k != comm.rank()) comm.send_doubles(k, kTag, block);
          net::Message msg;
          for (int k = 0; k < comm.size(); ++k) {
            if (k == comm.rank()) continue;
            while (comm.try_recv(k, kTag, msg)) {
              net::ByteReader reader(msg.payload);
              const std::vector<double> peer_block =
                  reader.read_vector<double>();
              app.install_peer(k, peer_block);
            }
          }
          app.compute_step();
          comm.compute(app.compute_ops());
          comm.timer().bump_iterations();
        }
        // In-flight stragglers are simply delivered after the rank finishes;
        // asynchronous iteration never waits for them.
        const auto values = app.local_values();
        finals[static_cast<std::size_t>(comm.rank())]
            .assign(values.begin(), values.end());
      });

  for (std::size_t r = 0; r < p; ++r)
    for (double v : finals[r]) result.solution.push_back(v);
  result.residual = jacobi_residual(problem, result.solution);
  return result;
}

}  // namespace specomp::apps

// Jacobi iterative linear solver under the speculation engine.
//
// Demonstrates the paper's claim that speculative computation "can be
// applied to a host of parallel algorithms": solving A x = b by Jacobi
// iteration is the canonical synchronous iterative algorithm (their
// Section 2 model, eq. 1-2, with F the Jacobi update).  Each rank owns a
// contiguous block of unknowns; the iteration needs every other rank's
// block, so the communication structure is identical to the N-body case and
// the same engine, speculators and error machinery apply unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nbody/scenario.hpp"  // reuse runtime::SimConfig plumbing via includes
#include "runtime/sim_comm.hpp"
#include "spec/app.hpp"
#include "spec/stats.hpp"

namespace specomp::apps {

/// Dense diagonally dominant system (guaranteed Jacobi convergence).
struct JacobiProblem {
  std::size_t n = 0;
  std::vector<double> a;  // row-major n x n
  std::vector<double> b;

  double at(std::size_t row, std::size_t col) const { return a[row * n + col]; }
};

/// Random diagonally dominant system; `dominance` > 1 sets the ratio of
/// |diagonal| to the off-diagonal row sum (larger = faster convergence).
JacobiProblem make_jacobi_problem(std::size_t n, std::uint64_t seed,
                                  double dominance = 2.0);

/// Serial reference: `iterations` Jacobi sweeps from x = 0.
std::vector<double> serial_jacobi(const JacobiProblem& problem, long iterations);

/// Max-norm residual ||Ax - b||_inf.
double jacobi_residual(const JacobiProblem& problem, std::span<const double> x);

class JacobiApp final : public spec::SyncIterativeApp {
 public:
  JacobiApp(const JacobiProblem& problem, const nbody::Partition& partition,
            int rank);

  std::vector<double> pack_local() const override;
  void install_peer(int peer, std::span<const double> block) override;
  void compute_step() override;
  double compute_ops() const override;
  double speculation_error(int peer, std::span<const double> speculated,
                           std::span<const double> actual) override;
  double check_ops(int peer) const override;
  bool correct_last_step(int peer, std::span<const double> actual) override;
  double correct_ops(int peer) const override;
  std::vector<double> save_state() const override;
  void restore_state(std::span<const double> state) override;

  static std::vector<std::vector<double>> initial_blocks(
      const nbody::Partition& partition);

  std::span<const double> local_values() const {
    return {x_.data() + lo_, count_};
  }

 private:
  const JacobiProblem& problem_;
  nbody::Partition partition_;
  int rank_;
  std::size_t lo_ = 0;
  std::size_t count_ = 0;
  std::vector<double> x_;    // full view; authoritative on [lo_, lo_+count_)
  // specomp: rollback-covered(acc_): rewritten in full by every compute_step
  // before correct_last_step applies deltas; replay regenerates it
  std::vector<double> acc_;  // last step's off-diagonal row sums (local rows)
};

struct JacobiScenario {
  std::size_t n = 200;
  std::uint64_t seed = 99;
  double dominance = 2.0;
  long iterations = 30;
  int forward_window = 1;
  double theta = 1e-3;
  std::string speculator = "linear";
  /// Window controller by name ("static", "heuristic", "hill-climb",
  /// "model"); empty keeps the fixed forward_window.  "model" forces
  /// sim.record_dists on.
  std::string window_policy;
  /// θ controller by name ("static", "adaptive"); empty keeps fixed θ.
  std::string theta_policy;
  int max_forward_window = 8;
  runtime::SimConfig sim;
  /// Engine graceful degradation under faults (DESIGN.md Â§9); the examples
  /// arm this whenever a fault plan is given.
  bool graceful_degradation = false;
  double overdue_after_seconds = 1.0;
  int max_degraded_window = 8;
};

struct JacobiRunResult {
  runtime::SimResult sim;
  spec::SpecStats spec;
  std::vector<double> solution;  // assembled final x
  double residual = 0.0;
};

JacobiRunResult run_jacobi_scenario(const JacobiScenario& scenario);

/// Fully asynchronous Jacobi (the paper's related work: Bertsekas &
/// Tsitsiklis; Womble): ranks never block — each sweep uses whatever peer
/// values have arrived so far ("chaotic relaxation").  Converges for the
/// diagonally dominant systems generated here, but tolerates staleness by
/// spending extra sweeps rather than masking latency with checked guesses;
/// a baseline for the speculation comparison (forward_window/theta/
/// speculator fields of the scenario are ignored).
JacobiRunResult run_jacobi_async(const JacobiScenario& scenario);

}  // namespace specomp::apps

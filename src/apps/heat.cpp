#include "apps/heat.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "spec/engine.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace specomp::apps {

std::vector<double> heat_initial_condition(const HeatProblem& problem) {
  support::Xoshiro256 rng(problem.seed);
  std::vector<double> u(problem.n, 0.0);
  for (int bump = 0; bump < 3; ++bump) {
    const double centre = rng.uniform(0.2, 0.8) * static_cast<double>(problem.n);
    const double width = rng.uniform(0.02, 0.08) * static_cast<double>(problem.n);
    const double height = rng.uniform(0.5, 1.5);
    for (std::size_t i = 0; i < problem.n; ++i) {
      const double d = (static_cast<double>(i) - centre) / width;
      u[i] += height * std::exp(-d * d);
    }
  }
  return u;
}

namespace {

double stencil(double left, double centre, double right, double alpha) {
  return centre + alpha * (left - 2.0 * centre + right);
}

}  // namespace

std::vector<double> serial_heat(const HeatProblem& problem, long iterations) {
  SPEC_EXPECTS(problem.alpha > 0.0 && problem.alpha <= 0.5);
  std::vector<double> u = heat_initial_condition(problem);
  std::vector<double> next(u.size());
  for (long t = 0; t < iterations; ++t) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double left = i == 0 ? 0.0 : u[i - 1];
      const double right = i + 1 == u.size() ? 0.0 : u[i + 1];
      next[i] = stencil(left, u[i], right, problem.alpha);
    }
    u.swap(next);
  }
  return u;
}

HeatApp::HeatApp(const HeatProblem& problem, const nbody::Partition& partition,
                 int rank)
    : problem_(problem),
      partition_(partition),
      rank_(rank),
      lo_(partition.begin(static_cast<std::size_t>(rank))),
      count_(partition.counts[static_cast<std::size_t>(rank)]),
      u_(heat_initial_condition(problem)),
      prev_u_(count_, 0.0) {
  SPEC_EXPECTS(partition.total() == problem.n);
  SPEC_EXPECTS(count_ > 0);
  SPEC_EXPECTS(problem.alpha > 0.0 && problem.alpha <= 0.5);
}

double HeatApp::cell_or_boundary(std::size_t index_plus_one) const {
  // index_plus_one = global index + 1, so 0 means the left ghost cell.
  if (index_plus_one == 0 || index_plus_one > problem_.n) return 0.0;
  return u_[index_plus_one - 1];
}

std::vector<double> HeatApp::pack_local() const {
  return {u_.begin() + static_cast<long>(lo_),
          u_.begin() + static_cast<long>(lo_ + count_)};
}

void HeatApp::install_peer(int peer, std::span<const double> block) {
  SPEC_EXPECTS(peer != rank_);
  const std::size_t plo = partition_.begin(static_cast<std::size_t>(peer));
  SPEC_EXPECTS(block.size() ==
               partition_.counts[static_cast<std::size_t>(peer)]);
  std::copy(block.begin(), block.end(), u_.begin() + static_cast<long>(plo));
}

void HeatApp::compute_step() {
  std::copy(u_.begin() + static_cast<long>(lo_),
            u_.begin() + static_cast<long>(lo_ + count_), prev_u_.begin());
  std::vector<double> next(count_);
  for (std::size_t r = 0; r < count_; ++r) {
    const std::size_t i = lo_ + r;
    next[r] = stencil(cell_or_boundary(i), u_[i], cell_or_boundary(i + 2),
                      problem_.alpha);
  }
  std::copy(next.begin(), next.end(), u_.begin() + static_cast<long>(lo_));
}

double HeatApp::compute_ops() const {
  return 5.0 * static_cast<double>(count_);
}

double HeatApp::speculation_error(int peer, std::span<const double> speculated,
                                  std::span<const double> actual) {
  // Only a neighbouring segment's halo cell influences this rank; errors in
  // any other cell (or any other rank's block) are irrelevant.
  if (peer == rank_ - 1)
    return std::fabs(speculated.back() - actual.back());
  if (peer == rank_ + 1)
    return std::fabs(speculated.front() - actual.front());
  return 0.0;
}

double HeatApp::check_ops(int) const { return 2.0; }

bool HeatApp::correct_last_step(int peer, std::span<const double> actual) {
  if (peer != rank_ - 1 && peer != rank_ + 1) return true;  // no influence
  install_peer(peer, actual);
  // Recompute the single boundary cell the halo feeds, from the pre-update
  // segment and the repaired view.
  const std::size_t r = peer == rank_ - 1 ? 0 : count_ - 1;
  const std::size_t i = lo_ + r;
  const double left =
      r == 0 ? cell_or_boundary(i) : prev_u_[r - 1];
  const double right =
      r + 1 == count_ ? cell_or_boundary(i + 2) : prev_u_[r + 1];
  u_[i] = stencil(left, prev_u_[r], right, problem_.alpha);
  return true;
}

double HeatApp::correct_ops(int) const { return 8.0; }

std::vector<double> HeatApp::save_state() const { return pack_local(); }

void HeatApp::restore_state(std::span<const double> state) {
  SPEC_EXPECTS(state.size() == count_);
  std::copy(state.begin(), state.end(), u_.begin() + static_cast<long>(lo_));
}

std::vector<std::vector<double>> HeatApp::initial_blocks(
    const nbody::Partition& partition, std::span<const double> u0) {
  std::vector<std::vector<double>> blocks(partition.counts.size());
  for (std::size_t r = 0; r < partition.counts.size(); ++r)
    blocks[r].assign(u0.begin() + static_cast<long>(partition.begin(r)),
                     u0.begin() + static_cast<long>(partition.end(r)));
  return blocks;
}

HeatRunResult run_heat_scenario(const HeatScenario& scenario) {
  const std::size_t p = scenario.sim.cluster.size();
  SPEC_EXPECTS(p >= 1);
  const nbody::Partition partition = nbody::Partition::from_counts(
      scenario.sim.cluster.proportional_partition(scenario.problem.n));
  const std::vector<double> u0 = heat_initial_condition(scenario.problem);

  spec::WindowPolicyKind window_kind = spec::WindowPolicyKind::Static;
  if (!scenario.window_policy.empty()) {
    const auto parsed = spec::parse_window_policy(scenario.window_policy);
    if (!parsed)
      throw std::invalid_argument("HeatScenario: unknown window_policy \"" +
                                  scenario.window_policy + "\"");
    window_kind = *parsed;
  }
  spec::ThetaPolicyKind theta_kind = spec::ThetaPolicyKind::Static;
  if (!scenario.theta_policy.empty()) {
    const auto parsed = spec::parse_theta_policy(scenario.theta_policy);
    if (!parsed)
      throw std::invalid_argument("HeatScenario: unknown theta_policy \"" +
                                  scenario.theta_policy + "\"");
    theta_kind = *parsed;
  }
  runtime::SimConfig sim_config = scenario.sim;
  if (window_kind == spec::WindowPolicyKind::Model)
    sim_config.record_dists = true;

  std::vector<std::vector<double>> finals(p);
  std::vector<spec::SpecStats> stats(p);
  HeatRunResult result;
  result.sim = runtime::run_simulated(
      sim_config, [&](runtime::Communicator& comm) {
        HeatApp app(scenario.problem, partition, comm.rank());
        spec::EngineConfig engine_config;
        engine_config.forward_window = scenario.forward_window;
        engine_config.threshold = scenario.theta;
        engine_config.graceful_degradation = scenario.graceful_degradation;
        engine_config.overdue_after_seconds = scenario.overdue_after_seconds;
        engine_config.max_degraded_window = scenario.max_degraded_window;
        if (window_kind != spec::WindowPolicyKind::Static) {
          engine_config.window_policy =
              spec::make_window_policy(window_kind, scenario.forward_window);
          engine_config.max_forward_window = scenario.max_forward_window;
        }
        if (theta_kind != spec::ThetaPolicyKind::Static)
          engine_config.theta_policy =
              spec::make_theta_policy(theta_kind, scenario.theta);
        if (scenario.forward_window > 0 || scenario.graceful_degradation ||
            engine_config.window_policy != nullptr)
          engine_config.speculator = spec::make_speculator(scenario.speculator);
        spec::SpecEngine engine(comm, app, engine_config,
                                HeatApp::initial_blocks(partition, u0));
        stats[static_cast<std::size_t>(comm.rank())] =
            engine.run(scenario.iterations);
        const auto values = app.local_values();
        finals[static_cast<std::size_t>(comm.rank())]
            .assign(values.begin(), values.end());
      });

  for (std::size_t r = 0; r < p; ++r) {
    result.spec.merge(stats[r]);
    for (double v : finals[r]) result.field.push_back(v);
  }
  return result;
}

}  // namespace specomp::apps

// 1-D explicit heat diffusion under the speculation engine.
//
// The stencil u_i(t+1) = u_i + alpha (u_{i-1} - 2 u_i + u_{i+1}) with fixed
// zero boundaries.  Each rank owns a contiguous segment; only the two halo
// cells of the neighbouring segments are actually read, which makes this the
// sharpest demonstration of an application-defined speculation error
// (paper Section 3.2, "defining an appropriate speculation function ... is
// important"): the error metric inspects just the cells that influence the
// local update, so speculation on non-neighbour ranks is always acceptable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nbody/types.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/app.hpp"
#include "spec/stats.hpp"

namespace specomp::apps {

struct HeatProblem {
  std::size_t n = 256;
  /// Diffusion number alpha = D dt / dx^2; stability requires <= 0.5.
  double alpha = 0.25;
  std::uint64_t seed = 7;
};

/// Initial condition: sum of a few smooth bumps (deterministic in seed).
std::vector<double> heat_initial_condition(const HeatProblem& problem);

/// Serial reference sweep.
std::vector<double> serial_heat(const HeatProblem& problem, long iterations);

class HeatApp final : public spec::SyncIterativeApp {
 public:
  HeatApp(const HeatProblem& problem, const nbody::Partition& partition,
          int rank);

  std::vector<double> pack_local() const override;
  void install_peer(int peer, std::span<const double> block) override;
  void compute_step() override;
  double compute_ops() const override;
  double speculation_error(int peer, std::span<const double> speculated,
                           std::span<const double> actual) override;
  double check_ops(int peer) const override;
  bool correct_last_step(int peer, std::span<const double> actual) override;
  double correct_ops(int peer) const override;
  std::vector<double> save_state() const override;
  void restore_state(std::span<const double> state) override;

  static std::vector<std::vector<double>> initial_blocks(
      const nbody::Partition& partition, std::span<const double> u0);

  std::span<const double> local_values() const {
    return {u_.data() + lo_, count_};
  }

 private:
  double cell_or_boundary(std::size_t index_plus_one) const;

  HeatProblem problem_;
  nbody::Partition partition_;
  int rank_;
  std::size_t lo_ = 0;
  std::size_t count_ = 0;
  std::vector<double> u_;       // full view
  // specomp: rollback-covered(prev_u_): refreshed from u_ at the top of
  // every compute_step before any read; replay regenerates it
  std::vector<double> prev_u_;  // local segment before the last update
};

struct HeatScenario {
  HeatProblem problem;
  long iterations = 50;
  int forward_window = 1;
  double theta = 1e-4;
  std::string speculator = "linear";
  /// Window controller by name ("static", "heuristic", "hill-climb",
  /// "model"); empty keeps the fixed forward_window.  "model" forces
  /// sim.record_dists on.
  std::string window_policy;
  /// θ controller by name ("static", "adaptive"); empty keeps fixed θ.
  std::string theta_policy;
  int max_forward_window = 8;
  runtime::SimConfig sim;
  /// Engine graceful degradation under faults (DESIGN.md §9); the examples
  /// arm this whenever a fault plan is given.
  bool graceful_degradation = false;
  double overdue_after_seconds = 1.0;
  int max_degraded_window = 8;
};

struct HeatRunResult {
  runtime::SimResult sim;
  spec::SpecStats spec;
  std::vector<double> field;  // assembled final u
};

HeatRunResult run_heat_scenario(const HeatScenario& scenario);

}  // namespace specomp::apps

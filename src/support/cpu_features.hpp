// Runtime CPU-feature detection for the explicitly vectorised force kernels.
//
// The SIMD kernel translation units are compiled with per-TU -m flags
// (-mavx2/-mavx512f, see src/nbody/CMakeLists.txt), so the *binary* may
// contain instructions the *host* cannot execute.  KernelDispatch therefore
// asks this module — CPUID plus XGETBV for OS register-state support —
// before ever routing into one of those TUs.  Detection runs once and is
// cached; everything downstream (tier selection, --kernel=auto) is a pure
// function of the cached value, so kernel choice is deterministic for a
// given process on a given host.
//
// Two override channels exist, both config-only (never data- or
// time-dependent):
//   * SPECOMP_CPU_LIMIT=generic|avx2 caps the detected set — the CI
//     generic-arch job uses it to exercise the no-SIMD fallback on hardware
//     that does support SIMD;
//   * override_for_testing() replaces the cached value from tests so the
//     unsupported-tier fallback paths can be pinned on any build host.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace specomp::support::cpu {

/// The subset of x86 features the kernel tiers care about.  All-false on
/// non-x86 builds (runtime dispatch then always falls back to `tiled`).
struct Features {
  bool sse2 = false;
  bool fma = false;
  bool avx = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512dq = false;
  /// OS saves/restores YMM state (XGETBV xcr0 bits 1-2).
  bool os_avx = false;
  /// OS saves/restores opmask + ZMM state (xcr0 bits 5-7).
  bool os_avx512 = false;

  /// The avx2 kernel tier needs AVX2 + FMA and YMM OS support.
  bool usable_avx2() const noexcept { return avx2 && fma && os_avx; }
  /// The avx512 tier needs AVX-512 F+DQ and ZMM/opmask OS support.
  bool usable_avx512() const noexcept {
    return avx512f && avx512dq && os_avx512;
  }
};

/// Raw detection: CPUID leaves 1/7 + XGETBV.  Unaffected by overrides.
Features detect() noexcept;

/// Cached features used for dispatch: detect(), clamped by SPECOMP_CPU_LIMIT
/// (read once), unless a test override is active.
const Features& features() noexcept;

/// Replaces (or with nullopt restores) the cached feature set.  Test-only;
/// takes effect for every later features() call.
void override_for_testing(std::optional<Features> forced) noexcept;

/// Parses a SPECOMP_CPU_LIMIT value: "generic" (no SIMD tiers), "avx2"
/// (cap at AVX2), "native" (no cap).  nullopt on anything else.
std::optional<Features> parse_cpu_limit(std::string_view value,
                                        const Features& detected) noexcept;

/// Human-readable summary, e.g. "sse2 avx avx2 fma avx512f avx512dq".
std::string describe(const Features& f);

}  // namespace specomp::support::cpu

// Lightweight precondition / postcondition / invariant checks.
//
// Following the C++ Core Guidelines (I.6 / I.8) we express interface
// contracts explicitly.  Violations indicate programmer error, never
// recoverable runtime conditions, so they abort with a diagnostic rather
// than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace specomp::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace specomp::detail

#define SPEC_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::specomp::detail::contract_failure("Precondition", #cond, __FILE__, \
                                          __LINE__);                       \
  } while (0)

#define SPEC_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specomp::detail::contract_failure("Postcondition", #cond, __FILE__, \
                                          __LINE__);                        \
  } while (0)

#define SPEC_ASSERT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::specomp::detail::contract_failure("Invariant", #cond, __FILE__, \
                                          __LINE__);                     \
  } while (0)

// Leveled, thread-safe logging.  Default level is Warn so library users get
// a quiet console; the examples raise it to Info via --verbose.
#pragma once

#include <sstream>
#include <string>

namespace specomp::support {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr (serialised across threads).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace specomp::support

#define SPEC_LOG(level)                                            \
  if (static_cast<int>(level) <                                    \
      static_cast<int>(::specomp::support::log_level())) {         \
  } else                                                           \
    ::specomp::support::detail::LogStream(level)

#define SPEC_LOG_INFO SPEC_LOG(::specomp::support::LogLevel::Info)
#define SPEC_LOG_DEBUG SPEC_LOG(::specomp::support::LogLevel::Debug)
#define SPEC_LOG_WARN SPEC_LOG(::specomp::support::LogLevel::Warn)
#define SPEC_LOG_ERROR SPEC_LOG(::specomp::support::LogLevel::Error)

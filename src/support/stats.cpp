#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/contracts.hpp"

namespace specomp::support {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const noexcept {
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s.mean();
}

double SampleSet::stddev() const noexcept {
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s.stddev();
}

double SampleSet::min() const noexcept {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  SPEC_EXPECTS(!samples_.empty());
  SPEC_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SPEC_EXPECTS(hi > lo);
  SPEC_EXPECTS(buckets > 0);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  SPEC_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  SPEC_EXPECTS(bucket < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    out << "[";
    out.width(10);
    out << bucket_lo(b) << ", ";
    out.width(10);
    out << bucket_hi(b) << ") ";
    out.width(8);
    out << counts_[b] << " " << std::string(bar, '#') << "\n";
  }
  return out.str();
}

}  // namespace specomp::support

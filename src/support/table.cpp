#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/contracts.hpp"

namespace specomp::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPEC_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  SPEC_EXPECTS(cells_.empty() || cells_.back().size() == headers_.size());
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  SPEC_EXPECTS(!cells_.empty());
  SPEC_EXPECTS(cells_.back().size() < headers_.size());
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  SPEC_EXPECTS(r < cells_.size());
  SPEC_EXPECTS(c < cells_[r].size());
  return cells_[r][c];
}

std::string Table::markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::ostream& os) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(headers_, os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : cells_) emit_row(row, os);
  return os.str();
}

std::string Table::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << "\n";
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << quote(row[c]);
    os << "\n";
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << csv();
  return static_cast<bool>(os);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.markdown();
}

}  // namespace specomp::support

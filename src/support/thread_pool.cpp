#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace specomp::support {

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::set_observer(Observer observer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  observer_ = std::move(observer);
}

void ThreadPool::run_chunk(Job& job, std::size_t index) {
  const std::size_t begin = index * job.grain;
  const std::size_t end = std::min(job.n, begin + job.grain);
  (*job.fn)(begin, end);
  {
    const std::lock_guard<std::mutex> lock(job.done_mutex);
    ++job.done_chunks;
    if (job.done_chunks == job.total_chunks) job.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Job* job = queue_.front();
    const std::size_t index =
        job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= job->total_chunks) {
      // Every chunk is claimed; retire the job so the next one surfaces.
      queue_.pop_front();
      if (observer_.queue_depth)
        observer_.queue_depth(static_cast<double>(queue_.size()));
      continue;
    }
    lock.unlock();
    run_chunk(*job, index);
    if (observer_.chunks_executed) observer_.chunks_executed(1);
    lock.lock();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const RangeFn& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = grain;
  job.total_chunks = (n + grain - 1) / grain;

  if (workers_.empty() || job.total_chunks == 1) {
    // Inline fast path: nothing to hand out, so skip the queue entirely.
    for (std::size_t c = 0; c < job.total_chunks; ++c) run_chunk(job, c);
    if (observer_.jobs_submitted) observer_.jobs_submitted(1);
    if (observer_.chunks_executed) observer_.chunks_executed(job.total_chunks);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(&job);
    if (observer_.queue_depth)
      observer_.queue_depth(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  if (observer_.jobs_submitted) observer_.jobs_submitted(1);

  // The caller works its own job alongside the pool.
  std::size_t ran = 0;
  for (;;) {
    const std::size_t index =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.total_chunks) break;
    run_chunk(job, index);
    ++ran;
  }
  if (observer_.chunks_executed && ran > 0) observer_.chunks_executed(ran);

  {
    // All chunks are claimed; drop the job if no worker retired it yet (the
    // Job lives on this stack frame, so it must leave the queue before we
    // return).
    const std::lock_guard<std::mutex> lock(mutex_);
    std::erase(queue_, &job);
  }
  std::unique_lock<std::mutex> lock(job.done_mutex);
  job.done_cv.wait(lock, [&] { return job.done_chunks == job.total_chunks; });
}

namespace {

unsigned default_worker_count() {
  if (const char* env = std::getenv("SPECOMP_POOL_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) return static_cast<unsigned>(std::min(v, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

}  // namespace

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_worker_count());
  return pool;
}

}  // namespace specomp::support

#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace specomp::support {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace specomp::support

#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/contracts.hpp"

namespace specomp::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  SPEC_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo (rejection sampling).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % range);
}

double Xoshiro256::exponential(double mean) noexcept {
  SPEC_ASSERT(mean > 0.0);
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Xoshiro256 Xoshiro256::fork(std::uint64_t stream) const noexcept {
  SplitMix64 sm(seed_ ^ (0xa0761d6478bd642fULL + stream * 0xe7037ed1a0b428dbULL));
  return Xoshiro256(sm.next());
}

}  // namespace specomp::support

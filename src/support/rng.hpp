// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (network jitter, background
// traffic, initial particle placement) is driven through these generators so
// that a run is a pure function of its seeds.  Xoshiro256** is used as the
// workhorse generator; SplitMix64 seeds it and derives independent streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace specomp::support {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// state of larger generators and to derive decorrelated per-stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator, so it can drive standard
/// distributions as well as the helpers below.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Exponentially distributed with the given mean (mean > 0).
  double exponential(double mean) noexcept;
  /// Standard normal via Box-Muller (no cached spare: deterministic stream).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Derives a decorrelated child generator; `stream` distinguishes children
  /// of the same parent seed.
  Xoshiro256 fork(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;  // retained for fork()
};

}  // namespace specomp::support

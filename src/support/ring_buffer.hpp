// Fixed-capacity ring buffer used to hold per-peer variable history for the
// backward speculation window (BW): the speculation functions extrapolate
// from the last `capacity` received values.
#pragma once

#include <cstddef>
#include <vector>

#include "support/contracts.hpp"

namespace specomp::support {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    SPEC_EXPECTS(capacity > 0);
    slots_.reserve(capacity);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }
  bool full() const noexcept { return slots_.size() == capacity_; }

  /// Appends a value; evicts the oldest value when full.
  void push(T value) {
    if (slots_.size() < capacity_) {
      slots_.push_back(std::move(value));
    } else {
      slots_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
  }

  /// Element `age` steps back from the most recent: back(0) is the newest,
  /// back(size()-1) the oldest retained.
  const T& back(std::size_t age = 0) const {
    SPEC_EXPECTS(age < slots_.size());
    const std::size_t newest = (head_ + slots_.size() - 1) % slots_.size();
    const std::size_t idx = (newest + slots_.size() - age) % slots_.size();
    return slots_[idx];
  }

  void clear() noexcept {
    slots_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<T> slots_;
};

}  // namespace specomp::support

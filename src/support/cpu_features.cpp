#include "support/cpu_features.hpp"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define SPECOMP_CPU_X86 1
#endif

#if defined(SPECOMP_CPU_X86) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#endif

namespace specomp::support::cpu {

namespace {

#if defined(SPECOMP_CPU_X86) && (defined(__GNUC__) || defined(__clang__))

/// xcr0 via XGETBV, valid only once CPUID reports OSXSAVE.
std::uint64_t read_xcr0() noexcept {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

Features detect_x86() noexcept {
  Features f;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.sse2 = (edx & (1u << 26)) != 0;
  f.fma = (ecx & (1u << 12)) != 0;
  f.avx = (ecx & (1u << 28)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
    f.avx512dq = (ebx & (1u << 17)) != 0;
  }

  if (osxsave) {
    const std::uint64_t xcr0 = read_xcr0();
    // Bits 1 (SSE) + 2 (AVX) for YMM; 5 (opmask) + 6 (ZMM hi256) +
    // 7 (hi16 ZMM) for the full AVX-512 register file.
    f.os_avx = (xcr0 & 0x6) == 0x6;
    f.os_avx512 = f.os_avx && (xcr0 & 0xE0) == 0xE0;
  }
  return f;
}

#endif  // SPECOMP_CPU_X86

struct Cache {
  Features value;
  bool overridden = false;
};

Cache& cache() {
  static Cache c = [] {
    Cache init;
    init.value = detect();
    // Config-only environment read, once, before any simulation starts:
    // kernel-tier choice stays a pure function of (binary, host, env).
    if (const char* limit = std::getenv("SPECOMP_CPU_LIMIT")) {
      if (const auto capped = parse_cpu_limit(limit, init.value))
        init.value = *capped;
    }
    return init;
  }();
  return c;
}

}  // namespace

Features detect() noexcept {
#if defined(SPECOMP_CPU_X86) && (defined(__GNUC__) || defined(__clang__))
  return detect_x86();
#else
  return Features{};
#endif
}

const Features& features() noexcept { return cache().value; }

void override_for_testing(std::optional<Features> forced) noexcept {
  Cache& c = cache();
  if (forced.has_value()) {
    c.value = *forced;
    c.overridden = true;
  } else if (c.overridden) {
    // Re-derive the non-overridden value (detect + env clamp).
    c.value = detect();
    if (const char* limit = std::getenv("SPECOMP_CPU_LIMIT")) {
      if (const auto capped = parse_cpu_limit(limit, c.value))
        c.value = *capped;
    }
    c.overridden = false;
  }
}

std::optional<Features> parse_cpu_limit(std::string_view value,
                                        const Features& detected) noexcept {
  if (value == "native") return detected;
  if (value == "generic") {
    Features f = detected;
    f.avx2 = false;
    f.avx512f = false;
    f.avx512dq = false;
    return f;
  }
  if (value == "avx2") {
    Features f = detected;
    f.avx512f = false;
    f.avx512dq = false;
    return f;
  }
  return std::nullopt;
}

std::string describe(const Features& f) {
  std::string out;
  const auto add = [&out](bool on, std::string_view name) {
    if (!on) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.avx512dq, "avx512dq");
  add(f.os_avx, "os-ymm");
  add(f.os_avx512, "os-zmm");
  if (out.empty()) out = "generic";
  return out;
}

}  // namespace specomp::support::cpu

// Persistent worker pool for data-parallel kernels.
//
// One process-wide pool (ThreadPool::shared()) is reused by every kernel
// call site instead of spawning threads per call: thread creation costs
// ~10-50 us, which would dwarf a tiled force pass over a small rank block.
//
// parallel_for(n, grain, fn) splits [0, n) into ceil(n / grain) contiguous
// chunks and runs fn(begin, end) once per chunk, on the workers *and* on the
// calling thread.  Because the caller claims chunks too:
//   * a pool with zero workers (single-core host) degrades to an inline
//     loop with no synchronisation at all, and
//   * concurrent parallel_for calls from many threads (e.g. every
//     ThreadCommunicator rank at once) can never deadlock — each caller
//     makes progress on its own job even if all workers are busy elsewhere.
//
// Chunks are claimed in index order from an atomic cursor, but which thread
// runs a chunk is scheduling-dependent.  Callers that need deterministic
// results must make chunk outputs independent of that assignment; the force
// kernels do so by giving every chunk a disjoint target range, which is why
// their accumulation order — and hence their floating-point output — is
// bit-identical across runs and across pool sizes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specomp::support {

class ThreadPool {
 public:
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Telemetry hooks.  The pool deliberately has no dependency on the
  /// metrics registry (support must stay the bottom layer); the kernel
  /// dispatch layer binds these callbacks to obs::MetricsRegistry.  Install
  /// before the pool is used concurrently; calls are made outside the pool
  /// lock at chunk granularity, so they must be cheap and thread-safe.
  struct Observer {
    std::function<void(double)> queue_depth;            // jobs waiting
    std::function<void(std::uint64_t)> chunks_executed;
    std::function<void(std::uint64_t)> jobs_submitted;
  };

  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void set_observer(Observer observer);

  /// Runs fn over [0, n) in chunks of `grain` indices (the last chunk may be
  /// shorter); returns once every chunk has finished.  fn must not throw.
  /// Safe to call from multiple threads at once; nested calls from inside fn
  /// are not supported.
  void parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn);

  /// Process-wide pool shared by all kernel call sites: hardware_concurrency
  /// - 1 workers (the calling thread is the remaining lane), overridable via
  /// the SPECOMP_POOL_WORKERS environment variable for tests and benchmarks.
  static ThreadPool& shared();

 private:
  struct Job {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t total_chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::size_t done_chunks = 0;  // guarded by done_mutex
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  void worker_loop();
  static void run_chunk(Job& job, std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job*> queue_;  // guarded by mutex_
  bool stop_ = false;       // guarded by mutex_
  Observer observer_;       // set once, before concurrent use
};

}  // namespace specomp::support

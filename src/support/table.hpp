// Plain-text table rendering for the benchmark harnesses.  Every experiment
// binary prints the rows of the paper table/figure it regenerates in either
// aligned-markdown or CSV form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace specomp::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill its cells.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(int value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Column-aligned markdown (the default human-readable output).
  std::string markdown() const;
  std::string csv() const;
  /// RFC-4180 CSV, identical to csv(); the name the bench harnesses use.
  std::string to_csv() const { return csv(); }
  /// Writes to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace specomp::support

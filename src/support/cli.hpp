// Tiny command-line option parser for the examples and bench binaries.
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specomp::support {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept { return positional_; }
  /// Option names that were present but never queried — for typo detection.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace specomp::support

// Online statistics and histogram utilities used by the measurement layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace specomp::support {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;
  void reset() noexcept { *this = OnlineStats{}; }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples for exact quantiles; suitable for the modest sample
/// counts produced by per-iteration measurements.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated quantile, q in [0, 1]. Requires at least 1 sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;
  /// Renders a fixed-width ASCII bar chart (one row per bucket).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace specomp::support

file(REMOVE_RECURSE
  "CMakeFiles/heat_jacobi.dir/heat_jacobi.cpp.o"
  "CMakeFiles/heat_jacobi.dir/heat_jacobi.cpp.o.d"
  "heat_jacobi"
  "heat_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for heat_jacobi.
# This may be replaced when dependencies are built.

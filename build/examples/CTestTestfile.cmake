# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nbody_sim "/root/repo/build/examples/nbody_sim" "--p" "8" "--n" "200" "--iterations" "4")
set_tests_properties(example_nbody_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_jacobi "/root/repo/build/examples/heat_jacobi" "--p" "4" "--iterations" "20")
set_tests_properties(example_heat_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeline_demo "/root/repo/build/examples/timeline_demo")
set_tests_properties(example_timeline_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_explorer "/root/repo/build/examples/model_explorer" "--procs" "8")
set_tests_properties(example_model_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")

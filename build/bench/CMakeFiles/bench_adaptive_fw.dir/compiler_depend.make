# Empty compiler generated dependencies file for bench_adaptive_fw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_fw.dir/bench_adaptive_fw.cpp.o"
  "CMakeFiles/bench_adaptive_fw.dir/bench_adaptive_fw.cpp.o.d"
  "bench_adaptive_fw"
  "bench_adaptive_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_apps_speculation.dir/bench_apps_speculation.cpp.o"
  "CMakeFiles/bench_apps_speculation.dir/bench_apps_speculation.cpp.o.d"
  "bench_apps_speculation"
  "bench_apps_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apps_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_apps_speculation.
# This may be replaced when dependencies are built.

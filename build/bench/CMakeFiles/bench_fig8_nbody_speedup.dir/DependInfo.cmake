
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_nbody_speedup.cpp" "bench/CMakeFiles/bench_fig8_nbody_speedup.dir/bench_fig8_nbody_speedup.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_nbody_speedup.dir/bench_fig8_nbody_speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/spec_des.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spec_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/spec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/spec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/spec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/spec_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/spec_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

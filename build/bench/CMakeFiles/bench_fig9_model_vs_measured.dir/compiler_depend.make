# Empty compiler generated dependencies file for bench_fig9_model_vs_measured.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bw.dir/bench_ablation_bw.cpp.o"
  "CMakeFiles/bench_ablation_bw.dir/bench_ablation_bw.cpp.o.d"
  "bench_ablation_bw"
  "bench_ablation_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_model_stochastic.dir/bench_model_stochastic.cpp.o"
  "CMakeFiles/bench_model_stochastic.dir/bench_model_stochastic.cpp.o.d"
  "bench_model_stochastic"
  "bench_model_stochastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

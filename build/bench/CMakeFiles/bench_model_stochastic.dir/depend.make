# Empty dependencies file for bench_model_stochastic.
# This may be replaced when dependencies are built.

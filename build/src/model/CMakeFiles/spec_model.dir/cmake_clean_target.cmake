file(REMOVE_RECURSE
  "libspec_model.a"
)

# Empty dependencies file for spec_model.
# This may be replaced when dependencies are built.

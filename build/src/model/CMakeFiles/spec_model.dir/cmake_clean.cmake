file(REMOVE_RECURSE
  "CMakeFiles/spec_model.dir/calibrate.cpp.o"
  "CMakeFiles/spec_model.dir/calibrate.cpp.o.d"
  "CMakeFiles/spec_model.dir/perf_model.cpp.o"
  "CMakeFiles/spec_model.dir/perf_model.cpp.o.d"
  "libspec_model.a"
  "libspec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

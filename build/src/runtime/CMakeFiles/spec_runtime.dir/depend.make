# Empty dependencies file for spec_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libspec_runtime.a"
)

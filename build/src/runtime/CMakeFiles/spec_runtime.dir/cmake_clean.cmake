file(REMOVE_RECURSE
  "CMakeFiles/spec_runtime.dir/cluster.cpp.o"
  "CMakeFiles/spec_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/spec_runtime.dir/collectives.cpp.o"
  "CMakeFiles/spec_runtime.dir/collectives.cpp.o.d"
  "CMakeFiles/spec_runtime.dir/phase_timer.cpp.o"
  "CMakeFiles/spec_runtime.dir/phase_timer.cpp.o.d"
  "CMakeFiles/spec_runtime.dir/sim_comm.cpp.o"
  "CMakeFiles/spec_runtime.dir/sim_comm.cpp.o.d"
  "CMakeFiles/spec_runtime.dir/thread_comm.cpp.o"
  "CMakeFiles/spec_runtime.dir/thread_comm.cpp.o.d"
  "libspec_runtime.a"
  "libspec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/spec_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/spec_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "src/runtime/CMakeFiles/spec_runtime.dir/collectives.cpp.o" "gcc" "src/runtime/CMakeFiles/spec_runtime.dir/collectives.cpp.o.d"
  "/root/repo/src/runtime/phase_timer.cpp" "src/runtime/CMakeFiles/spec_runtime.dir/phase_timer.cpp.o" "gcc" "src/runtime/CMakeFiles/spec_runtime.dir/phase_timer.cpp.o.d"
  "/root/repo/src/runtime/sim_comm.cpp" "src/runtime/CMakeFiles/spec_runtime.dir/sim_comm.cpp.o" "gcc" "src/runtime/CMakeFiles/spec_runtime.dir/sim_comm.cpp.o.d"
  "/root/repo/src/runtime/thread_comm.cpp" "src/runtime/CMakeFiles/spec_runtime.dir/thread_comm.cpp.o" "gcc" "src/runtime/CMakeFiles/spec_runtime.dir/thread_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/spec_des.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/spec_apps.dir/heat.cpp.o"
  "CMakeFiles/spec_apps.dir/heat.cpp.o.d"
  "CMakeFiles/spec_apps.dir/jacobi.cpp.o"
  "CMakeFiles/spec_apps.dir/jacobi.cpp.o.d"
  "libspec_apps.a"
  "libspec_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libspec_apps.a"
)

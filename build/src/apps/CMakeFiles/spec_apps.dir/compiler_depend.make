# Empty compiler generated dependencies file for spec_apps.
# This may be replaced when dependencies are built.

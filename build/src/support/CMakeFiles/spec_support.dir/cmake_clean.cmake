file(REMOVE_RECURSE
  "CMakeFiles/spec_support.dir/cli.cpp.o"
  "CMakeFiles/spec_support.dir/cli.cpp.o.d"
  "CMakeFiles/spec_support.dir/log.cpp.o"
  "CMakeFiles/spec_support.dir/log.cpp.o.d"
  "CMakeFiles/spec_support.dir/rng.cpp.o"
  "CMakeFiles/spec_support.dir/rng.cpp.o.d"
  "CMakeFiles/spec_support.dir/stats.cpp.o"
  "CMakeFiles/spec_support.dir/stats.cpp.o.d"
  "CMakeFiles/spec_support.dir/table.cpp.o"
  "CMakeFiles/spec_support.dir/table.cpp.o.d"
  "libspec_support.a"
  "libspec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

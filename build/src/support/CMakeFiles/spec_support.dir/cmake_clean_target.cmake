file(REMOVE_RECURSE
  "libspec_support.a"
)

# Empty compiler generated dependencies file for spec_support.
# This may be replaced when dependencies are built.

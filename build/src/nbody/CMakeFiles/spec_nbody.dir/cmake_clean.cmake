file(REMOVE_RECURSE
  "CMakeFiles/spec_nbody.dir/app.cpp.o"
  "CMakeFiles/spec_nbody.dir/app.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/baseline.cpp.o"
  "CMakeFiles/spec_nbody.dir/baseline.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/energy.cpp.o"
  "CMakeFiles/spec_nbody.dir/energy.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/forces.cpp.o"
  "CMakeFiles/spec_nbody.dir/forces.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/init.cpp.o"
  "CMakeFiles/spec_nbody.dir/init.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/scenario.cpp.o"
  "CMakeFiles/spec_nbody.dir/scenario.cpp.o.d"
  "CMakeFiles/spec_nbody.dir/serial.cpp.o"
  "CMakeFiles/spec_nbody.dir/serial.cpp.o.d"
  "libspec_nbody.a"
  "libspec_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spec_nbody.
# This may be replaced when dependencies are built.

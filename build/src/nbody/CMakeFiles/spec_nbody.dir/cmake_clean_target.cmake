file(REMOVE_RECURSE
  "libspec_nbody.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nbody/app.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/app.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/app.cpp.o.d"
  "/root/repo/src/nbody/baseline.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/baseline.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/baseline.cpp.o.d"
  "/root/repo/src/nbody/energy.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/energy.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/energy.cpp.o.d"
  "/root/repo/src/nbody/forces.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/forces.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/forces.cpp.o.d"
  "/root/repo/src/nbody/init.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/init.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/init.cpp.o.d"
  "/root/repo/src/nbody/scenario.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/scenario.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/scenario.cpp.o.d"
  "/root/repo/src/nbody/serial.cpp" "src/nbody/CMakeFiles/spec_nbody.dir/serial.cpp.o" "gcc" "src/nbody/CMakeFiles/spec_nbody.dir/serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/spec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/spec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spec_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/spec_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libspec_core.a"
)

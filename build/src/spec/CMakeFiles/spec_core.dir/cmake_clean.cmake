file(REMOVE_RECURSE
  "CMakeFiles/spec_core.dir/adaptive.cpp.o"
  "CMakeFiles/spec_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/spec_core.dir/engine.cpp.o"
  "CMakeFiles/spec_core.dir/engine.cpp.o.d"
  "CMakeFiles/spec_core.dir/speculator.cpp.o"
  "CMakeFiles/spec_core.dir/speculator.cpp.o.d"
  "libspec_core.a"
  "libspec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

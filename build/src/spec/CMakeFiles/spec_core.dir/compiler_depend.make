# Empty compiler generated dependencies file for spec_core.
# This may be replaced when dependencies are built.

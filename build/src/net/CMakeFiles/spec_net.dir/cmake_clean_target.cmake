file(REMOVE_RECURSE
  "libspec_net.a"
)

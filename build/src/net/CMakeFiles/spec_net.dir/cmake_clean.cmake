file(REMOVE_RECURSE
  "CMakeFiles/spec_net.dir/channel.cpp.o"
  "CMakeFiles/spec_net.dir/channel.cpp.o.d"
  "CMakeFiles/spec_net.dir/latency.cpp.o"
  "CMakeFiles/spec_net.dir/latency.cpp.o.d"
  "libspec_net.a"
  "libspec_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spec_net.
# This may be replaced when dependencies are built.

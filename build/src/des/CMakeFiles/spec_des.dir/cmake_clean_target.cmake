file(REMOVE_RECURSE
  "libspec_des.a"
)

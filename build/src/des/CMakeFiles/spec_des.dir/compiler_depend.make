# Empty compiler generated dependencies file for spec_des.
# This may be replaced when dependencies are built.

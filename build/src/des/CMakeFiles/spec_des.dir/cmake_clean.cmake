file(REMOVE_RECURSE
  "CMakeFiles/spec_des.dir/kernel.cpp.o"
  "CMakeFiles/spec_des.dir/kernel.cpp.o.d"
  "CMakeFiles/spec_des.dir/process.cpp.o"
  "CMakeFiles/spec_des.dir/process.cpp.o.d"
  "CMakeFiles/spec_des.dir/resource.cpp.o"
  "CMakeFiles/spec_des.dir/resource.cpp.o.d"
  "CMakeFiles/spec_des.dir/trace.cpp.o"
  "CMakeFiles/spec_des.dir/trace.cpp.o.d"
  "libspec_des.a"
  "libspec_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

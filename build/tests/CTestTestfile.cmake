# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_nbody[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")

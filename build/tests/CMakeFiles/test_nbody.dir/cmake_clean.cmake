file(REMOVE_RECURSE
  "CMakeFiles/test_nbody.dir/nbody/test_app.cpp.o"
  "CMakeFiles/test_nbody.dir/nbody/test_app.cpp.o.d"
  "CMakeFiles/test_nbody.dir/nbody/test_energy.cpp.o"
  "CMakeFiles/test_nbody.dir/nbody/test_energy.cpp.o.d"
  "CMakeFiles/test_nbody.dir/nbody/test_forces.cpp.o"
  "CMakeFiles/test_nbody.dir/nbody/test_forces.cpp.o.d"
  "CMakeFiles/test_nbody.dir/nbody/test_init.cpp.o"
  "CMakeFiles/test_nbody.dir/nbody/test_init.cpp.o.d"
  "CMakeFiles/test_nbody.dir/nbody/test_serial.cpp.o"
  "CMakeFiles/test_nbody.dir/nbody/test_serial.cpp.o.d"
  "test_nbody"
  "test_nbody.pdb"
  "test_nbody[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

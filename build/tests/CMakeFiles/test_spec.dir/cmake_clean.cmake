file(REMOVE_RECURSE
  "CMakeFiles/test_spec.dir/spec/test_engine.cpp.o"
  "CMakeFiles/test_spec.dir/spec/test_engine.cpp.o.d"
  "CMakeFiles/test_spec.dir/spec/test_history.cpp.o"
  "CMakeFiles/test_spec.dir/spec/test_history.cpp.o.d"
  "CMakeFiles/test_spec.dir/spec/test_speculator.cpp.o"
  "CMakeFiles/test_spec.dir/spec/test_speculator.cpp.o.d"
  "test_spec"
  "test_spec.pdb"
  "test_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

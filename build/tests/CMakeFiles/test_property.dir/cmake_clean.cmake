file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_cross_backend.cpp.o"
  "CMakeFiles/test_property.dir/property/test_cross_backend.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_engine_sweep.cpp.o"
  "CMakeFiles/test_property.dir/property/test_engine_sweep.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_nbody_sweep.cpp.o"
  "CMakeFiles/test_property.dir/property/test_nbody_sweep.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_trace_invariants.cpp.o"
  "CMakeFiles/test_property.dir/property/test_trace_invariants.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

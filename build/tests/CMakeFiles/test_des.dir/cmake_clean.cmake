file(REMOVE_RECURSE
  "CMakeFiles/test_des.dir/des/test_kernel.cpp.o"
  "CMakeFiles/test_des.dir/des/test_kernel.cpp.o.d"
  "CMakeFiles/test_des.dir/des/test_process.cpp.o"
  "CMakeFiles/test_des.dir/des/test_process.cpp.o.d"
  "CMakeFiles/test_des.dir/des/test_resource.cpp.o"
  "CMakeFiles/test_des.dir/des/test_resource.cpp.o.d"
  "CMakeFiles/test_des.dir/des/test_trace.cpp.o"
  "CMakeFiles/test_des.dir/des/test_trace.cpp.o.d"
  "test_des"
  "test_des.pdb"
  "test_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

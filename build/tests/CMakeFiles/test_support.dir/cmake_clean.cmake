file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/test_cli.cpp.o"
  "CMakeFiles/test_support.dir/support/test_cli.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_ring_buffer.cpp.o"
  "CMakeFiles/test_support.dir/support/test_ring_buffer.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_stats.cpp.o"
  "CMakeFiles/test_support.dir/support/test_stats.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_table.cpp.o"
  "CMakeFiles/test_support.dir/support/test_table.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_vec3.cpp.o"
  "CMakeFiles/test_support.dir/support/test_vec3.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

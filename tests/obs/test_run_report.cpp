// RunReport: schema stability, round-trip fidelity, and the guarantee that
// its phase arithmetic matches the ASCII printouts (sum over ranks divided
// by ranks * iterations).
#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "runtime/phase_timer.hpp"
#include "spec/stats.hpp"

namespace specomp::obs {
namespace {

RunReport make_report() {
  RunReport report;
  report.binary = "test_binary";
  report.backend = "sim";
  report.algorithm = "speculative";
  report.speculator = "kinematic";
  report.forward_window = 2;
  report.theta = 0.01;
  report.iterations = 10;
  report.ranks = 4;
  report.cluster_ops_per_sec = {4e6, 3e6, 2e6, 1e6};
  report.makespan_seconds = 123.5;
  report.phases = {{"compute", 40.0, 1.0}, {"communicate", 8.0, 0.2}};
  report.blocks_received_in_time = 11;
  report.blocks_speculated = 29;
  report.checks = 29;
  report.failures = 3;
  report.incremental_corrections = 2;
  report.replayed_iterations = 1;
  report.failure_fraction = 3.0 / 29.0;
  report.error_mean = 0.004;
  report.error_max = 0.02;
  report.max_window_used = 2;
  report.messages = 360;
  report.bytes = 86400;
  report.mean_delay_seconds = 5.8;
  report.extra.set("note", Json("round-trip"));
  return report;
}

TEST(RunReport, SchemaFieldIsStable) {
  const Json doc = make_report().to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "specomp.run_report.v2");
  EXPECT_EQ(doc.at("schema").as_string(), kRunReportSchema);
  EXPECT_EQ(doc.at("schema_version").as_int(), kRunReportVersion);
  // The top-level section layout is part of the schema contract.
  EXPECT_NE(doc.find("config"), nullptr);
  EXPECT_NE(doc.find("timing"), nullptr);
  EXPECT_NE(doc.find("speculation"), nullptr);
  EXPECT_NE(doc.find("network"), nullptr);
}

TEST(RunReport, RoundTripsThroughSerializedJson) {
  const RunReport original = make_report();
  const RunReport restored =
      RunReport::from_json(Json::parse(original.to_json().dump(2)));

  EXPECT_EQ(restored.binary, original.binary);
  EXPECT_EQ(restored.backend, original.backend);
  EXPECT_EQ(restored.algorithm, original.algorithm);
  EXPECT_EQ(restored.speculator, original.speculator);
  EXPECT_EQ(restored.forward_window, original.forward_window);
  EXPECT_EQ(restored.theta, original.theta);
  EXPECT_EQ(restored.iterations, original.iterations);
  EXPECT_EQ(restored.ranks, original.ranks);
  EXPECT_EQ(restored.cluster_ops_per_sec, original.cluster_ops_per_sec);
  EXPECT_EQ(restored.makespan_seconds, original.makespan_seconds);
  ASSERT_EQ(restored.phases.size(), original.phases.size());
  for (std::size_t i = 0; i < original.phases.size(); ++i) {
    EXPECT_EQ(restored.phases[i].phase, original.phases[i].phase);
    EXPECT_EQ(restored.phases[i].total_seconds, original.phases[i].total_seconds);
    EXPECT_EQ(restored.phases[i].mean_per_iteration_seconds,
              original.phases[i].mean_per_iteration_seconds);
  }
  EXPECT_EQ(restored.blocks_received_in_time, original.blocks_received_in_time);
  EXPECT_EQ(restored.blocks_speculated, original.blocks_speculated);
  EXPECT_EQ(restored.checks, original.checks);
  EXPECT_EQ(restored.failures, original.failures);
  EXPECT_EQ(restored.incremental_corrections, original.incremental_corrections);
  EXPECT_EQ(restored.replayed_iterations, original.replayed_iterations);
  EXPECT_EQ(restored.failure_fraction, original.failure_fraction);
  EXPECT_EQ(restored.error_mean, original.error_mean);
  EXPECT_EQ(restored.error_max, original.error_max);
  EXPECT_EQ(restored.max_window_used, original.max_window_used);
  EXPECT_EQ(restored.messages, original.messages);
  EXPECT_EQ(restored.bytes, original.bytes);
  EXPECT_EQ(restored.mean_delay_seconds, original.mean_delay_seconds);
  EXPECT_EQ(restored.extra.at("note").as_string(), "round-trip");

  // And the round trip is idempotent at the document level.
  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
}

TEST(RunReport, FromJsonRejectsWrongSchema) {
  Json doc = make_report().to_json();
  doc.set("schema", Json("something.else.v9"));
  EXPECT_THROW(RunReport::from_json(doc), std::runtime_error);
}

TEST(RunReport, FromJsonStillAcceptsV1Reports) {
  // Artifacts written before schema_version existed must keep loading.
  Json doc = make_report().to_json();
  doc.set("schema", Json(kRunReportSchemaV1));
  const RunReport restored = RunReport::from_json(doc);
  EXPECT_EQ(restored.binary, make_report().binary);
}

TEST(RunReport, FromJsonRejectsNewerVersionWithClearMessage) {
  Json doc = make_report().to_json();
  doc.set("schema_version", Json(kRunReportVersion + 1));
  try {
    RunReport::from_json(doc);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos)
        << e.what();
  }
}

TEST(RunReport, DistributionsRoundTrip) {
  RunReport report = make_report();
  std::vector<NamedDist> dists(1);
  dists[0].name = "link_delay.0->1";
  for (int i = 1; i <= 100; ++i) dists[0].sketch.observe(i * 0.1);
  report.fill_dists(dists);
  ASSERT_EQ(report.distributions.size(), 1u);
  EXPECT_EQ(report.distributions[0].count, 100u);

  const RunReport restored =
      RunReport::from_json(Json::parse(report.to_json().dump(2)));
  ASSERT_EQ(restored.distributions.size(), 1u);
  EXPECT_EQ(restored.distributions[0].name, "link_delay.0->1");
  EXPECT_EQ(restored.distributions[0].count, 100u);
  EXPECT_NEAR(restored.distributions[0].p50, 5.05, 0.5);
}

TEST(RunReport, FillPhasesMatchesAsciiArithmetic) {
  // Two ranks, three iterations: compute 6 s total on rank 0 and 3 s on
  // rank 1 -> mean per iteration = 9 / (2 * 3) = 1.5 s, exactly what the
  // examples print as "mean over ranks".
  runtime::PhaseTimer t0;
  t0.add(runtime::Phase::Compute, des::SimTime::seconds(6.0));
  t0.add(runtime::Phase::Communicate, des::SimTime::seconds(1.0));
  runtime::PhaseTimer t1;
  t1.add(runtime::Phase::Compute, des::SimTime::seconds(3.0));

  RunReport report;
  report.fill_phases({t0, t1}, /*run_iterations=*/3);
  EXPECT_EQ(report.ranks, 2u);
  EXPECT_DOUBLE_EQ(report.phase_mean_per_iteration("compute"), 1.5);
  EXPECT_DOUBLE_EQ(report.phase_mean_per_iteration("communicate"), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(report.phase_mean_per_iteration("correct"), 0.0);

  double compute_total = 0.0;
  for (const auto& row : report.phases)
    if (row.phase == "compute") compute_total = row.total_seconds;
  EXPECT_DOUBLE_EQ(compute_total, 9.0);
}

TEST(RunReport, FillSpecCopiesCountersAndErrorStats) {
  spec::SpecStats stats;
  stats.blocks_speculated = 20;
  stats.blocks_received_in_time = 5;
  stats.checks = 20;
  stats.failures = 4;
  stats.incremental_corrections = 3;
  stats.replayed_iterations = 2;
  stats.max_window_used = 2;
  stats.error.add(0.01);
  stats.error.add(0.03);

  RunReport report;
  report.fill_spec(stats);
  EXPECT_EQ(report.blocks_speculated, 20u);
  EXPECT_EQ(report.failures, 4u);
  EXPECT_DOUBLE_EQ(report.failure_fraction, 0.2);
  EXPECT_DOUBLE_EQ(report.error_mean, 0.02);
  EXPECT_DOUBLE_EQ(report.error_max, 0.03);
  EXPECT_EQ(report.max_window_used, 2);
}

TEST(RunReport, WriteProducesParsableFile) {
  const std::string path = ::testing::TempDir() + "run_report_test.json";
  ASSERT_TRUE(make_report().write(path));
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  const RunReport restored = RunReport::from_json(Json::parse(text.str()));
  EXPECT_EQ(restored.binary, "test_binary");
}

}  // namespace
}  // namespace specomp::obs

// The observability layer's JSON model: stable emission and parse-back.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace specomp::obs {
namespace {

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc;
  doc.set("zeta", Json(1));
  doc.set("alpha", Json(2));
  doc.set("mid", Json(3));
  EXPECT_EQ(doc.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(Json, SetOverwritesInPlace) {
  Json doc;
  doc.set("a", Json(1));
  doc.set("b", Json(2));
  doc.set("a", Json(9));
  EXPECT_EQ(doc.dump(), R"({"a":9,"b":2})");
}

TEST(Json, NumbersRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
  // A value needing full precision survives a dump/parse cycle.
  const double pi = 3.141592653589793;
  const Json parsed = Json::parse(json_number(pi));
  EXPECT_EQ(parsed.as_double(), pi);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json_quote("plain"), R"("plain")");
  EXPECT_EQ(json_quote("a\"b\\c"), R"("a\"b\\c")");
  EXPECT_EQ(json_quote("tab\there"), R"("tab\there")");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, ParseRoundTripsNestedDocument) {
  const std::string text =
      R"({"name":"run","ok":true,"none":null,"vals":[1,2.5,-3],)"
      R"("nested":{"deep":[{"x":1}]}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("name").as_string(), "run");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  ASSERT_EQ(doc.at("vals").as_array().size(), 3u);
  EXPECT_EQ(doc.at("vals").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(doc.at("nested").at("deep").as_array()[0].at("x").as_int(), 1);
  // Emission is canonical: re-parsing the dump gives the same dump.
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, ParseHandlesEscapesAndUnicode) {
  const Json doc = Json::parse(R"("a\n\tAé")");
  EXPECT_EQ(doc.as_string(), "a\n\tA\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("'single'"), std::runtime_error);
}

TEST(Json, PrettyPrintIndents) {
  Json doc;
  doc.set("a", Json(1));
  Json arr = Json::array();
  arr.push_back(Json(2));
  doc.set("b", arr);
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, FindDistinguishesAbsentFromNull) {
  Json doc;
  doc.set("present", Json(nullptr));
  EXPECT_NE(doc.find("present"), nullptr);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::runtime_error);
}

}  // namespace
}  // namespace specomp::obs

// MetricsRegistry semantics: the disabled-by-default zero-cost contract,
// concurrent updates from real threads (the ThreadCommunicator backend), and
// the byte-count bookkeeping of the simulated backend.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"

namespace specomp::obs {
namespace {

/// Restores the disabled default and clears the registry around each test so
/// cases compose regardless of execution order.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(false);
    metrics().reset();
  }
  void TearDown() override {
    set_metrics_enabled(false);
    metrics().reset();
  }
};

TEST_F(MetricsTest, DisabledRegistryHandsOutNullRefs) {
  const CounterRef c = metrics().counter("off.counter");
  const GaugeRef g = metrics().gauge("off.gauge");
  const HistogramRef h = metrics().histogram("off.hist", 0.0, 1.0, 4);
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  // Updates through null refs are harmless no-ops and register nothing.
  c.inc();
  g.set(2.0);
  h.observe(0.5);
  EXPECT_EQ(metrics().counter_value("off.counter"), 0u);
  EXPECT_EQ(metrics().to_json().at("counters").as_object().size(), 0u);
}

TEST_F(MetricsTest, EnabledRefsShareTheNamedInstrument) {
  set_metrics_enabled(true);
  const CounterRef a = metrics().counter("shared");
  const CounterRef b = metrics().counter("shared");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(metrics().counter_value("shared"), 5u);
}

TEST_F(MetricsTest, HistogramBucketsSaturateAtTheEdges) {
  set_metrics_enabled(true);
  const HistogramRef h = metrics().histogram("lat", 0.0, 1.0, 4);
  h.observe(-5.0);   // below range -> first bucket
  h.observe(0.1);    // first bucket
  h.observe(0.6);    // third bucket
  h.observe(99.0);   // above range -> last bucket
  const Json snapshot = metrics().to_json();
  const Json& hist = snapshot.at("histograms").at("lat");
  EXPECT_EQ(hist.at("total").as_uint(), 4u);
  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].at("count").as_uint(), 2u);
  EXPECT_EQ(buckets[1].at("count").as_uint(), 0u);
  EXPECT_EQ(buckets[2].at("count").as_uint(), 1u);
  EXPECT_EQ(buckets[3].at("count").as_uint(), 1u);
}

TEST_F(MetricsTest, CountersSurviveConcurrentBumpsFromPlainThreads) {
  set_metrics_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kBumps = 10000;
  const CounterRef c = metrics().counter("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([c] {
      for (int i = 0; i < kBumps; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(metrics().counter_value("contended"),
            static_cast<std::uint64_t>(kThreads) * kBumps);
}

TEST_F(MetricsTest, ThreadCommunicatorRanksBumpSharedCommCounters) {
  set_metrics_enabled(true);
  constexpr int kRanks = 4;
  constexpr int kRounds = 25;
  constexpr std::size_t kPayload = 48;

  runtime::ThreadConfig config;
  config.cluster = runtime::Cluster::homogeneous(kRanks, 1e9);
  runtime::run_threaded(config, [&](runtime::Communicator& comm) {
    // All-to-all rounds: every rank sends to and receives from every peer
    // concurrently, all bumping the same comm.* counters.
    for (int round = 0; round < kRounds; ++round) {
      for (int peer = 0; peer < comm.size(); ++peer) {
        if (peer == comm.rank()) continue;
        comm.send(peer, /*tag=*/round, std::vector<std::byte>(kPayload));
      }
      for (int peer = 0; peer < comm.size(); ++peer) {
        if (peer == comm.rank()) continue;
        (void)comm.recv(peer, /*tag=*/round);
      }
    }
  });

  const auto messages =
      static_cast<std::uint64_t>(kRanks) * (kRanks - 1) * kRounds;
  EXPECT_EQ(metrics().counter_value("comm.messages_sent"), messages);
  EXPECT_EQ(metrics().counter_value("comm.messages_received"), messages);
  EXPECT_EQ(metrics().counter_value("comm.bytes_sent"), messages * kPayload);
  EXPECT_EQ(metrics().counter_value("comm.bytes_received"),
            messages * kPayload);
}

TEST_F(MetricsTest, SimCommunicatorCountsEveryByteSentAndReceived) {
  set_metrics_enabled(true);
  constexpr std::size_t kPayload = 96;
  constexpr int kMessages = 7;

  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(2, 1e9);
  runtime::run_simulated(config, [&](runtime::Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i)
        comm.send(1, /*tag=*/i, std::vector<std::byte>(kPayload));
    } else {
      for (int i = 0; i < kMessages; ++i) (void)comm.recv(0, /*tag=*/i);
    }
  });

  EXPECT_EQ(metrics().counter_value("comm.messages_sent"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(metrics().counter_value("comm.bytes_sent"), kMessages * kPayload);
  EXPECT_EQ(metrics().counter_value("comm.messages_received"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(metrics().counter_value("comm.bytes_received"),
            kMessages * kPayload);
  // The receiver blocked at least once, so the wait histogram saw samples.
  EXPECT_EQ(metrics()
                .to_json()
                .at("histograms")
                .at("comm.recv_wait_seconds")
                .at("total")
                .as_uint(),
            static_cast<std::uint64_t>(kMessages));
}

TEST_F(MetricsTest, RefsFetchedWhileDisabledStayNullAfterEnabling) {
  const CounterRef before = metrics().counter("latched");
  set_metrics_enabled(true);
  const CounterRef after = metrics().counter("latched");
  before.inc();  // no-op: the ref latched the disabled state
  after.inc();
  EXPECT_EQ(metrics().counter_value("latched"), 1u);
}

}  // namespace
}  // namespace specomp::obs

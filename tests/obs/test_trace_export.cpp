// Trace exporters: the Chrome trace-event document must be well-formed JSON
// with one named track per rank, and the JSONL form one object per line.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "des/trace.hpp"
#include "obs/json.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim_comm.hpp"

namespace specomp::obs {
namespace {

des::Trace make_trace() {
  des::Trace trace;
  trace.add_span(0, des::SpanKind::Compute, des::SimTime::seconds(0.0),
                 des::SimTime::seconds(1.0));
  trace.add_span(1, des::SpanKind::Wait, des::SimTime::seconds(0.5),
                 des::SimTime::seconds(2.0), "blocked on rank 0");
  trace.add_span(0, des::SpanKind::SpeculativeCompute,
                 des::SimTime::seconds(1.0), des::SimTime::seconds(1.5));
  trace.add_event(1, des::SimTime::seconds(2.0), "rollback");
  return trace;
}

TEST(ChromeTrace, ParsesBackWithOneNamedTrackPerRank) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os, /*lanes=*/2);

  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();

  std::vector<std::string> tracks;
  for (const auto& e : events) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name") {
      tracks.push_back(e.at("args").at("name").as_string());
    }
  }
  EXPECT_EQ(tracks, (std::vector<std::string>{"rank 0", "rank 1"}));
}

TEST(ChromeTrace, SpansBecomeCompleteEventsInMicroseconds) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os);

  const Json doc = Json::parse(os.str());
  int complete = 0;
  bool found_wait = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    ++complete;
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    if (e.at("name").as_string() == std::string(des::span_name(des::SpanKind::Wait))) {
      found_wait = true;
      EXPECT_EQ(e.at("ts").as_double(), 0.5e6);
      EXPECT_EQ(e.at("dur").as_double(), 1.5e6);
      EXPECT_EQ(e.at("tid").as_int(), 1);
      EXPECT_EQ(e.at("args").at("label").as_string(), "blocked on rank 0");
    }
  }
  EXPECT_EQ(complete, 3);
  EXPECT_TRUE(found_wait);
}

TEST(ChromeTrace, PointEventsBecomeInstants) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os);
  const Json doc = Json::parse(os.str());
  bool found = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "i") continue;
    found = true;
    EXPECT_EQ(e.at("name").as_string(), "rollback");
    EXPECT_EQ(e.at("ts").as_double(), 2.0e6);
    EXPECT_EQ(e.at("s").as_string(), "t");
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, LanesInferredFromTraceWhenUnspecified) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os, /*lanes=*/0);
  const Json doc = Json::parse(os.str());
  int tracks = 0;
  for (const auto& e : doc.at("traceEvents").as_array())
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name")
      ++tracks;
  EXPECT_EQ(tracks, 2);  // max lane is 1
}

TEST(ChromeTrace, EmptyTraceStillWellFormed) {
  std::ostringstream os;
  write_chrome_trace(des::Trace{}, os);
  const Json doc = Json::parse(os.str());
  for (const auto& e : doc.at("traceEvents").as_array())
    EXPECT_EQ(e.at("ph").as_string(), "M");
}

TEST(JsonlTrace, OneParsableObjectPerLine) {
  std::ostringstream os;
  write_trace_jsonl(make_trace(), os);

  std::istringstream lines(os.str());
  std::string line;
  int meta = 0;
  int spans = 0;
  int events = 0;
  while (std::getline(lines, line)) {
    const Json doc = Json::parse(line);
    const std::string& type = doc.at("type").as_string();
    if (type == "meta") {
      ++meta;
    } else if (type == "span") {
      ++spans;
      EXPECT_LE(doc.at("begin_s").as_double(), doc.at("end_s").as_double());
    } else {
      EXPECT_EQ(type, "event");
      ++events;
      EXPECT_EQ(doc.at("label").as_string(), "rollback");
    }
  }
  EXPECT_EQ(meta, 1);
  EXPECT_EQ(spans, 3);
  EXPECT_EQ(events, 1);
}

TEST(JsonlTrace, MetaLineComesFirstAndCarriesTheSchema) {
  std::ostringstream os;
  write_trace_jsonl(make_trace(), os, /*lanes=*/2);
  std::istringstream lines(os.str());
  std::string first;
  ASSERT_TRUE(std::getline(lines, first));
  const Json doc = Json::parse(first);
  EXPECT_EQ(doc.at("type").as_string(), "meta");
  EXPECT_EQ(doc.at("schema").as_string(), kTraceSchema);
  EXPECT_EQ(doc.at("schema_version").as_int(), kTraceSchemaVersion);
  EXPECT_EQ(doc.at("lanes").as_int(), 2);
}

TEST(JsonlTrace, EmptyTraceIsJustTheMetaLine) {
  // A run that recorded nothing still produces a valid, versioned file.
  std::ostringstream os;
  write_trace_jsonl(des::Trace{}, os);
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(Json::parse(line).at("type").as_string(), "meta");
  }
  EXPECT_EQ(count, 1);
}

TEST(JsonlTrace, CausalEventsCarryEdgeIdentity) {
  des::Trace trace;
  des::CausalEvent send;
  send.lane = 0;
  send.kind = des::CausalKind::Send;
  send.at = des::SimTime::seconds(1.0);
  send.peer = 1;
  send.tag = 7;
  send.seq = 42;
  trace.add_causal(send);
  des::CausalEvent recv = send;
  recv.lane = 1;
  recv.kind = des::CausalKind::Recv;
  recv.at = des::SimTime::seconds(2.0);
  recv.peer = 0;
  recv.t2 = des::SimTime::seconds(1.9);  // delivery vs consumption
  trace.add_causal(recv);

  std::ostringstream os;
  write_trace_jsonl(trace, os);
  std::istringstream lines(os.str());
  std::string line;
  int causal = 0;
  while (std::getline(lines, line)) {
    const Json doc = Json::parse(line);
    if (doc.at("type").as_string() != "causal") continue;
    ++causal;
    EXPECT_EQ(doc.at("tag").as_int(), 7);
    EXPECT_EQ(doc.at("seq").as_int(), 42);
    if (doc.at("kind").as_string() == "recv")
      EXPECT_DOUBLE_EQ(doc.at("t2_s").as_double(), 1.9);
  }
  EXPECT_EQ(causal, 2);
}

TEST(JsonlTrace, DegradedOpenAtShutdownStillExports) {
  // A run killed while degraded has an enter with no exit; the exporter
  // must not invent a closing edge.
  des::Trace trace;
  des::CausalEvent enter;
  enter.lane = 2;
  enter.kind = des::CausalKind::DegradedEnter;
  enter.at = des::SimTime::seconds(3.0);
  enter.peer = 0;
  trace.add_causal(enter);

  std::ostringstream os;
  write_trace_jsonl(trace, os);
  int enters = 0;
  int exits = 0;
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json doc = Json::parse(line);
    if (doc.at("type").as_string() != "causal") continue;
    if (doc.at("kind").as_string() == "degraded-enter") ++enters;
    if (doc.at("kind").as_string() == "degraded-exit") ++exits;
  }
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 0);
}

TEST(JsonlTrace, NorecoveryDupFaultsShowAsDuplicateRecvEdges) {
  // With dup:1.0,norecovery the application consumes the same (src, tag,
  // seq) twice; the trace must show both consumptions so offline tools can
  // count at-least-once deliveries rather than silently merging them.
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(2, 1e6);
  config.channel.bandwidth_bytes_per_sec = 1e6;
  config.record_trace = true;
  runtime::FaultPlanConfig fault;
  std::string error;
  ASSERT_TRUE(runtime::parse_fault_plan("dup:1.0,norecovery", fault, error))
      << error;
  config.fault = std::make_shared<const runtime::FaultPlan>(std::move(fault));

  const runtime::SimResult result =
      runtime::run_simulated(config, [](runtime::Communicator& comm) {
        if (comm.rank() == 0) {
          comm.send_doubles(1, 7, std::vector<double>{42.0});
        } else {
          (void)comm.recv_doubles(0, 7);
          (void)comm.recv_doubles(0, 7);  // the duplicate
        }
      });

  std::ostringstream os;
  write_trace_jsonl(result.trace, os, 2);
  std::map<std::tuple<int, int, int>, int> recvs;  // (src, tag, seq) -> n
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json doc = Json::parse(line);
    if (doc.at("type").as_string() != "causal") continue;
    if (doc.at("kind").as_string() != "recv") continue;
    ++recvs[{static_cast<int>(doc.at("peer").as_int()),
             static_cast<int>(doc.at("tag").as_int()),
             static_cast<int>(doc.at("seq").as_int())}];
  }
  ASSERT_EQ(recvs.size(), 1u);
  EXPECT_EQ(recvs.begin()->second, 2);
}

TEST(TraceFile, ExtensionSelectsFormat) {
  const des::Trace trace = make_trace();
  const std::string chrome_path = ::testing::TempDir() + "trace_export.json";
  const std::string jsonl_path = ::testing::TempDir() + "trace_export.jsonl";
  ASSERT_TRUE(write_trace_file(trace, chrome_path));
  ASSERT_TRUE(write_trace_file(trace, jsonl_path));

  std::ifstream chrome(chrome_path);
  std::stringstream chrome_text;
  chrome_text << chrome.rdbuf();
  EXPECT_TRUE(Json::parse(chrome_text.str()).find("traceEvents") != nullptr);

  std::ifstream jsonl(jsonl_path);
  std::string first;
  ASSERT_TRUE(std::getline(jsonl, first));
  EXPECT_EQ(Json::parse(first).at("type").as_string(), "meta");
}

TEST(TraceFile, UnwritablePathReportsFailure) {
  EXPECT_FALSE(write_trace_file(make_trace(), "/nonexistent-dir/t.json"));
}

}  // namespace
}  // namespace specomp::obs

// Trace exporters: the Chrome trace-event document must be well-formed JSON
// with one named track per rank, and the JSONL form one object per line.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "des/trace.hpp"
#include "obs/json.hpp"

namespace specomp::obs {
namespace {

des::Trace make_trace() {
  des::Trace trace;
  trace.add_span(0, des::SpanKind::Compute, des::SimTime::seconds(0.0),
                 des::SimTime::seconds(1.0));
  trace.add_span(1, des::SpanKind::Wait, des::SimTime::seconds(0.5),
                 des::SimTime::seconds(2.0), "blocked on rank 0");
  trace.add_span(0, des::SpanKind::SpeculativeCompute,
                 des::SimTime::seconds(1.0), des::SimTime::seconds(1.5));
  trace.add_event(1, des::SimTime::seconds(2.0), "rollback");
  return trace;
}

TEST(ChromeTrace, ParsesBackWithOneNamedTrackPerRank) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os, /*lanes=*/2);

  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();

  std::vector<std::string> tracks;
  for (const auto& e : events) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name") {
      tracks.push_back(e.at("args").at("name").as_string());
    }
  }
  EXPECT_EQ(tracks, (std::vector<std::string>{"rank 0", "rank 1"}));
}

TEST(ChromeTrace, SpansBecomeCompleteEventsInMicroseconds) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os);

  const Json doc = Json::parse(os.str());
  int complete = 0;
  bool found_wait = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    ++complete;
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    if (e.at("name").as_string() == std::string(des::span_name(des::SpanKind::Wait))) {
      found_wait = true;
      EXPECT_EQ(e.at("ts").as_double(), 0.5e6);
      EXPECT_EQ(e.at("dur").as_double(), 1.5e6);
      EXPECT_EQ(e.at("tid").as_int(), 1);
      EXPECT_EQ(e.at("args").at("label").as_string(), "blocked on rank 0");
    }
  }
  EXPECT_EQ(complete, 3);
  EXPECT_TRUE(found_wait);
}

TEST(ChromeTrace, PointEventsBecomeInstants) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os);
  const Json doc = Json::parse(os.str());
  bool found = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "i") continue;
    found = true;
    EXPECT_EQ(e.at("name").as_string(), "rollback");
    EXPECT_EQ(e.at("ts").as_double(), 2.0e6);
    EXPECT_EQ(e.at("s").as_string(), "t");
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, LanesInferredFromTraceWhenUnspecified) {
  std::ostringstream os;
  write_chrome_trace(make_trace(), os, /*lanes=*/0);
  const Json doc = Json::parse(os.str());
  int tracks = 0;
  for (const auto& e : doc.at("traceEvents").as_array())
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name")
      ++tracks;
  EXPECT_EQ(tracks, 2);  // max lane is 1
}

TEST(ChromeTrace, EmptyTraceStillWellFormed) {
  std::ostringstream os;
  write_chrome_trace(des::Trace{}, os);
  const Json doc = Json::parse(os.str());
  for (const auto& e : doc.at("traceEvents").as_array())
    EXPECT_EQ(e.at("ph").as_string(), "M");
}

TEST(JsonlTrace, OneParsableObjectPerLine) {
  std::ostringstream os;
  write_trace_jsonl(make_trace(), os);

  std::istringstream lines(os.str());
  std::string line;
  int spans = 0;
  int events = 0;
  while (std::getline(lines, line)) {
    const Json doc = Json::parse(line);
    const std::string& type = doc.at("type").as_string();
    if (type == "span") {
      ++spans;
      EXPECT_LE(doc.at("begin_s").as_double(), doc.at("end_s").as_double());
    } else {
      EXPECT_EQ(type, "event");
      ++events;
      EXPECT_EQ(doc.at("label").as_string(), "rollback");
    }
  }
  EXPECT_EQ(spans, 3);
  EXPECT_EQ(events, 1);
}

TEST(TraceFile, ExtensionSelectsFormat) {
  const des::Trace trace = make_trace();
  const std::string chrome_path = ::testing::TempDir() + "trace_export.json";
  const std::string jsonl_path = ::testing::TempDir() + "trace_export.jsonl";
  ASSERT_TRUE(write_trace_file(trace, chrome_path));
  ASSERT_TRUE(write_trace_file(trace, jsonl_path));

  std::ifstream chrome(chrome_path);
  std::stringstream chrome_text;
  chrome_text << chrome.rdbuf();
  EXPECT_TRUE(Json::parse(chrome_text.str()).find("traceEvents") != nullptr);

  std::ifstream jsonl(jsonl_path);
  std::string first;
  ASSERT_TRUE(std::getline(jsonl, first));
  EXPECT_EQ(Json::parse(first).at("type").as_string(), "span");
}

TEST(TraceFile, UnwritablePathReportsFailure) {
  EXPECT_FALSE(write_trace_file(make_trace(), "/nonexistent-dir/t.json"));
}

}  // namespace
}  // namespace specomp::obs

// DistSketch: fixed-size streaming quantile estimation (extended P²).
// Exactness while the sample fits in the marker buffer, bounded error on
// long streams, and allocation-free steady state are the contract the
// per-link/per-rank distribution capture relies on.
#include "obs/dist_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace specomp::obs {
namespace {

TEST(DistSketch, EmptySketchIsInert) {
  const DistSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(DistSketch, ExactWhileSampleFitsTheMarkers) {
  DistSketch s;
  for (const double v : {5.0, 1.0, 3.0}) s.observe(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
}

TEST(DistSketch, TracksUniformQuantilesWithinTolerance) {
  DistSketch s;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (int i = 0; i < 20000; ++i) s.observe(uniform(rng));
  EXPECT_NEAR(s.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(s.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(s.quantile(0.99), 0.99, 0.01);
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(DistSketch, TracksSkewedDistribution) {
  // Exponential-ish delays: the shape the per-link sketches actually see.
  DistSketch s;
  std::mt19937_64 rng(7);
  std::exponential_distribution<double> exp_dist(1.0);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = exp_dist(rng);
    s.observe(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const auto exact = [&](double q) {
    return all[static_cast<std::size_t>(q * (all.size() - 1))];
  };
  EXPECT_NEAR(s.quantile(0.5), exact(0.5), 0.05);
  EXPECT_NEAR(s.quantile(0.9), exact(0.9), 0.15);
  EXPECT_NEAR(s.quantile(0.99), exact(0.99), 0.5);
}

TEST(DistSketch, ToJsonCarriesTheSummary) {
  DistSketch s;
  for (int i = 1; i <= 50; ++i) s.observe(static_cast<double>(i));
  const Json doc = s.to_json();
  EXPECT_EQ(doc.at("count").as_int(), 50);
  EXPECT_DOUBLE_EQ(doc.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("max").as_double(), 50.0);
  EXPECT_NEAR(doc.at("p50").as_double(), 25.5, 2.0);
  EXPECT_NEAR(doc.at("p99").as_double(), 49.5, 1.5);
}

TEST(DistSketch, DeterministicForSameStream) {
  DistSketch a;
  DistSketch b;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uniform(0.0, 10.0);
  std::vector<double> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(uniform(rng));
  for (const double v : stream) a.observe(v);
  for (const double v : stream) b.observe(v);
  EXPECT_EQ(a.quantile(0.9), b.quantile(0.9));
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

}  // namespace
}  // namespace specomp::obs

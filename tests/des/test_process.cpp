#include "des/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "des/kernel.hpp"

namespace specomp::des {
namespace {

TEST(Process, AdvanceMovesLocalTime) {
  Kernel kernel;
  double finish = -1.0;
  kernel.spawn("p", [&](Process& proc) {
    proc.advance(SimTime::seconds(2));
    proc.advance(SimTime::seconds(3));
    finish = proc.now().to_seconds();
  });
  kernel.run();
  EXPECT_DOUBLE_EQ(finish, 5.0);
}

TEST(Process, StartTimeRespected) {
  Kernel kernel;
  double started = -1.0;
  kernel.spawn(
      "late", [&](Process& proc) { started = proc.now().to_seconds(); },
      SimTime::seconds(7));
  kernel.run();
  EXPECT_DOUBLE_EQ(started, 7.0);
}

TEST(Process, TwoProcessesInterleaveByTime) {
  Kernel kernel;
  std::vector<std::string> order;
  kernel.spawn("a", [&](Process& proc) {
    order.push_back("a0");
    proc.advance(SimTime::seconds(2));
    order.push_back("a2");
  });
  kernel.spawn("b", [&](Process& proc) {
    order.push_back("b0");
    proc.advance(SimTime::seconds(1));
    order.push_back("b1");
    proc.advance(SimTime::seconds(2));
    order.push_back("b3");
  });
  kernel.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "b1", "a2", "b3"}));
}

TEST(Process, WakeResumesSuspended) {
  Kernel kernel;
  double woken_at = -1.0;
  Process* sleeper = kernel.spawn("sleeper", [&](Process& proc) {
    proc.suspend();
    woken_at = proc.now().to_seconds();
  });
  kernel.spawn("waker", [&](Process& proc) {
    proc.advance(SimTime::seconds(4));
    sleeper->wake();
  });
  kernel.run();
  EXPECT_DOUBLE_EQ(woken_at, 4.0);
}

TEST(Process, WakePendingConsumedBySuspend) {
  Kernel kernel;
  double resumed_at = -1.0;
  Process* worker = kernel.spawn("worker", [&](Process& proc) {
    proc.advance(SimTime::seconds(5));  // wake arrives while computing
    proc.suspend();                     // must return immediately
    resumed_at = proc.now().to_seconds();
  });
  kernel.spawn("waker", [&](Process& proc) {
    proc.advance(SimTime::seconds(1));
    worker->wake();
  });
  kernel.run();
  EXPECT_DOUBLE_EQ(resumed_at, 5.0);
}

TEST(Process, YieldNowLetsQueuedEventsRun) {
  Kernel kernel;
  std::vector<int> order;
  kernel.spawn("a", [&](Process& proc) {
    order.push_back(1);
    proc.yield_now();
    order.push_back(3);
  });
  kernel.spawn("b", [&](Process&) { order.push_back(2); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Process, DeadlockDetected) {
  Kernel kernel;
  kernel.spawn("stuck", [](Process& proc) { proc.suspend(); });
  EXPECT_THROW(kernel.run(), std::runtime_error);
}

TEST(Process, SuspendedProcessTornDownCleanly) {
  // A kernel destroyed while a process is suspended must unwind the body
  // (running destructors) without hanging.
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Kernel kernel;
    kernel.spawn("stuck", [&](Process& proc) {
      const Sentinel sentinel{&destroyed};
      proc.suspend();
    });
    EXPECT_THROW(kernel.run(), std::runtime_error);
  }
  EXPECT_TRUE(destroyed);
}

TEST(Process, ManyProcessesDeterministicCompletion) {
  Kernel kernel;
  std::vector<int> finish_order;
  for (int i = 0; i < 20; ++i) {
    kernel.spawn("p" + std::to_string(i), [&finish_order, i](Process& proc) {
      proc.advance(SimTime::seconds((i * 7) % 5 + 1));
      finish_order.push_back(i);
    });
  }
  kernel.run();
  ASSERT_EQ(finish_order.size(), 20u);
  // Re-running an identical setup yields the identical order.
  Kernel kernel2;
  std::vector<int> finish_order2;
  for (int i = 0; i < 20; ++i) {
    kernel2.spawn("p" + std::to_string(i), [&finish_order2, i](Process& proc) {
      proc.advance(SimTime::seconds((i * 7) % 5 + 1));
      finish_order2.push_back(i);
    });
  }
  kernel2.run();
  EXPECT_EQ(finish_order, finish_order2);
}

TEST(Process, ZeroAdvanceKeepsTime) {
  Kernel kernel;
  double t = -1.0;
  kernel.spawn("p", [&](Process& proc) {
    proc.advance(SimTime::zero());
    t = proc.now().to_seconds();
  });
  kernel.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Process, StatesVisibleFromOutside) {
  Kernel kernel;
  Process* proc = kernel.spawn("p", [](Process& self) {
    self.advance(SimTime::seconds(1));
  });
  EXPECT_EQ(proc->state(), Process::State::NotStarted);
  kernel.run();
  EXPECT_EQ(proc->state(), Process::State::Finished);
}

}  // namespace
}  // namespace specomp::des

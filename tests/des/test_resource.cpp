#include "des/resource.hpp"

#include <gtest/gtest.h>

namespace specomp::des {
namespace {

TEST(Resource, IdleJobStartsImmediately) {
  Resource r("wire");
  const SimTime done = r.serve(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(done.to_seconds(), 3.0);
  EXPECT_EQ(r.jobs_served(), 1u);
  EXPECT_DOUBLE_EQ(r.total_wait().to_seconds(), 0.0);
}

TEST(Resource, FifoSerialisation) {
  Resource r("wire");
  const SimTime d1 = r.serve(SimTime::seconds(0), SimTime::seconds(5));
  const SimTime d2 = r.serve(SimTime::seconds(1), SimTime::seconds(5));
  const SimTime d3 = r.serve(SimTime::seconds(2), SimTime::seconds(5));
  EXPECT_DOUBLE_EQ(d1.to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(d2.to_seconds(), 10.0);  // waited 4
  EXPECT_DOUBLE_EQ(d3.to_seconds(), 15.0);  // waited 8
  EXPECT_DOUBLE_EQ(r.total_wait().to_seconds(), 12.0);
  EXPECT_DOUBLE_EQ(r.mean_wait_seconds(), 4.0);
}

TEST(Resource, GapLeavesIdleTime) {
  Resource r("wire");
  r.serve(SimTime::seconds(0), SimTime::seconds(1));
  const SimTime done = r.serve(SimTime::seconds(10), SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(done.to_seconds(), 11.0);
  EXPECT_DOUBLE_EQ(r.total_wait().to_seconds(), 0.0);
}

TEST(Resource, UtilisationFraction) {
  Resource r("wire");
  r.serve(SimTime::seconds(0), SimTime::seconds(2));
  r.serve(SimTime::seconds(5), SimTime::seconds(3));
  EXPECT_DOUBLE_EQ(r.utilisation(SimTime::seconds(10)), 0.5);
  EXPECT_DOUBLE_EQ(r.utilisation(SimTime::zero()), 0.0);
}

TEST(Resource, ZeroServiceAllowed) {
  Resource r("wire");
  const SimTime done = r.serve(SimTime::seconds(3), SimTime::zero());
  EXPECT_DOUBLE_EQ(done.to_seconds(), 3.0);
}

TEST(Resource, WaitStatsTrackDistribution) {
  Resource r("wire");
  r.serve(SimTime::seconds(0), SimTime::seconds(4));
  r.serve(SimTime::seconds(0), SimTime::seconds(4));
  r.serve(SimTime::seconds(0), SimTime::seconds(4));
  EXPECT_EQ(r.wait_stats().count(), 3u);
  EXPECT_DOUBLE_EQ(r.wait_stats().max(), 8.0);
  EXPECT_DOUBLE_EQ(r.wait_stats().min(), 0.0);
}

}  // namespace
}  // namespace specomp::des

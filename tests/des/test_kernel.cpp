#include "des/kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "des/process.hpp"

namespace specomp::des {
namespace {

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime a = SimTime::seconds(1.5);
  const SimTime b = SimTime::millis(500);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).to_seconds(), 3.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(SimTime::micros(1000).to_seconds(), SimTime::millis(1).to_seconds());
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).to_millis(), 2000.0);
}

TEST(Kernel, ExecutesEventsInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  kernel.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  kernel.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  const KernelStats stats = kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(stats.events_executed, 3u);
  EXPECT_DOUBLE_EQ(stats.end_time.to_seconds(), 3.0);
}

TEST(Kernel, TiesBreakInScheduleOrder) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    kernel.schedule_at(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  kernel.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, EventsMayScheduleMoreEvents) {
  Kernel kernel;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) kernel.schedule_in(SimTime::seconds(1), chain);
  };
  kernel.schedule_at(SimTime::seconds(1), chain);
  kernel.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(kernel.now().to_seconds(), 5.0);
}

TEST(Kernel, RunUntilStopsAtLimit) {
  Kernel kernel;
  int fired = 0;
  kernel.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  kernel.schedule_at(SimTime::seconds(10), [&] { ++fired; });
  kernel.run_until(SimTime::seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(kernel.now().to_seconds(), 5.0);
  kernel.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, NowAdvancesMonotonically) {
  Kernel kernel;
  SimTime last = SimTime::zero();
  bool monotonic = true;
  for (int i = 0; i < 50; ++i) {
    kernel.schedule_at(SimTime::seconds(i % 7), [&] {
      if (kernel.now() < last) monotonic = false;
      last = kernel.now();
    });
  }
  kernel.run();
  EXPECT_TRUE(monotonic);
}

TEST(KernelDeath, SchedulingInThePastAborts) {
  Kernel kernel;
  kernel.schedule_at(SimTime::seconds(5), [] {});
  kernel.run();
  EXPECT_DEATH(kernel.schedule_at(SimTime::seconds(1), [] {}), "Precondition");
}

TEST(Kernel, EmptyRunIsNoop) {
  Kernel kernel;
  const KernelStats stats = kernel.run();
  EXPECT_EQ(stats.events_executed, 0u);
  EXPECT_DOUBLE_EQ(stats.end_time.to_seconds(), 0.0);
}

TEST(Kernel, AcceptsMoveOnlyCallables) {
  Kernel kernel;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  kernel.schedule_at(SimTime::seconds(1),
                     [p = std::move(payload), &seen] { seen = *p; });
  kernel.run();
  EXPECT_EQ(seen, 42);
}

TEST(Kernel, LargeCallablesFallBackToHeapCorrectly) {
  // Capture larger than the event's small-buffer storage; the callable must
  // survive slot recycling and the move out of the arena before execution.
  Kernel kernel;
  std::array<double, 16> big{};
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<double>(i);
  double sum = 0.0;
  for (int round = 0; round < 3; ++round) {
    kernel.schedule_at(SimTime::seconds(round + 1), [big, &sum] {
      for (const double v : big) sum += v;
    });
  }
  kernel.run();
  EXPECT_DOUBLE_EQ(sum, 3.0 * (15.0 * 16.0 / 2.0));
}

TEST(Kernel, QueuePeakTracksHighWaterMark) {
  Kernel kernel;
  for (int i = 0; i < 5; ++i)
    kernel.schedule_at(SimTime::seconds(i + 1), [] {});
  const KernelStats stats = kernel.run();
  EXPECT_EQ(stats.queue_peak, 5u);
  EXPECT_EQ(stats.events_executed, 5u);
}

TEST(Kernel, ArenaRecyclesSlotsInSteadyState) {
  // Each event schedules its successor, so at most one event is ever
  // pending: with slot recycling the queue high-water mark stays 1 no
  // matter how many events flow through.
  Kernel kernel;
  int remaining = 10000;
  std::function<void()> step = [&] {
    if (--remaining > 0)
      kernel.schedule_at(kernel.now() + SimTime::micros(1), [&] { step(); });
  };
  kernel.schedule_at(SimTime::micros(1), [&] { step(); });
  const KernelStats stats = kernel.run();
  EXPECT_EQ(stats.events_executed, 10000u);
  EXPECT_EQ(stats.queue_peak, 1u);
  EXPECT_EQ(remaining, 0);
}

}  // namespace
}  // namespace specomp::des

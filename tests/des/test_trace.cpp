#include "des/trace.hpp"

#include <gtest/gtest.h>

namespace specomp::des {
namespace {

TEST(Trace, RecordsSpansAndHorizon) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(2));
  trace.add_span(1, SpanKind::Wait, SimTime::seconds(1), SimTime::seconds(4));
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 4.0);
}

TEST(Trace, EventsExtendHorizon) {
  Trace trace;
  trace.add_event(0, SimTime::seconds(9), "spike");
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 9.0);
}

TEST(Trace, GanttContainsLaneRowsAndLegend) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(1));
  trace.add_span(1, SpanKind::Wait, SimTime::zero(), SimTime::seconds(1));
  const std::string art = trace.gantt(2, 40);
  EXPECT_NE(art.find("P0 |"), std::string::npos);
  EXPECT_NE(art.find("P1 |"), std::string::npos);
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find('C'), std::string::npos);
}

TEST(Trace, SymbolsDistinct) {
  EXPECT_NE(span_symbol(SpanKind::Compute), span_symbol(SpanKind::Wait));
  EXPECT_NE(span_symbol(SpanKind::Compute),
            span_symbol(SpanKind::SpeculativeCompute));
  EXPECT_NE(span_symbol(SpanKind::Check), span_symbol(SpanKind::Correct));
}

TEST(Trace, TinySpanStillVisible) {
  Trace trace;
  trace.add_span(0, SpanKind::Check, SimTime::seconds(5.0),
                 SimTime::seconds(5.000001));
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(10));
  const std::string art = trace.gantt(1, 50);
  EXPECT_NE(art.find('k'), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(1));
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 0.0);
}

}  // namespace
}  // namespace specomp::des

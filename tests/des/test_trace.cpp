#include "des/trace.hpp"

#include <gtest/gtest.h>

namespace specomp::des {
namespace {

TEST(Trace, RecordsSpansAndHorizon) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(2));
  trace.add_span(1, SpanKind::Wait, SimTime::seconds(1), SimTime::seconds(4));
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 4.0);
}

TEST(Trace, EventsExtendHorizon) {
  Trace trace;
  trace.add_event(0, SimTime::seconds(9), "spike");
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 9.0);
}

TEST(Trace, GanttContainsLaneRowsAndLegend) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(1));
  trace.add_span(1, SpanKind::Wait, SimTime::zero(), SimTime::seconds(1));
  const std::string art = trace.gantt(2, 40);
  EXPECT_NE(art.find("P0 |"), std::string::npos);
  EXPECT_NE(art.find("P1 |"), std::string::npos);
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find('C'), std::string::npos);
}

TEST(Trace, SymbolsDistinct) {
  EXPECT_NE(span_symbol(SpanKind::Compute), span_symbol(SpanKind::Wait));
  EXPECT_NE(span_symbol(SpanKind::Compute),
            span_symbol(SpanKind::SpeculativeCompute));
  EXPECT_NE(span_symbol(SpanKind::Check), span_symbol(SpanKind::Correct));
}

TEST(Trace, TinySpanStillVisible) {
  Trace trace;
  trace.add_span(0, SpanKind::Check, SimTime::seconds(5.0),
                 SimTime::seconds(5.000001));
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(10));
  const std::string art = trace.gantt(1, 50);
  EXPECT_NE(art.find('k'), std::string::npos);
}

TEST(Trace, EventPastLastSpanStaysOnChart) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(4));
  trace.add_event(0, SimTime::seconds(10), "late spike");
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 10.0);
  const std::string art = trace.gantt(1, 40);
  const auto row_start = art.find("P0 |");
  ASSERT_NE(row_start, std::string::npos);
  const std::string row = art.substr(row_start + 4, 40);
  // The event must land inside the 40-column row (at its right edge), not
  // silently fall off the chart.
  EXPECT_EQ(row[39], '!');
  // The span still covers the left 40% of the chart.
  EXPECT_EQ(row[0], 'C');
  EXPECT_EQ(row[14], 'C');
}

TEST(Trace, ZeroHorizonRendersCleanly) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::zero());
  trace.add_event(1, SimTime::zero(), "t0");
  const std::string art = trace.gantt(2, 40);
  // Header reports the true (zero) horizon rather than a denormal epsilon.
  EXPECT_NE(art.find(" 0 s\n"), std::string::npos);
  const auto p0 = art.find("P0 |");
  const auto p1 = art.find("P1 |");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  // Full-width rows with the instant activity pinned to column 0.
  EXPECT_EQ(art[p0 + 4], 'C');
  EXPECT_EQ(art[p1 + 4], '!');
  EXPECT_EQ(art.substr(p0 + 5, 39), std::string(39, ' '));
}

TEST(Trace, NegativeTimesClampToChartStart) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(2));
  trace.add_event(0, SimTime::seconds(-1), "pre-start");
  const std::string art = trace.gantt(1, 40);
  const auto p0 = art.find("P0 |");
  ASSERT_NE(p0, std::string::npos);
  EXPECT_EQ(art[p0 + 4], '!');  // clamped to column 0, no out-of-range write
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.add_span(0, SpanKind::Compute, SimTime::zero(), SimTime::seconds(1));
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_DOUBLE_EQ(trace.horizon().to_seconds(), 0.0);
}

}  // namespace
}  // namespace specomp::des

#include "runtime/cluster.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace specomp::runtime {
namespace {

TEST(Cluster, HomogeneousFactory) {
  const Cluster c = Cluster::homogeneous(4, 1e6);
  EXPECT_EQ(c.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(c.machine(i).ops_per_sec, 1e6);
  EXPECT_DOUBLE_EQ(c.max_speedup(), 4.0);
}

TEST(Cluster, LinearFactoryEndpoints) {
  const Cluster c = Cluster::linear(16, 120.0, 10.0);
  EXPECT_DOUBLE_EQ(c.machine(0).ops_per_sec, 120.0);
  EXPECT_DOUBLE_EQ(c.machine(15).ops_per_sec, 12.0);
  // Monotone nonincreasing.
  for (std::size_t i = 1; i < 16; ++i)
    EXPECT_LE(c.machine(i).ops_per_sec, c.machine(i - 1).ops_per_sec);
}

TEST(Cluster, LinearSingleMachine) {
  const Cluster c = Cluster::linear(1, 100.0, 10.0);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.machine(0).ops_per_sec, 100.0);
}

TEST(Cluster, PaperFleetMatchesPaperModel) {
  const Cluster c = Cluster::paper_fleet();
  EXPECT_EQ(c.size(), 16u);
  EXPECT_NEAR(c.machine(0).ops_per_sec / c.machine(15).ops_per_sec, 10.0, 1e-9);
  // The paper: "maximum speedup reflects computing power of the p-processor
  // set relative to P1" — for the 16-machine 10:1 linear fleet this is 8.8.
  EXPECT_NEAR(c.max_speedup(), 8.8, 1e-9);
}

TEST(Cluster, PrefixTakesFastest) {
  const Cluster c = Cluster::linear(8, 80.0, 8.0);
  const Cluster head = c.prefix(3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_DOUBLE_EQ(head.machine(0).ops_per_sec, c.machine(0).ops_per_sec);
  EXPECT_DOUBLE_EQ(head.machine(2).ops_per_sec, c.machine(2).ops_per_sec);
}

TEST(Cluster, PartitionSumsToTotal) {
  const Cluster c = Cluster::linear(7, 100.0, 5.0);
  const auto counts = c.proportional_partition(1000);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            1000u);
}

TEST(Cluster, PartitionProportionalToCapacity) {
  const Cluster c = Cluster::linear(4, 400.0, 4.0);  // 400, 300, 200, 100
  const auto counts = c.proportional_partition(1000);
  EXPECT_EQ(counts[0], 400u);
  EXPECT_EQ(counts[1], 300u);
  EXPECT_EQ(counts[2], 200u);
  EXPECT_EQ(counts[3], 100u);
}

TEST(Cluster, PartitionBalancesComputeTime) {
  // N_i / M_i should be (nearly) equal: the ideal-balance condition (eq. 4).
  const Cluster c = Cluster::linear(16, 12e6, 10.0);
  const auto counts = c.proportional_partition(1000);
  double lo = 1e300;
  double hi = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double ratio =
        static_cast<double>(counts[i]) / c.machine(i).ops_per_sec;
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  EXPECT_LT((hi - lo) / hi, 0.1);  // within rounding of one particle
}

TEST(Cluster, PartitionHandlesFewItems) {
  const Cluster c = Cluster::linear(4, 400.0, 4.0);
  const auto counts = c.proportional_partition(2);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), 2u);
  // Fastest machines get the scarce items.
  EXPECT_GE(counts[0], counts[3]);
}

TEST(Cluster, PartitionSingleMachineGetsAll) {
  const Cluster c = Cluster::homogeneous(1, 5.0);
  EXPECT_EQ(c.proportional_partition(123)[0], 123u);
}

TEST(Cluster, TotalOps) {
  const Cluster c = Cluster::linear(4, 400.0, 4.0);
  EXPECT_DOUBLE_EQ(c.total_ops_per_sec(), 1000.0);
}

TEST(ClusterDeath, UnorderedMachinesAbort) {
  EXPECT_DEATH(Cluster({{"slow", 1.0}, {"fast", 2.0}}), "Precondition");
}

}  // namespace
}  // namespace specomp::runtime

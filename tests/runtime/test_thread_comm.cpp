#include "runtime/thread_comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace specomp::runtime {
namespace {

ThreadConfig quick_config(std::size_t p) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(p, 1e6);
  config.time_scale = 0.0;
  return config;
}

TEST(ThreadComm, SendRecvRoundTrip) {
  std::vector<double> received;
  run_threaded(quick_config(2), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 3, std::vector<double>{9.0, 8.0});
    } else {
      received = comm.recv_doubles(0, 3);
    }
  });
  EXPECT_EQ(received, (std::vector<double>{9.0, 8.0}));
}

TEST(ThreadComm, RecordTraceCapturesCausalSendRecvEdges) {
  ThreadConfig config = quick_config(2);
  config.record_trace = true;
  const ThreadResult result =
      run_threaded(config, [&](Communicator& comm) {
        if (comm.rank() == 0) {
          comm.send_doubles(1, 3, std::vector<double>{1.0});
        } else {
          (void)comm.recv_doubles(0, 3);
        }
      });
  int sends = 0;
  int recvs = 0;
  for (const auto& e : result.trace.causal()) {
    if (e.kind == des::CausalKind::Send) {
      ++sends;
      EXPECT_EQ(e.lane, 0u);
      EXPECT_EQ(e.peer, 1);
    }
    if (e.kind == des::CausalKind::Recv) {
      ++recvs;
      EXPECT_EQ(e.lane, 1u);
      EXPECT_EQ(e.peer, 0);
      EXPECT_EQ(e.tag, 3);
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST(ThreadComm, TracingOffRecordsNothing) {
  const ThreadResult result =
      run_threaded(quick_config(2), [&](Communicator& comm) {
        if (comm.rank() == 0)
          comm.send_doubles(1, 3, std::vector<double>{1.0});
        else
          (void)comm.recv_doubles(0, 3);
      });
  EXPECT_TRUE(result.trace.causal().empty());
}

TEST(ThreadComm, AllToAllExchange) {
  constexpr int kRanks = 4;
  std::array<std::array<double, kRanks>, kRanks> got{};
  run_threaded(quick_config(kRanks), [&](Communicator& comm) {
    for (int k = 0; k < kRanks; ++k)
      if (k != comm.rank())
        comm.send_doubles(k, 1,
                          std::vector<double>{static_cast<double>(comm.rank())});
    for (int k = 0; k < kRanks; ++k) {
      if (k == comm.rank()) continue;
      got[static_cast<std::size_t>(comm.rank())][static_cast<std::size_t>(k)] =
          comm.recv_doubles(k, 1)[0];
    }
  });
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kRanks; ++k)
      if (r != k)
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                         static_cast<double>(k));
}

TEST(ThreadComm, TagsKeepStreamsSeparate) {
  std::vector<double> got;
  run_threaded(quick_config(2), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int t = 0; t < 10; ++t)
        comm.send_doubles(1, 100 + t, std::vector<double>{static_cast<double>(t)});
    } else {
      for (int t = 9; t >= 0; --t)  // receive in reverse tag order
        got.push_back(comm.recv_doubles(0, 100 + t)[0]);
    }
  });
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], 9.0 - i);
}

TEST(ThreadComm, BarrierRendezvous) {
  constexpr int kRanks = 8;
  std::atomic<int> arrived{0};
  std::atomic<bool> early_exit{false};
  run_threaded(quick_config(kRanks), [&](Communicator& comm) {
    ++arrived;
    comm.barrier();
    if (arrived.load() != kRanks) early_exit = true;
    comm.barrier();  // second barrier: generation logic must recycle
  });
  EXPECT_FALSE(early_exit.load());
}

TEST(ThreadComm, RecvAnyDrainsAllPeers) {
  constexpr int kRanks = 5;
  std::vector<int> sources;
  run_threaded(quick_config(kRanks), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < kRanks; ++i)
        sources.push_back(comm.recv_any(2).src);
    } else {
      comm.send_doubles(0, 2, std::vector<double>{1.0});
    }
  });
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ThreadComm, InjectedLatencyDelaysDelivery) {
  ThreadConfig config = quick_config(2);
  config.latency_seconds = 0.05;
  double waited = 0.0;
  run_threaded(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 1, std::vector<double>{1.0});
    } else {
      const double before = comm.time_seconds();
      (void)comm.recv(0, 1);
      waited = comm.time_seconds() - before;
    }
  });
  EXPECT_GE(waited, 0.045);
}

TEST(ThreadComm, TryRecvEventuallySeesMessage) {
  std::atomic<bool> got{false};
  run_threaded(quick_config(2), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 1, std::vector<double>{1.0});
    } else {
      net::Message msg;
      while (!comm.try_recv(0, 1, msg)) {
      }
      got = true;
    }
  });
  EXPECT_TRUE(got.load());
}

TEST(ThreadComm, SequenceNumbersOrderSameTagStream) {
  // Same (src, tag) messages must be received in send order even though the
  // receiver only matches on tag.
  std::vector<double> got;
  run_threaded(quick_config(2), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i)
        comm.send_doubles(1, 1, std::vector<double>{static_cast<double>(i)});
    } else {
      for (int i = 0; i < 20; ++i) got.push_back(comm.recv_doubles(0, 1)[0]);
    }
  });
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], static_cast<double>(i));
}

TEST(ThreadComm, ManyRanksStress) {
  constexpr int kRanks = 12;
  std::atomic<long> total{0};
  run_threaded(quick_config(kRanks), [&](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      for (int k = 0; k < kRanks; ++k)
        if (k != comm.rank())
          comm.send_doubles(k, 10 + iter, std::vector<double>{1.0});
      for (int k = 0; k < kRanks; ++k)
        if (k != comm.rank())
          total += static_cast<long>(comm.recv_doubles(k, 10 + iter)[0]);
      comm.barrier();
    }
  });
  EXPECT_EQ(total.load(), kRanks * (kRanks - 1) * 10);
}

}  // namespace
}  // namespace specomp::runtime

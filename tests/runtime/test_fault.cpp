// Fault-injection layer: plan grammar, hash determinism, per-class fault
// behaviour on both backends, recovery machinery, and the engine's graceful
// degradation (DESIGN.md §9).
#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "apps/heat.hpp"
#include "net/buffer_pool.hpp"
#include "runtime/hb_check.hpp"
#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"

namespace specomp::runtime {
namespace {

using des::SimTime;

FaultPlanPtr make_plan(const std::string& spec, std::uint64_t seed = 0xfa017) {
  FaultPlanConfig config;
  config.seed = seed;
  std::string error;
  EXPECT_TRUE(parse_fault_plan(spec, config, error)) << error;
  return std::make_shared<const FaultPlan>(std::move(config));
}

SimConfig two_rank_config() {
  SimConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  config.channel.bandwidth_bytes_per_sec = 1e6;
  config.channel.per_message_overhead_bytes = 0;
  config.channel.propagation = SimTime::zero();
  config.channel.extra_delay = nullptr;
  config.send_sw_time = SimTime::zero();
  return config;
}

// ---------------------------------------------------------------- grammar

TEST(FaultPlanParse, FullGrammar) {
  FaultPlanConfig config;
  std::string error;
  ASSERT_TRUE(parse_fault_plan(
      "drop:0.05,dup:0.01@0->1,reorder:0.2@2->*,slow:1x3@10..20~0.5,"
      "stall:0@5+2.5,crash:3@55,rto:2,retries:6,reorder-hold:0.25,"
      "dup-offset:0.1,norecovery",
      config, error))
      << error;
  ASSERT_EQ(config.links.size(), 3u);
  EXPECT_DOUBLE_EQ(config.links[0].drop, 0.05);
  EXPECT_EQ(config.links[0].src, -1);
  EXPECT_EQ(config.links[0].dst, -1);
  EXPECT_DOUBLE_EQ(config.links[1].duplicate, 0.01);
  EXPECT_EQ(config.links[1].src, 0);
  EXPECT_EQ(config.links[1].dst, 1);
  EXPECT_DOUBLE_EQ(config.links[2].reorder, 0.2);
  EXPECT_EQ(config.links[2].src, 2);
  EXPECT_EQ(config.links[2].dst, -1);
  ASSERT_EQ(config.slowdowns.size(), 1u);
  EXPECT_EQ(config.slowdowns[0].rank, 1);
  EXPECT_DOUBLE_EQ(config.slowdowns[0].factor, 3.0);
  EXPECT_DOUBLE_EQ(config.slowdowns[0].begin_seconds, 10.0);
  EXPECT_DOUBLE_EQ(config.slowdowns[0].end_seconds, 20.0);
  EXPECT_DOUBLE_EQ(config.slowdowns[0].probability, 0.5);
  ASSERT_EQ(config.stalls.size(), 1u);
  EXPECT_EQ(config.stalls[0].rank, 0);
  EXPECT_DOUBLE_EQ(config.stalls[0].at_seconds, 5.0);
  EXPECT_DOUBLE_EQ(config.stalls[0].duration_seconds, 2.5);
  ASSERT_EQ(config.crashes.size(), 1u);
  EXPECT_EQ(config.crashes[0].rank, 3);
  EXPECT_DOUBLE_EQ(config.crashes[0].at_seconds, 55.0);
  EXPECT_DOUBLE_EQ(config.retransmit_timeout_seconds, 2.0);
  EXPECT_EQ(config.max_retransmits, 6);
  EXPECT_DOUBLE_EQ(config.reorder_hold_seconds, 0.25);
  EXPECT_DOUBLE_EQ(config.duplicate_offset_seconds, 0.1);
  EXPECT_FALSE(config.recovery);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  for (const char* bad :
       {"drop", "drop:", "drop:2.0", "drop:-0.1", "drop:abc", "nope:1",
        "slow:1", "slow:x3", "stall:0@5", "crash:0", "rto:-1", "retries:0",
        "drop:0.1@x->1", ",", "drop:0.1,,dup:0.1"}) {
    FaultPlanConfig config;
    std::string error;
    EXPECT_FALSE(parse_fault_plan(bad, config, error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultPlanParse, ParsesOntoPreSeededDefaults) {
  FaultPlanConfig config;
  config.retransmit_timeout_seconds = 4.0;
  config.seed = 99;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("drop:0.1", config, error)) << error;
  EXPECT_DOUBLE_EQ(config.retransmit_timeout_seconds, 4.0);
  EXPECT_EQ(config.seed, 99u);
}

// ------------------------------------------------------------ determinism

TEST(FaultPlan, DecisionsAreDeterministicAndSeedSensitive) {
  const FaultPlanPtr a = make_plan("drop:0.3,dup:0.2,reorder:0.1", 1);
  const FaultPlanPtr b = make_plan("drop:0.3,dup:0.2,reorder:0.1", 1);
  const FaultPlanPtr c = make_plan("drop:0.3,dup:0.2,reorder:0.1", 2);
  bool seed_changed_something = false;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const auto oa = a->on_send(0, 1, 7, seq);
    const auto ob = b->on_send(0, 1, 7, seq);
    EXPECT_EQ(oa.drops, ob.drops);
    EXPECT_EQ(oa.duplicated, ob.duplicated);
    EXPECT_EQ(oa.reordered, ob.reordered);
    EXPECT_DOUBLE_EQ(oa.extra_delay_seconds, ob.extra_delay_seconds);
    const auto oc = c->on_send(0, 1, 7, seq);
    seed_changed_something |= oa.drops != oc.drops ||
                              oa.duplicated != oc.duplicated ||
                              oa.reordered != oc.reordered;
  }
  EXPECT_TRUE(seed_changed_something);
}

TEST(FaultPlan, LinkRulesMatchOnlyTheirLink) {
  const FaultPlanPtr plan = make_plan("drop:1.0@0->1,rto:0.5");
  EXPECT_GT(plan->on_send(0, 1, 7, 0).drops, 0u);
  EXPECT_EQ(plan->on_send(1, 0, 7, 0).drops, 0u);
  EXPECT_EQ(plan->on_send(0, 2, 7, 0).drops, 0u);
}

TEST(FaultPlan, DropRecoveryHasBoundedExponentialBackoff) {
  // drop:1.0 makes every transmission drop; recovery delivers anyway after
  // max_retransmits backoffs: rto * (2^retries - 1) extra seconds.
  const FaultPlanPtr plan = make_plan("drop:1.0,rto:0.5,retries:3");
  const auto out = plan->on_send(0, 1, 7, 0);
  EXPECT_FALSE(out.lost);
  EXPECT_EQ(out.drops, 3u);
  EXPECT_EQ(out.retransmits, 3u);
  EXPECT_DOUBLE_EQ(out.extra_delay_seconds, 0.5 * 7.0);
}

TEST(FaultPlan, DropWithoutRecoveryLosesTheMessage) {
  const FaultPlanPtr plan = make_plan("drop:1.0,norecovery");
  const auto out = plan->on_send(0, 1, 7, 0);
  EXPECT_TRUE(out.lost);
  EXPECT_EQ(out.retransmits, 0u);
  EXPECT_DOUBLE_EQ(out.extra_delay_seconds, 0.0);
}

// --------------------------------------------------- simulated backend

TEST(SimFault, ZeroProbabilityPlanMatchesFaultFreeRun) {
  // Arming a plan whose rules can never fire must not perturb the
  // simulation: the byte-identity contract of DESIGN.md §9.
  const RankBody body = [](Communicator& comm) {
    for (int i = 0; i < 5; ++i) {
      if (comm.rank() == 0) {
        comm.compute(2e5);
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
      } else {
        (void)comm.recv_doubles(0, 7);
        comm.compute(1e5);
      }
    }
  };
  const SimResult plain = run_simulated(two_rank_config(), body);
  SimConfig faulted = two_rank_config();
  faulted.fault = make_plan("drop:0.0,dup:0.0,reorder:0.0");
  const SimResult with_plan = run_simulated(faulted, body);
  EXPECT_EQ(plain.makespan_seconds, with_plan.makespan_seconds);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(plain.timers[r].get(Phase::Compute),
              with_plan.timers[r].get(Phase::Compute));
    EXPECT_EQ(plain.timers[r].get(Phase::Communicate),
              with_plan.timers[r].get(Phase::Communicate));
  }
  EXPECT_FALSE(with_plan.fault_stats.any());
}

TEST(SimFault, DropIsRetransmittedWithBackoffDelay) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("drop:1.0,rto:0.5,retries:2");
  double recv_done = -1.0;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{42.0});
    } else {
      EXPECT_EQ(comm.recv_doubles(0, 7), std::vector<double>{42.0});
      recv_done = comm.time_seconds();
    }
  });
  // Wire time is ~16 us; the observable delay is the 0.5 * (2^2 - 1) = 1.5 s
  // of retransmit backoff.
  EXPECT_GT(recv_done, 1.5);
  EXPECT_LT(recv_done, 1.6);
  EXPECT_EQ(result.fault_stats.injected_drops, 2u);
  EXPECT_EQ(result.fault_stats.retransmits, 2u);
  EXPECT_EQ(result.fault_stats.messages_lost, 0u);
}

TEST(SimFault, DropWithoutRecoveryNeverArrives) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("drop:1.0,norecovery");
  bool got = true;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{42.0});
    } else {
      comm.compute(5e6);  // 5 s: far past any delivery time
      net::Message msg;
      got = comm.try_recv(0, 7, msg);
    }
  });
  EXPECT_FALSE(got);
  EXPECT_EQ(result.fault_stats.messages_lost, 1u);
}

TEST(SimFault, DuplicatesAreSuppressedUnderRecovery) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("dup:1.0");
  std::vector<double> got;
  bool extra = true;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i)
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
    } else {
      for (int i = 0; i < 3; ++i) got.push_back(comm.recv_doubles(0, 7)[0]);
      comm.compute(5e6);  // let every duplicate's delivery time pass
      net::Message msg;
      extra = comm.try_recv(0, 7, msg);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_FALSE(extra);  // at-most-once delivery restored
  EXPECT_EQ(result.fault_stats.injected_duplicates, 3u);
  EXPECT_EQ(result.fault_stats.duplicates_suppressed, 3u);
}

TEST(SimFault, DuplicatesReachTheApplicationWithoutRecovery) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("dup:1.0,norecovery");
  std::vector<double> got;
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{42.0});
    } else {
      got.push_back(comm.recv_doubles(0, 7)[0]);
      got.push_back(comm.recv_doubles(0, 7)[0]);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{42.0, 42.0}));
}

TEST(SimFault, ReorderWithRecoveryPreservesSendOrder) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("reorder:0.5,reorder-hold:2.0");
  std::vector<double> got;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i)
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
    } else {
      for (int i = 0; i < 20; ++i) got.push_back(comm.recv_doubles(0, 7)[0]);
    }
  });
  std::vector<double> expected(20);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_EQ(got, expected);  // seq-ordered mailboxes reassemble send order
  EXPECT_GT(result.fault_stats.injected_reorders, 0u);
}

TEST(SimFault, ReorderWithoutRecoveryDeliversArrivalOrder) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("reorder:0.5,reorder-hold:2.0,norecovery");
  // The plan must hold back a proper subset so an inversion exists.
  std::size_t held = 0;
  for (std::uint64_t seq = 0; seq < 20; ++seq)
    held += config.fault->on_send(0, 1, 7, seq).reordered ? 1u : 0u;
  ASSERT_GT(held, 0u);
  ASSERT_LT(held, 20u);
  std::vector<double> got;
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i)
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
    } else {
      for (int i = 0; i < 20; ++i) got.push_back(comm.recv_doubles(0, 7)[0]);
    }
  });
  std::vector<double> expected(20);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_NE(got, expected);  // the inversion is observable...
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);  // ...but nothing is lost or duplicated
}

TEST(SimFault, SlowdownStretchesComputeCharges) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("slow:0x3@0..100");
  std::vector<double> finish(2);
  run_simulated(config, [&](Communicator& comm) {
    comm.compute(1e6);  // 1 s nominal on both machines
    finish[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  EXPECT_DOUBLE_EQ(finish[0], 3.0);  // stretched by the factor
  EXPECT_DOUBLE_EQ(finish[1], 1.0);  // rule targets rank 0 only
}

TEST(SimFault, StallFreezesTheRankOnce) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("stall:0@0.5+2");
  std::vector<double> finish(2);
  run_simulated(config, [&](Communicator& comm) {
    comm.compute(1e6);  // ends at 1.0; the stall is not yet due at t = 0
    comm.compute(1e6);  // due stall (0.5 <= 1.0) charges 2 s extra
    finish[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  EXPECT_DOUBLE_EQ(finish[0], 4.0);
  EXPECT_DOUBLE_EQ(finish[1], 2.0);
}

TEST(SimFault, CrashStopsTheRankAndTheRunContinues) {
  SimConfig config = two_rank_config();
  config.fault = make_plan("crash:0@1.5");
  std::vector<double> finish(2, -1.0);
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    for (int i = 0; i < 3; ++i) comm.compute(1e6);
    finish[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  EXPECT_DOUBLE_EQ(finish[0], -1.0);  // never reached: crashed mid-loop
  EXPECT_DOUBLE_EQ(finish[1], 3.0);   // unaffected survivor
  EXPECT_EQ(result.fault_stats.crashed_ranks, 1u);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 3.0);
}

TEST(SimFault, SameSeedReproducesTheRunExactly) {
  const RankBody body = [](Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) {
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
        comm.compute(1e5);
      } else {
        (void)comm.recv_doubles(0, 7);
      }
    }
  };
  SimConfig config = two_rank_config();
  config.fault = make_plan("drop:0.3,dup:0.2,rto:0.25", 7);
  const SimResult first = run_simulated(config, body);
  const SimResult second = run_simulated(config, body);
  EXPECT_EQ(first.makespan_seconds, second.makespan_seconds);
  EXPECT_EQ(first.fault_stats.injected_drops,
            second.fault_stats.injected_drops);
  EXPECT_EQ(first.fault_stats.injected_duplicates,
            second.fault_stats.injected_duplicates);
  EXPECT_GT(first.fault_stats.injected_drops +
                first.fault_stats.injected_duplicates,
            0u);
}

TEST(SimFault, RecvTimeoutExpiresWhenNothingArrives) {
  SimConfig config = two_rank_config();
  bool got = true;
  double gave_up_at = -1.0;
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      net::Message msg;
      got = comm.recv_timeout(0, 7, 2.0, msg);
      gave_up_at = comm.time_seconds();
    }
  });
  EXPECT_FALSE(got);
  EXPECT_DOUBLE_EQ(gave_up_at, 2.0);
}

TEST(SimFault, RecvTimeoutReturnsEarlyDelivery) {
  SimConfig config = two_rank_config();
  bool got = false;
  double done_at = -1.0;
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(1e6);  // send at t = 1
      comm.send_doubles(1, 7, std::vector<double>{42.0});
    } else {
      net::Message msg;
      got = comm.recv_timeout(0, 7, 5.0, msg);
      done_at = comm.time_seconds();
      if (got) net::BufferPool::local().release(std::move(msg.payload));
    }
  });
  EXPECT_TRUE(got);
  EXPECT_GT(done_at, 0.99);
  EXPECT_LT(done_at, 1.1);
}

// ------------------------------------------------------ thread backend

TEST(ThreadFault, DropsAreRecoveredAcrossRealThreads) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  config.fault = make_plan("drop:1.0,rto:0.01,retries:2");
  std::vector<double> got;
  const ThreadResult result = run_threaded(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{42.0});
    } else {
      got = comm.recv_doubles(0, 7);
    }
  });
  EXPECT_EQ(got, std::vector<double>{42.0});
  EXPECT_EQ(result.fault_stats.injected_drops, 2u);
  EXPECT_EQ(result.fault_stats.messages_lost, 0u);
}

TEST(ThreadFault, RecvTimeoutExpiresWhenNothingArrives) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  bool got = true;
  run_threaded(config, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      net::Message msg;
      got = comm.recv_timeout(0, 7, 0.05, msg);
    }
  });
  EXPECT_FALSE(got);
}

TEST(ThreadFault, CrashUnblocksAPendingReceive) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  config.fault = make_plan("crash:0@0.05");
  const ThreadResult result = run_threaded(config, [&](Communicator& comm) {
    if (comm.rank() == 0) (void)comm.recv(1, 7);  // nothing ever arrives
  });
  EXPECT_EQ(result.fault_stats.crashed_ranks, 1u);
}

// --------------------------------------------- happens-before interplay
#if SPECOMP_HB_CHECK_ENABLED

TEST(HbFault, RecoveryKeepsInjectedDupAndReorderHbClean) {
  SimConfig config = two_rank_config();
  config.hb_check = true;
  config.fault = make_plan("dup:0.5,reorder:0.5,reorder-hold:2.0");
  EXPECT_NO_THROW(run_simulated(config, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i)
        comm.send_doubles(1, 7, std::vector<double>{1.0 * i});
    } else {
      for (int i = 0; i < 20; ++i) (void)comm.recv_doubles(0, 7);
    }
  }));
}

TEST(HbFault, DuplicateWithoutRecoveryTripsTheDetector) {
  SimConfig config = two_rank_config();
  config.hb_check = true;
  config.fault = make_plan("dup:1.0,norecovery");
  EXPECT_THROW(run_simulated(config,
                             [](Communicator& comm) {
                               if (comm.rank() == 0) {
                                 comm.send_doubles(1, 7,
                                                   std::vector<double>{1.0});
                               } else {
                                 (void)comm.recv_doubles(0, 7);
                                 (void)comm.recv_doubles(0, 7);
                               }
                             }),
               HbViolation);
}

TEST(HbFault, ReorderWithoutRecoveryTripsTheDetector) {
  SimConfig config = two_rank_config();
  config.hb_check = true;
  config.fault = make_plan("reorder:0.5,reorder-hold:2.0,norecovery");
  std::size_t held = 0;
  for (std::uint64_t seq = 0; seq < 20; ++seq)
    held += config.fault->on_send(0, 1, 7, seq).reordered ? 1u : 0u;
  ASSERT_GT(held, 0u);
  ASSERT_LT(held, 20u);
  EXPECT_THROW(run_simulated(config,
                             [](Communicator& comm) {
                               if (comm.rank() == 0) {
                                 for (int i = 0; i < 20; ++i)
                                   comm.send_doubles(
                                       1, 7, std::vector<double>{1.0 * i});
                               } else {
                                 for (int i = 0; i < 20; ++i)
                                   (void)comm.recv_doubles(0, 7);
                               }
                             }),
               HbViolation);
}

#endif  // SPECOMP_HB_CHECK_ENABLED

// -------------------------------------------------- graceful degradation

TEST(DegradedMode, HeatUnderDropsCompletesWithBoundedError) {
  // 5% drops with a 1 s ARQ timeout on an ~80 ms network: retransmitted
  // halos are an order of magnitude late, so the engine must degrade (the
  // overdue grace is 0.2 s) to keep the pipeline moving.
  apps::HeatScenario scenario;
  scenario.problem.n = 256;
  scenario.iterations = 30;
  scenario.forward_window = 1;
  scenario.theta = 1e-4;
  scenario.sim.cluster = Cluster::linear(4, 1e6, 4.0);
  scenario.sim.channel.propagation = SimTime::millis(80);
  scenario.sim.send_sw_time = SimTime::millis(1);
  scenario.sim.fault = make_plan("drop:0.05,rto:1.0");
  scenario.graceful_degradation = true;
  scenario.overdue_after_seconds = 0.2;
  scenario.max_degraded_window = 8;

  const apps::HeatRunResult run = apps::run_heat_scenario(scenario);
  EXPECT_GT(run.sim.fault_stats.injected_drops, 0u);
  EXPECT_GT(run.spec.degraded_entries, 0u);
  EXPECT_GT(run.spec.degraded_iterations, 0u);

  // Final-answer bound (documented in DESIGN.md §9): every accepted
  // speculation obeys the per-check threshold θ, and a degraded run accepts
  // at most iterations · (p − 1) of them per rank, so the terminal deviation
  // from the serial sweep stays below iterations · p · θ — loose by design;
  // the observed deviation is typically two orders of magnitude smaller.
  const std::vector<double> serial =
      apps::serial_heat(scenario.problem, scenario.iterations);
  double deviation = 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i)
    deviation = std::max(deviation, std::fabs(run.field[i] - serial[i]));
  EXPECT_LT(deviation, 30.0 * 4.0 * scenario.theta);
}

TEST(DegradedMode, FaultFreeRunNeverDegrades) {
  apps::HeatScenario scenario;
  scenario.problem.n = 256;
  scenario.iterations = 10;
  scenario.forward_window = 1;
  scenario.sim.cluster = Cluster::linear(4, 1e6, 4.0);
  scenario.sim.channel.propagation = SimTime::millis(80);
  scenario.graceful_degradation = true;
  scenario.overdue_after_seconds = 5.0;  // far above the healthy round trip

  const apps::HeatRunResult run = apps::run_heat_scenario(scenario);
  EXPECT_EQ(run.spec.degraded_entries, 0u);
  EXPECT_EQ(run.spec.degraded_iterations, 0u);
}

}  // namespace
}  // namespace specomp::runtime
